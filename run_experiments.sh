#!/bin/sh
# Regenerates every table and figure of the paper plus the extension
# experiments. Outputs: stdout (paper-style rows + shape checks) and
# CSVs under results/.
#
# Independent simulation runs fan out across cores via the afs_core::par
# executor; AFS_JOBS caps the worker count (AFS_JOBS=1 forces the serial
# path). Either way the artifacts are byte-identical — results are
# reassembled in submission order.
set -u
AFS_JOBS="${AFS_JOBS:-0}"
[ "$AFS_JOBS" -ge 1 ] 2>/dev/null || AFS_JOBS=$( (nproc || sysctl -n hw.ncpu || echo 1) 2>/dev/null | head -n1 )
export AFS_JOBS
echo "run_experiments: AFS_JOBS=$AFS_JOBS"
BINS="table1 table2 fig01 fig02 fig03 fig04 fig05 fig06 fig07 fig08 fig09 fig10 fig11 \
      ext12_send_side ext13_packet_train ext14_num_stacks ext15_copying ext16_hybrid ext19_tcp ext20_stream_capacity \
      ext21_faults ext22_native ext23_obs ext24_procfaults ext25_streams ext26_serve \
      abl17_sensitivity abl18_procs summary"
fail=0
for b in $BINS; do
  cargo run --release -q -p afs-bench --bin "$b" || fail=1
done
exit $fail
