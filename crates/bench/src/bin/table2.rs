//! Table 2 — components of affinity overhead.
//!
//! The paper's Section-4 experimental method isolates the individual
//! components of affinity-related overhead: what a packet pays when only
//! the thread stack, only the stream (connection) state, or only the
//! code+globals have been displaced — and what a migrated (remote-cache)
//! fetch costs relative to a memory fill.

use afs_bench::{banner, write_csv, Checks};
use afs_cache::model::exec_time::{Age, ComponentAges};
use afs_cache::sim::trace::Region;
use afs_core::ExecParams;
use afs_xkernel::{calibrate, CostModel};

fn main() {
    banner(
        "TABLE 2",
        "Components of affinity overhead",
        "Section-4 method: controlled cache states isolate per-component penalties",
    );
    let cal = calibrate(&CostModel::default());
    let warm = cal.bounds.t_warm_us;
    println!("per-packet cost over t_warm = {warm:.1} us when one component is displaced:");
    println!(
        "  thread stack purged     +{:>7.1} us   (weight {:.3})",
        cal.t_thread_us - warm,
        cal.weights.thread
    );
    println!(
        "  stream state purged     +{:>7.1} us   (weight {:.3})",
        cal.t_stream_us - warm,
        cal.weights.stream
    );
    println!(
        "  code+globals purged     +{:>7.1} us   (weight {:.3})",
        cal.t_code_global_us - warm,
        cal.weights.code_global
    );
    println!(
        "  everything purged       +{:>7.1} us   (the full reload span)",
        cal.bounds.reload_span_us()
    );

    // Migration penalties via the analytic model: remote fetch vs cold.
    let exec = ExecParams::calibrated();
    let warm_ages = ComponentAges::ALL_WARM;
    let t_warm = exec.protocol_time(warm_ages).as_micros_f64();
    let stream_cold = exec
        .protocol_time(ComponentAges {
            stream: Age::Cold,
            ..warm_ages
        })
        .as_micros_f64();
    let stream_remote = exec
        .protocol_time(ComponentAges {
            stream: Age::Remote,
            ..warm_ages
        })
        .as_micros_f64();
    let thread_remote = exec
        .protocol_time(ComponentAges {
            thread: Age::Remote,
            ..warm_ages
        })
        .as_micros_f64();
    println!("\nmigration penalties (analytic model):");
    println!(
        "  stream state, memory fill    +{:>6.1} us",
        stream_cold - t_warm
    );
    println!(
        "  stream state, remote cache   +{:>6.1} us",
        stream_remote - t_warm
    );
    println!(
        "  thread stack, remote cache   +{:>6.1} us",
        thread_remote - t_warm
    );
    println!(
        "  locking overhead              {:>6.1} us/packet",
        cal.lock_overhead_us
    );
    println!(
        "  dirty stream state in L2      {:>6} B of {} B resident (migrates cache-to-cache)",
        cal.dirty_stream_bytes,
        cal.l2_footprint_bytes[Region::Stream.index()]
    );

    let rows = vec![
        format!("thread_purged_extra_us,{:.2}", cal.t_thread_us - warm),
        format!("stream_purged_extra_us,{:.2}", cal.t_stream_us - warm),
        format!("code_purged_extra_us,{:.2}", cal.t_code_global_us - warm),
        format!("full_span_us,{:.2}", cal.bounds.reload_span_us()),
        format!("w_thread,{:.4}", cal.weights.thread),
        format!("w_stream,{:.4}", cal.weights.stream),
        format!("w_code_global,{:.4}", cal.weights.code_global),
        format!("stream_remote_extra_us,{:.2}", stream_remote - t_warm),
        format!("lock_overhead_us,{:.2}", cal.lock_overhead_us),
    ];
    write_csv("table2", "key,value", &rows);

    let mut checks = Checks::new();
    checks.expect("components sum approximately to the full span", {
        let sum =
            (cal.t_thread_us - warm) + (cal.t_stream_us - warm) + (cal.t_code_global_us - warm);
        (sum - cal.bounds.reload_span_us()).abs() / cal.bounds.reload_span_us() < 0.25
    });
    checks.expect(
        "code+globals is the largest component (text dominates)",
        cal.t_code_global_us > cal.t_stream_us && cal.t_code_global_us > cal.t_thread_us,
    );
    checks.expect(
        "remote fetch costs more than a memory fill",
        stream_remote > stream_cold,
    );
    checks.finish();
}
