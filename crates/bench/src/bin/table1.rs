//! Table 1 — platform parameters and measured per-packet time bounds.
//!
//! Reproduces the paper's platform description (SGI Challenge XL,
//! 100 MHz R4400, split 16 KB direct-mapped L1 with 16 B lines, 1 MB
//! direct-mapped unified L2 with 128 B lines, m = 5 cycles/reference)
//! and the Section-4 measurement anchors: t_cold = 284.3 µs, and the
//! reload-span fraction behind the 40–50 % V = 0 bound.

use afs_bench::{artifacts, banner, Checks};
use afs_cache::sim::trace::Region;

fn main() {
    banner(
        "TABLE 1",
        "Platform parameters & measured packet time bounds",
        "t_cold = 284.3 us (measured); F(x) computed for the 100 MHz R4400, m = 5",
    );
    let data = artifacts::table1();
    let platform = data.cost.platform();
    println!("platform:");
    println!(
        "  clock                 {:>10.0} MHz",
        platform.clock_hz / 1e6
    );
    println!(
        "  cycles per reference  {:>10.1}  (m)",
        platform.cycles_per_ref
    );
    println!(
        "  L1 (split I/D)        {:>7} KB   direct-mapped, {} B lines, {} sets",
        platform.l1.capacity_bytes / 1024,
        platform.l1.line_bytes,
        platform.l1.sets()
    );
    println!(
        "  L2 (unified)          {:>7} KB   direct-mapped, {} B lines, {} sets",
        platform.l2.capacity_bytes / 1024,
        platform.l2.line_bytes,
        platform.l2.sets()
    );

    let cal = &data.cal;
    println!("\nmeasured per-packet bounds (receive UDP/IP/FDDI, 1-byte payload):");
    println!("  t_warm  (all in L1)   {:>10.1} us", cal.bounds.t_warm_us);
    println!("  t_L2    (L1 flushed)  {:>10.1} us", cal.bounds.t_l2_us);
    println!(
        "  t_cold  (all flushed) {:>10.1} us   [paper: 284.3 us]",
        cal.bounds.t_cold_us
    );
    println!(
        "  reload span / t_cold  {:>10.1} %    [paper: 40-50% V=0 bound]",
        100.0 * cal.max_reduction()
    );
    println!("  instructions/packet   {:>10}", cal.instrs_per_packet);
    println!("  references/packet     {:>10}", cal.refs_per_packet);
    println!(
        "  lock overhead         {:>10.1} us/packet (Locking)",
        cal.lock_overhead_us
    );

    println!("\nsteady-state L2 footprint by region:");
    for r in Region::ALL {
        let b = cal.l2_footprint_bytes[r.index()];
        if b > 0 {
            println!("  {:<10} {:>8} B", r.label(), b);
        }
    }

    data.artifact.write();

    let mut checks = Checks::new();
    checks.expect(
        "t_cold within 5% of the paper's 284.3 us",
        (cal.bounds.t_cold_us - 284.3).abs() / 284.3 < 0.05,
    );
    checks.expect(
        "reload-span fraction in the paper's 40-50% band (±5pt)",
        (0.35..0.55).contains(&cal.max_reduction()),
    );
    checks.expect(
        "bounds ordered warm < L2 < cold",
        cal.bounds.t_warm_us < cal.bounds.t_l2_us && cal.bounds.t_l2_us < cal.bounds.t_cold_us,
    );
    checks.finish();
}
