//! Extension E12 — send-side UDP/IP/FDDI processing (paper's future
//! work item i).
//!
//! Calibrates the send path the same way Section 4 calibrates the
//! receive path (warm / L2 / cold bounds over the simulated hierarchy),
//! then runs the affinity comparison with send-side bounds.

use afs_bench::{banner, template, write_csv, Checks};
use afs_cache::model::exec_time::{ComponentWeights, TimeBounds};
use afs_cache::sim::trace::Region;
use afs_core::prelude::*;
use afs_xkernel::mem::MemLayout;
use afs_xkernel::{CostModel, ProtocolEngine, StreamId, ThreadId};

/// Measure the mean send time under a per-packet cache-state preparation.
fn measure_send(prep: &mut dyn FnMut(&mut afs_cache::sim::hierarchy::MemoryHierarchy)) -> f64 {
    let cost = CostModel::default();
    let mut eng = ProtocolEngine::new(cost);
    eng.bind_stream(StreamId(0));
    let mut hier = cost.hierarchy();
    let layout = MemLayout::new();
    let payload = [0u8; 64];
    let mut total = 0.0;
    let warmup = 30;
    let measure = 20;
    for i in 0..(warmup + measure) {
        hier.purge_region(Region::PacketData);
        prep(&mut hier);
        let (t, _) = eng.send(
            &mut hier,
            StreamId(0),
            &payload,
            ThreadId(0),
            layout.packet(i % 8),
        );
        if i >= warmup {
            total += t.us;
        }
    }
    total / measure as f64
}

fn main() {
    banner(
        "EXT E12",
        "Send-side UDP/IP/FDDI under affinity scheduling",
        "future-work item (i): evaluating affinity-based scheduling of send-side processing",
    );
    let t_warm = measure_send(&mut |_| {});
    let t_l2 = measure_send(&mut |h| h.flush_l1());
    let t_cold = measure_send(&mut |h| h.flush_all());
    println!("send-side bounds: warm {t_warm:.1} us, L2 {t_l2:.1} us, cold {t_cold:.1} us");
    println!("  (receive-side: 150.8 / 221.2 / 287.2 us — send is lighter: no validation loops)");

    // Run the policy face-off with send-side bounds.
    let bounds = TimeBounds::new(t_warm, t_l2.clamp(t_warm, t_cold), t_cold);
    let exec = ExecParams::from_bounds(bounds, ComponentWeights::nominal(), 11.2);
    let k = 16;
    let rates = [200.0, 800.0, 1600.0, 2400.0];
    println!(
        "\n{:>10} {:>12} {:>12} {:>12}",
        "rate/s", "baseline", "mru", "reduction%"
    );
    let mut rows = vec![
        format!("t_warm_us,{t_warm:.2}"),
        format!("t_l2_us,{t_l2:.2}"),
        format!("t_cold_us,{t_cold:.2}"),
    ];
    let mut any_gain = false;
    for &r in &rates {
        let mut cb = template(
            Paradigm::Locking {
                policy: LockPolicy::Baseline,
            },
            k,
        );
        cb.exec = exec;
        cb.population = cb.population.clone().with_rate(r);
        let base = run(&cb);
        let mut cm = template(
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
            k,
        );
        cm.exec = exec;
        cm.population = cm.population.clone().with_rate(r);
        let mru = run(&cm);
        if base.stable && mru.stable {
            let red = 100.0 * (1.0 - mru.mean_delay_us / base.mean_delay_us);
            println!(
                "{r:>10.0} {:>12.1} {:>12.1} {red:>12.1}",
                base.mean_delay_us, mru.mean_delay_us
            );
            rows.push(format!("reduction_at_{r:.0},{red:.2}"));
            if red > 5.0 {
                any_gain = true;
            }
        }
    }
    write_csv("ext12_send_side", "key,value", &rows);

    let mut checks = Checks::new();
    checks.expect(
        "send bounds ordered warm < L2 < cold",
        t_warm < t_l2 && t_l2 < t_cold,
    );
    checks.expect("send path cheaper than receive path (warm)", t_warm < 150.8);
    checks.expect(
        "send-side reload span in a similar band (25-60% of cold)",
        {
            let f = (t_cold - t_warm) / t_cold;
            (0.25..0.60).contains(&f)
        },
    );
    checks.expect(
        "affinity scheduling also pays off on the send side (>5%)",
        any_gain,
    );
    checks.finish();
}
