//! Figure 11 — percent reduction in mean delay from affinity scheduling
//! under IPS, as a function of arrival rate, with `V` as curve parameter.
//!
//! The IPS analogue of Figure 10: the affinity-oblivious reference
//! places each runnable stack on a random idle processor; the affinity
//! curves use the better of stack-MRU and stack-wiring at each point.
//! Same methodology as Figure 10: reductions are read where the
//! reference is not yet saturated.

use afs_bench::{banner, ips, template, write_csv, Checks, K_STREAMS};
use afs_core::prelude::*;

fn reduction_curve(v: f64, k: usize) -> Vec<(f64, f64)> {
    let exec = ExecParams::calibrated();
    let svc_mid = 0.5 * (exec.model.bounds.t_warm_us + exec.model.bounds.t_cold_us) + v;
    let cap = 8.0e6 / svc_mid / k as f64;
    let fractions = [0.15, 0.3, 0.45, 0.6, 0.72, 0.82, 0.9, 0.95];
    let rates: Vec<f64> = fractions.iter().map(|f| f * cap).collect();

    let mk = |policy: IpsPolicy| {
        let mut c = template(ips(policy, k), k);
        c.v_fixed_us = v;
        c
    };
    let base = rate_sweep("random", &mk(IpsPolicy::Random), &rates);
    let mru = rate_sweep("mru", &mk(IpsPolicy::Mru), &rates);
    let wired = rate_sweep("wired", &mk(IpsPolicy::Wired), &rates);

    let mut out = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let b = &base.points[i].report;
        if !b.stable || b.mean_delay_us > 5.0 * b.mean_service_us {
            continue;
        }
        let m = &mru.points[i].report;
        let w = &wired.points[i].report;
        let best = match (m.stable, w.stable) {
            (true, true) => m.mean_delay_us.min(w.mean_delay_us),
            (true, false) => m.mean_delay_us,
            (false, true) => w.mean_delay_us,
            (false, false) => continue,
        };
        out.push((rate, 100.0 * (1.0 - best / b.mean_delay_us)));
    }
    out
}

fn main() {
    banner(
        "FIGURE 11",
        "IPS: % delay reduction from affinity scheduling vs rate, V in {0,35,70,139} us",
        "same dilution-by-data-touching effect under IPS",
    );
    let k = K_STREAMS;
    let vs = [0.0, 35.0, 70.0, 139.0];
    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    println!("{:>6} {:>10} {:>12}", "V(us)", "rate/s", "reduction%");
    // Independent V families fan out on the AFS_JOBS executor (their
    // sweeps parallelize internally too); print in V order afterwards.
    let curves = parallel_map(&vs, |&v| reduction_curve(v, k));
    for (&v, curve) in vs.iter().zip(&curves) {
        let mut peak = 0.0f64;
        for (r, pct) in curve {
            println!("{v:>6.0} {r:>10.0} {pct:>12.1}");
            rows.push(format!("{v},{r:.0},{pct:.2}"));
            peak = peak.max(*pct);
        }
        println!("  V={v:>3.0}: peak reduction {peak:.1}%");
        peaks.push(peak);
    }
    write_csv("fig11", "v_us,rate_per_stream,reduction_pct", &rows);

    let mut checks = Checks::new();
    checks.expect("V=0 peak reduction positive (>= 5%)", peaks[0] >= 5.0);
    checks.expect(
        "larger V yields smaller peak reduction (dilution, monotone)",
        peaks.windows(2).all(|w| w[1] <= w[0] + 1.0),
    );
    checks.expect(
        "V=139 cuts the benefit vs V=0 by >25% relatively",
        peaks[3] < 0.75 * peaks[0],
    );
    checks.finish();
}
