//! Extension E26 — the sustained-ingest serving path under offered-load
//! sweep.
//!
//! The replay harness (E22–E25) materializes its workload up front and
//! never drops: fine for cross-validation, wrong for asking the
//! serving question — *what does the pinned pipeline do when the
//! offered load is not a fit*? This harness drives the `afs-serve`
//! path (`afs_native::run_serve`: open-loop chunk generation, pooled
//! frame buffers, virtual-domain taildrop, batched dequeue) across
//! offered loads from half to twice the rated capacity, dequeue
//! batches {1, 8, 64}, and **all five policy rungs** behind a
//! Flow-Director front-end — including the locking pool and IPS
//! stealing, which serve through the virtual-order claim protocol
//! (DESIGN.md §17) — and records the degradation surface: goodput,
//! drop fraction, and delay.
//!
//! Pinned claims:
//!
//! * **The ledger balances in every cell** — `offered = admitted +
//!   dropped`, every admitted packet reaching exactly one outcome; no
//!   packet is unaccounted at any load.
//! * **Batching is result-transparent while serving** — for every
//!   (policy, load), batches 8 and 64 reproduce batch 1's virtual
//!   results bit-for-bit (same admissions, same drops, same delay
//!   moments, same steering counters). With claim arbitration this now
//!   covers the stealing and pooled rows too. The CSV makes this
//!   visible: rows differing only in `batch` are identical in every
//!   virtual column.
//! * **Every row replays bit-identically** — the virtual projection of
//!   each (policy, load) cell is a pure function of its config: a
//!   re-run reproduces it exactly, at every worker count probed
//!   ({1, 2, 4} at rated load), steal schedules included.
//! * **Degradation is graceful** — goodput rises with load until the
//!   rated knee and then saturates (it never collapses); past the
//!   knee the surplus shows up as tail drops, not lost accounting.
//!
//! Delay under overload keeps growing with the horizon rather than
//! saturating: admission drains the virtual queue model at the
//! optimistic all-warm service time, so a true-service backlog
//! accumulates ahead of the admitted stream. The committed artifact
//! reads `mean_delay_us` as "how far behind the pipeline ran at this
//! horizon", not a steady-state latency.
//!
//! `--smoke` (or `AFS_QUICK=1`) shrinks the horizon. Emits
//! `results/ext26_serve.csv`.

use afs_bench::{banner, write_csv, Checks};
use afs_native::{run_serve, FrontEndKind, Pinning, PolicySpec, ServeConfig, ServeReport};

const WORKERS: usize = 2;
const STREAMS: u32 = 20_000;
const QUEUE_CAPACITY: usize = 256;
const LOADS: [f64; 5] = [0.5, 0.8, 1.0, 1.5, 2.0];
const BATCHES: [usize; 3] = [1, 8, 64];
/// Worker counts the rated-load determinism probe replays at.
const DETERMINISM_WORKERS: [usize; 3] = [1, 2, 4];

fn cell(workers: usize, policy: PolicySpec, load: f64, batch: usize, packets: u64) -> ServeReport {
    let mut cfg = ServeConfig::new(workers, STREAMS, FrontEndKind::FlowDirector, policy);
    cfg.native.pinning = Pinning::Off;
    cfg.native.queue_capacity = QUEUE_CAPACITY;
    cfg.native.batch = batch;
    cfg.offered_pps = load * cfg.rated_capacity_pps();
    cfg.total_packets = packets;
    cfg.warmup_packets = packets / 5;
    run_serve(&cfg, None)
}

/// The virtual-domain projection two batch sizes (or two replays) must
/// agree on to the bit. Host gauges (wall time, RSS, pkts/s-of-wall)
/// and the racy per-worker depth/contention samples are excluded by
/// construction.
fn virtual_key(r: &ServeReport) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.admitted,
        r.dropped,
        r.outcomes.delivered,
        r.recorded,
        r.mean_delay_us.to_bits(),
        r.mean_service_us.to_bits(),
        r.makespan_us.to_bits(),
        r.table_misses,
        r.rebinds,
        r.per_worker
            .iter()
            .map(|w| w.stream_migrations)
            .sum::<u64>(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || std::env::var_os("AFS_QUICK").is_some();
    banner(
        "EXT E26",
        "sustained-ingest serving: offered-load sweep over the batched native path",
        "open-loop Zipf ingest, virtual-domain taildrop, batch-transparent dispatch",
    );
    let packets: u64 = if smoke { 10_000 } else { 40_000 };
    println!(
        "{WORKERS} workers, {STREAMS} flows, fdir front-end, queue capacity {QUEUE_CAPACITY}, \
         {packets} packets per cell, all {} policy rungs\n",
        PolicySpec::ALL.len()
    );

    let mut rows = Vec::new();
    let mut checks = Checks::new();
    for policy in PolicySpec::ALL {
        println!(
            "{:<11} {:>5} {:>6} {:>12} {:>9} {:>9} {:>10} {:>12} {:>10}",
            "policy",
            "load",
            "batch",
            "offered_pps",
            "admitted",
            "dropped",
            "goodput",
            "delay_us",
            "rebinds"
        );
        for &load in &LOADS {
            let mut base: Option<ServeReport> = None;
            for &batch in &BATCHES {
                let r = cell(WORKERS, policy, load, batch, packets);
                println!(
                    "{:<11} {:>5.2} {:>6} {:>12.1} {:>9} {:>9} {:>10.1} {:>12.1} {:>10}",
                    r.policy,
                    load,
                    batch,
                    load * cell_capacity(),
                    r.admitted,
                    r.dropped,
                    r.goodput_pps(),
                    r.mean_delay_us,
                    r.rebinds,
                );
                checks.expect(
                    "serving ledger balances (offered = admitted + dropped = outcomes)",
                    r.ledger_balanced(),
                );
                if let Some(b) = &base {
                    checks.expect(
                        "batched serving bit-identical to batch 1 in the virtual domain",
                        virtual_key(&r) == virtual_key(b),
                    );
                } else {
                    // Re-run the base cell: every row's virtual
                    // projection must replay bit-identically (the claim
                    // protocol pins the steal/pool schedule too).
                    let again = cell(WORKERS, policy, load, batch, packets);
                    checks.expect(
                        "serving row replays bit-identically",
                        virtual_key(&again) == virtual_key(&r),
                    );
                    base = Some(r.clone());
                }
                rows.push(format!(
                    "{},{},{:.2},{:.1},{},{},{},{:.4},{:.1},{:.3},{:.3},{:.3},{},{},{}",
                    r.policy,
                    batch,
                    load,
                    load * cell_capacity(),
                    r.offered,
                    r.admitted,
                    r.dropped,
                    r.drop_frac(),
                    r.goodput_pps(),
                    r.mean_delay_us,
                    r.mean_service_us,
                    r.max_delay_us,
                    r.table_misses,
                    r.rebinds,
                    r.per_worker
                        .iter()
                        .map(|w| w.stream_migrations)
                        .sum::<u64>(),
                ));
            }
        }
        println!();
    }

    // Determinism across worker counts at rated load: at every probed
    // worker count each rung's virtual projection replays exactly —
    // the claim-arbitrated rungs are no longer a single-worker promise.
    for policy in PolicySpec::ALL {
        for &workers in &DETERMINISM_WORKERS {
            let a = cell(workers, policy, 1.0, 1, packets.min(10_000));
            let b = cell(workers, policy, 1.0, 1, packets.min(10_000));
            checks.expect(
                "rated-load cell replays bit-identically at every worker count",
                virtual_key(&a) == virtual_key(&b),
            );
        }
    }

    // Graceful-degradation shape, per policy: goodput at 2x load is at
    // least the goodput at 1x (saturation, not collapse), underload
    // drops (almost) nothing, and heavy overload visibly tail-drops.
    for pi in 0..PolicySpec::ALL.len() {
        let row = |load_idx: usize| {
            // Rows are laid out policy-major, then load, then batch.
            let idx = pi * LOADS.len() * BATCHES.len() + load_idx * BATCHES.len();
            rows[idx].split(',').map(String::from).collect::<Vec<_>>()
        };
        let goodput = |load_idx: usize| row(load_idx)[8].parse::<f64>().unwrap();
        let dropf = |load_idx: usize| row(load_idx)[7].parse::<f64>().unwrap();
        checks.expect(
            "goodput saturates rather than collapses past the knee",
            goodput(4) >= 0.95 * goodput(2),
        );
        checks.expect("half load sheds (almost) nothing", dropf(0) < 0.005);
        checks.expect("double load visibly tail-drops", dropf(4) > 0.2);
    }

    write_csv(
        "ext26_serve",
        "policy,batch,load,offered_pps,offered,admitted,dropped,drop_frac,goodput_pps,\
         mean_delay_us,mean_service_us,max_delay_us,table_misses,rebinds,stream_migrations",
        &rows,
    );
    checks.finish();
}

/// Rated capacity of the sweep's fixed configuration, pps (the warm
/// service estimate is policy-independent).
fn cell_capacity() -> f64 {
    ServeConfig::new(
        WORKERS,
        STREAMS,
        FrontEndKind::FlowDirector,
        PolicySpec::Oblivious,
    )
    .rated_capacity_pps()
}
