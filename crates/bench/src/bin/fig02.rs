//! Figure 2 (reconstructed) — the reload transient.
//!
//! Per-packet execution time versus packet index after a full cache
//! flush, measured on the instrumented protocol engine: the first packet
//! pays ≈ t_cold, later packets converge to t_warm as the footprint
//! reloads — the transient whose linear interpolation underlies the
//! analytic model.

use afs_bench::{banner, write_csv, Checks};
use afs_cache::sim::trace::Region;
use afs_xkernel::driver::{PacketFactory, RxFrame};
use afs_xkernel::mem::MemLayout;
use afs_xkernel::{CostModel, ProtocolEngine, StreamId, ThreadId};

fn main() {
    banner(
        "FIGURE 2",
        "Reload transient: packet execution time vs packet index after a flush",
        "protocol receive time tends from t_cold (284.3 us) to t_warm",
    );
    let cost = CostModel::default();
    let mut eng = ProtocolEngine::new(cost);
    eng.bind_stream(StreamId(0));
    let mut factory = PacketFactory::new();
    let mut hier = cost.hierarchy();
    let layout = MemLayout::new();

    // Warm fully first, then flush and observe the transient.
    for i in 0..40u32 {
        hier.purge_region(Region::PacketData);
        let frame = RxFrame {
            bytes: factory.frame_for(StreamId(0), 1),
            stream: StreamId(0),
            buf_addr: layout.packet(i % 8),
        };
        eng.receive(&mut hier, &frame, ThreadId(0)).unwrap();
    }
    hier.flush_all();

    let mut rows = Vec::new();
    let mut times = Vec::new();
    println!("{:>8} {:>12}", "packet", "time (us)");
    for i in 0..25u32 {
        hier.purge_region(Region::PacketData);
        let frame = RxFrame {
            bytes: factory.frame_for(StreamId(0), 1),
            stream: StreamId(0),
            buf_addr: layout.packet(i % 8),
        };
        let t = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap();
        println!("{:>8} {:>12.1}", i + 1, t.us);
        rows.push(format!("{},{:.2}", i + 1, t.us));
        times.push(t.us);
    }
    write_csv("fig02", "packet_index,exec_time_us", &rows);

    let mut checks = Checks::new();
    checks.expect(
        "first packet near t_cold (within 10% of 284.3 us)",
        (times[0] - 284.3).abs() / 284.3 < 0.10,
    );
    let tail: f64 = times[20..].iter().sum::<f64>() / 5.0;
    checks.expect(
        "steady state within 5% of t_warm (150.8 us)",
        (tail - 150.8).abs() / 150.8 < 0.05,
    );
    checks.expect(
        "second packet already within 2% of steady state (the fast path
         touches its whole footprint every packet, so one packet reloads it)",
        (times[1] - tail).abs() < 0.02 * tail,
    );
    checks.expect(
        "transient never undershoots the warm floor",
        times.iter().all(|&t| t >= tail * 0.99),
    );
    checks.finish();
}
