//! Extension E14 — varying the number of independent stacks under IPS
//! (paper's future-work item iii).
//!
//! Fewer stacks than streams coarsens the serialization unit (more
//! head-of-line coupling between streams sharing a stack); more stacks
//! than processors creates wiring collisions. The sweep exposes the
//! trade-off at a moderate and a high load.

use afs_bench::{banner, template, write_csv, Checks, K_STREAMS};
use afs_core::prelude::*;

fn main() {
    banner(
        "EXT E14",
        "IPS: impact of the number of independent stacks",
        "future-work item (iii): exploring under IPS the impact of varying the number of stacks",
    );
    let k = K_STREAMS;
    let stack_counts = [2usize, 4, 8, 16];
    let rates = [600.0, 1800.0, 2600.0];
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "stacks", "rate/s", "wired (us)", "mru (us)"
    );
    let mut rows = Vec::new();
    let mut wired_at = std::collections::HashMap::new();
    // All (stacks, rate, policy) cells are independent runs: fan them
    // out on the AFS_JOBS executor and reassemble in cell order.
    let cells: Vec<(usize, f64)> = stack_counts
        .iter()
        .flat_map(|&ns| rates.iter().map(move |&r| (ns, r)))
        .collect();
    let reports = parallel_map(&cells, |&(ns, r)| {
        let mut cw = template(
            Paradigm::Ips {
                policy: IpsPolicy::Wired,
                n_stacks: ns,
            },
            k,
        );
        cw.population = cw.population.clone().with_rate(r);
        let mut cm = template(
            Paradigm::Ips {
                policy: IpsPolicy::Mru,
                n_stacks: ns,
            },
            k,
        );
        cm.population = cm.population.clone().with_rate(r);
        (run(&cw), run(&cm))
    });
    for (&(ns, r), (w, m)) in cells.iter().zip(&reports) {
        {
            let wtxt = if w.stable {
                format!("{:.1}", w.mean_delay_us)
            } else {
                "unstable".into()
            };
            let mtxt = if m.stable {
                format!("{:.1}", m.mean_delay_us)
            } else {
                "unstable".into()
            };
            println!("{ns:>8} {r:>10.0} {wtxt:>14} {mtxt:>14}");
            rows.push(format!(
                "{ns},{r},{},{}",
                if w.stable {
                    format!("{:.2}", w.mean_delay_us)
                } else {
                    "inf".into()
                },
                if m.stable {
                    format!("{:.2}", m.mean_delay_us)
                } else {
                    "inf".into()
                },
            ));
            wired_at.insert((ns, r as u64), (w.stable, w.mean_delay_us));
        }
    }
    write_csv("ext14_num_stacks", "stacks,rate,wired_us,mru_us", &rows);

    let mut checks = Checks::new();
    // Aggregate capacity grows with stack count until stacks ≥ procs.
    let few = wired_at[&(2, 2600)];
    let eight = wired_at[&(8, 2600)];
    checks.expect(
        "2 stacks cannot carry what 8 stacks carry at 2600/s/stream",
        !few.0 || (eight.0 && eight.1 < few.1),
    );
    let full = wired_at[&(16, 600)];
    let eight_mid = wired_at[&(8, 600)];
    println!(
        "  at 600/s: 8 stacks {:.1} us vs 16 stacks {:.1} us",
        eight_mid.1, full.1
    );
    checks.expect(
        "at moderate load, 8 and 16 stacks perform within 15%",
        (full.1 - eight_mid.1).abs() / eight_mid.1 < 0.15,
    );
    checks.expect("8-stack wired stable at 2600/s/stream", eight.0);
    checks.finish();
}
