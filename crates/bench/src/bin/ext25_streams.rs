//! Extension E25 — NIC front-ends over large stream populations.
//!
//! The paper's workload is tens of streams; a modern host terminates
//! 10⁵–10⁶ flows, and *which queue the NIC picks* is itself an affinity
//! scheduling decision made before any policy in this repo runs. This
//! harness sweeps the three shared front-ends — RSS hashing,
//! Flow-Director learning-table steering, and the transport-friendly
//! host pin — across Zipf flow populations of 10³–10⁵ on **both**
//! backends, with NIC tables and host stream-state bounds held far
//! below the population, and asks:
//!
//! * **Conservation** — every cell, both backends: nothing offered is
//!   lost, and the observability ledger balances.
//! * **Order is structural, not incidental** — RSS and the
//!   transport-friendly pin deliver every flow in order in every cell
//!   (zero out-of-order completions, zero rebinds), while the
//!   Flow-Director learning table — rebinding flows to the last core
//!   that completed them mid-burst — reproduces the reordering
//!   pathology of Wu et al. at the pinned pathology cell.
//! * **Tables far below the population actually miss** — Flow-Director
//!   lookup misses and stream-state evictions are live effects in
//!   every cell, priced as cold stream reloads.
//!
//! `--smoke` (or `AFS_QUICK=1`) runs the bounded CI scenario. Emits
//! `results/ext25_streams.csv`.

use afs_bench::{banner, write_csv, Checks};
use afs_core::crossval::{
    sim_stream_matrix, stream_matrix, stream_pathology_scenario, stream_smoke_matrix, CrossPolicy,
    StreamScenario, STREAM_POLICIES,
};
use afs_core::prelude::*;
use afs_native::crossval::run_stream_scenario_recorded;
use afs_native::{FrontEndKind, NativeReport};
use afs_obs::MemRecorder;

/// Both backends' numbers for one (scenario, front-end, policy) cell.
struct Cell {
    sim: RunReport,
    native: NativeReport,
    trace: MemRecorder,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || std::env::var_os("AFS_QUICK").is_some();
    banner(
        "EXT E25",
        "NIC front-ends over large stream populations",
        "RSS / Flow-Director / transport-friendly steering of Zipf flows, both backends",
    );
    let scenarios = if smoke {
        stream_smoke_matrix()
    } else {
        stream_matrix()
    };
    for s in &scenarios {
        println!(
            "scenario {}: {} workers, {} flows, {:.0} pkts/s aggregate, α={}, batch {}, \
             NIC table {}, stream cache {}",
            s.label(),
            s.workers,
            s.streams,
            s.aggregate_rate_pps,
            s.alpha,
            s.batch_mean,
            s.table_capacity,
            s.cache_capacity,
        );
    }
    println!();

    // Simulator cells are pure and fan out on the AFS_JOBS executor
    // (row-major: scenarios × front-ends × policies); the native cells
    // run serially (real threads, shared host caches).
    let sim_cells = sim_stream_matrix(&scenarios);

    let mut checks = Checks::new();
    let mut rows: Vec<String> = Vec::new();
    let mut si = 0usize;

    for s in &scenarios {
        println!("scenario {}", s.label());
        println!(
            "{:<10} {:<10} {:>11} {:>11} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
            "frontend",
            "policy",
            "sim delay",
            "nat delay",
            "sim ooo",
            "nat ooo",
            "sim miss",
            "nat miss",
            "sim rebd",
            "nat rebd"
        );
        for kind in FrontEndKind::ALL {
            for &policy in &STREAM_POLICIES {
                let sim = &sim_cells[si];
                si += 1;
                debug_assert_eq!(sim.frontend, kind);
                debug_assert_eq!(sim.policy, policy);
                let (native, trace) = run_stream_scenario_recorded(s, kind, policy);
                let c = Cell {
                    sim: sim.report.clone(),
                    native,
                    trace,
                };
                println!(
                    "{:<10} {:<10} {:>11.1} {:>11.1} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
                    kind.label(),
                    policy.label(),
                    c.sim.mean_delay_us,
                    c.native.mean_delay_us,
                    c.sim.ooo_deliveries,
                    c.native.ooo_deliveries,
                    c.sim.table_misses,
                    c.native.table_misses,
                    c.sim.rebinds,
                    c.native.rebinds,
                );
                rows.push(format!(
                    "{},{},{},{},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{},{}",
                    s.label(),
                    s.streams,
                    kind.label(),
                    policy.label(),
                    c.sim.mean_delay_us,
                    c.native.mean_delay_us,
                    c.sim.mean_service_us,
                    c.native.mean_service_us,
                    c.sim.ooo_deliveries,
                    c.native.ooo_deliveries,
                    c.sim.table_misses,
                    c.native.table_misses,
                    c.sim.rebinds,
                    c.native.rebinds,
                ));
                check_cell(&mut checks, s, kind, policy, &c);
            }
        }
        println!();
    }

    // The pinned pathology cell: a learning table far below the flow
    // population under bursty arrivals. Flow-Director must visibly
    // reorder on both backends; RSS at the same cell must not.
    let p = stream_pathology_scenario();
    println!(
        "pathology cell {} (NIC table {})",
        p.label(),
        p.table_capacity
    );
    let sim_fdir =
        afs_core::sim::run(&p.sim_config(FrontEndKind::FlowDirector, CrossPolicy::Oblivious));
    let (nat_fdir, _) =
        run_stream_scenario_recorded(&p, FrontEndKind::FlowDirector, CrossPolicy::Oblivious);
    let sim_rss = afs_core::sim::run(&p.sim_config(FrontEndKind::Rss, CrossPolicy::Oblivious));
    let (nat_rss, _) = run_stream_scenario_recorded(&p, FrontEndKind::Rss, CrossPolicy::Oblivious);
    println!(
        "  fdir ooo: sim {} native {}  |  rss ooo: sim {} native {}",
        sim_fdir.ooo_deliveries,
        nat_fdir.ooo_deliveries,
        sim_rss.ooo_deliveries,
        nat_rss.ooo_deliveries
    );
    checks.expect(
        "pathology: Flow-Director reorders on both backends",
        sim_fdir.ooo_deliveries > 0 && nat_fdir.ooo_deliveries > 0,
    );
    checks.expect(
        "pathology: RSS keeps per-flow order on both backends",
        sim_rss.ooo_deliveries == 0 && nat_rss.ooo_deliveries == 0,
    );

    write_csv(
        "ext25_streams",
        "scenario,streams,frontend,policy,sim_delay_us,native_delay_us,sim_service_us,\
         native_service_us,sim_ooo,native_ooo,sim_table_misses,native_table_misses,\
         sim_rebinds,native_rebinds",
        &rows,
    );

    checks.finish();
}

/// Conservation + structural-order checks for one cell.
fn check_cell(
    checks: &mut Checks,
    s: &StreamScenario,
    kind: FrontEndKind,
    policy: CrossPolicy,
    c: &Cell,
) {
    let tag = format!("{} {} {}", s.label(), kind.label(), policy.label());
    checks.expect(
        &format!("{tag}: sim conserves every packet"),
        c.sim.offered_total == c.sim.completed_total + c.sim.shed_total + c.sim.in_flight,
    );
    checks.expect(
        &format!("{tag}: native run is lossless"),
        c.native.outcomes.total() == c.native.offered
            && c.native.outcomes.delivered == c.native.offered,
    );
    let cs = &c.trace.counters;
    checks.expect(
        &format!("{tag}: native obs ledger balances"),
        cs.enqueued == c.native.offered && cs.completed == c.native.offered && cs.in_flight() == 0,
    );
    checks.expect(
        &format!("{tag}: native obs steering counters match the report"),
        cs.table_misses == c.native.table_misses && cs.rebinds == c.native.rebinds,
    );
    match kind {
        FrontEndKind::Rss => {
            checks.expect(
                &format!("{tag}: RSS is structurally in order, no table"),
                c.sim.ooo_deliveries == 0
                    && c.native.ooo_deliveries == 0
                    && c.sim.rebinds == 0
                    && c.native.rebinds == 0
                    && c.sim.table_misses == 0
                    && c.native.table_misses == 0,
            );
        }
        FrontEndKind::TransportFriendly => {
            checks.expect(
                &format!("{tag}: transport pin is sticky and in order"),
                c.sim.ooo_deliveries == 0
                    && c.native.ooo_deliveries == 0
                    && c.sim.rebinds == 0
                    && c.native.rebinds == 0
                    // misses = first placements: one per flow that sent.
                    && c.sim.table_misses >= 1
                    && c.sim.table_misses <= s.streams as u64
                    && c.native.table_misses >= 1
                    && c.native.table_misses <= s.streams as u64,
            );
        }
        FrontEndKind::FlowDirector => {
            checks.expect(
                &format!("{tag}: learning table far below the population misses"),
                c.sim.table_misses > 0 && c.native.table_misses > 0,
            );
        }
    }
}
