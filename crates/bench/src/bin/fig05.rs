//! Figure 5 — the displacement curves `F1(x)`, `F2(x)`.
//!
//! The paper: "F(x) has been computed for the 100-MHz clock rate of the
//! MIPS R4400, assuming an average of 5 clock cycles per memory
//! reference (m = 5). Note that the protocol footprint is flushed much
//! more slowly from L2 than from L1, reflecting its much larger size."
//!
//! We additionally cross-validate the analytic curves against the
//! trace-driven cache simulator: a protocol-like footprint is preloaded,
//! a synthetic workload with SST-fitted locality runs for the same
//! reference budget, and the surviving fraction is measured directly.

use afs_bench::{banner, write_csv, Checks};
use afs_cache::model::fit::fit_sst;
use afs_cache::model::flush::flushed_fraction;
use afs_cache::model::footprint::MVS_WORKLOAD;
use afs_cache::model::hierarchy::FlushModel;
use afs_cache::model::platform::Platform;
use afs_cache::sim::cache::{Cache, Replacement};
use afs_cache::sim::synth::{measure_growth, SynthParams, SynthWorkload};
use afs_cache::sim::trace::Region;
use afs_desim::time::SimDuration;

/// Preload `lines` footprint lines (one per stride) and displace them
/// with `refs` synthetic references; return the displaced fraction.
fn simulate_displacement(platform: &Platform, refs: u64, seed: u64) -> (f64, f64) {
    let mut l1 = Cache::new(platform.l1, Replacement::Lru);
    let mut l2 = Cache::new(platform.l2, Replacement::Lru);
    // A protocol-like footprint: 12 KB of contiguous lines.
    let footprint_bytes = 12 * 1024u64;
    let l1_lines: Vec<u64> = (0..footprint_bytes / platform.l1.line_bytes as u64).collect();
    let l2_lines: Vec<u64> = (0..footprint_bytes / platform.l2.line_bytes as u64).collect();
    for &l in &l1_lines {
        l1.access(l * platform.l1.line_bytes as u64, Region::Code);
    }
    for &l in &l2_lines {
        l2.access(l * platform.l2.line_bytes as u64, Region::Code);
    }
    let mut gen = SynthWorkload::new(seed, 1 << 32, SynthParams::mvs_like());
    for _ in 0..refs {
        let r = gen.next_ref();
        // Split stream: half the references go to the (data) L1.
        if r.addr & 4 == 0 {
            l1.access(r.addr, Region::NonProtocol);
        }
        l2.access(r.addr, Region::NonProtocol);
    }
    (
        1.0 - l1.resident_fraction(&l1_lines),
        1.0 - l2.resident_fraction(&l2_lines),
    )
}

fn main() {
    banner(
        "FIGURE 5",
        "Displacement curves F1(x), F2(x) + trace-driven cross-validation",
        "footprint flushed much more slowly from L2 than from L1",
    );
    let platform = Platform::sgi_challenge_r4400();
    let model = FlushModel::new(platform, MVS_WORKLOAD);

    println!("analytic curves (MVS constants):");
    println!("{:>12} {:>10} {:>10}", "x (us)", "F1(x)", "F2(x)");
    let xs_us = [
        50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6,
    ];
    let mut rows = Vec::new();
    for &x in &xs_us {
        let d = model.displacement(SimDuration::from_micros_f64(x));
        println!("{x:>12.0} {:>10.3} {:>10.3}", d.f1, d.f2);
        rows.push(format!("{x},{:.4},{:.4}", d.f1, d.f2));
    }
    write_csv("fig05_analytic", "x_us,F1,F2", &rows);

    // Cross-validation: fit SST constants to the *synthetic generator's*
    // measured growth, predict displacement, compare to direct simulation.
    println!("\ncross-validation (synthetic workload, trace-driven simulator):");
    let obs = measure_growth(
        42,
        SynthParams::mvs_like(),
        &[2_000, 8_000, 32_000, 128_000, 512_000],
        &[16, 32, 64, 128],
    );
    let fitted = fit_sst(&obs).expect("fit synthetic constants");
    println!(
        "  fitted SST constants: W = {:.3}, a = {:.4}, b = {:.4}, log d = {:.4}",
        fitted.w, fitted.a, fitted.b, fitted.log_d
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "refs", "F1 sim", "F1 model", "F2 sim", "F2 model"
    );
    let mut rows = Vec::new();
    let mut max_err = 0.0f64;
    for &refs in &[10_000u64, 40_000, 160_000, 640_000] {
        let (f1_sim, f2_sim) = simulate_displacement(&platform, refs, 7);
        let u1 = fitted.footprint(refs as f64 * 0.5, platform.l1.line_bytes as f64);
        let u2 = fitted.footprint(refs as f64, platform.l2.line_bytes as f64);
        let f1_model = flushed_fraction(u1, platform.l1.sets(), platform.l1.associativity);
        let f2_model = flushed_fraction(u2, platform.l2.sets(), platform.l2.associativity);
        println!("{refs:>12} {f1_sim:>10.3} {f1_model:>10.3} {f2_sim:>10.3} {f2_model:>10.3}");
        rows.push(format!(
            "{refs},{f1_sim:.4},{f1_model:.4},{f2_sim:.4},{f2_model:.4}"
        ));
        max_err = max_err
            .max((f1_sim - f1_model).abs())
            .max((f2_sim - f2_model).abs());
    }
    write_csv(
        "fig05_crossval",
        "refs,F1_sim,F1_model,F2_sim,F2_model",
        &rows,
    );

    let mut checks = Checks::new();
    let d1ms = model.displacement(SimDuration::from_micros(1_000));
    let d100ms = model.displacement(SimDuration::from_micros(100_000));
    checks.expect("F1 and F2 monotone, in [0,1]", {
        let mut ok = true;
        let mut prev = (0.0, 0.0);
        for &x in &xs_us {
            let d = model.displacement(SimDuration::from_micros_f64(x));
            ok &= d.f1 >= prev.0 && d.f2 >= prev.1 && d.f1 <= 1.0 && d.f2 <= 1.0;
            prev = (d.f1, d.f2);
        }
        ok
    });
    checks.expect(
        "L2 flushes much more slowly than L1 (paper's observation)",
        d1ms.f1 > 5.0 * d1ms.f2 && d100ms.f1 > 0.99 && d100ms.f2 < 0.9,
    );
    checks.expect(
        "analytic model tracks trace-driven simulation within 0.15",
        max_err < 0.15,
    );
    checks.finish();
}
