//! One-screen digest of the reproduction: the calibrated anchors, the
//! policy landscape at three loads, and the headline paradigm claims.
//! Much cheaper than `run_experiments.sh`; useful as a smoke check that
//! the whole pipeline is healthy.

use afs_bench::{banner, ips, template, Checks, K_STREAMS};
use afs_core::prelude::*;
use afs_xkernel::{calibrate, CostModel};

fn main() {
    banner(
        "SUMMARY",
        "Reproduction digest: calibration anchors + policy landscape",
        "Salehi/Kurose/Towsley, HPDC-4 1995",
    );

    let cal = calibrate(&CostModel::default());
    println!("calibration:");
    println!(
        "  t_warm/t_L2/t_cold = {:.1} / {:.1} / {:.1} us   (paper t_cold: 284.3)",
        cal.bounds.t_warm_us, cal.bounds.t_l2_us, cal.bounds.t_cold_us
    );
    println!(
        "  reload span {:.1}% of t_cold   (paper V=0 bound: 40-50%)",
        100.0 * cal.max_reduction()
    );

    let k = K_STREAMS;
    let loads = [
        ("low (200/s)", 200.0),
        ("mid (1400/s)", 1400.0),
        ("high (2600/s)", 2600.0),
    ];
    let contenders: Vec<(&str, Paradigm)> = vec![
        (
            "L/baseline",
            Paradigm::Locking {
                policy: LockPolicy::Baseline,
            },
        ),
        (
            "L/mru",
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
        ),
        (
            "L/wired",
            Paradigm::Locking {
                policy: LockPolicy::Wired,
            },
        ),
        ("IPS/mru", ips(IpsPolicy::Mru, k)),
        ("IPS/wired", ips(IpsPolicy::Wired, k)),
    ];
    println!("\nmean delay (us), {k} streams on 8 processors:");
    print!("{:<12}", "policy");
    for (name, _) in &loads {
        print!(" {name:>14}");
    }
    println!();
    let mut grid = Vec::new();
    for (name, paradigm) in &contenders {
        print!("{name:<12}");
        let mut row = Vec::new();
        for &(_, rate) in &loads {
            let mut cfg = template(paradigm.clone(), k);
            cfg.population = cfg.population.clone().with_rate(rate);
            let r = run(&cfg);
            if r.stable {
                print!(" {:>14.1}", r.mean_delay_us);
            } else {
                print!(" {:>14}", "unstable");
            }
            row.push(r);
        }
        println!();
        grid.push(row);
    }

    let mut checks = Checks::new();
    checks.expect(
        "t_cold within 5% of the paper",
        (cal.bounds.t_cold_us - 284.3).abs() / 284.3 < 0.05,
    );
    // Grid rows: 0 baseline, 1 mru, 2 wired, 3 ips-mru, 4 ips-wired.
    checks.expect(
        "L/mru beats L/baseline at every mutually stable load",
        (0..3).all(|i| {
            !(grid[0][i].stable && grid[1][i].stable)
                || grid[1][i].mean_delay_us < grid[0][i].mean_delay_us
        }),
    );
    checks.expect(
        "best IPS beats best Locking at every load",
        (0..3).all(|i| {
            let stable_delay = |r: &RunReport| {
                if r.stable {
                    r.mean_delay_us
                } else {
                    f64::INFINITY
                }
            };
            let best_l = stable_delay(&grid[0][i])
                .min(stable_delay(&grid[1][i]))
                .min(stable_delay(&grid[2][i]));
            let best_i = stable_delay(&grid[3][i]).min(stable_delay(&grid[4][i]));
            best_i <= best_l * 1.02
        }),
    );
    checks.expect(
        "IPS wired/mru crossover direction (mru low, wired high)",
        grid[3][0].mean_delay_us < grid[4][0].mean_delay_us
            && grid[4][2].mean_delay_us < grid[3][2].mean_delay_us,
    );
    checks.finish();
}
