//! Extension E24 — scheduling for affinity under processor faults.
//!
//! The paper's machines did not lose processors mid-run; real ones do.
//! This harness injects seeded processor-fault plans — permanent
//! crashes, crash-and-revive reboots, stall windows, slow cores — into
//! *both* backends and asks whether the paper's claim survives
//! degradation:
//!
//! * **Conservation** — no packet is lost or double-completed across a
//!   crash: everything orphaned by a dead worker is re-dispatched
//!   through the policy's own router over the degraded view, on the
//!   simulator and on real threads alike (`orphaned == requeued`, and
//!   the observability ledger balances).
//! * **The affinity win persists** — at every fault level the IPS rung
//!   still beats the oblivious baseline on modeled service time, on
//!   both backends, and the improvement bands agree across backends.
//! * **Graceful degradation** — fault levels strictly reduce delivered
//!   capacity headroom (delay rises with the fault level for every
//!   policy) rather than collapsing or deadlocking.
//!
//! `--smoke` (or `AFS_QUICK=1`) runs the bounded CI scenario. Emits
//! `results/ext24_procfaults.csv`.

use afs_bench::{banner, write_csv, Checks};
use afs_core::crossval::{
    fault_levels, procfault_scenario, procfault_smoke_scenario, relative_improvement,
    sim_fault_matrix, CrossPolicy, IMPROVEMENT_TOLERANCE,
};
use afs_core::prelude::*;
use afs_native::crossval::run_fault_scenario_recorded;
use afs_native::NativeReport;
use afs_obs::MemRecorder;

/// Both backends' numbers for one (fault level, policy) cell.
struct Cell {
    sim: RunReport,
    native: NativeReport,
    trace: MemRecorder,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || std::env::var_os("AFS_QUICK").is_some();
    banner(
        "EXT E24",
        "Scheduling for affinity under processor faults",
        "crash/stall/slowdown injection: conservation and the affinity win on both backends",
    );
    let s = if smoke {
        procfault_smoke_scenario()
    } else {
        procfault_scenario()
    };
    let levels = fault_levels();
    println!(
        "scenario {}: {} workers, {} streams, {:.0} pkts/s/stream, {} pkts/stream{}",
        s.label(),
        s.workers,
        s.streams,
        s.rate_pps_per_stream,
        s.packets_per_stream,
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "fault levels: {}\n",
        levels
            .iter()
            .map(|(l, _)| *l)
            .collect::<Vec<_>>()
            .join(" / ")
    );

    // Simulator cells are pure and fan out on the AFS_JOBS executor;
    // the native cells run serially (real threads, shared host caches).
    let sim_cells = sim_fault_matrix(&s, &levels);

    let mut checks = Checks::new();
    let mut rows: Vec<String> = Vec::new();
    let mut by_level: Vec<(&str, Vec<(CrossPolicy, Cell)>)> = Vec::new();

    for (li, (level, load)) in levels.iter().enumerate() {
        println!("fault level: {level}");
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>7} {:>7} {:>9} {:>9}",
            "policy",
            "sim delay",
            "nat delay",
            "sim svc",
            "nat svc",
            "crash",
            "ncrash",
            "orphaned",
            "requeued"
        );
        let cells: Vec<(CrossPolicy, Cell)> = CrossPolicy::ALL
            .iter()
            .enumerate()
            .map(|(pi, &p)| {
                let sim = &sim_cells[li * CrossPolicy::ALL.len() + pi];
                debug_assert_eq!(sim.policy, p);
                debug_assert_eq!(sim.level, *level);
                let (native, trace) = run_fault_scenario_recorded(&s, p, load);
                (
                    p,
                    Cell {
                        sim: sim.report.clone(),
                        native,
                        trace,
                    },
                )
            })
            .collect();
        for (p, c) in &cells {
            println!(
                "{:<12} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>7} {:>7} {:>4}/{:<4} {:>4}/{:<4}",
                p.label(),
                c.sim.mean_delay_us,
                c.native.mean_delay_us,
                c.sim.mean_service_us,
                c.native.mean_service_us,
                c.sim.proc_crashes,
                c.native.workers_crashed,
                c.sim.orphaned,
                c.native.orphaned,
                c.sim.requeued,
                c.native.requeued,
            );
            rows.push(format!(
                "{},{},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{},{},{},{}",
                level,
                p.label(),
                c.sim.mean_delay_us,
                c.native.mean_delay_us,
                c.sim.mean_service_us,
                c.native.mean_service_us,
                c.sim.proc_crashes,
                c.sim.proc_stalls,
                c.sim.orphaned,
                c.sim.requeued,
                c.native.workers_crashed,
                c.native.orphaned,
                c.native.requeued,
                c.native.steals,
            ));
        }

        // Conservation, both backends, every cell.
        for (p, c) in &cells {
            checks.expect(
                &format!("{level} {}: sim conserves every packet", p.label()),
                c.sim.offered_total == c.sim.completed_total + c.sim.shed_total + c.sim.in_flight
                    && c.sim.orphaned == c.sim.requeued,
            );
            checks.expect(
                &format!("{level} {}: native run is lossless", p.label()),
                c.native.outcomes.total() == c.native.offered
                    && c.native.outcomes.delivered == c.native.offered
                    && c.native.orphaned == c.native.requeued,
            );
            let cs = &c.trace.counters;
            checks.expect(
                &format!("{level} {}: native obs ledger balances", p.label()),
                cs.enqueued == c.native.offered
                    && cs.completed == c.native.offered
                    && cs.in_flight() == 0
                    && cs.orphaned == cs.requeued
                    && cs.orphaned == c.native.orphaned,
            );
        }

        // The clean level reports no fault activity anywhere; the
        // faulted levels actually exercise the machinery in the sim
        // (the native side's plan-driven crashes only fire when a
        // worker's vclock reaches the crash instant with work in hand,
        // so its counts may legitimately be lower).
        let fault_activity =
            |c: &Cell| c.sim.proc_crashes + c.sim.proc_stalls + c.native.workers_crashed;
        if *level == "none" {
            checks.expect(
                "none: no fault activity on either backend",
                cells
                    .iter()
                    .all(|(_, c)| fault_activity(c) == 0 && c.native.orphaned == 0),
            );
        } else {
            checks.expect(
                &format!("{level}: the seeded plan fires in the simulator"),
                cells.iter().all(|(_, c)| c.sim.proc_crashes > 0),
            );
        }

        // The affinity win persists under degradation, on both
        // backends, and the bands agree.
        let get = |p: CrossPolicy| &cells.iter().find(|(q, _)| *q == p).expect("cell ran").1;
        let obl = get(CrossPolicy::Oblivious);
        let ips = get(CrossPolicy::Ips);
        let sim_impr = relative_improvement(obl.sim.mean_service_us, ips.sim.mean_service_us);
        let native_impr =
            relative_improvement(obl.native.mean_service_us, ips.native.mean_service_us);
        println!(
            "  affinity win (ips vs oblivious service): sim {:.1}%, native {:.1}%",
            100.0 * sim_impr,
            100.0 * native_impr
        );
        checks.expect(
            &format!("{level}: affinity win positive on both backends"),
            sim_impr > 0.0 && native_impr > 0.0,
        );
        checks.expect(
            &format!(
                "{level}: improvement bands agree within {:.0} points",
                100.0 * IMPROVEMENT_TOLERANCE
            ),
            (sim_impr - native_impr).abs() <= IMPROVEMENT_TOLERANCE,
        );
        println!();
        by_level.push((level, cells));
    }

    // Graceful degradation: losing/degrading processors never *helps* —
    // at the heavy level every policy's mean delay is at least its
    // clean-level delay on both backends.
    let find = |lvl: &str| {
        &by_level
            .iter()
            .find(|(l, _)| *l == lvl)
            .expect("level ran")
            .1
    };
    let clean = find("none");
    let heavy = find("heavy");
    for ((p, c0), (q, c2)) in clean.iter().zip(heavy.iter()) {
        assert_eq!(p, q);
        checks.expect(
            &format!("heavy faults cost {} delay on both backends", p.label()),
            c2.sim.mean_delay_us >= c0.sim.mean_delay_us
                && c2.native.mean_delay_us >= c0.native.mean_delay_us,
        );
    }

    write_csv(
        "ext24_procfaults",
        "fault_level,policy,sim_delay_us,native_delay_us,sim_service_us,native_service_us,\
         sim_crashes,sim_stalls,sim_orphaned,sim_requeued,native_crashed,native_orphaned,\
         native_requeued,native_steals",
        &rows,
    );

    checks.finish();
}
