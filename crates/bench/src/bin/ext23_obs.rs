//! Extension E23 — policy curves from the observability trace alone.
//!
//! Everything the paper's figures report is, in principle, derivable
//! from the per-message event stream: if the unified `afs-obs` trace is
//! complete and correctly stamped, folding its `Complete` events must
//! reproduce the Figure 6 delay curves without consulting the
//! simulator's own collector. This harness does exactly that:
//!
//! * **Simulator** — reruns the fig06 grid (Locking, K = 8 = N,
//!   baseline/pools/mru/wired) with a streaming recorder that keeps no
//!   events, only a post-warm-up Welford over `Complete` events and the
//!   aggregate counters. The trace-derived mean delay must match the
//!   `RunReport` and, for stable cells, the *committed*
//!   `results/fig06.csv` bytes — the policy ordering and the affinity
//!   win re-emerge from trace data alone.
//! * **Native** — runs the cross-validation scenario matrix through
//!   `run_scenario_recorded` and derives the same per-policy delays from
//!   the merged vclock-stamped trace, checking the IPS-over-oblivious
//!   affinity win on real threads, again from trace data alone.
//!
//! `--smoke` (or `AFS_QUICK=1`) restricts the rate grid and scenario
//! matrix but keeps the full fig06 horizon, so every cell it does run
//! stays comparable to the committed CSV. Emits `results/ext23_obs.csv`
//! and the golden trace `results/ext23_trace_golden.jsonl`.

use std::fs;

use afs_bench::artifacts::{obs_trace_golden, OBS_TRACE_GOLDEN_FILE};
use afs_bench::{banner, results_dir, template_with, write_csv, Checks};
use afs_core::crossval::{default_matrix, smoke_matrix, CrossPolicy, ORDERING_SLACK};
use afs_core::prelude::*;
use afs_core::sim::run_observed;
use afs_desim::stats::Welford;
use afs_native::crossval::run_scenario_recorded;
use afs_obs::{Counters, ObsEvent};

/// A streaming recorder that derives figure cells from the trace: the
/// aggregate [`Counters`] plus a post-warm-up Welford over successful
/// completions. Keeps no events, so full-horizon cells cost no memory.
struct TraceDelay {
    warm_us: f64,
    delay: Welford,
    counters: Counters,
}

impl TraceDelay {
    fn new(warm_us: f64) -> Self {
        TraceDelay {
            warm_us,
            delay: Welford::new(),
            counters: Counters::new(),
        }
    }
}

impl Recorder for TraceDelay {
    fn record(&mut self, ev: ObsEvent) {
        self.counters.observe(&ev);
        if let ObsEvent::Complete {
            t_us,
            delay_us,
            ok: true,
            ..
        } = ev
        {
            if t_us >= self.warm_us {
                self.delay.add(delay_us);
            }
        }
    }
}

/// One fig06 cell derived twice: from the report and from the trace.
struct Cell {
    stable: bool,
    report_delay_us: f64,
    report_delivered: u64,
    trace_delay_us: f64,
    trace_count: u64,
    counters: Counters,
}

fn run_cell(policy: LockPolicy, rate: f64) -> Cell {
    let mut cfg = template_with(Paradigm::Locking { policy }, 8, false);
    cfg.population = cfg.population.clone().with_rate(rate);
    let mut rec = TraceDelay::new(cfg.warmup.as_micros_f64());
    let (report, _probe) = run_observed(&cfg, &mut rec);
    Cell {
        stable: report.stable,
        report_delay_us: report.mean_delay_us,
        report_delivered: report.delivered,
        trace_delay_us: rec.delay.mean(),
        trace_count: rec.delay.count(),
        counters: rec.counters,
    }
}

/// The committed fig06 value for (rate row, series column), if the file
/// and the cell exist. `None` for missing files and `inf` cells.
fn committed_fig06(rate: f64, column: usize) -> Option<f64> {
    let text = fs::read_to_string(results_dir().join("fig06.csv")).ok()?;
    for line in text.lines().skip(1) {
        let mut fields = line.split(',');
        let r: f64 = fields.next()?.parse().ok()?;
        if (r - rate).abs() < 1e-9 {
            return fields.nth(column)?.parse::<f64>().ok();
        }
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || afs_bench::quick_mode();
    banner(
        "EXT E23",
        "Observability: fig06 policy curves derived from traces alone",
        "the per-message event stream must carry the whole affinity story (Sec 6.1)",
    );

    let mut checks = Checks::new();

    // ------------------------------------------------------------------
    // Simulator: the fig06 grid through the streaming trace recorder.
    // ------------------------------------------------------------------
    let full_rates = [
        200.0, 400.0, 800.0, 1400.0, 2000.0, 2800.0, 3600.0, 4200.0, 4800.0, 5200.0,
    ];
    let smoke_rates = [200.0, 1400.0, 2800.0];
    let rates: &[f64] = if smoke { &smoke_rates } else { &full_rates };
    let policies = [
        ("baseline", LockPolicy::Baseline),
        ("pools", LockPolicy::Pools),
        ("mru", LockPolicy::Mru),
        ("wired", LockPolicy::Wired),
    ];
    println!(
        "simulator: {} rates x {} policies, full fig06 horizon{}\n",
        rates.len(),
        policies.len(),
        if smoke { " (smoke grid)" } else { "" }
    );

    // cells[policy][rate]
    let cells: Vec<Vec<Cell>> = policies
        .iter()
        .map(|(label, p)| {
            let row: Vec<Cell> = rates.iter().map(|&r| run_cell(p.clone(), r)).collect();
            println!(
                "  {label:<9} trace delays: {}",
                row.iter()
                    .map(|c| if c.stable {
                        format!("{:.1}", c.trace_delay_us)
                    } else {
                        "unstable".into()
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            row
        })
        .collect();

    // The trace must reproduce the collector, cell by cell.
    let mut max_gap: f64 = 0.0;
    let mut conserved = true;
    let mut counted = true;
    for row in &cells {
        for c in row {
            if c.stable {
                max_gap = max_gap.max((c.trace_delay_us - c.report_delay_us).abs());
            }
            let k = &c.counters;
            conserved &= k.enqueued as i64 == k.completed as i64 + k.evicted as i64 + k.in_flight();
            counted &= k.completed <= k.dispatched
                && k.dispatched <= k.enqueued
                && c.trace_count == c.report_delivered;
        }
    }
    checks.expect(
        &format!("trace-derived mean delay == report mean delay (max gap {max_gap:.2e} µs)"),
        max_gap < 1e-6,
    );
    checks.expect(
        "conservation: enqueued = completed + evicted + in-flight",
        conserved,
    );
    checks.expect(
        "lifecycle: completed <= dispatched <= enqueued, trace samples == report delivered",
        counted,
    );

    // Stable cells must match the committed fig06.csv at its own
    // precision — the curves really are re-derivable from traces.
    let mut compared = 0u32;
    let mut matched = 0u32;
    for (pi, row) in cells.iter().enumerate() {
        for (ri, c) in row.iter().enumerate() {
            if let (true, Some(want)) = (c.stable, committed_fig06(rates[ri], pi)) {
                compared += 1;
                if format!("{:.2}", c.trace_delay_us) == format!("{want:.2}") {
                    matched += 1;
                }
            }
        }
    }
    checks.expect(
        &format!("trace cells match committed fig06.csv ({matched}/{compared} cells)"),
        compared > 0 && matched == compared,
    );

    // The affinity win, from trace data alone: at every rate where both
    // are stable, MRU beats baseline.
    let (base_row, mru_row) = (&cells[0], &cells[2]);
    let affinity_win = base_row
        .iter()
        .zip(mru_row.iter())
        .filter(|(b, m)| b.stable && m.stable)
        .all(|(b, m)| m.trace_delay_us < b.trace_delay_us);
    checks.expect(
        "affinity win (mru < baseline) at every mutually stable rate",
        affinity_win,
    );
    let hit_ordered = base_row
        .iter()
        .zip(mru_row.iter())
        .all(|(b, m)| m.counters.affinity_hit_rate() >= b.counters.affinity_hit_rate());
    checks.expect(
        "mru affinity-hit rate >= baseline at every rate",
        hit_ordered,
    );

    let (header, rows) = {
        let mut header = String::from("rate_per_stream");
        for (label, _) in &policies {
            header.push_str(&format!(",{label}"));
        }
        for (label, _) in &policies {
            header.push_str(&format!(",{label}_hit_rate"));
        }
        let rows: Vec<String> = rates
            .iter()
            .enumerate()
            .map(|(ri, r)| {
                let mut row = format!("{r}");
                for row_cells in &cells {
                    let c = &row_cells[ri];
                    if c.stable {
                        row.push_str(&format!(",{:.2}", c.trace_delay_us));
                    } else {
                        row.push_str(",inf");
                    }
                }
                for row_cells in &cells {
                    row.push_str(&format!(
                        ",{:.4}",
                        row_cells[ri].counters.affinity_hit_rate()
                    ));
                }
                row
            })
            .collect();
        (header, rows)
    };
    write_csv("ext23_obs", &header, &rows);

    // ------------------------------------------------------------------
    // Native backend: the same derivation on real threads.
    // ------------------------------------------------------------------
    let matrix = if smoke {
        smoke_matrix()
    } else {
        default_matrix()
    };
    let labels: Vec<&str> = CrossPolicy::ALL.iter().map(|p| p.label()).collect();
    println!(
        "\nnative: {} scenario(s), policies {}",
        matrix.len(),
        labels.join(" / ")
    );
    for s in &matrix {
        let mut delays = Vec::new();
        for p in CrossPolicy::ALL {
            let (report, rec) = run_scenario_recorded(s, p);
            let cut = report.last_arrival_us * 0.2; // NativeConfig::new warmup_frac
            let mut w = Welford::new();
            for ev in &rec.events {
                if let ObsEvent::Complete { t_us, delay_us, .. } = *ev {
                    if t_us - delay_us >= cut {
                        w.add(delay_us);
                    }
                }
            }
            println!(
                "  {} {:<9} trace delay {:>10.1} µs (report {:>10.1}), hit rate {:.3}, steals {}",
                s.label(),
                p.label(),
                w.mean(),
                report.mean_delay_us,
                rec.counters.affinity_hit_rate(),
                rec.counters.steals
            );
            let c = &rec.counters;
            checks.expect(
                &format!(
                    "{} {}: trace accounts for every offered packet",
                    s.label(),
                    p.label()
                ),
                c.enqueued == report.offered && c.completed == report.offered && c.in_flight() == 0,
            );
            checks.expect(
                &format!(
                    "{} {}: trace sample count == report recorded count",
                    s.label(),
                    p.label()
                ),
                w.count() == report.recorded,
            );
            checks.expect(
                &format!(
                    "{} {}: trace mean within 1e-6 of report",
                    s.label(),
                    p.label()
                ),
                (w.mean() - report.mean_delay_us).abs() <= 1e-6 * report.mean_delay_us.max(1.0),
            );
            delays.push((p, w.mean()));
        }
        let get = |want: CrossPolicy| {
            delays
                .iter()
                .find(|(p, _)| *p == want)
                .map(|&(_, d)| d)
                .unwrap_or(f64::NAN)
        };
        checks.expect(
            &format!(
                "{}: affinity win from traces (ips <= slack * oblivious)",
                s.label()
            ),
            get(CrossPolicy::Ips) <= ORDERING_SLACK * get(CrossPolicy::Oblivious),
        );
    }

    // ------------------------------------------------------------------
    // Golden trace: regenerate and persist the seeded-replay artifact.
    // ------------------------------------------------------------------
    let (golden_report, golden_trace) = obs_trace_golden();
    let (replay_report, replay_trace) = obs_trace_golden();
    checks.expect(
        "golden trace: identical seed+config => byte-identical JSONL",
        golden_trace == replay_trace && golden_report == replay_report,
    );
    let path = results_dir().join(OBS_TRACE_GOLDEN_FILE);
    fs::write(&path, &golden_trace).expect("write golden trace");
    println!(
        "\n  wrote {} ({} events)",
        path.display(),
        golden_trace.lines().count()
    );

    checks.finish();
}
