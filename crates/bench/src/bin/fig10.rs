//! Figure 10 — percent reduction in mean delay from affinity scheduling
//! under Locking, as a function of arrival rate, with the fixed uncached
//! per-packet overhead `V` as curve parameter.
//!
//! The paper: V models data-touching work that gains nothing from
//! affinity (e.g. checksumming; the worst case is a full 4432-byte FDDI
//! packet at 32 bytes/µs ≈ 139 µs). "The upper bound on the reduction
//! (as given by the V = 0 curves) is around 40–50 %." Larger V dilutes
//! the benefit.
//!
//! Methodology note: reductions are read on a grid referenced to the
//! *baseline's* capacity and only at points where the baseline is not
//! yet saturated (mean delay ≤ 5× its mean service time) — past that
//! point the ratio diverges toward 100 % and stops being informative
//! (it becomes the capacity-extension effect instead).

use afs_bench::{banner, template, write_csv, Checks};
use afs_core::prelude::*;

/// Reduction read right at the baseline's knee: locate the baseline's
/// capacity by bisection, then compare policies just below it. This is
/// where the paper's "greater number of concurrent streams / higher
/// maximum throughput" claims live, and where the V = 0 reduction
/// approaches its upper bound.
fn knee_reduction(v: f64, k: usize) -> f64 {
    let mk = |policy: LockPolicy| {
        let mut c = template(Paradigm::Locking { policy }, k);
        c.v_fixed_us = v;
        c
    };
    let exec = ExecParams::calibrated();
    let svc_mid = 0.5 * (exec.model.bounds.t_warm_us + exec.model.bounds.t_cold_us)
        + v
        + exec.lock_overhead_us;
    let cap_est = 8.0e6 / svc_mid / k as f64;
    let cap_base = capacity_search(
        &mk(LockPolicy::Baseline),
        0.3 * cap_est,
        2.0 * cap_est,
        0.02,
    );
    // The reduction climbs from its pre-saturation value toward 100 % as
    // the baseline approaches collapse; probe a short ladder around the
    // measured capacity and report the best stable-baseline reading.
    let mut best_reduction = 0.0f64;
    for f in [0.985, 1.0, 1.015, 1.03] {
        let rate = f * cap_base;
        let base = {
            let mut c = mk(LockPolicy::Baseline);
            c.population = c.population.clone().with_rate(rate);
            run(&c)
        };
        if !base.stable {
            continue;
        }
        let best = [LockPolicy::Mru, LockPolicy::Wired]
            .into_iter()
            .map(|p| {
                let mut c = mk(p);
                c.population = c.population.clone().with_rate(rate);
                let r = run(&c);
                if r.stable {
                    r.mean_delay_us
                } else {
                    f64::INFINITY
                }
            })
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            best_reduction = best_reduction.max(100.0 * (1.0 - best / base.mean_delay_us));
        }
    }
    best_reduction
}

/// Reduction curve for one V; returns (rate, reduction%) points.
fn reduction_curve(v: f64, k: usize) -> Vec<(f64, f64, bool)> {
    // Reference service: midpoint of warm/cold plus overheads — a fair
    // estimate of the baseline's service under load.
    let exec = ExecParams::calibrated();
    let svc_mid = 0.5 * (exec.model.bounds.t_warm_us + exec.model.bounds.t_cold_us)
        + v
        + exec.lock_overhead_us;
    let cap = 8.0e6 / svc_mid / k as f64;
    let fractions = [0.15, 0.3, 0.45, 0.6, 0.72, 0.82, 0.9, 0.95, 1.0, 1.05, 1.1];
    let rates: Vec<f64> = fractions.iter().map(|f| f * cap).collect();

    let mk = |policy: LockPolicy| {
        let mut c = template(Paradigm::Locking { policy }, k);
        c.v_fixed_us = v;
        c
    };
    let base = rate_sweep("baseline", &mk(LockPolicy::Baseline), &rates);
    let mru = rate_sweep("mru", &mk(LockPolicy::Mru), &rates);
    let wired = rate_sweep("wired", &mk(LockPolicy::Wired), &rates);

    let mut out = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let b = &base.points[i].report;
        if !b.stable {
            continue;
        }
        let saturated = b.mean_delay_us > 5.0 * b.mean_service_us;
        let m = &mru.points[i].report;
        let w = &wired.points[i].report;
        let best = match (m.stable, w.stable) {
            (true, true) => m.mean_delay_us.min(w.mean_delay_us),
            (true, false) => m.mean_delay_us,
            (false, true) => w.mean_delay_us,
            (false, false) => continue,
        };
        out.push((rate, 100.0 * (1.0 - best / b.mean_delay_us), saturated));
    }
    out
}

fn main() {
    banner(
        "FIGURE 10",
        "Locking: % delay reduction from affinity scheduling vs rate, V in {0,35,70,139} us",
        "V = 0 upper bound ~40-50%; data touching dilutes the benefit",
    );
    let k = 16;
    let vs = [0.0, 35.0, 70.0, 139.0];
    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    let mut knee_peaks = Vec::new();
    println!(
        "{:>6} {:>10} {:>12}  (* = baseline near saturation)",
        "V(us)", "rate/s", "reduction%"
    );
    // The four V curves are independent families of runs: fan them out
    // on the AFS_JOBS executor (each curve's sweeps parallelize
    // internally too) and print in V order afterwards.
    let curves = parallel_map(&vs, |&v| (reduction_curve(v, k), knee_reduction(v, k)));
    for (&v, (curve, knee_at_cap)) in vs.iter().zip(&curves) {
        let mut peak = 0.0f64;
        let mut knee = 0.0f64;
        for (r, pct, saturated) in curve {
            let mark = if *saturated { "*" } else { " " };
            println!("{v:>6.0} {r:>10.0} {pct:>12.1}{mark}");
            rows.push(format!("{v},{r:.0},{pct:.2},{}", u8::from(*saturated)));
            if *saturated {
                knee = knee.max(*pct);
            } else {
                peak = peak.max(*pct);
            }
        }
        let knee = knee.max(*knee_at_cap);
        println!("  V={v:>3.0}: pre-saturation peak {peak:.1}%, near-knee {knee:.1}%");
        peaks.push(peak);
        knee_peaks.push(knee);
    }
    write_csv(
        "fig10",
        "v_us,rate_per_stream,reduction_pct,baseline_saturated",
        &rows,
    );

    let mut checks = Checks::new();
    checks.expect("V=0 pre-saturation peak reduction >= 8%", peaks[0] >= 8.0);
    checks.expect(
        "near the baseline's knee the V=0 reduction reaches the paper's band (>= 25%)",
        knee_peaks[0] >= 25.0,
    );
    println!(
        "  note: paper's V=0 upper bound is 40-50%; we read {:.1}% pre-saturation and {:.1}% at the knee (EXPERIMENTS.md discusses the difference)",
        peaks[0], knee_peaks[0]
    );
    checks.expect(
        "larger V yields smaller peak reduction (dilution, monotone)",
        peaks.windows(2).all(|w| w[1] <= w[0] + 1.0),
    );
    checks.expect(
        "V=139 (full-FDDI checksum) cuts the benefit vs V=0 by >25% relatively",
        peaks[3] < 0.75 * peaks[0],
    );
    checks.finish();
}
