//! Figure 4 (reconstructed) — the SST footprint function `u(R, L)`.
//!
//! Unique cache lines touched by the non-protocol workload as a function
//! of the reference count, for the L1 (16 B) and L2 (128 B) line sizes,
//! using the paper's published MVS constants (W = 2.19827, a = 0.033233,
//! b = 0.827457, log d = −0.13025).

use afs_bench::{banner, write_csv, Checks};
use afs_cache::model::footprint::MVS_WORKLOAD;

fn main() {
    banner(
        "FIGURE 4",
        "SST footprint function u(R, L), MVS workload constants",
        "u(R,L) = W L^a R^b d^(log L log R); constants fitted to the MVS trace",
    );
    println!(
        "{:>12} {:>14} {:>14} {:>12}",
        "refs R", "u(R, 16B)", "u(R, 128B)", "KB @128B"
    );
    let mut rows = Vec::new();
    let mut prev16 = 0.0;
    let mut monotone = true;
    for e in 1..=8 {
        for m in [1.0, 3.0] {
            let r = m * 10f64.powi(e);
            let u16 = MVS_WORKLOAD.footprint(r, 16.0);
            let u128 = MVS_WORKLOAD.footprint(r, 128.0);
            println!(
                "{:>12.0} {:>14.1} {:>14.1} {:>12.1}",
                r,
                u16,
                u128,
                u128 * 128.0 / 1024.0
            );
            rows.push(format!("{r},{u16:.2},{u128:.2}"));
            if u16 < prev16 {
                monotone = false;
            }
            prev16 = u16;
        }
    }
    write_csv("fig04", "refs,u_16B,u_128B", &rows);

    let mut checks = Checks::new();
    checks.expect("u(R,16) monotone increasing in R", monotone);
    checks.expect(
        "larger lines capture more spatial locality (u128 < u16)",
        MVS_WORKLOAD.footprint(1e6, 128.0) < MVS_WORKLOAD.footprint(1e6, 16.0),
    );
    checks.expect(
        "u bounded by R",
        MVS_WORKLOAD.footprint(100.0, 16.0) <= 100.0,
    );
    // The spot value the reproduction pins (DESIGN.md): u(20000, 16) ≈ 1850.
    let u = MVS_WORKLOAD.footprint(20_000.0, 16.0);
    checks.expect(
        "regression anchor u(20000,16) ~ 1.85e3",
        (u - 1850.0).abs() / 1850.0 < 0.02,
    );
    checks.finish();
}
