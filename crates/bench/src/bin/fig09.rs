//! Figure 9 (reconstructed) — robustness and scalability trade-offs.
//!
//! The abstract's two caveats about IPS:
//!
//! * (a) "less robust response to intra-stream burstiness" — mean delay
//!   vs batch size at fixed mean rate: a burst on one stream serializes
//!   on its stack under IPS but fans out across processors under
//!   Locking.
//! * (b) "limited intra-stream scalability" — maximum throughput of a
//!   *single* stream vs processor count: one stream rides one stack (≈
//!   one processor) under IPS, while Locking spreads its packets over
//!   all processors.

use afs_bench::{banner, ips, template, write_csv, Checks, K_STREAMS};
use afs_core::prelude::*;

fn burst_experiment() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let k = K_STREAMS;
    let batch_means = vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    let rate = 700.0; // per stream; moderate aggregate load
                      // Each batch size's two runs are independent: fan the cells out on
                      // the AFS_JOBS executor and reassemble in batch order.
    let cells = parallel_map(&batch_means, |&b| {
        let mut cfg = template(
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
            k,
        );
        cfg.population = Population::homogeneous_bursty(k, rate, b);
        let lock = run(&cfg).mean_delay_us;

        let mut cfg = template(ips(IpsPolicy::Wired, k), k);
        cfg.population = Population::homogeneous_bursty(k, rate, b);
        (lock, run(&cfg).mean_delay_us)
    });
    let (lock, ipsd) = cells.into_iter().unzip();
    (batch_means, lock, ipsd)
}

fn scalability_experiment() -> (Vec<usize>, Vec<f64>, Vec<f64>) {
    // One stream, N processors: find the max sustainable rate. Whole
    // capacity searches are independent, so they run concurrently; the
    // bisection inside each stays serial (its probe sequence is
    // adaptive — see `afs_core::sweep::capacity_search`).
    let procs = vec![1usize, 2, 4, 8];
    let cells = parallel_map(&procs, |&n| {
        let mut t = template(
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
            1,
        );
        t.n_procs = n;
        let lock = capacity_search(&t, 500.0, 60_000.0, 0.05);

        let mut t = template(ips(IpsPolicy::Wired, 1), 1);
        t.n_procs = n;
        (lock, capacity_search(&t, 500.0, 60_000.0, 0.05))
    });
    let (lock, ipsd) = cells.into_iter().unzip();
    (procs, lock, ipsd)
}

fn main() {
    banner(
        "FIGURE 9",
        "(a) burst robustness; (b) intra-stream scalability",
        "IPS: less robust to intra-stream burstiness; limited intra-stream scalability",
    );

    println!("(a) mean delay (us) vs intra-stream batch size, 700 pkts/s/stream:");
    let (batches, lock_d, ips_d) = burst_experiment();
    println!("{:>10} {:>12} {:>12}", "batch", "locking-mru", "ips-wired");
    let mut rows = Vec::new();
    for i in 0..batches.len() {
        println!(
            "{:>10.0} {:>12.1} {:>12.1}",
            batches[i], lock_d[i], ips_d[i]
        );
        rows.push(format!("{},{:.2},{:.2}", batches[i], lock_d[i], ips_d[i]));
    }
    write_csv("fig09a", "batch_mean,locking_mru_us,ips_wired_us", &rows);

    println!("\n(b) max single-stream throughput (pkts/s) vs processors:");
    let (procs, lock_c, ips_c) = scalability_experiment();
    println!("{:>10} {:>12} {:>12}", "procs", "locking-mru", "ips");
    let mut rows = Vec::new();
    for i in 0..procs.len() {
        println!("{:>10} {:>12.0} {:>12.0}", procs[i], lock_c[i], ips_c[i]);
        rows.push(format!("{},{:.0},{:.0}", procs[i], lock_c[i], ips_c[i]));
    }
    write_csv(
        "fig09b",
        "procs,locking_capacity_pps,ips_capacity_pps",
        &rows,
    );

    let mut checks = Checks::new();
    // (a) IPS delay grows faster with burstiness.
    let lock_growth = lock_d.last().unwrap() / lock_d[0];
    let ips_growth = ips_d.last().unwrap() / ips_d[0];
    println!("  delay growth x32 bursts: locking {lock_growth:.2}x, ips {ips_growth:.2}x");
    checks.expect(
        "IPS delay grows faster with burst size than Locking",
        ips_growth > 1.3 * lock_growth,
    );
    checks.expect(
        "IPS still wins at batch = 1 (Poisson)",
        ips_d[0] < lock_d[0],
    );
    // (b) Locking scales with N; IPS is flat.
    let lock_scaling = lock_c[3] / lock_c[0];
    let ips_scaling = ips_c[3] / ips_c[0];
    println!("  single-stream capacity 8p/1p: locking {lock_scaling:.2}x, ips {ips_scaling:.2}x");
    checks.expect(
        "Locking single-stream capacity scales >2x from 1 to 8 procs",
        lock_scaling > 2.0,
    );
    checks.expect(
        "IPS single-stream capacity flat in N (<1.3x)",
        ips_scaling < 1.3,
    );
    checks.finish();
}
