//! Extension E21 — fault injection & overload resilience.
//!
//! The paper's experiments assume a perfect wire and infinite queues.
//! This extension measures how the scheduling-policy ranking holds up
//! when neither assumption does:
//!
//! * **Part 1 — fault-rate sweep.** A lossy/corrupting/duplicating wire
//!   at moderate load: goodput falls with the fault rate, corrupt
//!   packets waste service without delivering, and the affinity
//!   advantage (MRU over the oblivious baseline) must survive.
//! * **Part 2 — overload × queue bound.** An offered load far past
//!   saturation: unbounded queues diverge (unstable, delay grows with
//!   the horizon), while bounded queues with a drop policy degrade
//!   gracefully — finite delay, nonzero drop rate, full utilization.
//!
//! Emits `results/ext21_faults.json` with one record per
//! (part, policy, fault rate, queue bound, drop policy) cell.

use afs_bench::{banner, json_object, write_json, Checks, N_PROCS};
use afs_core::prelude::*;

const MODERATE_RATE: f64 = 700.0;
const OVERLOAD_RATE: f64 = 8_000.0;
const K_STREAMS: usize = 8;

fn base_cfg(paradigm: Paradigm, rate: f64) -> SystemConfig {
    let mut cfg = SystemConfig::new(paradigm, Population::homogeneous_poisson(K_STREAMS, rate));
    cfg.n_procs = N_PROCS;
    if std::env::var_os("AFS_QUICK").is_some() {
        cfg.warmup = SimDuration::from_millis(100);
        cfg.horizon = SimDuration::from_millis(500);
    } else {
        cfg.warmup = SimDuration::from_millis(200);
        cfg.horizon = SimDuration::from_millis(1_400);
    }
    cfg
}

fn policies() -> Vec<(&'static str, Paradigm)> {
    vec![
        (
            "lock-baseline",
            Paradigm::Locking {
                policy: LockPolicy::Baseline,
            },
        ),
        (
            "lock-mru",
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
        ),
        (
            "ips-mru",
            Paradigm::Ips {
                policy: IpsPolicy::Mru,
                n_stacks: K_STREAMS,
            },
        ),
    ]
}

/// A wire where a fraction `p` of frames is lost, another `p/2`
/// corrupted (half a service consumed before rejection), and `p/4`
/// duplicated.
fn faults_at(p: f64) -> FaultProfile {
    FaultProfile {
        drop_p: p,
        corrupt_p: p / 2.0,
        duplicate_p: p / 4.0,
        corrupt_work_frac: 0.5,
    }
}

fn fmt_bound(bound: usize) -> String {
    if bound == usize::MAX {
        "\"unbounded\"".into()
    } else {
        format!("{bound}")
    }
}

fn record(
    part: &str,
    policy: &str,
    fault_p: f64,
    bound: usize,
    drop_policy: &str,
    r: &RunReport,
) -> String {
    json_object(&[
        ("part", format!("\"{part}\"")),
        ("policy", format!("\"{policy}\"")),
        ("fault_p", format!("{fault_p}")),
        ("queue_bound", fmt_bound(bound)),
        ("drop_policy", format!("\"{drop_policy}\"")),
        ("stable", format!("{}", r.stable)),
        ("throughput_pps", format!("{:.2}", r.throughput_pps)),
        ("goodput_pps", format!("{:.2}", r.goodput_pps)),
        ("drop_rate", format!("{:.4}", r.drop_rate)),
        (
            "mean_delay_us",
            if r.stable {
                format!("{:.2}", r.mean_delay_us)
            } else {
                "null".into()
            },
        ),
        ("max_delay_us", format!("{:.2}", r.max_delay_us)),
        ("utilization", format!("{:.4}", r.utilization)),
        ("wire_drops", format!("{}", r.wire_drops)),
        ("queue_drops", format!("{}", r.queue_drops)),
        ("shed_at_source", format!("{}", r.shed_at_source)),
        ("corrupted", format!("{}", r.corrupted)),
        (
            "wasted_service_frac",
            format!("{:.4}", r.wasted_service_frac),
        ),
    ])
}

fn main() {
    banner(
        "EXT E21",
        "Fault injection & overload resilience",
        "robustness extension: the affinity ranking under loss/corruption, and graceful degradation with bounded queues",
    );
    println!(
        "{K_STREAMS} streams x {N_PROCS} processors; moderate load {MODERATE_RATE:.0} pkts/s/stream, overload {OVERLOAD_RATE:.0} pkts/s/stream\n"
    );

    let mut records: Vec<String> = Vec::new();
    let mut checks = Checks::new();

    // ---- Part 1: fault-rate sweep, unbounded queues -----------------
    println!("Part 1: goodput under a faulty wire (unbounded queues)");
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "policy", "fault_p", "goodput", "throughput", "drop_rate", "wasted"
    );
    let fault_rates = [0.0, 0.05, 0.15, 0.30];
    let mut sweep: Vec<Vec<RunReport>> = Vec::new(); // [policy][fault index]
    for (name, paradigm) in &policies() {
        let mut row = Vec::new();
        for &p in &fault_rates {
            let mut cfg = base_cfg(paradigm.clone(), MODERATE_RATE);
            cfg.faults = faults_at(p);
            let r = run(&cfg);
            println!(
                "{name:<16} {p:>8.2} {:>12.1} {:>12.1} {:>10.4} {:>10.4}",
                r.goodput_pps, r.throughput_pps, r.drop_rate, r.wasted_service_frac
            );
            records.push(record("fault_sweep", name, p, usize::MAX, "tail_drop", &r));
            row.push(r);
        }
        sweep.push(row);
    }
    println!();

    for (i, (name, _)) in policies().iter().enumerate() {
        checks.expect(
            &format!("{name}: zero faults means zero drops and goodput == throughput"),
            sweep[i][0].drop_rate == 0.0 && sweep[i][0].goodput_pps == sweep[i][0].throughput_pps,
        );
        checks.expect(
            &format!("{name}: goodput falls monotonically with the fault rate"),
            sweep[i]
                .windows(2)
                .all(|w| w[1].goodput_pps < w[0].goodput_pps),
        );
        checks.expect(
            &format!("{name}: drop rate rises monotonically with the fault rate"),
            sweep[i].windows(2).all(|w| w[1].drop_rate > w[0].drop_rate),
        );
        checks.expect(
            &format!("{name}: corrupt packets waste service without delivering"),
            sweep[i][2].corrupted > 0 && sweep[i][2].wasted_service_frac > 0.0,
        );
    }
    // Below saturation every stable policy delivers whatever the wire
    // lets through, so goodput is policy-independent; the affinity
    // advantage is in *delay* and must survive a faulty wire
    // (policies() order: 0 = baseline, 1 = lock-mru).
    checks.expect(
        "the affinity advantage survives faults: lock-mru mean delay < baseline at fault_p 0.15",
        sweep[0][2].stable
            && sweep[1][2].stable
            && sweep[1][2].mean_delay_us < sweep[0][2].mean_delay_us,
    );

    // ---- Part 2: overload x queue bound -----------------------------
    println!("Part 2: overload response by queue bound (lock-baseline + lock-mru)");
    println!(
        "{:<16} {:>10} {:>18} {:>8} {:>12} {:>10}",
        "policy", "bound", "drop_policy", "stable", "mean_delay", "drop_rate"
    );
    let bounds = [usize::MAX, 128, 32];
    let mut overload: Vec<(String, usize, RunReport)> = Vec::new();
    for (name, paradigm) in policies().iter().take(2) {
        for &bound in &bounds {
            let mut cfg = base_cfg(paradigm.clone(), OVERLOAD_RATE);
            cfg.queue_bound = bound;
            cfg.drop_policy = DropPolicy::TailDrop;
            let r = run(&cfg);
            let delay = if r.stable {
                format!("{:>12.1}", r.mean_delay_us)
            } else {
                format!("{:>12}", "divergent")
            };
            println!(
                "{name:<16} {:>10} {:>18} {:>8} {delay} {:>10.4}",
                if bound == usize::MAX {
                    "inf".into()
                } else {
                    bound.to_string()
                },
                "tail_drop",
                r.stable,
                r.drop_rate
            );
            records.push(record("overload", name, 0.0, bound, "tail_drop", &r));
            overload.push((name.to_string(), bound, r));
        }
    }
    // Alternative drop policies at the tightest bound.
    for (dp_name, dp) in [
        ("drop_longest_queue", DropPolicy::DropLongestQueue),
        ("backpressure", DropPolicy::Backpressure),
    ] {
        let mut cfg = base_cfg(policies()[0].1.clone(), OVERLOAD_RATE);
        cfg.queue_bound = 32;
        cfg.drop_policy = dp;
        let r = run(&cfg);
        let delay = if r.stable {
            format!("{:>12.1}", r.mean_delay_us)
        } else {
            format!("{:>12}", "divergent")
        };
        println!(
            "{:<16} {:>10} {dp_name:>18} {:>8} {delay} {:>10.4}",
            "lock-baseline", 32, r.stable, r.drop_rate
        );
        records.push(record("overload", "lock-baseline", 0.0, 32, dp_name, &r));
        overload.push((format!("lock-baseline/{dp_name}"), 32, r));
    }
    println!();

    for (name, bound, r) in &overload {
        if *bound == usize::MAX {
            checks.expect(
                &format!("{name}: unbounded queues diverge under overload"),
                !r.stable,
            );
        } else {
            checks.expect(
                &format!("{name}: bound {bound} degrades gracefully (stable, sheds load)"),
                r.stable && r.drop_rate > 0.2,
            );
            checks.expect(
                &format!("{name}: bound {bound} keeps the worst-case delay near bound x service"),
                r.max_delay_us < 2.0 * (*bound as f64) * r.mean_service_us,
            );
        }
    }
    let bp = &overload.last().expect("backpressure row ran").2;
    checks.expect(
        "backpressure sheds at the source, never from the queues",
        bp.shed_at_source > 0 && bp.queue_drops == 0,
    );

    let mut body = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        body.push_str("  ");
        body.push_str(r);
        if i + 1 < records.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("]\n");
    write_json("ext21_faults", &body);

    checks.finish();
}
