//! Ablation A17 — the affinity benefit as a function of cache-erosion
//! speed.
//!
//! The benefit of affinity scheduling is necessarily **unimodal** in the
//! erosion rate of the non-protocol workload: if intervening work never
//! displaces the protocol footprint, every policy runs warm (no benefit);
//! if it always displaces everything instantly, every policy runs cold
//! (no benefit). Affinity scheduling pays off in between — exactly when
//! the *scheduling decision* determines whether the footprint survives.
//!
//! This ablation sweeps the non-protocol working-set scale `W` across
//! orders of magnitude around the paper's MVS value and locates the
//! calibrated configuration on that curve. It quantifies the discussion
//! in EXPERIMENTS.md of why our peak V = 0 reduction reads below the
//! paper's 40–50 % band at matched (pre-saturation) rates.

use afs_bench::{banner, template, write_csv, Checks, K_STREAMS};
use afs_cache::model::footprint::SstParams;
use afs_core::prelude::*;

/// Peak pre-saturation reduction of best-affinity vs baseline (Locking).
fn peak_reduction_for(exec: ExecParams) -> f64 {
    let k = K_STREAMS;
    let svc_mid =
        0.5 * (exec.model.bounds.t_warm_us + exec.model.bounds.t_cold_us) + exec.lock_overhead_us;
    let cap = 8.0e6 / svc_mid / k as f64;
    let rates: Vec<f64> = [0.2, 0.45, 0.65, 0.82, 0.93]
        .iter()
        .map(|f| f * cap)
        .collect();
    let mut best = 0.0f64;
    for &r in &rates {
        let mk = |policy: LockPolicy| {
            let mut c = template(Paradigm::Locking { policy }, k);
            c.exec = exec;
            c.population = c.population.clone().with_rate(r);
            c
        };
        let base = run(&mk(LockPolicy::Baseline));
        if !base.stable || base.mean_delay_us > 5.0 * base.mean_service_us {
            continue;
        }
        let mru = run(&mk(LockPolicy::Mru));
        let wired = run(&mk(LockPolicy::Wired));
        let mru_d = if mru.stable {
            mru.mean_delay_us
        } else {
            f64::INFINITY
        };
        let wired_d = if wired.stable {
            wired.mean_delay_us
        } else {
            f64::INFINITY
        };
        let aff = mru_d.min(wired_d);
        if aff.is_finite() {
            best = best.max(100.0 * (1.0 - aff / base.mean_delay_us));
        }
    }
    best
}

fn main() {
    banner(
        "ABLATION A17",
        "Affinity benefit vs cache-erosion speed (working-set scale W)",
        "benefit is unimodal in erosion speed; locates the calibrated point",
    );
    let calibrated = ExecParams::calibrated();
    let multipliers = [0.02, 0.2, 1.0, 8.0, 64.0, 512.0];
    println!("{:>10} {:>18}", "W scale", "peak V=0 red. %");
    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    for &m in &multipliers {
        let mut exec = calibrated;
        exec.model.flush.workload = SstParams {
            w: exec.model.flush.workload.w * m,
            ..exec.model.flush.workload
        };
        let p = peak_reduction_for(exec);
        println!("{m:>10} {p:>18.1}");
        rows.push(format!("{m},{p:.2}"));
        peaks.push(p);
    }
    write_csv(
        "abl17_sensitivity",
        "w_multiplier,peak_reduction_pct",
        &rows,
    );

    let max = peaks.iter().fold(0.0f64, |a, &b| a.max(b));
    let min = peaks.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    println!(
        "  calibrated (x1): {:.1}%; range over 4+ orders of magnitude: {:.1}-{:.1}%",
        peaks[2], min, max
    );
    println!("  reading: the pre-saturation benefit is dominated by the erosion-INDEPENDENT");
    println!("  migration penalties (remote stream/thread fetches), which is why it moves");
    println!("  so little with W — and why the paper's 40-50% bound (pure reload-span");
    println!("  economics) is only approached near baseline saturation (see fig10).");

    let mut checks = Checks::new();
    checks.expect(
        "affinity scheduling pays off at every erosion speed (all peaks > 3%)",
        peaks.iter().all(|&p| p > 3.0),
    );
    checks.expect(
        "pre-saturation benefit varies <3x across 4+ orders of magnitude of W          (migration-dominated at this calibration)",
        max / min.max(1e-9) < 3.0,
    );
    checks.expect(
        "calibrated configuration shows a solid benefit (>= 5%)",
        peaks[2] >= 5.0,
    );
    checks.finish();
}
