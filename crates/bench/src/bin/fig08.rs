//! Figure 8 (reconstructed) — IPS vs Locking, and the IPS Wired/MRU
//! crossover.
//!
//! Abstract: "IPS (which maximizes cache affinity) delivers much lower
//! message latency and significantly higher message throughput
//! capacity." Conclusion: "Under IPS, independent stacks should be wired
//! to processors — except under low arrival rate, when MRU processor
//! scheduling performs better."

use afs_bench::{banner, ips, print_table, series_rows, template, write_csv, Checks, K_STREAMS};
use afs_core::prelude::*;

fn main() {
    banner(
        "FIGURE 8",
        "IPS vs Locking: delay vs arrival rate; IPS wired/MRU crossover",
        "IPS: much lower latency, higher capacity; wire stacks except at low rate",
    );
    let k = K_STREAMS;
    let rates: Vec<f64> = vec![
        100.0, 200.0, 400.0, 700.0, 1000.0, 1400.0, 1800.0, 2200.0, 2500.0, 2700.0, 2900.0, 3100.0,
    ];
    let series = vec![
        rate_sweep(
            "lock-mru",
            &template(
                Paradigm::Locking {
                    policy: LockPolicy::Mru,
                },
                k,
            ),
            &rates,
        ),
        rate_sweep(
            "lock-wired",
            &template(
                Paradigm::Locking {
                    policy: LockPolicy::Wired,
                },
                k,
            ),
            &rates,
        ),
        rate_sweep("ips-mru", &template(ips(IpsPolicy::Mru, k), k), &rates),
        rate_sweep("ips-wired", &template(ips(IpsPolicy::Wired, k), k), &rates),
    ];
    print_table("pkts/s/stream", &rates, &series);
    let (header, rows) = series_rows(&rates, &series);
    write_csv("fig08", &header, &rows);

    let lock_mru = &series[0];
    let lock_wired = &series[1];
    let ips_mru = &series[2];
    let ips_wired = &series[3];

    let mut checks = Checks::new();
    // IPS latency advantage at every mutually stable rate vs best Locking.
    let mut ips_lower_everywhere = true;
    for i in 0..rates.len() {
        let best_lock = lock_mru.points[i]
            .report
            .mean_delay_us
            .min(lock_wired.points[i].report.mean_delay_us);
        let best_lock_stable =
            lock_mru.points[i].report.stable || lock_wired.points[i].report.stable;
        let best_ips = ips_mru.points[i]
            .report
            .mean_delay_us
            .min(ips_wired.points[i].report.mean_delay_us);
        let best_ips_stable = ips_mru.points[i].report.stable || ips_wired.points[i].report.stable;
        if best_lock_stable && best_ips_stable && best_ips > best_lock * 1.02 {
            ips_lower_everywhere = false;
        }
    }
    checks.expect(
        "best IPS delay <= best Locking delay at every rate",
        ips_lower_everywhere,
    );
    // Capacity: IPS stable where Locking is not.
    let lock_cap = lock_mru
        .max_stable_rate()
        .unwrap_or(0.0)
        .max(lock_wired.max_stable_rate().unwrap_or(0.0));
    let ips_cap = ips_mru
        .max_stable_rate()
        .unwrap_or(0.0)
        .max(ips_wired.max_stable_rate().unwrap_or(0.0));
    println!("  capacity (max stable rate/stream): Locking {lock_cap:.0}, IPS {ips_cap:.0}");
    checks.expect("IPS capacity exceeds Locking capacity", ips_cap > lock_cap);
    // IPS crossover: MRU wins at the lowest rate, Wired at the top.
    checks.expect(
        "IPS-MRU better at the lowest rate",
        ips_mru.points[0].report.mean_delay_us < ips_wired.points[0].report.mean_delay_us,
    );
    let top_stable = (0..rates.len())
        .rev()
        .find(|&i| ips_mru.points[i].report.stable && ips_wired.points[i].report.stable);
    checks.expect(
        "IPS-Wired better at the highest mutually stable rate",
        top_stable.is_some_and(|i| {
            ips_wired.points[i].report.mean_delay_us < ips_mru.points[i].report.mean_delay_us
        }),
    );
    checks.finish();
}
