//! Ablation A18 — host scalability: aggregate capacity vs processor
//! count.
//!
//! The paper's platform has 8 processors; this ablation asks how each
//! paradigm's *aggregate* throughput capacity scales as the machine
//! grows (2 → 16 CPUs) with the stream population fixed at 16. Locking
//! pools every processor but pays lock overhead and migration; wired
//! IPS scales with min(stacks, N) and pays neither — so IPS holds a
//! roughly constant per-processor edge until stacks run out.

use afs_bench::{banner, ips, template, write_csv, Checks, K_STREAMS};
use afs_core::prelude::*;

fn capacity(paradigm: Paradigm, n_procs: usize) -> f64 {
    let mut t = template(paradigm, K_STREAMS);
    t.n_procs = n_procs;
    // Per-stream capacity; convert to aggregate.
    let per_stream = capacity_search(&t, 20.0, 8_000.0, 0.03);
    per_stream * K_STREAMS as f64
}

fn main() {
    banner(
        "ABLATION A18",
        "Aggregate capacity vs processor count (K = 16 streams)",
        "host scalability of the two paradigms",
    );
    let procs = [2usize, 4, 8, 16];
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "procs", "locking-mru pps", "ips-wired pps", "IPS edge"
    );
    let mut rows = Vec::new();
    let mut lock_caps = Vec::new();
    let mut ips_caps = Vec::new();
    for &n in &procs {
        let lock = capacity(
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
            n,
        );
        let ipsc = capacity(ips(IpsPolicy::Wired, K_STREAMS), n);
        let edge = ipsc / lock;
        println!("{n:>8} {lock:>16.0} {ipsc:>16.0} {edge:>10.2}");
        rows.push(format!("{n},{lock:.0},{ipsc:.0},{edge:.3}"));
        lock_caps.push(lock);
        ips_caps.push(ipsc);
    }
    write_csv("abl18_procs", "procs,locking_pps,ips_pps,ips_edge", &rows);

    let mut checks = Checks::new();
    checks.expect(
        "Locking capacity scales near-linearly 2->16 procs (>= 6x)",
        lock_caps[3] / lock_caps[0] >= 6.0,
    );
    checks.expect(
        "IPS capacity scales while stacks outnumber processors (>= 6x)",
        ips_caps[3] / ips_caps[0] >= 6.0,
    );
    checks.expect(
        "IPS holds a capacity edge over Locking at every size",
        ips_caps
            .iter()
            .zip(&lock_caps)
            .all(|(i, l)| i > &(l * 0.98)),
    );
    checks.finish();
}
