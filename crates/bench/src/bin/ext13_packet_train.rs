//! Extension E13 — burstiness and source locality under the
//! Jain–Routhier Packet-Train model (paper's future-work item ii).
//!
//! Streams emit *trains* of packets: closely spaced cars separated by
//! long inter-train gaps. Affinity scheduling benefits from trains — the
//! first car of a train warms the caches for the rest — so longer trains
//! at a fixed mean rate improve delay under affinity policies.

use afs_bench::{banner, ips, template, write_csv, Checks, K_STREAMS};
use afs_core::prelude::*;
use afs_workload::{ArrivalGen, SizeDist, StreamSpec};

fn train_population(k: usize, rate: f64, cars: f64, inter_car_us: f64) -> Population {
    Population {
        streams: (0..k)
            .map(|_| StreamSpec {
                arrivals: ArrivalGen::train(rate, cars, inter_car_us),
                sizes: SizeDist::tiny(),
            })
            .collect(),
    }
}

fn main() {
    banner(
        "EXT E13",
        "Packet-train burstiness / source locality",
        "future-work item (ii), Packet-Train model of Jain & Routhier",
    );
    let k = K_STREAMS;
    let rate = 600.0; // per stream, fixed mean rate
    let inter_car_us = 300.0;
    let train_lengths = [1.0, 2.0, 4.0, 8.0, 16.0];
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "cars", "lock-mru (us)", "lock-base (us)", "ips-wired (us)"
    );
    let mut rows = Vec::new();
    let mut mru_delays = Vec::new();
    let mut base_delays = Vec::new();
    // Each train length's three runs are independent: fan the cells out
    // on the AFS_JOBS executor and print in train-length order.
    let cells = parallel_map(&train_lengths, |&cars| {
        let pop = train_population(k, rate, cars, inter_car_us);
        let mut cm = template(
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
            k,
        );
        cm.population = pop.clone();
        let mut cb = template(
            Paradigm::Locking {
                policy: LockPolicy::Baseline,
            },
            k,
        );
        cb.population = pop.clone();
        let mut ci = template(ips(IpsPolicy::Wired, k), k);
        ci.population = pop;
        (run(&cm), run(&cb), run(&ci))
    });
    for (&cars, (mru, base, ipsr)) in train_lengths.iter().zip(&cells) {
        println!(
            "{cars:>8.0} {:>14.1} {:>14.1} {:>14.1}",
            mru.mean_delay_us, base.mean_delay_us, ipsr.mean_delay_us
        );
        rows.push(format!(
            "{cars},{:.2},{:.2},{:.2}",
            mru.mean_delay_us, base.mean_delay_us, ipsr.mean_delay_us
        ));
        mru_delays.push(mru.mean_delay_us);
        base_delays.push(base.mean_delay_us);
    }
    write_csv(
        "ext13_packet_train",
        "cars,lock_mru_us,lock_base_us,ips_wired_us",
        &rows,
    );

    let mut checks = Checks::new();
    // Source locality: trains make affinity more valuable — the relative
    // gain of MRU over baseline grows with train length.
    let gain_first = 1.0 - mru_delays[0] / base_delays[0];
    let gain_last = 1.0 - mru_delays[4] / base_delays[4];
    println!(
        "  mru-vs-baseline gain: cars=1 {:.1}%, cars=16 {:.1}%",
        gain_first * 100.0,
        gain_last * 100.0
    );
    checks.expect(
        "affinity gain grows with train length (source locality)",
        gain_last > gain_first,
    );
    checks.expect("affinity gain positive at every train length", {
        mru_delays.iter().zip(&base_delays).all(|(m, b)| m < b)
    });
    checks.finish();
}
