//! Benchmark snapshot — the committed performance baseline.
//!
//! Times the workspace's representative experiment families and writes
//! `results/BENCH_perf.json`: simulated packets per wall-clock second
//! on the single-run hot path, wall time per experiment family, and the
//! serial-vs-parallel speedup of the `afs_core::par` executor — the
//! trajectory document future sessions diff their optimizations
//! against.
//!
//! The snapshot also *verifies* while it measures: the parallel sweep's
//! delays must be bit-identical to the serial sweep's (the executor's
//! core contract), and the process exits non-zero if they are not.
//!
//! `AFS_QUICK=1` shrinks the horizons for CI smoke runs; a committed
//! baseline should be regenerated without it. Wall-clock numbers are
//! machine-dependent — the JSON records the host's core count and the
//! worker count used so a diff is read in context.

use std::time::Instant;

use afs_bench::{banner, json_object, quick_mode, template, write_json, Checks, K_STREAMS};
use afs_core::crossval::{sim_matrix_jobs, smoke_matrix};
use afs_core::par::{default_jobs, jobs_from_env};
use afs_core::prelude::*;
use afs_core::replicate::replicate_jobs;
use afs_core::sweep::rate_sweep_jobs;

/// Wall time of `f` in seconds alongside its result.
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

fn main() {
    banner(
        "BENCH SNAPSHOT",
        "wall-clock baseline for the simulator hot path and the parallel executor",
        "methodology artifact: committed as results/BENCH_perf.json",
    );
    let quick = quick_mode();
    let host_cores = default_jobs();
    let jobs = jobs_from_env();
    println!("host cores: {host_cores}; AFS_JOBS resolved to {jobs}; quick = {quick}\n");

    let mru = Paradigm::Locking {
        policy: LockPolicy::Mru,
    };

    // Family 1 — single-run hot path: simulated packets per wall second.
    // One moderate-load run, the unit every sweep point costs.
    let mut single = template(mru.clone(), K_STREAMS);
    single.population = single.population.clone().with_rate(700.0);
    let (t_single, report) = timed(|| run(&single));
    let sim_pkts_per_wall_s = report.delivered as f64 / t_single;
    println!(
        "single run: {} pkts delivered in {:.3} s wall = {:.0} simulated pkts/s",
        report.delivered, t_single, sim_pkts_per_wall_s
    );

    // Family 2 — a figure-style rate sweep, serial then parallel. The
    // speedup of this family is the executor's headline number; the
    // byte-identity of the two series is its correctness contract.
    let rates: Vec<f64> = (1..=8).map(|i| 250.0 * i as f64).collect();
    let sweep_tpl = template(mru.clone(), K_STREAMS);
    let (t_serial, serial) = timed(|| rate_sweep_jobs(1, "mru", &sweep_tpl, &rates));
    let (t_parallel, parallel) = timed(|| rate_sweep_jobs(jobs, "mru", &sweep_tpl, &rates));
    let sweep_speedup = t_serial / t_parallel.max(1e-9);
    let identical = serial.points.iter().zip(&parallel.points).all(|(a, b)| {
        a.report.mean_delay_us.to_bits() == b.report.mean_delay_us.to_bits()
            && a.report.delivered == b.report.delivered
    });
    println!(
        "rate sweep ({} pts): serial {:.3} s, parallel({jobs}) {:.3} s -> {:.2}x, bit-identical: {identical}",
        rates.len(),
        t_serial,
        t_parallel,
        sweep_speedup
    );

    // Family 3 — independent replications (the burst-figure workload).
    let mut rep_cfg = template(mru, K_STREAMS);
    rep_cfg.population = rep_cfg.population.clone().with_rate(600.0);
    let n_reps = if quick { 4 } else { 8 };
    let (t_replicate, reps) = timed(|| replicate_jobs(jobs, &rep_cfg, n_reps));
    println!(
        "replications ({n_reps}): {:.3} s, {} stable",
        t_replicate, reps.stable_count
    );

    // Family 4 — the cross-validation matrix's simulator side.
    let (t_crossval, cells) = timed(|| sim_matrix_jobs(jobs, &smoke_matrix()));
    println!(
        "crossval sim matrix ({} cells): {:.3} s",
        cells.len(),
        t_crossval
    );

    let body = json_object(&[
        ("schema", "\"afs-bench-perf-v1\"".to_string()),
        ("quick", quick.to_string()),
        ("host_cores", host_cores.to_string()),
        ("afs_jobs", jobs.to_string()),
        ("sim_pkts_per_wall_s", format!("{sim_pkts_per_wall_s:.0}")),
        ("single_run_wall_s", format!("{t_single:.4}")),
        ("sweep_points", rates.len().to_string()),
        ("sweep_serial_wall_s", format!("{t_serial:.4}")),
        ("sweep_parallel_wall_s", format!("{t_parallel:.4}")),
        ("sweep_speedup", format!("{sweep_speedup:.3}")),
        ("sweep_bit_identical", identical.to_string()),
        ("replicate_runs", n_reps.to_string()),
        ("replicate_wall_s", format!("{t_replicate:.4}")),
        ("crossval_cells", cells.len().to_string()),
        ("crossval_sim_wall_s", format!("{t_crossval:.4}")),
    ]);
    write_json("BENCH_perf", &body);

    let mut checks = Checks::new();
    checks.expect("parallel sweep bit-identical to serial sweep", identical);
    checks.expect("single run delivered packets", report.delivered > 0);
    checks.expect(
        "parallel sweep not slower than 1.5x serial (sanity, any host)",
        t_parallel < 1.5 * t_serial + 0.25,
    );
    if host_cores >= 4 {
        checks.expect(
            "parallel sweep at least 2x faster on a >=4-core host",
            sweep_speedup >= 2.0,
        );
    } else {
        println!("  [SKIP] >=2x speedup check needs >=4 cores (host has {host_cores})");
    }
    checks.finish();
}
