//! Benchmark snapshot — the committed performance baseline.
//!
//! Times the workspace's representative experiment families and writes
//! `results/BENCH_perf.json`: simulated packets per wall-clock second
//! on the single-run hot path, wall time per experiment family, and the
//! serial-vs-parallel speedup of the `afs_core::par` executor — the
//! trajectory document future sessions diff their optimizations
//! against.
//!
//! The snapshot also *verifies* while it measures: the parallel sweep's
//! delays must be bit-identical to the serial sweep's (the executor's
//! core contract), and the process exits non-zero if they are not.
//!
//! `AFS_QUICK=1` shrinks the horizons for CI smoke runs; a committed
//! baseline should be regenerated without it. Wall-clock numbers are
//! machine-dependent — the JSON records the host's core count and the
//! worker count used so a diff is read in context.

use std::time::Instant;

use afs_bench::{
    banner, json_object, quick_mode, results_dir, template, write_json, Checks, K_STREAMS,
};
use afs_core::crossval::{sim_matrix_jobs, smoke_matrix};
use afs_core::par::{default_jobs, jobs_from_env};
use afs_core::prelude::*;
use afs_core::replicate::replicate_jobs;
use afs_core::state::{LocTable, Procs};
use afs_core::sweep::rate_sweep_jobs;
use afs_desim::event::EventQueue;
use afs_desim::time::SimTime;
use afs_native::{run_serve, ServeConfig};
use afs_sched::{ClaimTable, StealPolicy};

/// Wall time of `f` in seconds alongside its result.
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// A committed baseline number, read from `results/BENCH_perf.json`
/// *before* this run overwrites it. `None` when the file is absent,
/// unparseable, or predates the field (first run on a fresh tree).
fn committed_baseline(field: &str) -> Option<f64> {
    let text = std::fs::read_to_string(results_dir().join("BENCH_perf.json")).ok()?;
    let tail = text.split(&format!("\"{field}\":")).nth(1)?;
    tail.trim_start()
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

/// Event-queue op rate: a standing-population push/pop churn loop over
/// the calendar queue, the exact access pattern of the simulator's
/// schedule/fire cycle. Returns ops/second (one push or one pop = one
/// op).
fn event_queue_ops_per_s(pairs: u64) -> f64 {
    let mut q = EventQueue::new();
    for i in 0..1024u64 {
        q.push(SimTime::from_micros(i), i);
    }
    let (t, _) = timed(|| {
        let mut t_now = 1024u64;
        let mut acc = 0u64;
        for _ in 0..pairs {
            let (_, v) = q.pop().expect("standing population");
            acc ^= v;
            t_now += 1 + (acc & 7); // irregular gaps, data-dependent
            q.push(SimTime::from_micros(t_now), v);
        }
        acc
    });
    (2 * pairs) as f64 / t
}

/// Claim-arbitration op rate: drive a [`ClaimTable`] through a bursty
/// synthetic arrival stream and count resolved claims per wall second
/// (one offer -> one eventual claim; the stealing model's staging,
/// event scan, and steal visits are all on this path). This is the
/// dispatcher-side cost the virtual-order claim protocol (DESIGN.md
/// §17) added to every pooled pop and steal, so it gets its own
/// committed trajectory number.
fn claim_ops_per_s(jobs: u64, workers: usize, stealing: bool) -> f64 {
    const EST_US: f64 = 100.0;
    let (t, resolved) = timed(|| {
        let mut table = if stealing {
            ClaimTable::stealing(workers, EST_US, StealPolicy::default())
        } else {
            ClaimTable::pooled(workers, EST_US)
        };
        let mut out = Vec::with_capacity(1024);
        let mut resolved = 0u64;
        let mut t_us = 0.0;
        let mut acc = 0x9E37u64;
        for seq in 0..jobs {
            // Bursty irregular gaps around the service estimate and a
            // hot owner 0: owner pops, backlogs, and steal visits all
            // exercise; the data dependence defeats dead-code folding.
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            t_us += ((acc >> 33) & 127) as f64;
            let owner = if acc & 3 == 0 {
                (seq as usize) % workers
            } else {
                0
            };
            table.offer(seq, owner, t_us, &mut out);
            if out.len() >= 1024 {
                resolved += out.len() as u64;
                out.clear();
            }
        }
        table.flush(&mut out);
        resolved + out.len() as u64
    });
    assert_eq!(resolved, jobs, "claim churn lost jobs");
    resolved as f64 / t
}

fn main() {
    banner(
        "BENCH SNAPSHOT",
        "wall-clock baseline for the simulator hot path and the parallel executor",
        "methodology artifact: committed as results/BENCH_perf.json",
    );
    let quick = quick_mode();
    let host_cores = default_jobs();
    let jobs = jobs_from_env();
    println!("host cores: {host_cores}; AFS_JOBS resolved to {jobs}; quick = {quick}\n");

    // The committed baselines, read before this run overwrites the
    // file: the perf-regression gates below compare the fresh hot-path
    // and claim-arbitration numbers against them.
    let baseline_pkts_per_s = committed_baseline("sim_pkts_per_wall_s");
    let baseline_claim_steal_ops = committed_baseline("claim_steal_ops_per_s");

    let mru = Paradigm::Locking {
        policy: LockPolicy::Mru,
    };

    // Family 0 — the event core in isolation: calendar-queue ops/s under
    // the simulator's own schedule/fire churn pattern, plus the static
    // hot-state cost of one dispatch. Together they give future perf
    // PRs a finer-grained trajectory than the end-to-end number alone.
    let eq_pairs: u64 = if quick { 300_000 } else { 3_000_000 };
    let eq_ops_per_s = event_queue_ops_per_s(eq_pairs);
    // One Locking dispatch reads/writes one processor record and two
    // location records (thread stack + stream state).
    let hot_bytes_per_packet = Procs::hot_bytes_per_proc() + 2 * LocTable::hot_bytes_per_entity();
    println!(
        "event queue: {:.0} ops/s ({} push+pop pairs); hot state: {} B/proc, {} B/entity, {} B/packet",
        eq_ops_per_s,
        eq_pairs,
        Procs::hot_bytes_per_proc(),
        LocTable::hot_bytes_per_entity(),
        hot_bytes_per_packet
    );

    // Family 0b — steal-claim arbitration in isolation: resolved claims
    // per wall second through the dispatcher-side claim table, in both
    // modes, at the serving path's worker count.
    let claim_jobs: u64 = if quick { 200_000 } else { 2_000_000 };
    let claim_steal_ops = claim_ops_per_s(claim_jobs, 4, true);
    let claim_pooled_ops = claim_ops_per_s(claim_jobs, 4, false);
    println!(
        "claim arbitration ({claim_jobs} jobs, 4 workers): stealing {:.0} claims/s, pooled {:.0} claims/s",
        claim_steal_ops, claim_pooled_ops
    );

    // Family 1 — single-run hot path: simulated packets per wall second.
    // One moderate-load run, the unit every sweep point costs.
    let mut single = template(mru.clone(), K_STREAMS);
    single.population = single.population.clone().with_rate(700.0);
    let (t_single, report) = timed(|| run(&single));
    let sim_pkts_per_wall_s = report.delivered as f64 / t_single;
    println!(
        "single run: {} pkts delivered in {:.3} s wall = {:.0} simulated pkts/s",
        report.delivered, t_single, sim_pkts_per_wall_s
    );

    // Family 2 — a figure-style rate sweep, serial then parallel. The
    // speedup of this family is the executor's headline number; the
    // byte-identity of the two series is its correctness contract.
    let rates: Vec<f64> = (1..=8).map(|i| 250.0 * i as f64).collect();
    let sweep_tpl = template(mru.clone(), K_STREAMS);
    let (t_serial, serial) = timed(|| rate_sweep_jobs(1, "mru", &sweep_tpl, &rates));
    let (t_parallel, parallel) = timed(|| rate_sweep_jobs(jobs, "mru", &sweep_tpl, &rates));
    let sweep_speedup = t_serial / t_parallel.max(1e-9);
    let identical = serial.points.iter().zip(&parallel.points).all(|(a, b)| {
        a.report.mean_delay_us.to_bits() == b.report.mean_delay_us.to_bits()
            && a.report.delivered == b.report.delivered
    });
    println!(
        "rate sweep ({} pts): serial {:.3} s, parallel({jobs}) {:.3} s -> {:.2}x, bit-identical: {identical}",
        rates.len(),
        t_serial,
        t_parallel,
        sweep_speedup
    );

    // Family 3 — independent replications (the burst-figure workload).
    let mut rep_cfg = template(mru, K_STREAMS);
    rep_cfg.population = rep_cfg.population.clone().with_rate(600.0);
    let n_reps = if quick { 4 } else { 8 };
    let (t_replicate, reps) = timed(|| replicate_jobs(jobs, &rep_cfg, n_reps));
    println!(
        "replications ({n_reps}): {:.3} s, {} stable",
        t_replicate, reps.stable_count
    );

    // Family 4 — the cross-validation matrix's simulator side.
    let (t_crossval, cells) = timed(|| sim_matrix_jobs(jobs, &smoke_matrix()));
    println!(
        "crossval sim matrix ({} cells): {:.3} s",
        cells.len(),
        t_crossval
    );

    // Family 5 — the sustained-ingest serving path (`afs-serve`): host
    // packets per wall second through open-loop generation, admission,
    // batched dispatch and the real protocol engine, at rated load.
    // Batch 1 vs 64 is the dispatch-batching ablation; the virtual
    // results of the two runs must be bit-identical (the serving
    // path's transparency contract), so the speedup is pure host
    // mechanics. RSS after the run is the steady-state footprint of
    // the pooled, allocation-free pipeline.
    let serve_packets: u64 = if quick { 20_000 } else { 60_000 };
    let serve_trials = if quick { 1 } else { 3 };
    let serve_cell = |batch: usize| {
        let mut cfg = ServeConfig::new(
            2,
            20_000,
            afs_native::FrontEndKind::FlowDirector,
            afs_native::PolicySpec::MinReload,
        );
        cfg.native.pinning = afs_native::Pinning::Off;
        cfg.native.batch = batch;
        cfg.offered_pps = cfg.rated_capacity_pps();
        cfg.total_packets = serve_packets;
        cfg.warmup_packets = serve_packets / 5;
        run_serve(&cfg, None)
    };
    // Best of N trials per batch size: host wall time on a shared box
    // is contaminated by scheduling noise in one direction only, so the
    // fastest trial is the cleanest estimate (virtual results are
    // deterministic and identical across trials regardless).
    let serve_best = |batch: usize| {
        let mut best = serve_cell(batch);
        for _ in 1..serve_trials {
            let r = serve_cell(batch);
            if r.pkts_per_wall_s > best.pkts_per_wall_s {
                best = r;
            }
        }
        best
    };
    let serve1 = serve_best(1);
    let serve64 = serve_best(64);
    let serve_speedup = serve64.pkts_per_wall_s / serve1.pkts_per_wall_s.max(1e-9);
    let serve_identical = serve1.admitted == serve64.admitted
        && serve1.dropped == serve64.dropped
        && serve1.mean_delay_us.to_bits() == serve64.mean_delay_us.to_bits()
        && serve1.makespan_us.to_bits() == serve64.makespan_us.to_bits()
        && serve1.rebinds == serve64.rebinds;
    println!(
        "serve ({serve_packets} pkts @ rated load): batch 1 {:.0} pkts/s, batch 64 {:.0} pkts/s \
         -> {:.2}x, bit-identical: {serve_identical}, rss {} KiB",
        serve1.pkts_per_wall_s, serve64.pkts_per_wall_s, serve_speedup, serve64.rss_kb
    );

    let body = json_object(&[
        ("schema", "\"afs-bench-perf-v4\"".to_string()),
        ("quick", quick.to_string()),
        ("host_cores", host_cores.to_string()),
        ("afs_jobs", jobs.to_string()),
        ("sim_pkts_per_wall_s", format!("{sim_pkts_per_wall_s:.0}")),
        ("single_run_wall_s", format!("{t_single:.4}")),
        ("event_queue_ops_per_s", format!("{eq_ops_per_s:.0}")),
        ("claim_steal_ops_per_s", format!("{claim_steal_ops:.0}")),
        ("claim_pooled_ops_per_s", format!("{claim_pooled_ops:.0}")),
        (
            "hot_state_bytes_per_proc",
            Procs::hot_bytes_per_proc().to_string(),
        ),
        (
            "hot_state_bytes_per_entity",
            LocTable::hot_bytes_per_entity().to_string(),
        ),
        (
            "hot_state_bytes_per_packet",
            hot_bytes_per_packet.to_string(),
        ),
        ("sweep_points", rates.len().to_string()),
        ("sweep_serial_wall_s", format!("{t_serial:.4}")),
        ("sweep_parallel_wall_s", format!("{t_parallel:.4}")),
        ("sweep_speedup", format!("{sweep_speedup:.3}")),
        ("sweep_bit_identical", identical.to_string()),
        ("replicate_runs", n_reps.to_string()),
        ("replicate_wall_s", format!("{t_replicate:.4}")),
        ("crossval_cells", cells.len().to_string()),
        ("crossval_sim_wall_s", format!("{t_crossval:.4}")),
        ("serve_packets", serve_packets.to_string()),
        (
            "native_serve_pkts_per_wall_s",
            format!("{:.0}", serve64.pkts_per_wall_s),
        ),
        (
            "serve_batch1_pkts_per_wall_s",
            format!("{:.0}", serve1.pkts_per_wall_s),
        ),
        ("serve_batch_speedup", format!("{serve_speedup:.3}")),
        ("serve_bit_identical", serve_identical.to_string()),
        ("serve_rss_kb", serve64.rss_kb.to_string()),
    ]);
    write_json("BENCH_perf", &body);

    let mut checks = Checks::new();
    checks.expect("parallel sweep bit-identical to serial sweep", identical);
    checks.expect("single run delivered packets", report.delivered > 0);
    // Perf-regression gate against the committed baseline. The margin
    // is deliberately wide (0.5x) because wall-clock numbers cross
    // hosts and the CI smoke run uses shortened horizons — the gate is
    // for algorithmic regressions in the event core / hot state (an
    // accidental O(n) queue shows up as 10-100x, not 2x), while honest
    // same-host comparisons read the JSON diff instead.
    match baseline_pkts_per_s {
        Some(base) => checks.expect(
            "hot path not slower than 0.5x the committed baseline",
            sim_pkts_per_wall_s >= 0.5 * base,
        ),
        None => println!("  [SKIP] no committed baseline to gate against"),
    }
    // The same 0.5x gate covers the claim-arbitration family: the
    // stealing-mode table is on the dispatch path of every pooled and
    // IPS serving run, so an accidentally quadratic model scan must
    // fail the snapshot, not surface as a mystery serving slowdown.
    match baseline_claim_steal_ops {
        Some(base) => checks.expect(
            "claim arbitration not slower than 0.5x the committed baseline",
            claim_steal_ops >= 0.5 * base,
        ),
        None => println!("  [SKIP] no committed claim-arbitration baseline to gate against"),
    }
    checks.expect(
        "parallel sweep not slower than 1.5x serial (sanity, any host)",
        t_parallel < 1.5 * t_serial + 0.25,
    );
    checks.expect(
        "serving ledger balances at both batch sizes",
        serve1.ledger_balanced() && serve64.ledger_balanced(),
    );
    checks.expect(
        "batch-64 serving bit-identical to batch-1 in the virtual domain",
        serve_identical,
    );
    // Same philosophy as the hot-path gate: this end-to-end ratio only
    // catches batching *hurting* materially. Per admitted packet the
    // engine executes ~µs of real protocol work while a ring op costs
    // ~ns, so on small/shared hosts the end-to-end ablation is OS
    // noise; the per-op amortization is pinned by the `ring_batch`
    // criterion group instead.
    checks.expect(
        "batched serving not materially slower than per-packet dispatch",
        serve_speedup >= 0.75,
    );
    if host_cores >= 4 {
        checks.expect(
            "parallel sweep at least 2x faster on a >=4-core host",
            sweep_speedup >= 2.0,
        );
    } else {
        println!("  [SKIP] >=2x speedup check needs >=4 cores (host has {host_cores})");
    }
    checks.finish();
}
