//! Figure 7 — Locking with many streams (K = 32 > N): the MRU/Wired
//! crossover.
//!
//! The paper's conclusion: "Under Locking, processors should be managed
//! MRU — except under high arrival rate, when Wired-Streams scheduling
//! performs better." With K = 32 streams over 8 processors, MRU wins at
//! low and moderate load (work-conserving, keeps the code footprint
//! concentrated) but saturates earlier than Wired, which never migrates
//! stream state and therefore has the lower service time — and the
//! higher capacity — at the top of the range.

use afs_bench::{artifacts, banner, print_table, quick_mode, Checks};
use afs_core::analysis::crossover_index;

fn main() {
    banner(
        "FIGURE 7",
        "Locking, K = 32 streams: MRU vs Wired crossover at high rate",
        "MRU except under high arrival rate, when Wired-Streams performs better",
    );
    let k = 32;
    let data = artifacts::fig07(quick_mode());
    print_table("pkts/s/stream", &data.rates, &data.series);
    data.artifact.write();
    let rates = &data.rates;

    let mru = &data.series[1];
    let wired = &data.series[2];
    let mut checks = Checks::new();
    checks.expect(
        "MRU better than Wired at low rate",
        mru.points[0].report.mean_delay_us < wired.points[0].report.mean_delay_us,
    );
    let cross = crossover_index(mru, wired);
    checks.expect(
        "a crossover exists: Wired wins at high rate",
        cross.is_some(),
    );
    if let Some(i) = cross {
        println!(
            "  crossover at ~{:.0} pkts/s/stream ({:.0} aggregate)",
            rates[i],
            rates[i] * k as f64
        );
        checks.expect(
            "crossover in the upper half of the range",
            i >= rates.len() / 2,
        );
    }
    checks.expect(
        "Wired survives to higher rates than MRU (capacity extension)",
        wired.max_stable_rate().unwrap_or(0.0) >= mru.max_stable_rate().unwrap_or(0.0),
    );
    checks.finish();
}
