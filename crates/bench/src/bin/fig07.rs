//! Figure 7 — Locking with many streams (K = 32 > N): the MRU/Wired
//! crossover.
//!
//! The paper's conclusion: "Under Locking, processors should be managed
//! MRU — except under high arrival rate, when Wired-Streams scheduling
//! performs better." With K = 32 streams over 8 processors, MRU wins at
//! low and moderate load (work-conserving, keeps the code footprint
//! concentrated) but saturates earlier than Wired, which never migrates
//! stream state and therefore has the lower service time — and the
//! higher capacity — at the top of the range.

use afs_bench::{banner, print_table, series_rows, template, write_csv, Checks};
use afs_core::analysis::crossover_index;
use afs_core::prelude::*;

fn main() {
    banner(
        "FIGURE 7",
        "Locking, K = 32 streams: MRU vs Wired crossover at high rate",
        "MRU except under high arrival rate, when Wired-Streams performs better",
    );
    let k = 32;
    let rates: Vec<f64> = vec![
        50.0, 100.0, 200.0, 350.0, 500.0, 700.0, 900.0, 1100.0, 1250.0, 1350.0, 1450.0,
    ];
    let mru = rate_sweep(
        "mru",
        &template(
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
            k,
        ),
        &rates,
    );
    let wired = rate_sweep(
        "wired",
        &template(
            Paradigm::Locking {
                policy: LockPolicy::Wired,
            },
            k,
        ),
        &rates,
    );
    let base = rate_sweep(
        "baseline",
        &template(
            Paradigm::Locking {
                policy: LockPolicy::Baseline,
            },
            k,
        ),
        &rates,
    );
    let series = vec![base, mru, wired];
    print_table("pkts/s/stream", &rates, &series);
    let (header, rows) = series_rows(&rates, &series);
    write_csv("fig07", &header, &rows);

    let mru = &series[1];
    let wired = &series[2];
    let mut checks = Checks::new();
    checks.expect(
        "MRU better than Wired at low rate",
        mru.points[0].report.mean_delay_us < wired.points[0].report.mean_delay_us,
    );
    let cross = crossover_index(mru, wired);
    checks.expect(
        "a crossover exists: Wired wins at high rate",
        cross.is_some(),
    );
    if let Some(i) = cross {
        println!(
            "  crossover at ~{:.0} pkts/s/stream ({:.0} aggregate)",
            rates[i],
            rates[i] * k as f64
        );
        checks.expect(
            "crossover in the upper half of the range",
            i >= rates.len() / 2,
        );
    }
    checks.expect(
        "Wired survives to higher rates than MRU (capacity extension)",
        wired.max_stable_rate().unwrap_or(0.0) >= mru.max_stable_rate().unwrap_or(0.0),
    );
    checks.finish();
}
