//! Extension E19 — TCP receive-side processing under affinity
//! scheduling.
//!
//! The paper: *"Although TCP is a far more complex protocol than UDP, our
//! results are likely to hold directly for TCP … the breakdowns of
//! overall processing time overheads for TCP and UDP packets are very
//! similar, \[and\] at its most influential (1-byte packets) TCP-specific
//! processing only accounts for around 15 % of overall packet execution
//! time"* — and names TCP affinity scheduling as a compelling problem.
//!
//! This experiment (1) calibrates the TCP receive path the same way
//! Section 4 calibrates UDP, verifying the ~15 % share; (2) re-runs the
//! Locking policy comparison with the TCP-calibrated bounds, verifying
//! the paper's conjecture that the conclusions carry over.

use afs_bench::{banner, template, write_csv, Checks, K_STREAMS};
use afs_cache::model::exec_time::{ComponentWeights, TimeBounds};
use afs_cache::sim::trace::Region;
use afs_core::prelude::*;
use afs_xkernel::driver::{PacketFactory, RxFrame};
use afs_xkernel::mem::MemLayout;
use afs_xkernel::{CostModel, ProtocolEngine, StreamId, ThreadId};

/// Mean TCP receive time under a per-packet cache-state preparation.
fn measure_tcp(prep: &mut dyn FnMut(&mut afs_cache::sim::hierarchy::MemoryHierarchy)) -> f64 {
    let cost = CostModel::default();
    let mut eng = ProtocolEngine::new(cost);
    eng.bind_tcp_stream(StreamId(0), 0);
    let mut hier = cost.hierarchy();
    let mut factory = PacketFactory::new();
    let layout = MemLayout::new();
    let warmup = 30;
    let measure = 20;
    let mut total = 0.0;
    for i in 0..(warmup + measure) {
        hier.purge_region(Region::PacketData);
        prep(&mut hier);
        let frame = RxFrame {
            bytes: factory.tcp_frame_for(StreamId(0), i, b"x"),
            stream: StreamId(0),
            buf_addr: layout.packet(i % 8),
        };
        let (t, _) = eng
            .receive_tcp(&mut hier, &frame, ThreadId(0))
            .expect("calibration frames are valid");
        if i >= warmup {
            total += t.us;
        }
    }
    total / measure as f64
}

fn main() {
    banner(
        "EXT E19",
        "TCP receive-side affinity scheduling",
        "paper: results likely hold for TCP; TCP-specific share ~15% at 1-byte packets",
    );

    // (1) TCP bounds via the Section-4 method.
    let t_warm = measure_tcp(&mut |_| {});
    let t_l2 = measure_tcp(&mut |h| h.flush_l1());
    let t_cold = measure_tcp(&mut |h| h.flush_all());
    println!("TCP receive bounds: warm {t_warm:.1} / L2 {t_l2:.1} / cold {t_cold:.1} us");
    println!("  (UDP:             warm 151.1 / L2 226.3 / cold 284.1 us)");
    let warm_share = t_warm / 151.1 - 1.0;
    let cold_share = t_cold / 284.1 - 1.0;
    println!(
        "  TCP-specific share: {:.1}% warm, {:.1}% cold   [paper: ~15%]",
        100.0 * warm_share,
        100.0 * cold_share
    );

    // (2) The Locking policy comparison with TCP bounds.
    let exec = ExecParams::from_bounds(
        TimeBounds::new(t_warm, t_l2.clamp(t_warm, t_cold), t_cold),
        ComponentWeights::nominal(),
        ExecParams::calibrated().lock_overhead_us,
    );
    let k = K_STREAMS;
    let rates = [200.0, 800.0, 1600.0, 2200.0];
    println!(
        "\n{:>10} {:>12} {:>12} {:>12} {:>12}",
        "rate/s", "baseline", "mru", "wired", "reduction%"
    );
    let mut rows = vec![
        format!("t_warm_us,{t_warm:.2}"),
        format!("t_l2_us,{t_l2:.2}"),
        format!("t_cold_us,{t_cold:.2}"),
    ];
    let mut gains = Vec::new();
    for &r in &rates {
        let mk = |policy: LockPolicy| {
            let mut c = template(Paradigm::Locking { policy }, k);
            c.exec = exec;
            c.population = c.population.clone().with_rate(r);
            run(&c)
        };
        let base = mk(LockPolicy::Baseline);
        let mru = mk(LockPolicy::Mru);
        let wired = mk(LockPolicy::Wired);
        if base.stable && mru.stable {
            let best = if wired.stable {
                mru.mean_delay_us.min(wired.mean_delay_us)
            } else {
                mru.mean_delay_us
            };
            let red = 100.0 * (1.0 - best / base.mean_delay_us);
            println!(
                "{r:>10.0} {:>12.1} {:>12.1} {:>12.1} {red:>12.1}",
                base.mean_delay_us,
                mru.mean_delay_us,
                if wired.stable {
                    wired.mean_delay_us
                } else {
                    f64::NAN
                },
            );
            rows.push(format!("reduction_at_{r:.0},{red:.2}"));
            gains.push(red);
        }
    }
    write_csv("ext19_tcp", "key,value", &rows);

    let mut checks = Checks::new();
    checks.expect(
        "TCP-specific warm share near the paper's ~15% (8-25%)",
        (0.08..0.25).contains(&warm_share),
    );
    checks.expect(
        "TCP-specific share SMALLER at cold (fixed costs dominate)",
        cold_share < warm_share,
    );
    checks.expect(
        "TCP bounds ordered warm < L2 < cold",
        t_warm < t_l2 && t_l2 < t_cold,
    );
    checks.expect(
        "affinity conclusions carry over to TCP (positive gains everywhere)",
        !gains.is_empty() && gains.iter().all(|&g| g > 3.0),
    );
    checks.finish();
}
