//! Extension E16 — the hybrid policy of TR-94-075.
//!
//! "These observations lead us to propose a hybrid approach for a
//! specific class of streams, which offers the best overall performance:
//! high message throughput, high intra-stream scalability, and
//! robustness in the presence of bursty arrivals."
//!
//! Realization: streams that need *intra-stream scalability* — hot
//! streams whose rate exceeds a single processor — are pooled through
//! MRU scheduling (they can fan out), while the moderate tail is *wired*
//! for perfect affinity. Pure Wired collapses when one stream outgrows
//! its processor; pure MRU sacrifices the tail's affinity; the hybrid
//! keeps both properties.

use afs_bench::{banner, template, write_csv, Checks};
use afs_core::prelude::*;

fn main() {
    banner(
        "EXT E16",
        "Hybrid policy: pool the hot streams, wire the moderate tail",
        "TR-94-075's hybrid: throughput + intra-stream scalability + burst robustness",
    );
    // 2 hot streams (up to beyond single-processor capacity) + 14
    // moderate streams.
    let hot = 2usize;
    let k = 16usize;
    let moderate_rate = 400.0;
    let hot_rates = [3000.0, 5000.0, 7000.0, 8000.0];
    // Hybrid mask: wire everything EXCEPT the hot streams.
    let wired_mask: Vec<bool> = (0..k).map(|s| s >= hot).collect();

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "hot rate", "mru (us)", "wired (us)", "hybrid (us)", "hybrid tail(us)"
    );
    let mut rows = Vec::new();
    let mut outcome = Vec::new();
    for &hr in &hot_rates {
        let pop = Population::hot_cold(hot, hr, k - hot, moderate_rate);
        let mk = |policy: LockPolicy| {
            let mut c = template(Paradigm::Locking { policy }, k);
            c.population = pop.clone();
            c
        };
        let mru = run(&mk(LockPolicy::Mru));
        let wired = run(&mk(LockPolicy::Wired));
        let hybrid = run(&mk(LockPolicy::Hybrid {
            wired: wired_mask.clone(),
        }));
        let tail_delay = |r: &RunReport| {
            let tail = &r.per_stream_delay_us[hot..];
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        let fmt = |r: &RunReport| {
            if r.stable {
                format!("{:.1}", r.mean_delay_us)
            } else {
                "unstable".into()
            }
        };
        println!(
            "{hr:>10.0} {:>12} {:>12} {:>12} {:>14.1}",
            fmt(&mru),
            fmt(&wired),
            fmt(&hybrid),
            tail_delay(&hybrid),
        );
        rows.push(format!(
            "{hr},{},{},{}",
            if mru.stable {
                format!("{:.2}", mru.mean_delay_us)
            } else {
                "inf".into()
            },
            if wired.stable {
                format!("{:.2}", wired.mean_delay_us)
            } else {
                "inf".into()
            },
            if hybrid.stable {
                format!("{:.2}", hybrid.mean_delay_us)
            } else {
                "inf".into()
            },
        ));
        outcome.push((mru, wired, hybrid));
    }
    write_csv("ext16_hybrid", "hot_rate,mru_us,wired_us,hybrid_us", &rows);

    let mut checks = Checks::new();
    checks.expect(
        "pure Wired collapses once a hot stream outgrows one processor",
        outcome.iter().any(|(_, w, _)| !w.stable),
    );
    checks.expect(
        "hybrid stays stable at every hot rate (intra-stream scalability)",
        outcome.iter().all(|(_, _, h)| h.stable),
    );
    checks.expect(
        "hybrid dominates pure Wired at every load",
        outcome
            .iter()
            .all(|(_, w, h)| !w.stable || (h.stable && h.mean_delay_us <= w.mean_delay_us)),
    );
    checks.expect(
        "hybrid overall within 10% of MRU or better",
        outcome
            .iter()
            .all(|(m, _, h)| !m.stable || h.mean_delay_us <= m.mean_delay_us * 1.10),
    );
    checks.finish();
}
