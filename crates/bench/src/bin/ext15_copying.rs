//! Extension E15 — incorporating the overhead of copying uncached packet
//! data (paper's future-work item iv).
//!
//! Copying proceeds at 32 bytes/µs on the paper's platform, so a packet
//! of `s` payload bytes adds `s/32` µs of affinity-insensitive work (the
//! paper's 4432-byte worst case is ≈ 139 µs). The experiment sweeps
//! payload size and reports both the delay and the relative benefit of
//! affinity scheduling, which shrinks as copying grows.

use afs_bench::{banner, template, write_csv, Checks, K_STREAMS};
use afs_core::prelude::*;
use afs_workload::SizeDist;

/// The paper's copy rate: 32 bytes per microsecond.
const COPY_RATE_BYTES_PER_US: f64 = 32.0;

fn main() {
    banner(
        "EXT E15",
        "Copying uncached packet data: affinity benefit vs packet size",
        "future-work item (iv); checksum/copy at 32 bytes/us, 4432 B -> 139 us",
    );
    let k = K_STREAMS;
    let sizes = [1.0, 256.0, 1024.0, 2048.0, 4432.0];
    let rate = 900.0;
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>12}",
        "bytes", "copy(us)", "baseline(us)", "mru(us)", "reduction%"
    );
    let mut rows = Vec::new();
    let mut reductions = Vec::new();
    for &size in &sizes {
        let copy_us = size / COPY_RATE_BYTES_PER_US;
        // Rescale the rate so utilization stays comparable as service
        // grows with size (else large packets saturate).
        let svc = ExecParams::calibrated().warm_service_us(copy_us, true);
        let r = rate * 162.0 / svc;
        let mk = |policy: LockPolicy| {
            let mut c = template(Paradigm::Locking { policy }, k);
            c.copy_us_per_byte = 1.0 / COPY_RATE_BYTES_PER_US;
            for s in &mut c.population.streams {
                s.sizes = SizeDist(afs_desim::Dist::constant(size));
            }
            c.population = c.population.clone().with_rate(r);
            c
        };
        let base = run(&mk(LockPolicy::Baseline));
        let mru = run(&mk(LockPolicy::Mru));
        let red = 100.0 * (1.0 - mru.mean_delay_us / base.mean_delay_us);
        println!(
            "{size:>8.0} {copy_us:>10.1} {:>14.1} {:>14.1} {red:>12.1}",
            base.mean_delay_us, mru.mean_delay_us
        );
        rows.push(format!(
            "{size},{copy_us:.2},{:.2},{:.2},{red:.2}",
            base.mean_delay_us, mru.mean_delay_us
        ));
        reductions.push(red);
    }
    write_csv(
        "ext15_copying",
        "payload_bytes,copy_us,baseline_us,mru_us,reduction_pct",
        &rows,
    );

    let mut checks = Checks::new();
    checks.expect(
        "relative affinity benefit shrinks as copying grows",
        reductions.windows(2).all(|w| w[1] <= w[0] + 0.5),
    );
    checks.expect(
        "benefit at 1 byte clearly exceeds the benefit at 4432 bytes (>1.2x)",
        reductions[0] > 1.2 * reductions[4].max(0.1),
    );
    checks.expect(
        "worst-case copy cost ~139 us (4432 B at 32 B/us)",
        (4432.0 / COPY_RATE_BYTES_PER_US - 138.5).abs() < 0.1,
    );
    checks.finish();
}
