//! Figure 6 — affinity scheduling under Locking (K = N = 8 streams).
//!
//! Mean packet delay vs per-stream arrival rate for the Locking
//! paradigm, showing the marginal contribution of each affinity policy:
//! affinity-oblivious baseline → per-processor thread pools → MRU
//! processor scheduling → Wired-Streams.

use afs_bench::{artifacts, banner, print_table, quick_mode, Checks};
use afs_core::analysis::dominates;

fn main() {
    banner(
        "FIGURE 6",
        "Locking: mean packet delay vs arrival rate (K = 8 = N)",
        "affinity-based scheduling significantly reduces communication delay",
    );
    let data = artifacts::fig06(quick_mode());
    print_table("pkts/s/stream", &data.rates, &data.series);
    data.artifact.write();

    let mut checks = Checks::new();
    let base = &data.series[0];
    let pools = &data.series[1];
    let mru = &data.series[2];
    checks.expect(
        "per-processor pools dominate the baseline",
        dominates(pools, base, 0.02),
    );
    checks.expect(
        "MRU dominates per-processor pools",
        dominates(mru, pools, 0.02),
    );
    checks.expect("MRU dominates the baseline", dominates(mru, base, 0.0));
    // Affinity gain at a low-to-moderate rate.
    let gain = 1.0 - mru.points[1].report.mean_delay_us / base.points[1].report.mean_delay_us;
    checks.expect("MRU cuts delay vs baseline by >8% at low load", gain > 0.08);
    checks.finish();
}
