//! Figure 6 — affinity scheduling under Locking (K = N = 8 streams).
//!
//! Mean packet delay vs per-stream arrival rate for the Locking
//! paradigm, showing the marginal contribution of each affinity policy:
//! affinity-oblivious baseline → per-processor thread pools → MRU
//! processor scheduling → Wired-Streams.

use afs_bench::{banner, print_table, series_rows, template, write_csv, Checks};
use afs_core::analysis::dominates;
use afs_core::prelude::*;

fn main() {
    banner(
        "FIGURE 6",
        "Locking: mean packet delay vs arrival rate (K = 8 = N)",
        "affinity-based scheduling significantly reduces communication delay",
    );
    let k = 8;
    let rates: Vec<f64> = vec![
        200.0, 400.0, 800.0, 1400.0, 2000.0, 2800.0, 3600.0, 4200.0, 4800.0, 5200.0,
    ];
    let policies = [
        ("baseline", LockPolicy::Baseline),
        ("pools", LockPolicy::Pools),
        ("mru", LockPolicy::Mru),
        ("wired", LockPolicy::Wired),
    ];
    let mut series = Vec::new();
    for (label, p) in policies {
        let t = template(Paradigm::Locking { policy: p }, k);
        series.push(rate_sweep(label, &t, &rates));
    }
    print_table("pkts/s/stream", &rates, &series);
    let (header, rows) = series_rows(&rates, &series);
    write_csv("fig06", &header, &rows);

    let mut checks = Checks::new();
    let base = &series[0];
    let pools = &series[1];
    let mru = &series[2];
    checks.expect(
        "per-processor pools dominate the baseline",
        dominates(pools, base, 0.02),
    );
    checks.expect(
        "MRU dominates per-processor pools",
        dominates(mru, pools, 0.02),
    );
    checks.expect("MRU dominates the baseline", dominates(mru, base, 0.0));
    // Affinity gain at a low-to-moderate rate.
    let gain = 1.0 - mru.points[1].report.mean_delay_us / base.points[1].report.mean_delay_us;
    checks.expect("MRU cuts delay vs baseline by >8% at low load", gain > 0.08);
    checks.finish();
}
