//! Figure 3 (reconstructed) — measurement vs analytic model across
//! controlled cache states.
//!
//! The paper parameterizes its analytic execution-time model with the
//! Section-4 measurements; this figure validates the parameterization by
//! comparing, for each controlled cache state, the time the instrumented
//! engine *measures* against the time the analytic model *predicts*.

use afs_bench::{banner, write_csv, Checks};
use afs_cache::model::exec_time::{Age, ComponentAges};
use afs_core::ExecParams;
use afs_xkernel::{calibrate, CostModel};

fn main() {
    banner(
        "FIGURE 3",
        "Packet execution time by cache state: measured vs analytic model",
        "the simulation's analytic component is parameterized by measurement",
    );
    let cal = calibrate(&CostModel::default());
    let exec = ExecParams::calibrated();
    let warm = ComponentAges::ALL_WARM;

    let predict = |ages: ComponentAges| exec.protocol_time(ages).as_micros_f64();
    let states: Vec<(&str, f64, f64)> = vec![
        ("warm", cal.bounds.t_warm_us, predict(warm)),
        (
            "thread purged",
            cal.t_thread_us,
            predict(ComponentAges {
                thread: Age::Cold,
                ..warm
            }),
        ),
        (
            "stream purged",
            cal.t_stream_us,
            predict(ComponentAges {
                stream: Age::Cold,
                ..warm
            }),
        ),
        (
            "code purged",
            cal.t_code_global_us,
            predict(ComponentAges {
                code_global: Age::Cold,
                ..warm
            }),
        ),
        ("L1 flushed", cal.bounds.t_l2_us, {
            // L1 gone, L2 intact: F1 = 1, F2 = 0 for every component.
            // The analytic model expresses that exactly at the t_L2 bound.
            exec.model.bounds.t_l2_us
        }),
        (
            "all flushed",
            cal.bounds.t_cold_us,
            predict(ComponentAges::ALL_COLD),
        ),
    ];

    println!(
        "{:>16} {:>14} {:>14} {:>8}",
        "cache state", "measured (us)", "model (us)", "err %"
    );
    let mut rows = Vec::new();
    let mut worst = 0.0f64;
    for (name, measured, model) in &states {
        let err = 100.0 * (model - measured).abs() / measured;
        worst = worst.max(err);
        println!("{name:>16} {measured:>14.1} {model:>14.1} {err:>8.2}");
        rows.push(format!(
            "{},{:.2},{:.2},{:.3}",
            name.replace(' ', "_"),
            measured,
            model,
            err
        ));
    }
    write_csv("fig03", "state,measured_us,model_us,error_pct", &rows);

    let mut checks = Checks::new();
    checks.expect(
        "model matches measurement within 5% in every state",
        worst < 5.0,
    );
    checks.expect(
        "states ordered warm < partial purges < cold",
        cal.bounds.t_warm_us < cal.t_thread_us.min(cal.t_stream_us)
            && cal.t_code_global_us < cal.bounds.t_cold_us,
    );
    checks.finish();
}
