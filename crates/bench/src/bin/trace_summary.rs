//! `trace-summary` — human-readable digest of the unified observability
//! layer on both backends.
//!
//! Runs one representative scenario through the simulator (with a full
//! in-memory trace plus the engine probe) and the same-shaped workload
//! through the native pinned-thread runtime, then prints the
//! `afs_obs::summary` renderings side by side. Meant as the quick
//! profiling entry point: "what is the scheduler actually doing" without
//! wiring up a figure. Also sanity-checks the invariants the differential
//! suite locks down (conservation, recorder purity), so a broken trace
//! shows up here first.
//!
//! `--smoke` / `AFS_QUICK=1` shrinks the horizon; output is console-only
//! (no `results/` artifacts).

use afs_bench::{banner, template_with, Checks};
use afs_core::crossval::{smoke_matrix, CrossPolicy};
use afs_core::prelude::*;
use afs_native::crossval::{run_scenario, run_scenario_recorded};
use afs_obs::summary;

fn main() {
    let quick = std::env::args().any(|a| a == "--smoke") || afs_bench::quick_mode();
    banner(
        "TRACE SUMMARY",
        "Unified observability digest: simulator and native backends",
        "profiling hooks for the Sec 5/6 scheduling machinery",
    );

    let mut checks = Checks::new();

    // ------------------------------------------------------------------
    // Simulator: MRU vs baseline at a moderate load, full trace kept.
    // ------------------------------------------------------------------
    for (label, paradigm) in [
        (
            "locking/baseline",
            Paradigm::Locking {
                policy: LockPolicy::Baseline,
            },
        ),
        (
            "locking/mru",
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
        ),
    ] {
        let mut cfg = template_with(paradigm, 8, quick);
        cfg.population = cfg.population.clone().with_rate(1400.0);
        let plain = run(&cfg);
        let mut rec = MemRecorder::new();
        let (report, probe) = run_observed(&cfg, &mut rec);

        println!("sim {label} @ 1400 pps/stream");
        println!("  {}", summary::render(&rec.counters));
        println!("  {}", probe.render());
        println!(
            "  report: mean delay {:.1} us over {} packets, stable={}",
            report.mean_delay_us, report.delivered, report.stable
        );
        println!();

        checks.expect(
            &format!("{label}: recorder attach changes nothing"),
            plain == report,
        );
        let c = &rec.counters;
        checks.expect(
            &format!("{label}: enqueued = completed + evicted + in-flight"),
            c.enqueued as i64 == c.completed as i64 + c.evicted as i64 + c.in_flight(),
        );
        checks.expect(
            &format!("{label}: trace events are non-trivial"),
            rec.events.len() as u64 >= c.enqueued + c.completed,
        );
    }

    // ------------------------------------------------------------------
    // Native: the smoke crossval scenario across all three policies.
    // ------------------------------------------------------------------
    let scenario = &smoke_matrix()[0];
    for p in CrossPolicy::ALL {
        let plain = run_scenario(scenario, p);
        let (report, rec) = run_scenario_recorded(scenario, p);
        println!("native {} {}", scenario.label(), p.label());
        println!("  {}", summary::render(&rec.counters));
        println!(
            "  report: mean delay {:.1} us, offered {}, steals {}",
            report.mean_delay_us, report.offered, report.steals
        );
        println!();

        let c = &rec.counters;
        checks.expect(
            &format!("native {}: lossless accounting from trace", p.label()),
            c.enqueued == report.offered && c.completed == report.offered && c.in_flight() == 0,
        );
        checks.expect(
            &format!(
                "native {}: steal events match the runtime's count",
                p.label()
            ),
            c.steals == report.steals,
        );
        checks.expect(
            &format!(
                "native {}: offered totals agree with the plain run",
                p.label()
            ),
            plain.offered == report.offered,
        );
    }

    checks.finish();
}
