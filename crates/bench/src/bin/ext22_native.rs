//! Extension E22 — native-backend cross-validation.
//!
//! The simulator (the paper's methodology) and the `afs-native`
//! pinned-thread backend (real OS threads executing the instrumented
//! receive path) run the *same* scenario matrix, and this harness checks
//! that they agree on the paper's qualitative claims:
//!
//! * **Policy ordering** — mean delay obeys IPS ≤ locking-pool ≤
//!   oblivious on *both* backends (with a small documented slack).
//! * **Improvement band** — the relative service-time improvement of
//!   IPS over the oblivious baseline (the cache-affinity signal) agrees
//!   across backends within `IMPROVEMENT_TOLERANCE`.
//! * **Native bookkeeping** — the runtime is lossless (every offered
//!   packet is accounted for by a typed outcome) and migration counters
//!   rank the policies the way the model says they must.
//!
//! `--smoke` (or `AFS_QUICK=1`) runs the single-scenario smoke matrix —
//! the bounded CI configuration. Emits `results/ext22_native.csv`.

use afs_bench::{banner, write_csv, Checks};
use afs_core::crossval::{
    default_matrix, relative_improvement, sim_matrix, smoke_matrix, CrossPolicy,
    IMPROVEMENT_TOLERANCE, ORDERING_SLACK,
};
use afs_core::prelude::*;
use afs_native::crossval::run_scenario;
use afs_native::NativeReport;

/// Both backends' numbers for one (scenario, policy) cell.
struct Cell {
    sim: RunReport,
    native: NativeReport,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || std::env::var_os("AFS_QUICK").is_some();
    banner(
        "EXT E22",
        "Native pinned-thread backend vs. simulator",
        "cross-validation: the policy ordering and affinity win must reproduce on real threads",
    );
    let matrix = if smoke {
        smoke_matrix()
    } else {
        default_matrix()
    };
    let labels: Vec<&str> = CrossPolicy::ALL.iter().map(|p| p.label()).collect();
    println!(
        "{} scenario(s){}; policies: {}\n",
        matrix.len(),
        if smoke { " (smoke)" } else { "" },
        labels.join(" / ")
    );

    // The simulator side of every (scenario, policy) cell fans out on
    // the AFS_JOBS parallel executor — the runs are pure. The native
    // side stays serial below: its runs time real threads on the host's
    // real caches, and running them concurrently would perturb the very
    // effect being measured.
    let sim_cells = sim_matrix(&matrix);

    let mut checks = Checks::new();
    let mut rows: Vec<String> = Vec::new();

    for (si, s) in matrix.iter().enumerate() {
        println!(
            "scenario {}: {} workers, {} streams, {:.0} pkts/s/stream, {} pkts/stream",
            s.label(),
            s.workers,
            s.streams,
            s.rate_pps_per_stream,
            s.packets_per_stream
        );
        println!(
            "{:<12} {:>14} {:>14} {:>14} {:>14} {:>9} {:>8}",
            "policy", "sim delay", "native delay", "sim svc", "native svc", "migr", "steals"
        );
        let cells: Vec<(CrossPolicy, Cell)> = CrossPolicy::ALL
            .iter()
            .enumerate()
            .map(|(pi, &p)| {
                let sim = &sim_cells[si * CrossPolicy::ALL.len() + pi];
                debug_assert_eq!(sim.policy, p);
                (
                    p,
                    Cell {
                        sim: sim.report.clone(),
                        native: run_scenario(s, p),
                    },
                )
            })
            .collect();
        for (p, c) in &cells {
            println!(
                "{:<12} {:>14.1} {:>14.1} {:>14.1} {:>14.1} {:>9} {:>8}",
                p.label(),
                c.sim.mean_delay_us,
                c.native.mean_delay_us,
                c.sim.mean_service_us,
                c.native.mean_service_us,
                c.native.stream_migrations,
                c.native.steals
            );
            rows.push(format!(
                "{},{},{:.3},{:.3},{:.3},{:.3},{},{},{},{}",
                s.label(),
                p.label(),
                c.sim.mean_delay_us,
                c.native.mean_delay_us,
                c.sim.mean_service_us,
                c.native.mean_service_us,
                c.native.stream_migrations,
                c.native.thread_migrations,
                c.native.steals,
                c.native.all_pinned
            ));
        }
        println!();

        let get = |p: CrossPolicy| &cells.iter().find(|(q, _)| *q == p).expect("cell ran").1;
        let obl = get(CrossPolicy::Oblivious);
        let lck = get(CrossPolicy::Locking);
        let ips = get(CrossPolicy::Ips);

        // Native bookkeeping: lossless, and every run completed.
        for (p, c) in &cells {
            checks.expect(
                &format!("{} {}: native run is lossless", s.label(), p.label()),
                c.native.outcomes.total() == c.native.offered
                    && c.native.outcomes.delivered == c.native.offered,
            );
            checks.expect(
                &format!("{} {}: both backends stable", s.label(), p.label()),
                c.sim.stable && c.native.recorded > 0,
            );
        }

        // Ordering on both backends.
        checks.expect(
            &format!(
                "{}: sim delay ordering ips <= locking <= oblivious",
                s.label()
            ),
            ips.sim.mean_delay_us <= ORDERING_SLACK * lck.sim.mean_delay_us
                && lck.sim.mean_delay_us <= ORDERING_SLACK * obl.sim.mean_delay_us,
        );
        checks.expect(
            &format!(
                "{}: native delay ordering ips <= locking <= oblivious",
                s.label()
            ),
            ips.native.mean_delay_us <= ORDERING_SLACK * lck.native.mean_delay_us
                && lck.native.mean_delay_us <= ORDERING_SLACK * obl.native.mean_delay_us,
        );

        // The affinity signal agrees across backends.
        let sim_impr = relative_improvement(obl.sim.mean_service_us, ips.sim.mean_service_us);
        let native_impr =
            relative_improvement(obl.native.mean_service_us, ips.native.mean_service_us);
        println!(
            "  service-time improvement of ips over oblivious: sim {:.1}%, native {:.1}%",
            100.0 * sim_impr,
            100.0 * native_impr
        );
        checks.expect(
            &format!("{}: both backends see a positive affinity win", s.label()),
            sim_impr > 0.0 && native_impr > 0.0,
        );
        checks.expect(
            &format!(
                "{}: improvement bands agree within {:.0} points",
                s.label(),
                100.0 * IMPROVEMENT_TOLERANCE
            ),
            (sim_impr - native_impr).abs() <= IMPROVEMENT_TOLERANCE,
        );

        // Migration telemetry ranks the policies as the model demands:
        // both shared-stack policies bounce stream state between
        // workers constantly; IPS pins it (rare steals aside). Under
        // the virtual-order claim protocol (DESIGN.md §17) pooled
        // claimants resolve by model clocks rather than ring races and
        // steals resolve against modeled backlog, so the deterministic
        // ratio sits near ~5-7x rather than the racy engine's >10x —
        // the structural claim is pinned at >4x.
        checks.expect(
            &format!(
                "{}: shared-stack policies migrate streams, ips pins them",
                s.label()
            ),
            obl.native.stream_migrations > 4 * ips.native.stream_migrations.max(1)
                && lck.native.stream_migrations > 4 * ips.native.stream_migrations.max(1),
        );
        checks.expect(
            &format!("{}: ips steals are bounded, not a freeway", s.label()),
            ips.native.steals < ips.native.offered / 4,
        );

        // The unified-layer policies (mru-load, min-reload): each stays
        // within the delay slack of the oblivious baseline on both
        // backends, shows a positive affinity win whose magnitude agrees
        // across backends, and keeps stream state more local than the
        // baseline.
        for p in [CrossPolicy::MruLoad, CrossPolicy::MinReload] {
            let new = get(p);
            checks.expect(
                &format!(
                    "{} {}: no delay regression vs oblivious, both backends",
                    s.label(),
                    p.label()
                ),
                new.sim.mean_delay_us <= ORDERING_SLACK * obl.sim.mean_delay_us
                    && new.native.mean_delay_us <= ORDERING_SLACK * obl.native.mean_delay_us,
            );
            let sim_impr = relative_improvement(obl.sim.mean_service_us, new.sim.mean_service_us);
            let native_impr =
                relative_improvement(obl.native.mean_service_us, new.native.mean_service_us);
            println!(
                "  service-time improvement of {} over oblivious: sim {:.1}%, native {:.1}%",
                p.label(),
                100.0 * sim_impr,
                100.0 * native_impr
            );
            checks.expect(
                &format!(
                    "{} {}: positive affinity win on both backends",
                    s.label(),
                    p.label()
                ),
                sim_impr > 0.0 && native_impr > 0.0,
            );
            checks.expect(
                &format!(
                    "{} {}: improvement bands agree within {:.0} points",
                    s.label(),
                    p.label(),
                    100.0 * IMPROVEMENT_TOLERANCE
                ),
                (sim_impr - native_impr).abs() <= IMPROVEMENT_TOLERANCE,
            );
            checks.expect(
                &format!(
                    "{} {}: keeps streams more local than oblivious",
                    s.label(),
                    p.label()
                ),
                new.native.stream_migrations < obl.native.stream_migrations,
            );
        }
        println!();
    }

    write_csv(
        "ext22_native",
        "scenario,policy,sim_delay_us,native_delay_us,sim_service_us,native_service_us,\
         native_stream_migrations,native_thread_migrations,native_steals,native_all_pinned",
        &rows,
    );

    checks.finish();
}
