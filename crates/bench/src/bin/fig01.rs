//! Figure 1 — the system model.
//!
//! The paper's Figure 1 is the block diagram of the simulated system:
//! streams feeding a shared-memory multiprocessor whose processors run
//! protocol work under a paradigm/policy and fill every remaining cycle
//! with the general non-protocol workload. This binary renders the
//! diagram with the reproduction's calibrated parameters filled in, so
//! every figure number in the paper has a regeneration target.

use afs_bench::{banner, Checks};
use afs_xkernel::{calibrate, CostModel};

fn main() {
    banner(
        "FIGURE 1",
        "System model (with calibrated parameters)",
        "streams -> queues -> N processors; non-protocol work fills idle cycles",
    );
    let cal = calibrate(&CostModel::default());
    let platform = CostModel::default().platform();

    println!(
        r#"
 streams (K, Poisson/bursty/trains)             SGI Challenge XL model
 ───────────────────────────────────           ────────────────────────
  s0 ──┐                                        ┌────────────────────┐
  s1 ──┤   Locking: one shared stack,           │ P0 ┌────┐ ┌──────┐ │
  s2 ──┤     global FIFO / per-proc /           │    │ L1 │ │      │ │
   ⋮   ├─►   per-stream wired queues     ─────► │    │16KB│ │  L2  │ │
  sK ──┘   IPS: one queue per stack,            │    └────┘ │ 1 MB │ │
           stack serialized                     │  ⋮        └──────┘ │
                                                │ P{n} × {n_procs}          │
 non-protocol workload (infinite                └────────────────────┘
 backlog, SST/MVS locality) runs                 packet service time:
 whenever a processor is idle and                T = t_warm + Σ w_c ·
 erodes cached protocol state                    [F1·ΔL1 + F2·ΔL2] + V
"#,
        n_procs = 8,
        n = 7,
    );

    println!(
        "receive protocol graph (bottom-up): {}",
        afs_xkernel::proto::RECEIVE_GRAPH.join(" -> ")
    );
    println!("calibrated parameters:");
    println!(
        "  clock {:.0} MHz, m = {:.0} cycles/ref, L1 {} KB DM/{} B, L2 {} KB DM/{} B",
        platform.clock_hz / 1e6,
        platform.cycles_per_ref,
        platform.l1.capacity_bytes / 1024,
        platform.l1.line_bytes,
        platform.l2.capacity_bytes / 1024,
        platform.l2.line_bytes,
    );
    println!(
        "  t_warm {:.1} µs, t_L2 {:.1} µs, t_cold {:.1} µs (paper: 284.3)",
        cal.bounds.t_warm_us, cal.bounds.t_l2_us, cal.bounds.t_cold_us
    );
    println!(
        "  component weights: code/global {:.2}, thread {:.2}, stream {:.2}",
        cal.weights.code_global, cal.weights.thread, cal.weights.stream
    );
    println!(
        "  Locking overhead {:.1} µs/packet; V ∈ {{0, 35, 70, 139}} µs in Figures 10/11",
        cal.lock_overhead_us
    );

    let mut checks = Checks::new();
    checks.expect(
        "parameters consistent with Table 1",
        (cal.bounds.t_cold_us - 284.3).abs() / 284.3 < 0.05,
    );
    checks.finish();
}
