//! Extension E20 — concurrent-stream capacity at a delay target.
//!
//! The abstract's operational claim: affinity-based scheduling "enables
//! the host to support a greater number of concurrent streams". This
//! experiment measures it directly: for a fixed per-stream rate, grow
//! the stream population until the mean delay exceeds a target, per
//! configuration.

use afs_bench::{banner, write_csv, Checks, N_PROCS};
use afs_core::prelude::*;

/// Largest K meeting the delay target (exponential probe + bisection).
fn max_streams(mk: &dyn Fn(usize) -> SystemConfig, target_us: f64) -> usize {
    let meets = |k: usize| {
        let r = run(&mk(k));
        r.stable && r.mean_delay_us <= target_us
    };
    if !meets(1) {
        return 0;
    }
    let mut lo = 1usize;
    let mut hi = 2usize;
    while meets(hi) {
        lo = hi;
        hi *= 2;
        if hi > 1024 {
            return lo;
        }
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    banner(
        "EXT E20",
        "Concurrent streams supported at a mean-delay target",
        "affinity scheduling enables the host to support a greater number of concurrent streams",
    );
    let rate = 1_000.0;
    // A delay target between the affinity policies' service levels
    // (~210-230 us) and the affinity-oblivious baseline's (~255 us at
    // light load): an SLO the baseline cannot meet at ANY population,
    // while affinity scheduling carries dozens of streams. This is the
    // sharpest form of the abstract's "greater number of concurrent
    // streams" claim on this calibration.
    let target = 240.0;
    println!("per-stream rate {rate:.0} pkts/s, target mean delay {target:.0} us, {N_PROCS} processors\n");

    let cases: Vec<(&str, Paradigm)> = vec![
        (
            "lock-baseline",
            Paradigm::Locking {
                policy: LockPolicy::Baseline,
            },
        ),
        (
            "lock-mru",
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
        ),
        (
            "lock-wired",
            Paradigm::Locking {
                policy: LockPolicy::Wired,
            },
        ),
        (
            "ips-mru",
            Paradigm::Ips {
                policy: IpsPolicy::Mru,
                n_stacks: 0, // patched per K below
            },
        ),
        (
            "ips-wired",
            Paradigm::Ips {
                policy: IpsPolicy::Wired,
                n_stacks: 0, // patched per K below
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut results = Vec::new();
    println!("{:<16} {:>10}", "configuration", "streams");
    for (name, paradigm) in &cases {
        let paradigm = paradigm.clone();
        let mk = move |k: usize| {
            let p = match &paradigm {
                Paradigm::Ips { policy, .. } => Paradigm::Ips {
                    policy: *policy,
                    n_stacks: k,
                },
                other => other.clone(),
            };
            let mut cfg = SystemConfig::new(p, Population::homogeneous_poisson(k, rate));
            cfg.n_procs = N_PROCS;
            cfg.warmup = SimDuration::from_millis(200);
            cfg.horizon = SimDuration::from_millis(1_200);
            cfg
        };
        let k = max_streams(&mk, target);
        println!("{name:<16} {k:>10}");
        rows.push(format!("{name},{k}"));
        results.push((*name, k));
    }
    write_csv("ext20_stream_capacity", "configuration,streams", &rows);

    let baseline = results[0].1;
    let mru = results[1].1;
    let wired = results[2].1;
    let best_ips = results[3].1.max(results[4].1);
    let mut checks = Checks::new();
    checks.expect(
        "the affinity-oblivious baseline cannot meet the SLO at scale (< 8 streams)",
        baseline < 8,
    );
    checks.expect("MRU carries >= 20 streams at the same SLO", mru >= 20);
    checks.expect(
        "the best affinity configuration carries >= 25 streams",
        mru.max(wired).max(best_ips) >= 25,
    );
    checks.finish();
}
