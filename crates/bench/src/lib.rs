#![warn(missing_docs)]

//! # afs-bench — the experiment harness
//!
//! One binary per table/figure of the paper (plus the extension
//! experiments), each of which:
//!
//! 1. runs the workloads that generate the artifact,
//! 2. prints the same rows/series the paper reports,
//! 3. writes a CSV under `results/`, and
//! 4. checks the *shape* expectations recorded in DESIGN.md §4 and
//!    prints PASS/FAIL lines (the process exits non-zero on FAIL so the
//!    harness can gate CI).
//!
//! Absolute numbers are not expected to match the paper (our substrate
//! is a simulator, not the authors' Challenge XL); the checked claims
//! are orderings, crossovers, and the calibrated anchors.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use afs_core::prelude::*;
use afs_core::sweep::SweepPoint;

pub mod artifacts;

/// Standard experiment scale: the paper's 8-processor Challenge XL.
pub const N_PROCS: usize = 8;
/// Default stream population for the delay figures.
pub const K_STREAMS: usize = 16;

/// Directory where CSV outputs land.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Print the experiment banner.
pub fn banner(id: &str, title: &str, paper_note: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("  paper: {paper_note}");
    println!("================================================================");
}

/// Tracks shape-check outcomes and renders the final verdict.
#[derive(Debug, Default)]
pub struct Checks {
    failures: u32,
    total: u32,
}

impl Checks {
    /// New empty check set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one expectation.
    pub fn expect(&mut self, name: &str, ok: bool) {
        self.total += 1;
        if ok {
            println!("  [PASS] {name}");
        } else {
            self.failures += 1;
            println!("  [FAIL] {name}");
        }
    }

    /// Number of failures so far.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Exit the process with a summary (non-zero on failure).
    pub fn finish(self) {
        println!(
            "shape checks: {}/{} passed",
            self.total - self.failures,
            self.total
        );
        if self.failures > 0 {
            std::process::exit(1);
        }
    }
}

/// Write rows to `results/<name>.csv`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 2);
    let _ = writeln!(out, "{header}");
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    fs::write(&path, out).expect("write csv");
    println!("  wrote {}", path.display());
}

/// Write a pre-rendered JSON document to `results/<name>.json`.
///
/// The workspace carries no serde; experiment binaries render their own
/// rows (all keys and values are program-generated, so no escaping is
/// needed).
pub fn write_json(name: &str, body: &str) {
    let path = results_dir().join(format!("{name}.json"));
    fs::write(&path, body).expect("write json");
    println!("  wrote {}", path.display());
}

/// Render `(key, value)` pairs as one JSON object. Values are inserted
/// verbatim — pass `"42"`, `"true"`, or an already-quoted string.
pub fn json_object(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{k}\": {v}");
    }
    out.push('}');
    out
}

/// The canonical simulation template used by the delay figures.
///
/// Setting `AFS_QUICK=1` in the environment shrinks the horizon ~4x for
/// smoke runs (CI); the shape checks are tuned for the full horizon and
/// may be noisier in quick mode.
pub fn template(paradigm: Paradigm, k: usize) -> SystemConfig {
    template_with(paradigm, k, quick_mode())
}

/// Whether the environment asked for the shortened smoke horizon.
pub fn quick_mode() -> bool {
    std::env::var_os("AFS_QUICK").is_some()
}

/// [`template`] with the horizon chosen explicitly instead of from the
/// environment. The golden-artifact regression tests always pass
/// `quick = false` so they reproduce the committed CSVs regardless of
/// how the test run itself was invoked.
pub fn template_with(paradigm: Paradigm, k: usize, quick: bool) -> SystemConfig {
    let mut cfg = SystemConfig::new(paradigm, Population::homogeneous_poisson(k, 100.0));
    cfg.n_procs = N_PROCS;
    if quick {
        cfg.warmup = SimDuration::from_millis(150);
        cfg.horizon = SimDuration::from_millis(650);
    } else {
        cfg.warmup = SimDuration::from_millis(300);
        cfg.horizon = SimDuration::from_millis(2_300);
    }
    cfg
}

/// Canonical IPS paradigm for the figures: one stack per stream.
pub fn ips(policy: IpsPolicy, k: usize) -> Paradigm {
    Paradigm::Ips {
        policy,
        n_stacks: k,
    }
}

/// Format one sweep point's delay for a table cell.
pub fn cell(p: &SweepPoint) -> String {
    if p.report.stable {
        format!("{:>12.1}", p.report.mean_delay_us)
    } else {
        format!("{:>12}", "unstable")
    }
}

/// Print several series against a shared rate grid.
pub fn print_table(x_label: &str, rates: &[f64], series: &[Series]) {
    print!("{x_label:>12}");
    for s in series {
        print!(" {:>12}", s.label);
    }
    println!();
    for (i, r) in rates.iter().enumerate() {
        print!("{r:>12.0}");
        for s in series {
            match s.points.get(i) {
                Some(p) => print!(" {}", cell(p)),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
}

/// CSV rows for a set of series on a shared grid.
pub fn series_rows(rates: &[f64], series: &[Series]) -> (String, Vec<String>) {
    let mut header = String::from("rate_per_stream");
    for s in series {
        let _ = write!(header, ",{}", s.label.replace(' ', "_"));
    }
    let rows = rates
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut row = format!("{r}");
            for s in series {
                match s.points.get(i) {
                    Some(p) if p.report.stable => {
                        let _ = write!(row, ",{:.2}", p.report.mean_delay_us);
                    }
                    _ => row.push_str(",inf"),
                }
            }
            row
        })
        .collect();
    (header, rows)
}

/// The rate grid used by the Locking/IPS delay figures (packets/second
/// per stream, K = 16 → aggregate up to 44 800 pps ≈ past the knee).
pub fn standard_rates() -> Vec<f64> {
    vec![
        100.0, 200.0, 400.0, 700.0, 1000.0, 1400.0, 1800.0, 2100.0, 2400.0, 2600.0, 2800.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn template_is_valid() {
        template(
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
            4,
        )
        .validate();
        template(ips(IpsPolicy::Wired, 4), 4).validate();
    }

    #[test]
    fn checks_count() {
        let mut c = Checks::new();
        c.expect("a", true);
        assert_eq!(c.failures(), 0);
        c.expect("b", false);
        assert_eq!(c.failures(), 1);
    }

    #[test]
    fn series_rows_formats_instability_as_inf() {
        let t = template(
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
            2,
        );
        let mut quick = t.clone();
        quick.horizon = SimDuration::from_millis(400);
        quick.warmup = SimDuration::from_millis(80);
        let s = rate_sweep("mru", &quick, &[100.0, 30_000.0]);
        let (header, rows) = series_rows(&[100.0, 30_000.0], &[s]);
        assert!(header.starts_with("rate_per_stream"));
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].contains("inf"), "{}", rows[0]);
        assert!(rows[1].contains("inf"), "{}", rows[1]);
    }

    #[test]
    fn json_object_renders_flat_pairs() {
        let o = json_object(&[
            ("a", "1".into()),
            ("b", "true".into()),
            ("c", "\"x\"".into()),
        ]);
        assert_eq!(o, "{\"a\": 1, \"b\": true, \"c\": \"x\"}");
    }

    #[test]
    fn standard_rates_ascending() {
        let r = standard_rates();
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }
}
