//! Row generation for the golden artifacts.
//!
//! The figure/table binaries and the golden regression tests must agree
//! on the exact bytes that land in `results/`. This module is the
//! single source of those rows: each function builds the sweeps (or
//! calibration) for one artifact and returns an [`Artifact`] whose
//! [`Artifact::csv_bytes`] are byte-for-byte what [`crate::write_csv`]
//! persists. `tests/golden_artifacts.rs` diffs that against the
//! committed CSVs, so any change to the simulator that perturbs these
//! numbers fails loudly instead of silently rewriting the results.

use std::fmt::Write as _;

use afs_core::prelude::*;
use afs_xkernel::{calibrate, Calibration, CostModel};

use crate::{series_rows, template_with, write_csv};

/// One rendered CSV artifact: the name under `results/` plus the exact
/// header and rows the binary writes.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// File stem under `results/` (the binary writes `<name>.csv`).
    pub name: &'static str,
    /// CSV header line (no trailing newline).
    pub header: String,
    /// CSV data rows (no trailing newlines).
    pub rows: Vec<String>,
}

impl Artifact {
    /// The exact file contents [`crate::write_csv`] produces.
    pub fn csv_bytes(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 32 + self.header.len() + 2);
        let _ = writeln!(out, "{}", self.header);
        for r in &self.rows {
            let _ = writeln!(out, "{r}");
        }
        out
    }

    /// Persist under `results/<name>.csv` via [`crate::write_csv`].
    pub fn write(&self) {
        write_csv(self.name, &self.header, &self.rows);
    }
}

/// A delay-vs-rate figure: the sweep grid, the swept series (for shape
/// checks and console tables), and the rendered artifact.
#[derive(Debug)]
pub struct FigureData {
    /// Per-stream arrival-rate grid (packets/second).
    pub rates: Vec<f64>,
    /// One swept series per policy, in the order the figure plots them.
    pub series: Vec<Series>,
    /// The rendered CSV.
    pub artifact: Artifact,
}

/// Figure 6 — Locking paradigm, K = 8 = N: baseline → pools → MRU →
/// Wired. Series order matches the plot legend.
pub fn fig06(quick: bool) -> FigureData {
    let k = 8;
    let rates: Vec<f64> = vec![
        200.0, 400.0, 800.0, 1400.0, 2000.0, 2800.0, 3600.0, 4200.0, 4800.0, 5200.0,
    ];
    let policies = [
        ("baseline", LockPolicy::Baseline),
        ("pools", LockPolicy::Pools),
        ("mru", LockPolicy::Mru),
        ("wired", LockPolicy::Wired),
    ];
    let mut series = Vec::new();
    for (label, p) in policies {
        let t = template_with(Paradigm::Locking { policy: p }, k, quick);
        series.push(rate_sweep(label, &t, &rates));
    }
    let (header, rows) = series_rows(&rates, &series);
    FigureData {
        rates,
        series,
        artifact: Artifact {
            name: "fig06",
            header,
            rows,
        },
    }
}

/// Figure 7 — Locking with K = 32 > N: the MRU/Wired crossover.
/// Series order: baseline, mru, wired.
pub fn fig07(quick: bool) -> FigureData {
    let k = 32;
    let rates: Vec<f64> = vec![
        50.0, 100.0, 200.0, 350.0, 500.0, 700.0, 900.0, 1100.0, 1250.0, 1350.0, 1450.0,
    ];
    let policies = [
        ("baseline", LockPolicy::Baseline),
        ("mru", LockPolicy::Mru),
        ("wired", LockPolicy::Wired),
    ];
    let mut series = Vec::new();
    for (label, p) in policies {
        let t = template_with(Paradigm::Locking { policy: p }, k, quick);
        series.push(rate_sweep(label, &t, &rates));
    }
    let (header, rows) = series_rows(&rates, &series);
    FigureData {
        rates,
        series,
        artifact: Artifact {
            name: "fig07",
            header,
            rows,
        },
    }
}

/// Table 1 — the calibration run plus its rendered key/value rows.
#[derive(Debug)]
pub struct Table1Data {
    /// The cost model the calibration ran against.
    pub cost: CostModel,
    /// Section-4 calibration results (bounds, footprints, overheads).
    pub cal: Calibration,
    /// The rendered CSV.
    pub artifact: Artifact,
}

/// Table 1 — platform parameters and measured per-packet time bounds.
/// Deterministic (no simulation horizon), so there is no quick mode.
pub fn table1() -> Table1Data {
    let cost = CostModel::default();
    let cal = calibrate(&cost);
    let rows = vec![
        format!("t_warm_us,{:.2}", cal.bounds.t_warm_us),
        format!("t_l2_us,{:.2}", cal.bounds.t_l2_us),
        format!("t_cold_us,{:.2}", cal.bounds.t_cold_us),
        "paper_t_cold_us,284.3".to_string(),
        format!("max_reduction,{:.4}", cal.max_reduction()),
        format!("instrs_per_packet,{}", cal.instrs_per_packet),
        format!("refs_per_packet,{}", cal.refs_per_packet),
        format!("lock_overhead_us,{:.2}", cal.lock_overhead_us),
    ];
    Table1Data {
        cost,
        cal,
        artifact: Artifact {
            name: "table1",
            header: "key,value".to_string(),
            rows,
        },
    }
}

/// The seeded-replay golden trace (E23): a small, fully deterministic
/// simulator run captured through the unified observability recorder and
/// rendered as JSONL. Committed under `results/ext23_trace_golden.jsonl`
/// and diffed byte-for-byte by `tests/golden_artifacts.rs` — identical
/// seed and configuration must reproduce the identical trace, which is
/// what pins the event schema, the emission order, and the numeric
/// formatting all at once.
pub fn obs_trace_golden() -> (RunReport, String) {
    let mut cfg = SystemConfig::new(
        Paradigm::Locking {
            policy: LockPolicy::Mru,
        },
        Population::homogeneous_poisson(4, 300.0),
    );
    cfg.n_procs = 2;
    cfg.warmup = SimDuration::from_millis(20);
    cfg.horizon = SimDuration::from_millis(120);
    let mut rec = MemRecorder::new();
    let (report, _probe) = run_observed(&cfg, &mut rec);
    (report, afs_obs::jsonl::render(&rec.events))
}

/// File name of the committed golden trace under `results/`.
pub const OBS_TRACE_GOLDEN_FILE: &str = "ext23_trace_golden.jsonl";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_bytes_match_write_csv_format() {
        let a = Artifact {
            name: "t",
            header: "a,b".into(),
            rows: vec!["1,2".into(), "3,4".into()],
        };
        assert_eq!(a.csv_bytes(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn obs_trace_golden_is_deterministic_and_nonempty() {
        let (ra, ta) = obs_trace_golden();
        let (rb, tb) = obs_trace_golden();
        assert_eq!(ra, rb, "replay must reproduce the report");
        assert_eq!(ta, tb, "replay must reproduce the trace bytes");
        assert!(ta.lines().count() > 100, "trace suspiciously small");
        assert!(ra.delivered > 0);
    }

    #[test]
    fn table1_rows_are_deterministic() {
        let a = table1().artifact;
        let b = table1().artifact;
        assert_eq!(a.csv_bytes(), b.csv_bytes());
        assert_eq!(a.header, "key,value");
        assert_eq!(a.rows.len(), 8);
    }
}
