//! Criterion benchmarks of the full scheduling simulator: how many
//! simulated packets per wall-clock second each paradigm/policy
//! processes. These set expectations for figure-regeneration times and
//! catch dispatch-path regressions (the policy scan is O(processors) or
//! O(stacks) per dispatch).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use afs_core::prelude::*;

/// One short run: ~0.25 simulated seconds at moderate load.
fn short_cfg(paradigm: Paradigm) -> SystemConfig {
    let mut cfg = SystemConfig::new(paradigm, Population::homogeneous_poisson(16, 800.0));
    cfg.warmup = SimDuration::from_millis(50);
    cfg.horizon = SimDuration::from_millis(250);
    cfg
}

fn bench_paradigms(c: &mut Criterion) {
    // Pre-warm the calibration cache so the first benchmark doesn't pay it.
    let _ = ExecParams::calibrated();
    let mut g = c.benchmark_group("sim_run_250ms_12800pps");
    g.sample_size(20);
    // ~3200 packets per run.
    g.throughput(Throughput::Elements(3_200));
    let cases: Vec<(&str, Paradigm)> = vec![
        (
            "locking_baseline",
            Paradigm::Locking {
                policy: LockPolicy::Baseline,
            },
        ),
        (
            "locking_mru",
            Paradigm::Locking {
                policy: LockPolicy::Mru,
            },
        ),
        (
            "locking_wired",
            Paradigm::Locking {
                policy: LockPolicy::Wired,
            },
        ),
        (
            "ips_wired_16",
            Paradigm::Ips {
                policy: IpsPolicy::Wired,
                n_stacks: 16,
            },
        ),
        (
            "ips_mru_16",
            Paradigm::Ips {
                policy: IpsPolicy::Mru,
                n_stacks: 16,
            },
        ),
    ];
    for (name, paradigm) in cases {
        g.bench_function(name, |b| {
            b.iter_batched(
                || short_cfg(paradigm.clone()),
                |cfg| run(&cfg),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_parallel_executor(c: &mut Criterion) {
    // The afs_core::par fan-out against its own serial fallback on a
    // small figure-style sweep. On a multi-core host the parallel case
    // should approach jobs× the serial one; on one core they tie (the
    // executor's overhead is a handful of thread spawns per sweep).
    let _ = ExecParams::calibrated();
    let mut g = c.benchmark_group("parallel_sweep_6pt");
    g.sample_size(10);
    let template = short_cfg(Paradigm::Locking {
        policy: LockPolicy::Mru,
    });
    let rates: Vec<f64> = (1..=6).map(|i| 300.0 * i as f64).collect();
    g.bench_function("serial", |b| {
        b.iter(|| afs_core::sweep::rate_sweep_jobs(1, "s", &template, &rates));
    });
    let jobs = afs_core::par::default_jobs();
    g.bench_function("all_cores", |b| {
        b.iter(|| afs_core::sweep::rate_sweep_jobs(jobs, "p", &template, &rates));
    });
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("calibration");
    g.sample_size(10);
    g.bench_function("full_section4_suite", |b| {
        b.iter(|| afs_xkernel::calibrate(&afs_xkernel::CostModel::default()));
    });
    g.finish();
}

criterion_group!(
    name = sim;
    config = Criterion::default();
    targets = bench_paradigms, bench_parallel_executor, bench_calibration
);
criterion_main!(sim);
