//! Criterion micro-benchmarks for the hot paths of every substrate:
//! event queue, analytic cache model, trace-driven cache simulator, and
//! the instrumented protocol engine. These guard the simulator's own
//! performance (simulated-time throughput depends on them) and provide
//! the ablation data for DESIGN.md's implementation choices (exact
//! binomial tail vs direct-mapped closed form, LRU bookkeeping cost).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use afs_cache::model::flush::{flushed_fraction, flushed_fraction_poisson};
use afs_cache::model::footprint::MVS_WORKLOAD;
use afs_cache::model::hierarchy::FlushModel;
use afs_cache::model::platform::Platform;
use afs_cache::model::{Age, ComponentAges, DispatchPricer};
use afs_cache::sim::cache::{Cache, Replacement};
use afs_cache::sim::trace::Region;
use afs_desim::event::EventQueue;
use afs_desim::time::{SimDuration, SimTime};
use afs_xkernel::driver::{PacketFactory, RxFrame};
use afs_xkernel::mem::MemLayout;
use afs_xkernel::{CostModel, ProtocolEngine, StreamId, ThreadId};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop_hot", |b| {
        let mut q = EventQueue::new();
        // Keep a standing population of 1024 events.
        for i in 0..1024u64 {
            q.push(SimTime::from_micros(i), i);
        }
        let mut t = 1024u64;
        b.iter(|| {
            let (_, v) = q.pop().expect("nonempty");
            t += 1;
            q.push(SimTime::from_micros(t), black_box(v));
        });
    });
    g.bench_function("push_cancel", |b| {
        let mut q = EventQueue::new();
        b.iter(|| {
            let id = q.push(SimTime::from_micros(black_box(5)), 0u64);
            assert!(q.cancel(id));
        });
    });
    g.bench_function("resize_grow_drain", |b| {
        // Growth path: push a wide-spread batch through the heap->
        // calendar transition and its doubling rebuilds, then drain it
        // back down (shrink rebuilds + empty reset). One iteration is a
        // full grow/drain cycle, so the resize machinery dominates.
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..512u64 {
                    // Large, irregular gaps keep the day width honest
                    // across rebuilds.
                    q.push(SimTime::from_micros(i * 977 + (i % 7) * 131), i);
                }
                while let Some((_, v)) = q.pop() {
                    black_box(v);
                }
                q
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("cancel_heavy_with_compaction", |b| {
        // Timer-wheel style churn: a standing population where most
        // scheduled events are cancelled before they fire. Exercises
        // the tombstone-compaction path.
        let mut q = EventQueue::new();
        let mut ids = std::collections::VecDeque::new();
        let mut t = 0u64;
        for _ in 0..512 {
            t += 1;
            ids.push_back(q.push(SimTime::from_micros(t + 1000), t));
        }
        b.iter(|| {
            t += 1;
            ids.push_back(q.push(SimTime::from_micros(t + 1000), black_box(t)));
            let id = ids.pop_front().expect("standing population");
            assert!(q.cancel(id));
        });
    });
    g.finish();
}

fn bench_analytic_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("analytic_model");
    g.bench_function("footprint_u", |b| {
        b.iter(|| MVS_WORKLOAD.footprint(black_box(25_000.0), black_box(16.0)));
    });
    g.bench_function("flush_direct_mapped", |b| {
        b.iter(|| flushed_fraction(black_box(1_500.0), 1024, 1));
    });
    g.bench_function("flush_4way_exact_tail", |b| {
        b.iter(|| flushed_fraction(black_box(1_500.0), 256, 4));
    });
    g.bench_function("flush_4way_poisson_approx", |b| {
        b.iter(|| flushed_fraction_poisson(black_box(1_500.0), 256, 4));
    });
    let model = FlushModel::new(Platform::sgi_challenge_r4400(), MVS_WORKLOAD);
    g.bench_function("displacement_f1_f2", |b| {
        b.iter(|| model.displacement(black_box(SimDuration::from_micros(1_500))));
    });
    let exec = afs_core::ExecParams::calibrated();
    let pricer = DispatchPricer::new(&exec.model);
    g.bench_function("pricer_displacement", |b| {
        b.iter(|| pricer.displacement(black_box(SimDuration::from_micros(1_500))));
    });
    g.bench_function("pricer_protocol_time", |b| {
        // The simulator's per-dispatch service pricing: one Elapsed
        // component (live displacement evaluation) plus two table hits.
        let ages = ComponentAges {
            code_global: Age::Elapsed(SimDuration::from_micros(1_500)),
            thread: Age::Cold,
            stream: Age::Warm,
        };
        b.iter(|| pricer.protocol_time(black_box(ages)));
    });
    g.finish();
}

fn bench_cache_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_sim");
    g.throughput(Throughput::Elements(1));
    let platform = Platform::sgi_challenge_r4400();
    g.bench_function("l1_access_hit", |b| {
        let mut cache = Cache::new(platform.l1, Replacement::Lru);
        cache.access(0x40, Region::Stream);
        b.iter(|| cache.access(black_box(0x40), Region::Stream));
    });
    g.bench_function("l1_access_conflict_stream", |b| {
        let mut cache = Cache::new(platform.l1, Replacement::Lru);
        let mut addr: u64 = 0;
        b.iter(|| {
            // Worst case: every access misses and evicts.
            addr = addr.wrapping_add(16 * 1024); // same set, new tag
            cache.access(black_box(addr), Region::NonProtocol)
        });
    });
    g.finish();
}

fn bench_protocol_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_engine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("receive_warm_packet", |b| {
        let cost = CostModel::default();
        let mut eng = ProtocolEngine::new(cost);
        eng.bind_stream(StreamId(0));
        let mut hier = cost.hierarchy();
        let mut factory = PacketFactory::new();
        let frame = RxFrame {
            bytes: factory.frame_for(StreamId(0), 1),
            stream: StreamId(0),
            buf_addr: MemLayout::new().packet(0),
        };
        b.iter(|| {
            eng.receive(&mut hier, black_box(&frame), ThreadId(0))
                .expect("well-formed")
        });
    });
    g.bench_function("receive_tcp_warm_segment", |b| {
        let cost = CostModel::default();
        let mut eng = ProtocolEngine::new(cost);
        eng.bind_tcp_stream(StreamId(0), 0);
        let mut hier = cost.hierarchy();
        let mut factory = PacketFactory::new();
        let mut seq = 0u32;
        b.iter(|| {
            let frame = RxFrame {
                bytes: factory.tcp_frame_for(StreamId(0), seq, b"x"),
                stream: StreamId(0),
                buf_addr: MemLayout::new().packet(0),
            };
            seq = seq.wrapping_add(1);
            eng.receive_tcp(&mut hier, black_box(&frame), ThreadId(0))
                .expect("well-formed")
        });
    });
    g.bench_function("frame_build_parse", |b| {
        let mut factory = PacketFactory::new();
        b.iter(|| {
            let bytes = factory.frame_for(StreamId(0), 64);
            let mut msg = afs_xkernel::msg::Message::from_wire(&bytes, 0);
            afs_xkernel::fddi::parse_frame(&mut msg).expect("valid")
        });
    });
    g.finish();
}

fn bench_ring_batch(c: &mut Criterion) {
    // The worker dequeue path of the native backend: one synchronized
    // ring operation claims a train of up to `batch` jobs. Throughput
    // is per element, so the batch sizes read directly as "how much
    // ring synchronization does one packet cost" — the ablation behind
    // the serving path's batched dispatch (DESIGN.md §16).
    use afs_native::RingQueue;
    let mut g = c.benchmark_group("ring_batch");
    for (batch, name) in [
        (1usize, "pop_batch_1"),
        (8, "pop_batch_8"),
        (64, "pop_batch_64"),
    ] {
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_function(name, |b| {
            let q: RingQueue<u64> = RingQueue::with_capacity(256);
            let mut out: Vec<u64> = Vec::with_capacity(batch);
            b.iter(|| {
                for i in 0..batch as u64 {
                    q.push(black_box(i)).expect("capacity");
                }
                let got = q.pop_batch(&mut out, batch);
                assert_eq!(got, batch);
                out.clear();
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(60);
    targets = bench_event_queue, bench_analytic_model, bench_cache_sim, bench_protocol_engine,
        bench_ring_batch
);
criterion_main!(micro);
