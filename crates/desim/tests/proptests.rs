//! Property-based tests for the simulation substrate.
//!
//! The event queue is checked against a reference model (a sorted list
//! with stable insertion order), the statistics against naive
//! recomputation, and the time/distribution types against their
//! algebraic contracts.

use proptest::prelude::*;

use afs_desim::dist::{CountDist, Dist};
use afs_desim::event::EventQueue;
use afs_desim::rng::RngFactory;
use afs_desim::stats::{Histogram, Welford};
use afs_desim::time::{SimDuration, SimTime};

/// Reference model: (time, seq) pairs kept sorted stably.
#[derive(Default)]
struct ModelQueue {
    items: Vec<(u64, u64, u32)>, // (time, seq, payload)
    next_seq: u64,
}

impl ModelQueue {
    fn push(&mut self, t: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.push((t, seq, payload));
        seq
    }
    fn cancel(&mut self, seq: u64) -> bool {
        let before = self.items.len();
        self.items.retain(|&(_, s, _)| s != seq);
        self.items.len() != before
    }
    fn pop(&mut self) -> Option<(u64, u32)> {
        if self.items.is_empty() {
            return None;
        }
        let best = self
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .map(|(i, _)| i)
            .unwrap();
        let (t, _, p) = self.items.remove(best);
        Some((t, p))
    }
}

/// Operations applied to both queues.
#[derive(Debug, Clone)]
enum Op {
    Push(u64, u32),
    Pop,
    Cancel(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..10_000, any::<u32>()).prop_map(|(t, p)| Op::Push(t, p)),
        Just(Op::Pop),
        (0usize..64).prop_map(Op::Cancel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_queue_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut real = EventQueue::new();
        let mut model = ModelQueue::default();
        let mut live_ids = Vec::new();
        for op in ops {
            match op {
                Op::Push(t, p) => {
                    let id = real.push(SimTime::from_micros(t), p);
                    let seq = model.push(t, p);
                    live_ids.push((id, seq));
                }
                Op::Pop => {
                    let got = real.pop();
                    let want = model.pop();
                    prop_assert_eq!(got.map(|(t, p)| (t.ticks() / 1000, p)), want);
                }
                Op::Cancel(i) => {
                    if !live_ids.is_empty() {
                        let (id, seq) = live_ids[i % live_ids.len()];
                        let got = real.cancel(id);
                        let want = model.cancel(seq);
                        prop_assert_eq!(got, want);
                    }
                }
            }
            prop_assert_eq!(real.len(), model.items.len());
        }
        // Drain: remaining orders must agree.
        loop {
            let got = real.pop();
            let want = model.pop();
            prop_assert_eq!(got.map(|(t, p)| (t.ticks() / 1000, p)), want);
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn time_arithmetic_roundtrips(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_ticks(a);
        let dur = SimDuration::from_ticks(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur).since(t), dur);
        prop_assert!(t + dur >= t);
    }

    #[test]
    fn duration_scaling_consistent(us in 0.0f64..1e9, k in 0.0f64..1e3) {
        let d = SimDuration::from_micros_f64(us);
        let scaled = d.mul_f64(k);
        // Within rounding of the fixed-point representation.
        let expect = us * k;
        prop_assert!((scaled.as_micros_f64() - expect).abs() <= expect * 1e-9 + 1e-3);
    }

    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..400)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
            prop_assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), min);
        prop_assert_eq!(w.max(), max);
    }

    #[test]
    fn welford_merge_equals_sequential(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        ys in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut all = Welford::new();
        for &x in xs.iter().chain(&ys) {
            all.add(x);
        }
        let mut a = Welford::new();
        for &x in &xs {
            a.add(x);
        }
        let mut b = Welford::new();
        for &y in &ys {
            b.add(y);
        }
        a.merge(&b);
        prop_assert!((a.mean() - all.mean()).abs() < 1e-8 * (1.0 + all.mean().abs()));
        prop_assert!((a.variance() - all.variance()).abs() < 1e-6 * (1.0 + all.variance()));
        prop_assert_eq!(a.count(), all.count());
    }

    #[test]
    fn histogram_quantiles_are_order_statistics(
        xs in prop::collection::vec(0.0f64..99.0, 1..300),
        q in 0.01f64..1.0,
    ) {
        let mut h = Histogram::new(1.0, 100);
        for &x in &xs {
            h.add(x);
        }
        let quantile = h.quantile(q).expect("within range");
        // The histogram quantile must bound the true order statistic
        // from above by at most one bin width.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
        let exact = sorted[idx];
        prop_assert!(quantile + 1e-9 >= exact, "quantile {quantile} < exact {exact}");
        prop_assert!(quantile <= exact + 1.0 + 1e-9, "quantile {quantile} > exact+bin {exact}");
    }

    #[test]
    fn distributions_sample_in_support(seed in any::<u64>(), mean in 0.1f64..1e5) {
        let mut rng = RngFactory::new(seed).stream("prop");
        let dists = [
            Dist::constant(mean),
            Dist::exponential(mean),
            Dist::uniform(mean * 0.5, mean * 1.5),
            Dist::bounded_pareto(1.5, mean * 0.1, mean * 100.0),
        ];
        for d in &dists {
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{d:?} sampled {x}");
            }
        }
    }

    #[test]
    fn count_dists_sample_at_least_one(seed in any::<u64>(), mean in 1.0f64..100.0) {
        let mut rng = RngFactory::new(seed).stream("prop");
        let d = CountDist::geometric_with_mean(mean);
        for _ in 0..100 {
            prop_assert!(d.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), name in "[a-z]{1,12}") {
        use rand::RngCore;
        let f = RngFactory::new(seed);
        let mut a = f.stream(&name);
        let mut b = f.stream(&name);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
