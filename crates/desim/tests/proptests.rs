//! Property-based tests for the simulation substrate.
//!
//! The event queue is checked against a reference model (a sorted list
//! with stable insertion order), the statistics against naive
//! recomputation, and the time/distribution types against their
//! algebraic contracts.

use proptest::prelude::*;

use afs_desim::dist::{CountDist, Dist};
use afs_desim::event::EventQueue;
use afs_desim::rng::RngFactory;
use afs_desim::stats::{Histogram, Welford};
use afs_desim::time::{SimDuration, SimTime};

/// Reference model: (time, seq) pairs kept sorted stably.
#[derive(Default)]
struct ModelQueue {
    items: Vec<(u64, u64, u32)>, // (time, seq, payload)
    next_seq: u64,
}

impl ModelQueue {
    fn push(&mut self, t: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.push((t, seq, payload));
        seq
    }
    fn cancel(&mut self, seq: u64) -> bool {
        let before = self.items.len();
        self.items.retain(|&(_, s, _)| s != seq);
        self.items.len() != before
    }
    fn pop(&mut self) -> Option<(u64, u32)> {
        if self.items.is_empty() {
            return None;
        }
        let best = self
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .map(|(i, _)| i)
            .unwrap();
        let (t, _, p) = self.items.remove(best);
        Some((t, p))
    }
}

/// Reference model #2: a real `BinaryHeap` ordered by `(time, seq)`
/// ascending, with lazily-applied cancellation — the exact structure
/// (and contract) of the pre-calendar event core. Differential target
/// for the calendar queue: whatever the bucket layout, width, or resize
/// instants do internally, pop order must match this heap bit-for-bit.
#[derive(Default)]
struct HeapModel {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>>,
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl HeapModel {
    fn push(&mut self, t: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse((t, seq, payload)));
        self.live += 1;
        seq
    }
    fn cancel(&mut self, seq: u64) -> bool {
        if seq >= self.next_seq || self.cancelled.contains(&seq) {
            return false;
        }
        // Only live entries can be cancelled; popped seqs are gone from
        // the heap, so probe for presence.
        if self
            .heap
            .iter()
            .any(|std::cmp::Reverse((_, s, _))| *s == seq)
        {
            self.cancelled.insert(seq);
            self.live -= 1;
            return true;
        }
        false
    }
    fn pop(&mut self) -> Option<(u64, u32)> {
        while let Some(std::cmp::Reverse((t, seq, p))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.live -= 1;
            return Some((t, p));
        }
        None
    }
}

/// Operations applied to both queues.
#[derive(Debug, Clone)]
enum Op {
    Push(u64, u32),
    Pop,
    Cancel(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..10_000, any::<u32>()).prop_map(|(t, p)| Op::Push(t, p)),
        Just(Op::Pop),
        (0usize..64).prop_map(Op::Cancel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_queue_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut real = EventQueue::new();
        let mut model = ModelQueue::default();
        let mut live_ids = Vec::new();
        for op in ops {
            match op {
                Op::Push(t, p) => {
                    let id = real.push(SimTime::from_micros(t), p);
                    let seq = model.push(t, p);
                    live_ids.push((id, seq));
                }
                Op::Pop => {
                    let got = real.pop();
                    let want = model.pop();
                    prop_assert_eq!(got.map(|(t, p)| (t.ticks() / 1000, p)), want);
                }
                Op::Cancel(i) => {
                    if !live_ids.is_empty() {
                        let (id, seq) = live_ids[i % live_ids.len()];
                        let got = real.cancel(id);
                        let want = model.cancel(seq);
                        prop_assert_eq!(got, want);
                    }
                }
            }
            prop_assert_eq!(real.len(), model.items.len());
        }
        // Drain: remaining orders must agree.
        loop {
            let got = real.pop();
            let want = model.pop();
            prop_assert_eq!(got.map(|(t, p)| (t.ticks() / 1000, p)), want);
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_matches_binary_heap_under_heavy_ties(
        ops in prop::collection::vec(
            prop_oneof![
                // A tiny time domain: most pushes collide, so FIFO
                // tie-breaking carries nearly all of the ordering.
                (0u64..8, any::<u32>()).prop_map(|(t, p)| Op::Push(t, p)),
                Just(Op::Pop),
                (0usize..64).prop_map(Op::Cancel),
            ],
            1..300,
        ),
    ) {
        let mut real = EventQueue::new();
        let mut heap = HeapModel::default();
        let mut ids = Vec::new();
        for op in ops {
            match op {
                Op::Push(t, p) => {
                    let id = real.push(SimTime::from_micros(t), p);
                    let seq = heap.push(t, p);
                    ids.push((id, seq));
                }
                Op::Pop => {
                    let got = real.pop().map(|(t, p)| (t.ticks() / 1000, p));
                    prop_assert_eq!(got, heap.pop());
                }
                Op::Cancel(i) => {
                    if !ids.is_empty() {
                        let (id, seq) = ids[i % ids.len()];
                        prop_assert_eq!(real.cancel(id), heap.cancel(seq));
                    }
                }
            }
            prop_assert_eq!(real.len(), heap.live);
        }
        loop {
            let got = real.pop().map(|(t, p)| (t.ticks() / 1000, p));
            let want = heap.pop();
            let done = got.is_none();
            prop_assert_eq!(got, want);
            if done {
                break;
            }
        }
    }

    #[test]
    fn resize_boundaries_preserve_pop_order(
        // Live counts that straddle both the single-bucket threshold
        // (64) and several power-of-two calendar sizes.
        n_push in 1usize..300,
        drain in 1usize..300,
        spread in prop_oneof![Just(1u64), Just(37), Just(1009), Just(250_007)],
    ) {
        let mut real = EventQueue::new();
        let mut heap = HeapModel::default();
        for i in 0..n_push {
            let t = (i as u64).wrapping_mul(2_654_435_761) % (spread * n_push as u64);
            real.push(SimTime::from_micros(t), i as u32);
            heap.push(t, i as u32);
        }
        // Partial drain crosses shrink thresholds; then a second growth
        // wave crosses the split threshold again from a scanned state.
        for _ in 0..drain.min(n_push) {
            let got = real.pop().map(|(t, p)| (t.ticks() / 1000, p));
            prop_assert_eq!(got, heap.pop());
        }
        prop_assert!(real.n_buckets() >= 1);
        for i in 0..n_push {
            let t = (i as u64).wrapping_mul(40_503) % (spread * 4);
            real.push(SimTime::from_micros(t), (n_push + i) as u32);
            heap.push(t, (n_push + i) as u32);
        }
        loop {
            let got = real.pop().map(|(t, p)| (t.ticks() / 1000, p));
            let want = heap.pop();
            let done = got.is_none();
            prop_assert_eq!(got, want);
            if done {
                break;
            }
        }
        prop_assert_eq!(real.n_buckets(), 1, "empty queue collapses to one bucket");
    }

    #[test]
    fn tombstone_heavy_workload_bounds_memory_and_keeps_order(
        n in 64usize..600,
        keep_every in 2usize..17,
        horizon_frac in 0.0f64..1.2,
    ) {
        let mut real = EventQueue::new();
        let mut heap = HeapModel::default();
        let mut ids = Vec::new();
        let t_max = 10 * n as u64;
        for i in 0..n {
            let t = (i as u64).wrapping_mul(7_368_787) % t_max;
            ids.push((real.push(SimTime::from_micros(t), i as u32), heap.push(t, i as u32)));
        }
        for (i, &(id, seq)) in ids.iter().enumerate() {
            if i % keep_every != 0 {
                prop_assert_eq!(real.cancel(id), heap.cancel(seq));
            }
        }
        // The PR-4 memory bound survives the calendar rewrite: dead
        // entries never exceed live ones beyond the small-queue slack.
        prop_assert!(
            real.retained() <= 2 * real.len() + 64,
            "retained {} for {} live",
            real.retained(),
            real.len(),
        );
        // Horizon-bounded pops agree with the model: deliver while the
        // model head is at or before the horizon, then stop.
        let horizon = (t_max as f64 * horizon_frac) as u64;
        loop {
            let got = real.pop_at_or_before(SimTime::from_micros(horizon));
            match got {
                Some((t, p)) => {
                    prop_assert!(t.ticks() / 1000 <= horizon);
                    prop_assert_eq!(Some((t.ticks() / 1000, p)), heap.pop());
                }
                None => break,
            }
        }
        // Whatever remains is strictly past the horizon; full pops
        // drain it in model order.
        loop {
            let got = real.pop().map(|(t, p)| (t.ticks() / 1000, p));
            if let Some((t, _)) = got {
                prop_assert!(t > horizon);
            }
            let want = heap.pop();
            let done = got.is_none();
            prop_assert_eq!(got, want);
            if done {
                break;
            }
        }
    }

    #[test]
    fn time_arithmetic_roundtrips(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_ticks(a);
        let dur = SimDuration::from_ticks(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur).since(t), dur);
        prop_assert!(t + dur >= t);
    }

    #[test]
    fn duration_scaling_consistent(us in 0.0f64..1e9, k in 0.0f64..1e3) {
        let d = SimDuration::from_micros_f64(us);
        let scaled = d.mul_f64(k);
        // Within rounding of the fixed-point representation.
        let expect = us * k;
        prop_assert!((scaled.as_micros_f64() - expect).abs() <= expect * 1e-9 + 1e-3);
    }

    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..400)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
            prop_assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), min);
        prop_assert_eq!(w.max(), max);
    }

    #[test]
    fn welford_merge_equals_sequential(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        ys in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut all = Welford::new();
        for &x in xs.iter().chain(&ys) {
            all.add(x);
        }
        let mut a = Welford::new();
        for &x in &xs {
            a.add(x);
        }
        let mut b = Welford::new();
        for &y in &ys {
            b.add(y);
        }
        a.merge(&b);
        prop_assert!((a.mean() - all.mean()).abs() < 1e-8 * (1.0 + all.mean().abs()));
        prop_assert!((a.variance() - all.variance()).abs() < 1e-6 * (1.0 + all.variance()));
        prop_assert_eq!(a.count(), all.count());
    }

    #[test]
    fn histogram_quantiles_are_order_statistics(
        xs in prop::collection::vec(0.0f64..99.0, 1..300),
        q in 0.01f64..1.0,
    ) {
        let mut h = Histogram::new(1.0, 100);
        for &x in &xs {
            h.add(x);
        }
        let quantile = h.quantile(q).expect("within range");
        // The histogram quantile must bound the true order statistic
        // from above by at most one bin width.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
        let exact = sorted[idx];
        prop_assert!(quantile + 1e-9 >= exact, "quantile {quantile} < exact {exact}");
        prop_assert!(quantile <= exact + 1.0 + 1e-9, "quantile {quantile} > exact+bin {exact}");
    }

    #[test]
    fn distributions_sample_in_support(seed in any::<u64>(), mean in 0.1f64..1e5) {
        let mut rng = RngFactory::new(seed).stream("prop");
        let dists = [
            Dist::constant(mean),
            Dist::exponential(mean),
            Dist::uniform(mean * 0.5, mean * 1.5),
            Dist::bounded_pareto(1.5, mean * 0.1, mean * 100.0),
        ];
        for d in &dists {
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{d:?} sampled {x}");
            }
        }
    }

    #[test]
    fn count_dists_sample_at_least_one(seed in any::<u64>(), mean in 1.0f64..100.0) {
        let mut rng = RngFactory::new(seed).stream("prop");
        let d = CountDist::geometric_with_mean(mean);
        for _ in 0..100 {
            prop_assert!(d.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), name in "[a-z]{1,12}") {
        use rand::RngCore;
        let f = RngFactory::new(seed);
        let mut a = f.stream(&name);
        let mut b = f.stream(&name);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // ----------------------------------------------------------------
    // Scheduler invariants: the properties every backend built on this
    // substrate (the simulator's event loop, the native runtime's
    // dispatch/steal structure) relies on.
    // ----------------------------------------------------------------

    #[test]
    fn event_times_pop_monotonically(
        times in prop::collection::vec(0u64..1_000_000, 1..300),
        interleave in prop::collection::vec(any::<bool>(), 0..300),
    ) {
        // However pushes and pops interleave, the sequence of popped
        // timestamps is nondecreasing — no event can run before one
        // that already ran.
        fn check(last: &mut Option<u64>, t: SimTime) {
            let ticks = t.ticks();
            if let Some(prev) = *last {
                assert!(ticks >= prev, "time ran backwards: {ticks} after {prev}");
            }
            *last = Some(ticks);
        }
        let mut q = EventQueue::new();
        let mut pending = times.iter();
        let mut last: Option<u64> = None;
        for &do_pop in &interleave {
            if do_pop {
                if let Some((t, _)) = q.pop() {
                    check(&mut last, t);
                }
            } else if let Some(&t) = pending.next() {
                q.push(SimTime::from_micros(t), 0u32);
                last = None; // a new push may legally be earlier than past pops
            }
        }
        for &t in pending {
            q.push(SimTime::from_micros(t), 0u32);
        }
        // Final drain with no interleaved pushes: strictly monotone.
        last = None;
        while let Some((t, _)) = q.pop() {
            check(&mut last, t);
        }
    }

    #[test]
    fn dispatch_and_steal_lose_nothing(
        events in prop::collection::vec((0u64..100_000, any::<u32>()), 1..200),
        n_queues in 2usize..6,
        steals in prop::collection::vec((0usize..6, 0usize..6), 0..100),
    ) {
        // A model of the native dispatcher: events are routed to
        // per-worker queues by payload, then an arbitrary sequence of
        // steal operations moves the oldest event from one queue to
        // another. Whatever the steal pattern, draining everything
        // afterwards yields exactly the dispatched multiset.
        let mut queues: Vec<EventQueue<u32>> = (0..n_queues).map(|_| EventQueue::new()).collect();
        for &(t, p) in &events {
            let q = p as usize % n_queues;
            queues[q].push(SimTime::from_micros(t), p);
        }
        for &(from, to) in &steals {
            let (from, to) = (from % n_queues, to % n_queues);
            if from == to {
                continue;
            }
            if let Some((t, p)) = queues[from].pop() {
                queues[to].push(t, p);
            }
        }
        let mut drained: Vec<(u64, u32)> = Vec::new();
        for q in &mut queues {
            while let Some((t, p)) = q.pop() {
                drained.push((t.ticks() / 1000, p));
            }
        }
        drained.sort_unstable();
        let mut expected: Vec<(u64, u32)> = events.clone();
        expected.sort_unstable();
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn seeded_schedule_replays_identically(
        seed in any::<u64>(),
        n in 1usize..200,
        mean_us in 1.0f64..10_000.0,
    ) {
        // A Poisson schedule built from named RNG streams is a pure
        // function of the seed: build it twice, pop it twice, and both
        // the arrival stamps and the dispatch order must match exactly.
        let build = || {
            use rand::Rng;
            let f = RngFactory::new(seed);
            let mut arr = f.stream("sched-arrivals");
            let mut route = f.stream("sched-route");
            let exp = Dist::exponential(mean_us);
            let mut q = EventQueue::new();
            let mut t = 0.0f64;
            for _ in 0..n {
                t += exp.sample(&mut arr);
                let worker: u32 = route.gen_range(0..4);
                q.push(SimTime::from_micros_f64(t), worker);
            }
            let mut order = Vec::new();
            while let Some((at, w)) = q.pop() {
                order.push((at.ticks(), w));
            }
            order
        };
        prop_assert_eq!(build(), build());
    }
}
