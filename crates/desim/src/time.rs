//! Fixed-point simulation time.
//!
//! Simulation time is measured in integer **nanosecond ticks** held in a
//! `u64`. Using a fixed-point representation instead of `f64` keeps event
//! ordering exact (no accumulation drift over long runs) and makes runs
//! bit-reproducible across platforms. A `u64` of nanoseconds covers about
//! 584 simulated years, far beyond any experiment in this workspace.
//!
//! Two types are provided, mirroring `std::time`:
//!
//! * [`SimTime`] — an absolute instant on the simulation clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! The paper's natural unit is the microsecond (packet service times are
//! hundreds of µs), so both types offer µs-flavoured constructors and
//! accessors alongside the raw nanosecond ones.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanosecond ticks per microsecond.
pub const TICKS_PER_US: u64 = 1_000;
/// Number of nanosecond ticks per millisecond.
pub const TICKS_PER_MS: u64 = 1_000_000;
/// Number of nanosecond ticks per second.
pub const TICKS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanosecond ticks.
///
/// `SimTime::ZERO` is the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanosecond ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanosecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * TICKS_PER_US)
    }

    /// Construct from fractional microseconds, rounding to the nearest tick.
    ///
    /// Panics in debug builds if `us` is negative or not finite.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us.is_finite() && us >= 0.0, "invalid time: {us} us");
        SimTime((us * TICKS_PER_US as f64).round() as u64)
    }

    /// Raw nanosecond ticks since the epoch.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Time since the epoch in (possibly fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_US as f64
    }

    /// Time since the epoch in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Panics in debug builds if `earlier` is later than `self`; saturates
    /// to zero in release builds.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier={} > self={}",
            earlier.0,
            self.0
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (never overflows past `MAX`).
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanosecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * TICKS_PER_US)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * TICKS_PER_MS)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * TICKS_PER_SEC)
    }

    /// Construct from fractional microseconds, rounding to the nearest tick.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us.is_finite() && us >= 0.0, "invalid duration: {us} us");
        SimDuration((us * TICKS_PER_US as f64).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid duration: {s} s");
        SimDuration((s * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond ticks.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Duration in (possibly fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_US as f64
    }

    /// Duration in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True when the duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest tick.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k.is_finite() && k >= 0.0, "invalid scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, t: SimTime) -> SimDuration {
        self.since(t)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, d: SimDuration) -> SimDuration {
        debug_assert!(d.0 <= self.0, "SimDuration underflow");
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, d: SimDuration) {
        debug_assert!(d.0 <= self.0, "SimDuration underflow");
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_convert() {
        let t = SimTime::from_micros(250);
        assert_eq!(t.ticks(), 250_000);
        assert_eq!(t.as_micros_f64(), 250.0);
        assert_eq!(SimTime::from_micros_f64(0.5).ticks(), 500);
        assert_eq!(SimDuration::from_secs(2).ticks(), 2 * TICKS_PER_SEC);
        assert_eq!(SimDuration::from_millis(3).ticks(), 3 * TICKS_PER_MS);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = SimTime::from_micros(100);
        let d = SimDuration::from_micros(40);
        let b = a + d;
        assert_eq!(b.since(a), d);
        assert_eq!(b - a, d);
        assert_eq!(b - d, a);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_ticks(1);
        let b = SimTime::from_ticks(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(25));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_micros(1)),
            SimTime::MAX
        );
        let d = SimDuration::from_micros(1);
        assert_eq!(
            d.saturating_sub(SimDuration::from_micros(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn since_saturates_in_release() {
        // Only meaningful in release builds; in debug this would panic, so
        // construct the legal direction here.
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(7);
        assert_eq!(b.since(a).as_micros_f64(), 2.0);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_micros_f64(1.5)), "1.500us");
        assert_eq!(format!("{}", SimDuration::from_micros(284)), "284.000us");
    }

    #[test]
    fn fractional_roundtrip() {
        let us = 284.3;
        let d = SimDuration::from_micros_f64(us);
        assert!((d.as_micros_f64() - us).abs() < 1e-3);
    }
}
