//! Warm-up (initial-transient) detection for steady-state output series.
//!
//! Picking the truncation point by eye is the classic source of bias in
//! steady-state simulation; the widely used heuristic is **MSER-5**
//! (White 1997): average the raw series into batches of 5, then choose
//! the truncation index `d` that minimizes the *marginal standard error*
//! of the remaining batch means,
//!
//! ```text
//! MSER(d) = s²(d) / (m − d)
//! ```
//!
//! where `s²(d)` is the variance of batches `d..m`. Dividing by the
//! remaining count twice (once inside the variance of the mean, once for
//! the confidence in it) penalizes both keeping biased head batches and
//! truncating so much that the tail is noisy.
//!
//! The simulator's `warmup` configuration can be validated against this
//! estimate (see the tests and `afs-core`'s analysis utilities).

/// Result of an MSER-5 scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmupEstimate {
    /// Recommended truncation point, as an index into the raw series.
    pub truncate_at: usize,
    /// The MSER statistic at the chosen point.
    pub mser: f64,
    /// Mean of the retained observations.
    pub steady_mean: f64,
}

/// MSER batch size (the "5" in MSER-5).
const BATCH: usize = 5;

/// Estimate the warm-up truncation point of `series` with MSER-5.
///
/// Returns `None` when the series is too short to say anything
/// (fewer than 10 batches). By convention the scan is restricted to the
/// first half of the batches — truncating more than half the data is
/// taken as "no steady state detected", and the scan returns the best
/// point in the allowed range.
pub fn mser5(series: &[f64]) -> Option<WarmupEstimate> {
    let m = series.len() / BATCH;
    if m < 10 {
        return None;
    }
    let batches: Vec<f64> = (0..m)
        .map(|i| series[i * BATCH..(i + 1) * BATCH].iter().sum::<f64>() / BATCH as f64)
        .collect();

    let mut best: Option<(usize, f64)> = None;
    for d in 0..m / 2 {
        let tail = &batches[d..];
        let n = tail.len() as f64;
        let mean = tail.iter().sum::<f64>() / n;
        let var = tail.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let mser = var / n;
        if best.is_none_or(|(_, b)| mser < b) {
            best = Some((d, mser));
        }
    }
    let (d, mser) = best?;
    let retained = &series[d * BATCH..];
    Some(WarmupEstimate {
        truncate_at: d * BATCH,
        mser,
        steady_mean: retained.iter().sum::<f64>() / retained.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A series with a decaying transient head and flat tail.
    fn transient_series(head: usize, tail: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(head + tail);
        for i in 0..head {
            // Decays from 100 toward 10.
            v.push(10.0 + 90.0 * (-(i as f64) / (head as f64 / 3.0)).exp());
        }
        for i in 0..tail {
            // Flat around 10 with small deterministic wiggle.
            v.push(10.0 + 0.5 * ((i as f64) * 0.7).sin());
        }
        v
    }

    #[test]
    fn detects_transient_head() {
        let series = transient_series(100, 400);
        let est = mser5(&series).expect("long enough");
        assert!(
            (40..=160).contains(&est.truncate_at),
            "truncate_at = {} should land near the 100-sample transient",
            est.truncate_at
        );
        assert!(
            (est.steady_mean - 10.0).abs() < 1.0,
            "steady mean {}",
            est.steady_mean
        );
    }

    #[test]
    fn flat_series_truncates_near_zero() {
        let series: Vec<f64> = (0..300)
            .map(|i| 5.0 + 0.1 * ((i as f64) * 1.3).sin())
            .collect();
        let est = mser5(&series).expect("long enough");
        assert!(est.truncate_at <= 30, "truncate_at = {}", est.truncate_at);
        assert!((est.steady_mean - 5.0).abs() < 0.2);
    }

    #[test]
    fn too_short_series_rejected() {
        assert!(mser5(&[1.0; 49]).is_none());
        assert!(mser5(&[]).is_none());
        assert!(mser5(&[1.0; 50]).is_some());
    }

    #[test]
    fn truncation_never_exceeds_half() {
        // Even a series that trends forever only truncates half.
        let series: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let est = mser5(&series).expect("long enough");
        assert!(est.truncate_at <= 250);
    }

    #[test]
    fn steady_mean_excludes_the_transient() {
        let series = transient_series(150, 600);
        let est = mser5(&series).expect("long enough");
        let naive: f64 = series.iter().sum::<f64>() / series.len() as f64;
        // The truncated mean must be closer to the true steady value (10)
        // than the naive mean, which the transient biases upward.
        assert!((est.steady_mean - 10.0).abs() < (naive - 10.0).abs());
    }
}
