//! The simulation driver.
//!
//! A model implements [`Simulate`]; the [`Engine`] owns the clock and the
//! pending-event set and repeatedly delivers the earliest event to the
//! model. Handlers schedule follow-up events through the [`Scheduler`]
//! passed to them — scheduling into the past is a logic error and panics.
//!
//! ```
//! use afs_desim::engine::{Engine, Scheduler, Simulate};
//! use afs_desim::time::{SimDuration, SimTime};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl Simulate for Counter {
//!     type Event = ();
//!     fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             sched.schedule_in(now, SimDuration::from_micros(5), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.scheduler().schedule_at(SimTime::ZERO, ());
//! engine.run();
//! assert_eq!(engine.model().fired, 10);
//! assert_eq!(engine.now(), SimTime::from_micros(45));
//! ```

use afs_obs::EngineProbe;

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A discrete-event model: a state machine advanced one event at a time.
pub trait Simulate {
    /// The event payload type delivered to [`Simulate::handle`].
    type Event;

    /// Handle one event at simulation time `now`, scheduling any follow-up
    /// events through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Scheduling facade handed to event handlers.
///
/// Wraps the event queue, enforcing that events are never scheduled before
/// the current clock.
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// Schedule `event` at the absolute time `at` (which must not precede
    /// the current clock).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        self.queue.push(at, event)
    }

    /// Schedule `event` to fire `delay` after `now`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(now + delay, event)
    }

    /// Cancel a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Current simulation time as seen by the scheduler.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

/// Why [`Engine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The pending-event set drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    Horizon,
    /// The per-run event budget was exhausted (runaway-model guard).
    EventBudget,
}

/// Owns a model, the clock, and the event queue, and advances the model.
pub struct Engine<M: Simulate> {
    model: M,
    sched: Scheduler<M::Event>,
    events_handled: u64,
    probe: Option<EngineProbe>,
}

impl<M: Simulate> Engine<M> {
    /// Create an engine at time zero with an empty event set.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            sched: Scheduler::new(),
            events_handled: 0,
            probe: None,
        }
    }

    /// Attach an [`EngineProbe`] that samples pending-set pressure after
    /// every delivered event. Costs two compares and a histogram record
    /// per step; nothing is paid when no probe is attached.
    pub fn attach_probe(&mut self) {
        self.probe = Some(EngineProbe::new());
    }

    /// The attached probe, if any.
    pub fn probe(&self) -> Option<&EngineProbe> {
        self.probe.as_ref()
    }

    /// Detach and return the probe, if one was attached.
    pub fn take_probe(&mut self) -> Option<EngineProbe> {
        self.probe.take()
    }

    /// Current simulation time (time of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for pre-run setup / post-run readout).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Access the scheduler for priming initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Total number of events delivered so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Deliver a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.pop() {
            Some((time, event)) => {
                debug_assert!(time >= self.sched.now, "clock went backwards");
                self.sched.now = time;
                self.events_handled += 1;
                self.model.handle(time, event, &mut self.sched);
                if let Some(p) = &mut self.probe {
                    p.on_step(time.as_micros_f64(), self.sched.queue.len());
                }
                true
            }
            None => false,
        }
    }

    /// Run until the event set drains.
    pub fn run(&mut self) -> StopReason {
        self.run_until(SimTime::MAX)
    }

    /// Run until the event set drains or the clock would pass `horizon`.
    ///
    /// Events stamped exactly at `horizon` are delivered; later ones are
    /// left pending.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        self.run_limited(horizon, u64::MAX)
    }

    /// Run until drained, the horizon, or at most `max_events` deliveries.
    pub fn run_limited(&mut self, horizon: SimTime, max_events: u64) -> StopReason {
        let mut budget = max_events;
        loop {
            if budget == 0 {
                return StopReason::EventBudget;
            }
            // Pop-if-due fuses the peek + pop pair into one queue scan.
            match self.sched.queue.pop_at_or_before(horizon) {
                Some((time, event)) => {
                    debug_assert!(time >= self.sched.now, "clock went backwards");
                    self.sched.now = time;
                    self.events_handled += 1;
                    self.model.handle(time, event, &mut self.sched);
                    if let Some(p) = &mut self.probe {
                        p.on_step(time.as_micros_f64(), self.sched.queue.len());
                    }
                    budget -= 1;
                }
                None if self.sched.queue.is_empty() => return StopReason::Drained,
                None => {
                    // Advance the clock to the horizon so elapsed-time
                    // metrics cover the full requested window.
                    self.sched.now = horizon;
                    return StopReason::Horizon;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that fires a chain of `n` events spaced `gap` apart and
    /// records delivery times.
    struct Chain {
        remaining: u32,
        gap: SimDuration,
        seen: Vec<SimTime>,
    }

    impl Simulate for Chain {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(now, self.gap, ev + 1);
            }
        }
    }

    fn chain(n: u32, gap_us: u64) -> Engine<Chain> {
        let mut e = Engine::new(Chain {
            remaining: n,
            gap: SimDuration::from_micros(gap_us),
            seen: Vec::new(),
        });
        e.scheduler().schedule_at(SimTime::ZERO, 0);
        e
    }

    #[test]
    fn runs_to_drain() {
        let mut e = chain(4, 10);
        assert_eq!(e.run(), StopReason::Drained);
        assert_eq!(e.model().seen.len(), 5);
        assert_eq!(e.now(), SimTime::from_micros(40));
        assert_eq!(e.events_handled(), 5);
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        let mut e = chain(100, 10);
        assert_eq!(e.run_until(SimTime::from_micros(35)), StopReason::Horizon);
        // Events at 0,10,20,30 delivered; clock parked at the horizon.
        assert_eq!(e.model().seen.len(), 4);
        assert_eq!(e.now(), SimTime::from_micros(35));
        // Resuming picks up where it left off.
        assert_eq!(e.run_until(SimTime::from_micros(40)), StopReason::Horizon);
        assert_eq!(e.model().seen.len(), 5);
    }

    #[test]
    fn event_exactly_at_horizon_is_delivered() {
        let mut e = chain(10, 10);
        e.run_until(SimTime::from_micros(20));
        assert_eq!(e.model().seen.last(), Some(&SimTime::from_micros(20)));
    }

    #[test]
    fn event_budget_guard() {
        let mut e = chain(1_000_000, 1);
        assert_eq!(e.run_limited(SimTime::MAX, 10), StopReason::EventBudget);
        assert_eq!(e.events_handled(), 10);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl Simulate for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_at(now - SimDuration::from_micros(1), ());
            }
        }
        let mut e = Engine::new(Bad);
        e.scheduler().schedule_at(SimTime::from_micros(5), ());
        e.run();
    }

    #[test]
    fn probe_samples_every_step_and_detaches() {
        let mut e = chain(4, 10);
        assert!(e.probe().is_none());
        e.attach_probe();
        e.run();
        let p = e.take_probe().expect("probe attached");
        assert_eq!(p.steps, e.events_handled());
        assert_eq!(p.last_t_us, 40.0);
        assert!(e.probe().is_none());
        // The chain keeps exactly one event pending until the last one.
        assert_eq!(p.max_pending, 1);
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut e = Engine::new(Chain {
            remaining: 0,
            gap: SimDuration::ZERO,
            seen: Vec::new(),
        });
        assert!(!e.step());
    }
}
