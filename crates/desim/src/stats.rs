//! Output-analysis statistics for simulation runs.
//!
//! * [`Welford`] — numerically stable streaming mean/variance.
//! * [`TimeWeighted`] — time-averaged piecewise-constant quantities
//!   (queue lengths, utilizations).
//! * [`Histogram`] — fixed-width bins with tail overflow; quantile reads.
//! * [`BatchMeans`] — confidence intervals for correlated output series by
//!   the method of non-overlapping batch means.
//! * [`littles_law_gap`] — consistency check `L = λ·W` for a completed run.

use crate::time::{SimDuration, SimTime};

/// Streaming mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN`-free input assumed).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. queue length.
///
/// Call [`TimeWeighted::set`] at every change; the average weights each
/// value by how long it was held.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial value `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: initial,
            integral: 0.0,
            start,
        }
    }

    /// Record that the signal takes value `value` from time `now` on.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.integral += self.current * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
        self.current = value;
    }

    /// Adjust the signal by `delta` at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// Current (instantaneous) value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted average over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.current;
        }
        let integral = self.integral + self.current * now.since(self.last_change).as_secs_f64();
        integral / total
    }

    /// Reset the accumulated history, keeping the current value. Used to
    /// discard a warm-up transient.
    pub fn reset(&mut self, now: SimTime) {
        self.integral = 0.0;
        self.start = now;
        self.last_change = now;
    }
}

/// A fixed-width histogram over `[0, width × bins)` with an overflow tail.
#[derive(Debug, Clone)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` bins of `width` each (both > 0).
    pub fn new(width: f64, bins: usize) -> Self {
        assert!(width > 0.0 && bins > 0);
        Histogram {
            width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation (negative values count in bin 0).
    pub fn add(&mut self, x: f64) {
        let idx = (x / self.width).floor().max(0.0) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Fraction of observations that fell past the last bin.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }

    /// Approximate `q`-quantile (bin upper edge), `q ∈ [0, 1]`.
    ///
    /// Returns `None` when empty or when the quantile falls in the
    /// overflow tail (the histogram cannot bound it).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some((i as f64 + 1.0) * self.width);
            }
        }
        None
    }
}

/// Confidence interval via the method of non-overlapping batch means.
///
/// Observations are grouped into `num_batches` equal batches in arrival
/// order; the batch means are treated as approximately i.i.d. normal and a
/// Student-t interval is formed. Standard practice for steady-state
/// simulation output, which is serially correlated.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    values: Vec<f64>,
    num_batches: usize,
}

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfInterval {
    /// Relative half-width (`half_width / |mean|`, infinite at mean 0).
    pub fn relative_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Two-sided Student-t 0.975 quantiles for small d.o.f.; 1.96 beyond.
fn t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[df - 1]
    } else {
        1.96
    }
}

impl BatchMeans {
    /// Accumulate into `num_batches` batches (≥ 2).
    pub fn new(num_batches: usize) -> Self {
        assert!(num_batches >= 2);
        BatchMeans {
            values: Vec::new(),
            num_batches,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// 95 % confidence interval for the steady-state mean, or `None` when
    /// there are fewer than `num_batches` observations.
    pub fn interval(&self) -> Option<ConfInterval> {
        let b = self.num_batches;
        let n = self.values.len();
        if n < b {
            return None;
        }
        let per = n / b; // drop the ragged tail
        let mut means = Welford::new();
        for i in 0..b {
            let chunk = &self.values[i * per..(i + 1) * per];
            let m = chunk.iter().sum::<f64>() / per as f64;
            means.add(m);
        }
        let se = (means.variance() / b as f64).sqrt();
        Some(ConfInterval {
            mean: means.mean(),
            half_width: t_975(b - 1) * se,
        })
    }
}

/// Little's-law consistency gap for a completed run.
///
/// Given time-average population `l`, throughput `lambda` (per second) and
/// mean time-in-system `w` (seconds), returns the relative gap
/// `|l − λ·w| / max(l, λ·w)`. Small values (≲ a few %) indicate the
/// run's bookkeeping is self-consistent.
pub fn littles_law_gap(l: f64, lambda_per_sec: f64, w_secs: f64) -> f64 {
    let rhs = lambda_per_sec * w_secs;
    let denom = l.max(rhs);
    if denom <= 0.0 {
        return 0.0;
    }
    (l - rhs).abs() / denom
}

/// Convenience: mean of a duration sample expressed in µs.
pub fn mean_us(acc: &Welford) -> SimDuration {
    SimDuration::from_micros_f64(acc.mean().max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_welford_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn time_weighted_average() {
        let t0 = SimTime::ZERO;
        let mut tw = TimeWeighted::new(t0, 0.0);
        tw.set(SimTime::from_micros(10), 2.0); // 0 for 10us
        tw.set(SimTime::from_micros(30), 1.0); // 2 for 20us
        let avg = tw.average(SimTime::from_micros(40)); // 1 for 10us
                                                        // (0*10 + 2*20 + 1*10) / 40 = 50/40
        assert!((avg - 1.25).abs() < 1e-12);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_reset_discards_history() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 5.0);
        tw.set(SimTime::from_micros(100), 1.0);
        tw.reset(SimTime::from_micros(100));
        let avg = tw.average(SimTime::from_micros(200));
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add_delta() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_micros(10), 2.0);
        assert_eq!(tw.current(), 3.0);
        tw.add(SimTime::from_micros(20), -3.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.add(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 100);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 {p99}");
    }

    #[test]
    fn histogram_overflow() {
        let mut h = Histogram::new(1.0, 10);
        h.add(5.0);
        h.add(100.0);
        assert!((h.overflow_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(h.quantile(0.9), None, "quantile in overflow tail");
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn batch_means_interval_covers_iid_mean() {
        use crate::rng::RngFactory;
        use rand::Rng;
        let mut rng = RngFactory::new(77).stream("bm");
        let mut bm = BatchMeans::new(10);
        for _ in 0..10_000 {
            bm.add(rng.gen::<f64>()); // U(0,1), mean 0.5
        }
        let ci = bm.interval().unwrap();
        assert!(
            (ci.mean - 0.5).abs() < ci.half_width + 0.02,
            "mean {} hw {}",
            ci.mean,
            ci.half_width
        );
        assert!(ci.half_width < 0.05);
        assert!(ci.relative_width() < 0.1);
    }

    #[test]
    fn batch_means_needs_enough_data() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..5 {
            bm.add(1.0);
        }
        assert!(bm.interval().is_none());
    }

    #[test]
    fn littles_law_gap_zero_when_consistent() {
        assert!(littles_law_gap(2.0, 4.0, 0.5) < 1e-12);
        assert!(littles_law_gap(0.0, 0.0, 0.0) == 0.0);
        assert!(littles_law_gap(2.0, 4.0, 1.0) > 0.4);
    }

    #[test]
    fn t_table_monotone_toward_normal() {
        assert!(t_975(1) > t_975(5));
        assert!(t_975(5) > t_975(30));
        assert_eq!(t_975(31), 1.96);
    }
}
