#![warn(missing_docs)]

//! # afs-desim — discrete-event simulation substrate
//!
//! The simulation kernel underlying the `affinity-sched` workspace, the
//! Rust reproduction of Salehi, Kurose & Towsley, *"The Performance Impact
//! of Scheduling for Cache Affinity in Parallel Network Processing"*
//! (HPDC-4, 1995).
//!
//! The crate is deliberately generic — nothing in here knows about caches,
//! protocols or processors. It provides:
//!
//! * [`time`] — fixed-point simulation clock types ([`SimTime`],
//!   [`SimDuration`]); integer nanosecond ticks, so event ordering is
//!   exact and runs are bit-reproducible.
//! * [`event`] — a stable (FIFO-on-ties) time-ordered event queue with
//!   lazy cancellation.
//! * [`engine`] — the [`Simulate`] trait and the [`Engine`] driver with
//!   horizon / event-budget stop conditions.
//! * [`rng`] — named deterministic RNG substreams supporting
//!   common-random-number comparisons across scheduling policies.
//! * [`dist`] — inverse-CDF samplers (exponential, bounded Pareto,
//!   hyperexponential, …) and discrete count distributions.
//! * [`stats`] — Welford accumulators, time-weighted averages, quantile
//!   histograms, batch-means confidence intervals and a Little's-law
//!   consistency check.
//! * [`warmup`] — MSER-5 initial-transient detection for choosing the
//!   truncation point of steady-state output series.

pub mod dist;
pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod warmup;

pub use dist::{CountDist, Dist};
pub use engine::{Engine, Scheduler, Simulate, StopReason};
pub use event::{EventId, EventQueue};
pub use rng::RngFactory;
pub use stats::{BatchMeans, ConfInterval, Histogram, TimeWeighted, Welford};
pub use time::{SimDuration, SimTime};
pub use warmup::{mser5, WarmupEstimate};
