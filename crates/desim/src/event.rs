//! The pending-event set: a time-ordered priority queue with stable FIFO
//! ordering for simultaneous events and O(log n) lazy cancellation.
//!
//! Determinism matters more than raw speed here: two events scheduled for
//! the same instant are delivered in the order they were scheduled, so a
//! simulation run is a pure function of (configuration, master seed).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// Internal heap entry. Ordered by `(time, seq)` ascending; `BinaryHeap` is
/// a max-heap so the `Ord` implementation is reversed.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest time (then lowest seq) is the heap maximum.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// * `push` schedules a payload at an absolute time and returns an
///   [`EventId`].
/// * `cancel` lazily removes a scheduled event (tombstoned; skipped on pop).
/// * `pop` yields events in `(time, insertion order)` order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids of events currently scheduled and not cancelled. Entries whose
    /// id is absent from this set are tombstones, skipped on pop.
    pending: HashSet<EventId>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry {
            time,
            seq,
            id,
            payload,
        });
        self.pending.insert(id);
        id
    }

    /// Cancel a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an
    /// already-fired or already-cancelled event returns `false` and has no
    /// other effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id)
    }

    /// Remove and return the earliest live event, skipping tombstones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&entry.id) {
                return Some((entry.time, entry.payload));
            }
            // else: tombstone, drop and continue
        }
        None
    }

    /// Time of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstones at the top so the peeked entry is live.
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.id) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_unknown_id_rejected() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
        q.push(t(1), 7);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(1), 7)));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop(), Some((t(5), 0)));
        q.push(t(7), 9);
        assert_eq!(q.pop(), Some((t(7), 9)));
        assert_eq!(q.pop(), Some((t(10), 1)));
    }

    #[test]
    fn times_can_repeat_across_pushes() {
        let mut q = EventQueue::new();
        let base = t(3) + SimDuration::from_micros(0);
        q.push(base, "x");
        q.pop();
        q.push(base, "y"); // same instant after a pop
        assert_eq!(q.pop(), Some((base, "y")));
    }
}
