//! The pending-event set: a time-ordered priority queue with stable FIFO
//! ordering for simultaneous events and O(log n) lazy cancellation.
//!
//! Determinism matters more than raw speed here: two events scheduled for
//! the same instant are delivered in the order they were scheduled, so a
//! simulation run is a pure function of (configuration, master seed).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// Identity hasher for [`EventId`]s. Ids are allocated sequentially, so
/// they are already uniformly spread over the table and SipHash buys
/// nothing; the pending-set lookup sits on the event loop's hot path
/// (one insert + one remove per event, plus one probe per tombstone
/// skip), so the mixing cost is worth removing.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("EventId hashes via write_u64 only");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type IdSet = HashSet<EventId, BuildHasherDefault<IdHasher>>;

/// Internal heap entry. Ordered by `(time, seq)` ascending; `BinaryHeap` is
/// a max-heap so the `Ord` implementation is reversed.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest time (then lowest seq) is the heap maximum.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// * `push` schedules a payload at an absolute time and returns an
///   [`EventId`].
/// * `cancel` lazily removes a scheduled event (tombstoned; skipped on pop).
/// * `pop` yields events in `(time, insertion order)` order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids of events currently scheduled and not cancelled. Entries whose
    /// id is absent from this set are tombstones, skipped on pop.
    pending: IdSet,
    next_seq: u64,
}

/// Tombstones are compacted away only once the heap is at least this
/// large; below it the dead entries cost less than a rebuild.
const COMPACT_MIN_HEAP: usize = 64;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::default(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry {
            time,
            seq,
            id,
            payload,
        });
        self.pending.insert(id);
        id
    }

    /// Cancel a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an
    /// already-fired or already-cancelled event returns `false` and has no
    /// other effect.
    ///
    /// Cancellation is lazy — the heap entry becomes a tombstone — but
    /// once tombstones outnumber live events the heap is compacted, so a
    /// cancel-heavy workload holds O(live) memory instead of growing
    /// without bound until the dead entries happen to reach the top.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let was_pending = self.pending.remove(&id);
        if was_pending
            && self.heap.len() >= COMPACT_MIN_HEAP
            && self.heap.len() > 2 * self.pending.len()
        {
            self.compact();
        }
        was_pending
    }

    /// Drop every tombstone by rebuilding the heap from its live entries.
    /// O(n) for the filter plus O(n) for the re-heapify; amortized O(1)
    /// per cancel because at least half the entries are discarded each
    /// time. Pop order is unaffected: it is fixed by the total
    /// `(time, seq)` order, not by the heap's internal layout.
    fn compact(&mut self) {
        let pending = &self.pending;
        self.heap = std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .filter(|e| pending.contains(&e.id))
            .collect();
    }

    /// Remove and return the earliest live event, skipping tombstones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&entry.id) {
                return Some((entry.time, entry.payload));
            }
            // else: tombstone, drop and continue
        }
        None
    }

    /// Time of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstones at the top so the peeked entry is live.
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.id) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Entries physically held by the queue, tombstones included —
    /// `retained() - len()` is the current tombstone count. Exposed so
    /// memory-behavior tests (and diagnostics) can observe compaction.
    pub fn retained(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_unknown_id_rejected() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
        q.push(t(1), 7);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(1), 7)));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop(), Some((t(5), 0)));
        q.push(t(7), 9);
        assert_eq!(q.pop(), Some((t(7), 9)));
        assert_eq!(q.pop(), Some((t(10), 1)));
    }

    #[test]
    fn cancel_heavy_compacts_tombstones() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10_000).map(|i| q.push(t(i), i)).collect();
        // Cancel all but every 100th event, scattered across the heap.
        for (i, &id) in ids.iter().enumerate() {
            if i % 100 != 0 {
                q.cancel(id);
            }
        }
        assert_eq!(q.len(), 100);
        // Compaction bounds physical memory: at most 2× live (+ the
        // below-threshold slack), not the 10 000 entries pushed.
        assert!(
            q.retained() <= 2 * q.len() + COMPACT_MIN_HEAP,
            "retained {} for {} live events",
            q.retained(),
            q.len()
        );
        // Survivors pop in exactly the original time order.
        for i in (0..10_000).step_by(100) {
            assert_eq!(q.pop(), Some((t(i), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_cancel_push_pop_keeps_order_and_memory() {
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        let mut peak_live = 0usize;
        // Waves of push-many / cancel-most / pop-some, with colliding
        // timestamps, exercising compaction mid-stream.
        for wave in 0u64..50 {
            let ids: Vec<_> = (0u64..200)
                .map(|i| q.push(t(wave * 10 + i % 7), (wave, i)))
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                let i = i as u64;
                if i % 10 != 3 {
                    assert!(q.cancel(id));
                    assert!(!q.cancel(id), "double cancel must be a no-op");
                } else {
                    expected.push((t(wave * 10 + i % 7), (wave, i)));
                }
            }
            peak_live = peak_live.max(q.len());
            assert!(
                q.retained() <= 2 * q.len() + COMPACT_MIN_HEAP,
                "wave {wave}: retained {} for {} live",
                q.retained(),
                q.len()
            );
        }
        // Same (time, insertion order) sort the queue guarantees.
        expected.sort_by_key(|&(time, (wave, i))| (time, wave, i));
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped, expected);
        assert!(peak_live >= 20, "test must actually hold live events");
    }

    #[test]
    fn small_heaps_skip_compaction() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..COMPACT_MIN_HEAP as u64 - 4)
            .map(|i| q.push(t(i), i))
            .collect();
        for &id in &ids[1..] {
            q.cancel(id);
        }
        // Below the threshold the tombstones simply sit in the heap.
        assert_eq!(q.retained(), COMPACT_MIN_HEAP - 4);
        assert_eq!(q.pop(), Some((t(0), 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn times_can_repeat_across_pushes() {
        let mut q = EventQueue::new();
        let base = t(3) + SimDuration::from_micros(0);
        q.push(base, "x");
        q.pop();
        q.push(base, "y"); // same instant after a pop
        assert_eq!(q.pop(), Some((base, "y")));
    }
}
