//! The pending-event set: a bucketed **calendar queue** with stable FIFO
//! ordering for simultaneous events and O(1) lazy cancellation.
//!
//! Determinism matters more than raw speed here: two events scheduled for
//! the same instant are delivered in the order they were scheduled, so a
//! simulation run is a pure function of (configuration, master seed).
//! Pop order is the total order `(time, insertion seq)` ascending — the
//! same contract the previous binary-heap implementation satisfied — and
//! because that order is total (seqs are unique), it is independent of
//! the queue's internal layout: bucket count, bucket width and resize
//! instants cannot change what is popped, only how fast.
//!
//! # Structure
//!
//! A classic calendar queue (Brown 1988): `nbuckets` (a power of two)
//! "days", each `width` ticks long, wrapping around a "year" of
//! `nbuckets × width` ticks. An event at time `t` lives in bucket
//! `(t / width) mod nbuckets`. Each bucket is a `Vec` kept sorted
//! *descending* by `(time, seq)` so the bucket minimum pops from the
//! back in O(1). Pop scans forward from the current day and delivers the
//! bucket head that falls inside the day's current-year window
//! `[cur_top − width, cur_top)`; a full fruitless year falls back to a
//! direct minimum search that re-anchors the scan. Small queues
//! (`live ≤ COMPACT_MIN_HEAP`) collapse to a single sorted bucket — for
//! the simulator's typical handful of pending events that degenerate
//! case is the fast path: binary-search insert, pop from the back,
//! no hashing anywhere.
//!
//! # Cancellation
//!
//! `cancel` is O(1): event ids are `(slot index, generation)` pairs into
//! a slab of generation counters, so validity is one array compare — no
//! hash set on the hot path. A cancelled event's physical entry stays in
//! its bucket as a tombstone (generation mismatch) and is dropped when a
//! scan reaches it; once tombstones outnumber live events the buckets
//! are compacted (the PR-4 memory bound `retained ≤ 2·live +
//! COMPACT_MIN_HEAP` is preserved).

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// Internally `(generation << 32) | slot`: the slot indexes the queue's
/// generation slab and the generation (odd while the event is pending)
/// detects stale handles, so cancel-after-fire and double-cancel are
/// rejected with a single compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    #[inline]
    fn slot(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One scheduled event as stored in a bucket: 24 bytes of ordering key
/// and identity. The payload itself lives out-of-band in the queue's
/// slot-indexed `payloads` table, so sorted inserts move only these
/// small keys and never copy payloads around.
struct Slot {
    time: SimTime,
    /// Insertion sequence number: the FIFO tie-breaker for equal times.
    seq: u64,
    /// The id handed out for this entry; stale (generation mismatch
    /// against the slab) once cancelled or fired ⇒ tombstone.
    id: EventId,
}

impl Slot {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A time-ordered event queue (bucketed calendar queue).
///
/// * `push` schedules a payload at an absolute time and returns an
///   [`EventId`].
/// * `cancel` lazily removes a scheduled event (tombstoned; skipped on
///   scan).
/// * `pop` yields events in `(time, insertion order)` order.
pub struct EventQueue<E> {
    /// `nbuckets` power-of-two day buckets, each sorted descending by
    /// `(time, seq)` — the bucket minimum is at the back.
    buckets: Vec<Vec<Slot>>,
    /// `nbuckets − 1`, for masking day indices.
    mask: usize,
    /// Ticks per day bucket (≥ 1; meaningless while `mask == 0`).
    /// Always a power of two so the day of a timestamp is a shift, not
    /// a division — `push` and every scan compute it.
    width: u64,
    /// `log2(width)`: `day(t) = t >> width_shift`.
    width_shift: u32,
    /// The day the scan is currently on.
    cur_bucket: usize,
    /// Exclusive upper edge (in ticks) of `cur_bucket`'s window in the
    /// current year. `u128` so year advances can never overflow. The
    /// scan invariant: no live event is earlier than `cur_top − width`.
    cur_top: u128,
    /// Scheduled-and-not-cancelled events.
    live: usize,
    /// Cancelled entries still physically present in some bucket.
    tombstones: usize,
    /// Generation per id slot; odd = pending, even = free.
    slab: Vec<u32>,
    /// Payload per id slot (`Some` exactly while the slot is pending).
    payloads: Vec<Option<E>>,
    /// Free id slots.
    free: Vec<u32>,
    next_seq: u64,
}

/// Tombstones are compacted away only once the queue is at least this
/// large; below it the dead entries cost less than a rebuild. Doubles as
/// the live count at which the single sorted bucket splits into a true
/// multi-bucket calendar.
const COMPACT_MIN_HEAP: usize = 64;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: vec![Vec::new()],
            mask: 0,
            width: 1,
            width_shift: 0,
            cur_bucket: 0,
            cur_top: 1,
            live: 0,
            tombstones: 0,
            slab: Vec::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Is `id` a currently pending (scheduled, not cancelled, not fired)
    /// event?
    #[inline]
    fn is_live(&self, id: EventId) -> bool {
        self.slab.get(id.slot()).copied() == Some(id.gen())
    }

    /// Day bucket holding time `t`.
    #[inline]
    fn bucket_of(&self, t: SimTime) -> usize {
        ((t.ticks() >> self.width_shift) as usize) & self.mask
    }

    /// Schedule `payload` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = match self.free.pop() {
            Some(slot) => {
                let gen = self.slab[slot as usize].wrapping_add(1);
                self.slab[slot as usize] = gen;
                self.payloads[slot as usize] = Some(payload);
                EventId::new(slot, gen)
            }
            None => {
                let slot = self.slab.len() as u32;
                self.slab.push(1);
                self.payloads.push(Some(payload));
                EventId::new(slot, 1)
            }
        };
        let b = if self.mask == 0 {
            0
        } else {
            // An event earlier than the scan's window start would be
            // missed for up to a year; rewind the scan to its day.
            // (The engine never schedules into the past, but the queue
            // does not rely on that.)
            let day = time.ticks() >> self.width_shift;
            let top = (day as u128 + 1) << self.width_shift;
            if top < self.cur_top {
                self.cur_top = top;
                self.cur_bucket = (day as usize) & self.mask;
            }
            (day as usize) & self.mask
        };
        let bucket = &mut self.buckets[b];
        let key = (time, seq);
        let at = bucket.partition_point(|s| s.key() > key);
        bucket.insert(at, Slot { time, seq, id });
        self.live += 1;
        if self.live > COMPACT_MIN_HEAP && self.live > 2 * (self.mask + 1) {
            self.rebuild();
        }
        id
    }

    /// Cancel a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an
    /// already-fired or already-cancelled event returns `false` and has
    /// no other effect.
    ///
    /// Cancellation is lazy — the bucket entry becomes a tombstone — but
    /// once tombstones outnumber live events the buckets are compacted,
    /// so a cancel-heavy workload holds O(live) memory instead of
    /// growing without bound until the dead entries happen to be
    /// scanned.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.slab[id.slot()] = id.gen().wrapping_add(1);
        self.payloads[id.slot()] = None;
        self.free.push(id.slot() as u32);
        self.live -= 1;
        self.tombstones += 1;
        let physical = self.live + self.tombstones;
        if physical >= COMPACT_MIN_HEAP && physical > 2 * self.live {
            if self.shrink_due() {
                self.rebuild();
            } else {
                self.compact();
            }
        } else if self.shrink_due() {
            self.rebuild();
        }
        true
    }

    /// Should the calendar drop to fewer buckets?
    #[inline]
    fn shrink_due(&self) -> bool {
        self.mask > 0 && 4 * self.live < self.mask + 1
    }

    /// Drop every tombstone in place (bucket layout unchanged). O(n);
    /// amortized O(1) per cancel because at least half the entries are
    /// discarded each time. Pop order is unaffected: it is fixed by the
    /// total `(time, seq)` order, not by physical layout.
    fn compact(&mut self) {
        for b in &mut self.buckets {
            b.retain(|s| self.slab.get(s.id.slot()).copied() == Some(s.id.gen()));
        }
        self.tombstones = 0;
    }

    /// Re-bucket every live event for the current size: one sorted
    /// bucket while small, otherwise ~one event per bucket with the
    /// width set to the mean inter-event gap. Also discards all
    /// tombstones. Deterministically triggered by live-count thresholds
    /// only — and even if the parameters were chosen badly, pop order
    /// would be unaffected (the `(time, seq)` order is total).
    fn rebuild(&mut self) {
        let mut slots: Vec<Slot> = Vec::with_capacity(self.live);
        for b in &mut self.buckets {
            for s in b.drain(..) {
                if self.slab.get(s.id.slot()).copied() == Some(s.id.gen()) {
                    slots.push(s);
                }
            }
        }
        self.tombstones = 0;
        debug_assert_eq!(slots.len(), self.live);
        let nbuckets = if self.live <= COMPACT_MIN_HEAP {
            1
        } else {
            self.live.next_power_of_two()
        };
        self.buckets.truncate(nbuckets);
        self.buckets.resize_with(nbuckets, Vec::new);
        self.mask = nbuckets - 1;
        if slots.is_empty() {
            self.width = 1;
            self.width_shift = 0;
            self.cur_bucket = 0;
            self.cur_top = 1;
            return;
        }
        let mut min_t = u64::MAX;
        let mut max_t = 0u64;
        for s in &slots {
            min_t = min_t.min(s.time.ticks());
            max_t = max_t.max(s.time.ticks());
        }
        // Mean inter-event gap as the day width, rounded up to a power
        // of two so day extraction is a shift: with next_power_of_two
        // buckets this spreads the live set over about half a year to a
        // year.
        self.width = ((max_t - min_t) / slots.len() as u64)
            .max(1)
            .next_power_of_two();
        self.width_shift = self.width.trailing_zeros();
        if self.mask == 0 {
            // Single sorted bucket: sort once, descending.
            slots.sort_unstable_by_key(|s| core::cmp::Reverse(s.key()));
            self.buckets[0] = slots;
            self.cur_bucket = 0;
            self.cur_top = 1;
        } else {
            for s in slots {
                let b = self.bucket_of(s.time);
                self.buckets[b].push(s);
            }
            for b in &mut self.buckets {
                b.sort_unstable_by_key(|s| core::cmp::Reverse(s.key()));
            }
            // Anchor the scan at the earliest event's day.
            let day = min_t >> self.width_shift;
            self.cur_bucket = (day as usize) & self.mask;
            self.cur_top = (day as u128 + 1) << self.width_shift;
        }
    }

    /// Advance the scan until the global minimum live event sits at the
    /// back of `buckets[cur_bucket]`. Returns `false` iff no live event
    /// remains. Removes any tombstone it touches.
    fn find_min(&mut self) -> bool {
        if self.live == 0 {
            return false;
        }
        // Single-bucket fast path: the back is the minimum.
        if self.mask == 0 {
            let slab = &self.slab;
            let b = &mut self.buckets[0];
            while let Some(s) = b.last() {
                if slab.get(s.id.slot()).copied() == Some(s.id.gen()) {
                    return true;
                }
                b.pop();
                self.tombstones -= 1;
            }
            unreachable!("live > 0 but no live entry in single bucket");
        }
        let nbuckets = self.mask + 1;
        let mut advanced = 0usize;
        loop {
            let slab = &self.slab;
            let b = &mut self.buckets[self.cur_bucket];
            while let Some(s) = b.last() {
                if slab.get(s.id.slot()).copied() == Some(s.id.gen()) {
                    break;
                }
                b.pop();
                self.tombstones -= 1;
            }
            if let Some(s) = b.last() {
                if (s.time.ticks() as u128) < self.cur_top {
                    return true;
                }
            }
            self.cur_bucket = (self.cur_bucket + 1) & self.mask;
            self.cur_top += self.width as u128;
            advanced += 1;
            if advanced >= nbuckets {
                // A whole year with nothing due: the live set is sparse
                // relative to the calendar. Find the minimum directly
                // and re-anchor the scan on its day. Ties cannot span
                // buckets (equal times share a day), so comparing bucket
                // heads by (time, seq) preserves FIFO.
                let mut best: Option<(u64, u64, usize)> = None;
                for i in 0..self.buckets.len() {
                    let b = &mut self.buckets[i];
                    while let Some(s) = b.last() {
                        if self.slab.get(s.id.slot()).copied() == Some(s.id.gen()) {
                            break;
                        }
                        b.pop();
                        self.tombstones -= 1;
                    }
                    if let Some(s) = b.last() {
                        let k = (s.time.ticks(), s.seq);
                        if best.is_none_or(|(t, q, _)| k < (t, q)) {
                            best = Some((k.0, k.1, i));
                        }
                    }
                }
                let (min_t, _, bi) = best.expect("live > 0 but no live entry in any bucket");
                let day = min_t >> self.width_shift;
                self.cur_bucket = bi;
                self.cur_top = (day as u128 + 1) << self.width_shift;
                debug_assert_eq!((day as usize) & self.mask, bi);
                return true;
            }
        }
    }

    /// Remove and return the earliest live event, skipping tombstones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.find_min() {
            return None;
        }
        Some(self.take_min())
    }

    /// Remove and return the earliest live event **iff** its time is at
    /// or before `horizon`. Returns `None` both when the queue is
    /// drained and when the earliest event is past the horizon
    /// (distinguish via [`EventQueue::is_empty`]). This fuses the
    /// `peek_time` + `pop` pair the engine's bounded run loop would
    /// otherwise issue into a single scan.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if !self.find_min() {
            return None;
        }
        let b = &self.buckets[self.cur_bucket];
        if b.last().expect("find_min positioned a minimum").time > horizon {
            return None;
        }
        Some(self.take_min())
    }

    /// Pop the minimum that [`EventQueue::find_min`] positioned.
    fn take_min(&mut self) -> (SimTime, E) {
        let s = self.buckets[self.cur_bucket]
            .pop()
            .expect("find_min positioned a minimum");
        self.slab[s.id.slot()] = s.id.gen().wrapping_add(1);
        let payload = self.payloads[s.id.slot()]
            .take()
            .expect("pending slot holds a payload");
        self.free.push(s.id.slot() as u32);
        self.live -= 1;
        if self.shrink_due() {
            self.rebuild();
        }
        (s.time, payload)
    }

    /// Time of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.find_min() {
            return None;
        }
        Some(
            self.buckets[self.cur_bucket]
                .last()
                .expect("find_min positioned a minimum")
                .time,
        )
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Entries physically held by the queue, tombstones included —
    /// `retained() - len()` is the current tombstone count. Exposed so
    /// memory-behavior tests (and diagnostics) can observe compaction.
    pub fn retained(&self) -> usize {
        self.live + self.tombstones
    }

    /// Current number of day buckets (1 while the queue is small).
    /// Exposed for resize-behavior tests and diagnostics.
    pub fn n_buckets(&self) -> usize {
        self.mask + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_unknown_id_rejected() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventId::new(42, 1)));
        q.push(t(1), 7);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(1), 7)));
    }

    #[test]
    fn id_slot_reuse_does_not_alias() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.cancel(a);
        // The new event reuses a's slab slot with a bumped generation;
        // the stale handle must not be able to cancel it.
        let b = q.push(t(2), "b");
        assert_eq!(b.slot(), a.slot());
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop(), Some((t(5), 0)));
        q.push(t(7), 9);
        assert_eq!(q.pop(), Some((t(7), 9)));
        assert_eq!(q.pop(), Some((t(10), 1)));
    }

    #[test]
    fn cancel_heavy_compacts_tombstones() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10_000).map(|i| q.push(t(i), i)).collect();
        // Cancel all but every 100th event, scattered across the heap.
        for (i, &id) in ids.iter().enumerate() {
            if i % 100 != 0 {
                q.cancel(id);
            }
        }
        assert_eq!(q.len(), 100);
        // Compaction bounds physical memory: at most 2× live (+ the
        // below-threshold slack), not the 10 000 entries pushed.
        assert!(
            q.retained() <= 2 * q.len() + COMPACT_MIN_HEAP,
            "retained {} for {} live events",
            q.retained(),
            q.len()
        );
        // Survivors pop in exactly the original time order.
        for i in (0..10_000).step_by(100) {
            assert_eq!(q.pop(), Some((t(i), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_cancel_push_pop_keeps_order_and_memory() {
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        let mut peak_live = 0usize;
        // Waves of push-many / cancel-most / pop-some, with colliding
        // timestamps, exercising compaction mid-stream.
        for wave in 0u64..50 {
            let ids: Vec<_> = (0u64..200)
                .map(|i| q.push(t(wave * 10 + i % 7), (wave, i)))
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                let i = i as u64;
                if i % 10 != 3 {
                    assert!(q.cancel(id));
                    assert!(!q.cancel(id), "double cancel must be a no-op");
                } else {
                    expected.push((t(wave * 10 + i % 7), (wave, i)));
                }
            }
            peak_live = peak_live.max(q.len());
            assert!(
                q.retained() <= 2 * q.len() + COMPACT_MIN_HEAP,
                "wave {wave}: retained {} for {} live",
                q.retained(),
                q.len()
            );
        }
        // Same (time, insertion order) sort the queue guarantees.
        expected.sort_by_key(|&(time, (wave, i))| (time, wave, i));
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped, expected);
        assert!(peak_live >= 20, "test must actually hold live events");
    }

    #[test]
    fn small_heaps_skip_compaction() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..COMPACT_MIN_HEAP as u64 - 4)
            .map(|i| q.push(t(i), i))
            .collect();
        for &id in &ids[1..] {
            q.cancel(id);
        }
        // Below the threshold the tombstones simply sit in the bucket.
        assert_eq!(q.retained(), COMPACT_MIN_HEAP - 4);
        assert_eq!(q.pop(), Some((t(0), 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn times_can_repeat_across_pushes() {
        let mut q = EventQueue::new();
        let base = t(3) + SimDuration::from_micros(0);
        q.push(base, "x");
        q.pop();
        q.push(base, "y"); // same instant after a pop
        assert_eq!(q.pop(), Some((base, "y")));
    }

    #[test]
    fn grows_into_calendar_and_shrinks_back() {
        let mut q = EventQueue::new();
        assert_eq!(q.n_buckets(), 1);
        let mut ids = Vec::new();
        for i in 0..1000u64 {
            ids.push(q.push(t(1 + i * 37 % 997), i));
        }
        assert!(q.n_buckets() > 1, "large queue must split into buckets");
        // Drain most of it: the calendar must shrink back down and the
        // pop order must still be the global (time, seq) sort.
        let mut last = (SimTime::ZERO, 0u64);
        for _ in 0..990 {
            let (time, i) = q.pop().unwrap();
            let key = (time, i);
            assert!(
                (last.0, last.1) <= (time, i),
                "order violated: {last:?} then {key:?}"
            );
            last = key;
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.n_buckets(), 1, "drained queue collapses to one bucket");
    }

    #[test]
    fn bimodal_cluster_gap_crosses_year_boundary() {
        // Two clusters much further apart than one calendar year
        // (nbuckets × width): after the first cluster drains, the scan
        // wraps a whole fruitless year and must fall back to the direct
        // minimum search. Pop order must still be the global sort.
        let mut q = EventQueue::new();
        for i in 0..120u64 {
            q.push(t(i), i);
        }
        for i in 0..120u64 {
            q.push(t(1_000_000 + i), 1000 + i);
        }
        assert!(q.n_buckets() > 1);
        let mut prev = None;
        for _ in 0..240 {
            let (time, v) = q.pop().unwrap();
            if let Some(p) = prev {
                assert!(p < (time, v), "order violated: {p:?} then {:?}", (time, v));
            }
            prev = Some((time, v));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_earlier_than_scan_rewinds() {
        let mut q = EventQueue::new();
        for i in 0..600u64 {
            q.push(t(1000 + i), i);
        }
        assert!(q.n_buckets() > 1);
        // Advance the scan deep into the calendar (not far enough to
        // shrink back to a single bucket)…
        for _ in 0..400 {
            q.pop();
        }
        assert!(q.n_buckets() > 1);
        // …then schedule before every remaining event (legal for the
        // queue even though the engine never schedules into the past).
        q.push(t(1), 999);
        assert_eq!(q.pop(), Some((t(1), 999)));
        assert_eq!(q.pop(), Some((t(1400), 400)));
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop_at_or_before(t(5)), None);
        assert!(!q.is_empty(), "horizon miss leaves the event pending");
        // An event exactly at the horizon is delivered.
        assert_eq!(q.pop_at_or_before(t(10)), Some((t(10), "a")));
        assert_eq!(q.pop_at_or_before(t(10)), None);
        assert_eq!(q.pop_at_or_before(t(20)), Some((t(20), "b")));
        assert_eq!(q.pop_at_or_before(t(20)), None);
        assert!(q.is_empty(), "drained and horizon miss are distinguished");
    }
}
