//! Deterministic named random-number streams.
//!
//! Every stochastic component of a simulation (each arrival process, the
//! non-protocol workload, tie-breaking in policies, …) draws from its own
//! named substream derived from a single master seed. This gives:
//!
//! * **Reproducibility** — a run is a pure function of (config, seed).
//! * **Common random numbers** — comparing two policies under the same
//!   seed reuses the identical arrival sample paths, which slashes the
//!   variance of *differences* (the quantity the paper's figures plot).
//! * **Independence** — adding a new consumer does not perturb the streams
//!   other consumers see (no shared global sequence).
//!
//! Substream seeds are derived with SplitMix64 over the FNV-1a hash of the
//! stream name mixed with the master seed; SplitMix64 is the standard
//! seeding recommendation for PRNG families.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 output function: a strong 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Factory for named, mutually independent random streams.
#[derive(Debug, Clone, Copy)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Create a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the substream seed for `name`.
    pub fn seed_for(&self, name: &str) -> u64 {
        splitmix64(self.master_seed ^ fnv1a(name.as_bytes()))
    }

    /// Derive the substream seed for an indexed family member, e.g. one
    /// stream per connection: `seed_for_indexed("arrivals", k)`.
    pub fn seed_for_indexed(&self, name: &str, index: u64) -> u64 {
        splitmix64(self.seed_for(name) ^ splitmix64(index.wrapping_add(1)))
    }

    /// A ready-to-use RNG for `name`.
    pub fn stream(&self, name: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(name))
    }

    /// A ready-to-use RNG for family member `index` of `name`.
    pub fn stream_indexed(&self, name: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_indexed(name, index))
    }
}

/// Convenience: a uniform draw in `[0, 1)` from any RNG, used by the
/// distribution samplers.
#[inline]
pub fn unit_uniform<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_name_same_stream() {
        let f = RngFactory::new(42);
        let mut a = f.stream("arrivals");
        let mut b = f.stream("arrivals");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_differ() {
        let f = RngFactory::new(42);
        assert_ne!(f.seed_for("arrivals"), f.seed_for("service"));
        let mut a = f.stream("arrivals");
        let mut b = f.stream("service");
        // Overwhelmingly unlikely to collide on the first draw.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_master_seeds_differ() {
        let f1 = RngFactory::new(1);
        let f2 = RngFactory::new(2);
        assert_ne!(f1.seed_for("x"), f2.seed_for("x"));
    }

    #[test]
    fn indexed_family_members_are_distinct() {
        let f = RngFactory::new(7);
        let seeds: Vec<u64> = (0..100).map(|i| f.seed_for_indexed("s", i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision in indexed seeds");
    }

    #[test]
    fn index_zero_differs_from_base() {
        let f = RngFactory::new(7);
        assert_ne!(f.seed_for("s"), f.seed_for_indexed("s", 0));
    }

    #[test]
    fn unit_uniform_in_range() {
        let f = RngFactory::new(9);
        let mut r = f.stream("u");
        for _ in 0..1000 {
            let u = unit_uniform(&mut r);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
