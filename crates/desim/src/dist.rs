//! Sampling distributions for interarrival times, service components and
//! batch sizes.
//!
//! All continuous distributions sample a non-negative `f64` (interpreted by
//! callers as microseconds unless stated otherwise) via inverse-CDF
//! transforms of a single uniform draw, so one logical sample consumes one
//! RNG draw — which keeps common-random-number comparisons aligned across
//! policies.

use rand::Rng;

use crate::rng::unit_uniform;
use crate::time::SimDuration;

/// A continuous non-negative distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always `value`.
    Deterministic {
        /// The constant value returned by every draw.
        value: f64,
    },
    /// Exponential with the given mean (`rate = 1/mean`).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Pareto with shape `alpha > 0`, scale `xm > 0`, truncated at `cap`
    /// (samples above `cap` are clamped). Heavy-tailed burst lengths.
    BoundedPareto {
        /// Tail index (smaller = heavier tail).
        alpha: f64,
        /// Scale: the minimum value.
        xm: f64,
        /// Truncation point (samples are clamped here).
        cap: f64,
    },
    /// Two-point mixture: `value_a` with probability `p_a`, else `value_b`.
    /// Used for bimodal packet-size mixes (small acks vs full-MTU data).
    TwoPoint {
        /// First branch's value.
        value_a: f64,
        /// Probability of the first branch.
        p_a: f64,
        /// Second branch's value.
        value_b: f64,
    },
    /// Hyperexponential with two branches: branch 1 (mean `mean_a`) chosen
    /// with probability `p_a`, else branch 2 (mean `mean_b`). Gives
    /// squared coefficient of variation > 1 for bursty service.
    Hyper2 {
        /// Probability of the first branch.
        p_a: f64,
        /// First branch's exponential mean.
        mean_a: f64,
        /// Second branch's exponential mean.
        mean_b: f64,
    },
    /// Empirical distribution: draw uniformly from recorded samples
    /// (e.g. a measured packet-size or interarrival trace).
    Empirical {
        /// The recorded samples (all finite, non-negative).
        samples: std::sync::Arc<Vec<f64>>,
    },
}

impl Dist {
    /// A deterministic point mass.
    pub fn constant(value: f64) -> Self {
        assert!(
            value >= 0.0 && value.is_finite(),
            "invalid constant {value}"
        );
        Dist::Deterministic { value }
    }

    /// An exponential with the given mean.
    pub fn exponential(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "invalid mean {mean}");
        Dist::Exponential { mean }
    }

    /// Uniform on `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(lo >= 0.0 && hi > lo && hi.is_finite(), "invalid range");
        Dist::Uniform { lo, hi }
    }

    /// Bounded Pareto.
    pub fn bounded_pareto(alpha: f64, xm: f64, cap: f64) -> Self {
        assert!(alpha > 0.0 && xm > 0.0 && cap >= xm, "invalid pareto");
        Dist::BoundedPareto { alpha, xm, cap }
    }

    /// Empirical distribution over recorded samples.
    pub fn empirical(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empirical needs at least one sample");
        assert!(
            samples.iter().all(|x| x.is_finite() && *x >= 0.0),
            "empirical samples must be finite and non-negative"
        );
        Dist::Empirical {
            samples: std::sync::Arc::new(samples),
        }
    }

    /// The mean of the distribution (exact, not sampled).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Exponential { mean } => mean,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::BoundedPareto { alpha, xm, cap } => {
                // Mean of Pareto clamped at cap: E[min(X, cap)].
                if (alpha - 1.0).abs() < 1e-12 {
                    xm * (1.0 + (cap / xm).ln()) - 0.0
                } else {
                    let a = alpha;
                    // E[min(X,c)] = (a*xm/(a-1)) * (1 - (xm/c)^(a-1)) + c*(xm/c)^a
                    let r = xm / cap;
                    (a * xm / (a - 1.0)) * (1.0 - r.powf(a - 1.0)) + cap * r.powf(a)
                }
            }
            Dist::TwoPoint {
                value_a,
                p_a,
                value_b,
            } => p_a * value_a + (1.0 - p_a) * value_b,
            Dist::Hyper2 {
                p_a,
                mean_a,
                mean_b,
            } => p_a * mean_a + (1.0 - p_a) * mean_b,
            Dist::Empirical { ref samples } => samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = unit_uniform(rng);
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Exponential { mean } => {
                // Inverse CDF; guard u == 0 to avoid ln(0).
                let u = u.max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
            Dist::Uniform { lo, hi } => lo + u * (hi - lo),
            Dist::BoundedPareto { alpha, xm, cap } => {
                let u = u.min(1.0 - 1e-16);
                (xm / (1.0 - u).powf(1.0 / alpha)).min(cap)
            }
            Dist::TwoPoint {
                value_a,
                p_a,
                value_b,
            } => {
                if u < p_a {
                    value_a
                } else {
                    value_b
                }
            }
            Dist::Hyper2 {
                p_a,
                mean_a,
                mean_b,
            } => {
                // Two uniforms folded into one draw: use the branch choice
                // from the high bits conceptually — here we just draw again
                // for the exponential to keep the code honest.
                let mean = if u < p_a { mean_a } else { mean_b };
                let v = unit_uniform(rng).max(f64::MIN_POSITIVE);
                -mean * v.ln()
            }
            Dist::Empirical { ref samples } => {
                let idx = (u * samples.len() as f64) as usize;
                samples[idx.min(samples.len() - 1)]
            }
        }
    }

    /// Draw one sample as a [`SimDuration`] in microseconds.
    pub fn sample_duration_us<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        SimDuration::from_micros_f64(self.sample(rng))
    }
}

/// A discrete positive-integer distribution (batch / train sizes).
#[derive(Debug, Clone, PartialEq)]
pub enum CountDist {
    /// Always `n` (n ≥ 1).
    Constant {
        /// The constant count.
        n: u64,
    },
    /// Geometric on {1, 2, …} with success probability `p` (mean `1/p`).
    Geometric {
        /// Per-trial success probability.
        p: f64,
    },
    /// Uniform integer on `[lo, hi]` inclusive.
    UniformInt {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
}

impl CountDist {
    /// A point mass at `n`.
    pub fn constant(n: u64) -> Self {
        assert!(n >= 1, "counts must be >= 1");
        CountDist::Constant { n }
    }

    /// Geometric with the given mean ≥ 1.
    pub fn geometric_with_mean(mean: f64) -> Self {
        assert!(mean >= 1.0, "geometric mean must be >= 1");
        CountDist::Geometric { p: 1.0 / mean }
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        match *self {
            CountDist::Constant { n } => n as f64,
            CountDist::Geometric { p } => 1.0 / p,
            CountDist::UniformInt { lo, hi } => 0.5 * (lo + hi) as f64,
        }
    }

    /// Draw one sample (always ≥ 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            CountDist::Constant { n } => n,
            CountDist::Geometric { p } => {
                let u = unit_uniform(rng).max(f64::MIN_POSITIVE);
                // Inverse CDF of the {1,2,...} geometric.
                let n = (u.ln() / (1.0 - p).ln()).ceil();
                (n as u64).max(1)
            }
            CountDist::UniformInt { lo, hi } => rng.gen_range(lo..=hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn sample_mean(d: &Dist, n: usize) -> f64 {
        let mut rng = RngFactory::new(123).stream("dist-test");
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Dist::constant(7.5);
        let mut rng = RngFactory::new(1).stream("c");
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.5);
        }
        assert_eq!(d.mean(), 7.5);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::exponential(100.0);
        let m = sample_mean(&d, 200_000);
        assert!((m - 100.0).abs() < 2.0, "sample mean {m}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::uniform(10.0, 20.0);
        let mut rng = RngFactory::new(5).stream("u");
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((10.0..20.0).contains(&x));
        }
        let m = sample_mean(&d, 100_000);
        assert!((m - 15.0).abs() < 0.1, "sample mean {m}");
    }

    #[test]
    fn bounded_pareto_respects_cap() {
        let d = Dist::bounded_pareto(1.2, 1.0, 50.0);
        let mut rng = RngFactory::new(9).stream("p");
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=50.0).contains(&x));
        }
        let m = sample_mean(&d, 400_000);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.05,
            "sample {m} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn two_point_mixture() {
        let d = Dist::TwoPoint {
            value_a: 1.0,
            p_a: 0.8,
            value_b: 100.0,
        };
        assert!((d.mean() - (0.8 + 20.0)).abs() < 1e-12);
        let m = sample_mean(&d, 200_000);
        assert!((m - d.mean()).abs() < 0.5, "sample mean {m}");
    }

    #[test]
    fn hyper2_mean_converges() {
        let d = Dist::Hyper2 {
            p_a: 0.9,
            mean_a: 10.0,
            mean_b: 500.0,
        };
        let m = sample_mean(&d, 400_000);
        assert!((m - d.mean()).abs() / d.mean() < 0.05, "sample mean {m}");
    }

    #[test]
    fn geometric_counts() {
        let d = CountDist::geometric_with_mean(8.0);
        let mut rng = RngFactory::new(3).stream("g");
        let n = 200_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x >= 1);
            sum += x;
        }
        let m = sum as f64 / n as f64;
        assert!((m - 8.0).abs() < 0.1, "sample mean {m}");
    }

    #[test]
    fn uniform_int_inclusive() {
        let d = CountDist::UniformInt { lo: 2, hi: 4 };
        let mut rng = RngFactory::new(3).stream("ui");
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = d.sample(&mut rng) as usize;
            assert!((2..=4).contains(&x));
            seen[x] = true;
        }
        assert!(seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn empirical_draws_only_recorded_values_and_matches_mean() {
        let d = Dist::empirical(vec![1.0, 5.0, 10.0, 100.0]);
        assert_eq!(d.mean(), 29.0);
        let mut rng = RngFactory::new(11).stream("e");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..400 {
            let x = d.sample(&mut rng);
            assert!([1.0, 5.0, 10.0, 100.0].contains(&x));
            seen.insert(x as u64);
        }
        assert_eq!(seen.len(), 4, "all samples eventually drawn");
        let m = sample_mean(&d, 400_000);
        assert!((m - 29.0).abs() < 0.5, "sample mean {m}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empirical_rejects_empty() {
        Dist::empirical(vec![]);
    }

    #[test]
    fn sample_duration_us_matches_f64() {
        let d = Dist::constant(284.3);
        let mut rng = RngFactory::new(1).stream("d");
        let dur = d.sample_duration_us(&mut rng);
        assert!((dur.as_micros_f64() - 284.3).abs() < 1e-3);
    }
}
