//! Property tests for the virtual-order claim protocol (DESIGN.md §17):
//! on randomized arrival streams, both claim modes must conserve jobs,
//! respect per-owner FIFO and per-claimant service spacing, replay
//! bit-identically, resolve independently of how the arrival stream is
//! chunked, and stay safe under randomized liveness masks.

use afs_sched::{Claim, ClaimTable, StealPolicy};
use proptest::prelude::*;

const EST: f64 = 100.0;

/// A randomized arrival script: `(seq, owner, arrival_us)` with
/// nondecreasing arrivals, plus a liveness flip schedule
/// `(before_offer_ix, worker, live)` applied in offer order.
#[derive(Debug, Clone)]
struct Script {
    workers: usize,
    offers: Vec<(u64, usize, f64)>,
    flips: Vec<(usize, usize, bool)>,
}

fn script_strategy(max_workers: usize, max_jobs: usize) -> impl Strategy<Value = Script> {
    // The vendored proptest stub has no `prop_flat_map`, so sample
    // max-size vectors alongside the actual (workers, jobs) pair and
    // reduce modularly inside one `prop_map`.
    let owners = proptest::collection::vec(0usize..64, max_jobs);
    // Gaps from dead-heat to well past the service estimate, so
    // backlogs, ties, and idle thieves all occur.
    let gaps = proptest::collection::vec(0.0f64..(2.0 * EST), max_jobs);
    // A few liveness flips; worker 0 is never masked out so the pooled
    // fallback and the steal scan always have a live worker.
    let flips = proptest::collection::vec((0usize..64, 0usize..64, any::<bool>()), 0usize..4);
    (2usize..=max_workers, 1usize..=max_jobs, owners, gaps, flips).prop_map(
        move |(workers, jobs, owners, gaps, flips)| {
            let mut t = 0.0;
            let offers = owners
                .iter()
                .zip(&gaps)
                .take(jobs)
                .enumerate()
                .map(|(i, (&o, &g))| {
                    t += g;
                    (i as u64, o % workers, t)
                })
                .collect();
            let flips = flips
                .into_iter()
                .map(|(at, w, live)| (at % jobs, 1 + w % (workers - 1), live))
                .collect();
            Script {
                workers,
                offers,
                flips,
            }
        },
    )
}

fn run(table: &mut ClaimTable, s: &Script) -> Vec<Claim> {
    let mut out = Vec::new();
    for (i, &(seq, owner, t)) in s.offers.iter().enumerate() {
        for &(at, w, live) in &s.flips {
            if at == i {
                table.set_live(w, live);
            }
        }
        table.offer(seq, owner, t, &mut out);
    }
    table.flush(&mut out);
    out
}

fn tables(s: &Script) -> [ClaimTable; 2] {
    [
        ClaimTable::pooled(s.workers, EST),
        ClaimTable::stealing(s.workers, EST, StealPolicy::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Conservation and attribution: every offered job is claimed
    /// exactly once; steals name the routed owner as victim and move
    /// the job; non-steals keep it on the owner (stealing mode) —
    /// and the claimant is always within the worker range.
    #[test]
    fn every_job_is_claimed_exactly_once(s in script_strategy(5, 48)) {
        for (mode, mut table) in tables(&s).into_iter().enumerate() {
            let claims = run(&mut table, &s);
            prop_assert_eq!(table.staged(), 0);
            let mut seqs: Vec<u64> = claims.iter().map(|c| c.seq).collect();
            seqs.sort_unstable();
            prop_assert_eq!(seqs, (0..s.offers.len() as u64).collect::<Vec<_>>());
            for c in &claims {
                prop_assert!(c.claimant < s.workers);
                let (_, owner, arrival) = s.offers[c.seq as usize];
                prop_assert!(c.start_us >= arrival - 1e-9);
                match (mode, c.victim) {
                    (0, v) => prop_assert!(v.is_none(), "pooled mode never steals"),
                    (_, Some(v)) => {
                        prop_assert_eq!(v, owner);
                        prop_assert_ne!(c.claimant, v);
                    }
                    (_, None) => prop_assert_eq!(c.claimant, owner),
                }
            }
        }
    }

    /// Replay determinism: the same script resolves to bit-identical
    /// claims every time, in both modes, mask flips included.
    #[test]
    fn resolution_replays_bit_identically(s in script_strategy(5, 48)) {
        for mut table in tables(&s) {
            let mut again = table.clone();
            prop_assert_eq!(run(&mut table, &s), run(&mut again, &s));
        }
    }

    /// Chunk invariance: claims already emitted are never rewritten by
    /// a later arrival — the stream grows strictly by appending, so a
    /// dispatcher can act on each claim the moment it resolves.
    #[test]
    fn emitted_claims_are_prefix_stable(s in script_strategy(4, 32)) {
        for mut table in tables(&s) {
            let full = run(&mut table.clone(), &s);
            let mut out = Vec::new();
            for (i, &(seq, owner, t)) in s.offers.iter().enumerate() {
                for &(at, w, live) in &s.flips {
                    if at == i {
                        table.set_live(w, live);
                    }
                }
                table.offer(seq, owner, t, &mut out);
                prop_assert_eq!(&out[..], &full[..out.len()]);
            }
            table.flush(&mut out);
            prop_assert_eq!(out, full);
        }
    }

    /// Per-owner FIFO and per-claimant spacing: jobs routed to one
    /// owner depart in seq order whoever executes them, and no worker
    /// starts two claims closer than one estimated service.
    #[test]
    fn fifo_and_service_spacing_hold(s in script_strategy(5, 48)) {
        for mut table in tables(&s) {
            let claims = run(&mut table, &s);
            for owner in 0..s.workers {
                let order: Vec<u64> = claims
                    .iter()
                    .filter(|c| s.offers[c.seq as usize].1 == owner)
                    .map(|c| c.seq)
                    .collect();
                let mut sorted = order.clone();
                sorted.sort_unstable();
                // Pooled mode ignores owners entirely: its FIFO is the
                // global arrival order, which sorted seqs also capture.
                prop_assert_eq!(order, sorted);
            }
            for w in 0..s.workers {
                let starts: Vec<f64> = claims
                    .iter()
                    .filter(|c| c.claimant == w)
                    .map(|c| c.start_us)
                    .collect();
                for pair in starts.windows(2) {
                    prop_assert!(pair[1] - pair[0] >= EST - 1e-6);
                }
            }
        }
    }

    /// Mask safety: with a worker masked out for the whole run, it
    /// never claims in pooled mode (other workers live), and in
    /// stealing mode it only receives flush-time force-resolutions of
    /// jobs routed to it — never steals.
    #[test]
    fn masked_workers_stay_out_of_arbitration(
        s in script_strategy(4, 32),
        dead in 1usize..4,
    ) {
        // `dead` is 1..=3 — never worker 0, so the pool stays live.
        if dead >= s.workers {
            return Ok(());
        }
        let masked = Script { flips: vec![(0, dead, false)], ..s.clone() };
        let [mut pooled, mut stealing] = tables(&masked);
        for c in run(&mut pooled, &masked) {
            prop_assert_ne!(c.claimant, dead, "pooled pool assigned a dead worker");
        }
        for c in run(&mut stealing, &masked) {
            if c.claimant == dead {
                prop_assert_eq!(c.victim, None);
                prop_assert_eq!(masked.offers[c.seq as usize].1, dead);
            }
            prop_assert_ne!(c.victim, Some(dead), "stole from a dead worker's queue");
        }
    }
}
