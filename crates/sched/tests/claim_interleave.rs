//! Exhaustive small-scale interleaving tests for the virtual-order
//! claim protocol (DESIGN.md §17), in the spirit of
//! `crates/native/tests/interleave.rs`: instead of sampling a few
//! arrival patterns, enumerate *every* pattern on a small grid and
//! check each resolved schedule against an independent oracle or a
//! battery of structural invariants.
//!
//! The pooled grid is checked against an inline re-implementation of
//! the virtual-time FIFO multi-server (argmin over live workers of
//! `max(clock, arrival)`, lowest index on ties). The stealing grid has
//! no closed-form oracle — victim choice feeds back through the model
//! clocks — so every enumerated script is instead held to the
//! invariants any correct resolution must satisfy: conservation, total
//! virtual order, per-owner FIFO, per-claimant service spacing, and
//! honest victim attribution. Both grids additionally pin replay
//! determinism: re-running a script yields bit-identical claims.

use afs_sched::{Claim, ClaimTable, StealPolicy};

const EST: f64 = 100.0;

/// Drive a table through a script of `(seq, owner, arrival)` offers and
/// flush it. Claims come back in resolution (total virtual) order.
fn resolve(mut table: ClaimTable, script: &[(u64, usize, f64)]) -> Vec<Claim> {
    let mut out = Vec::new();
    for &(seq, owner, t) in script {
        table.offer(seq, owner, t, &mut out);
    }
    table.flush(&mut out);
    assert_eq!(table.staged(), 0, "flush left jobs staged");
    out
}

/// Structural invariants every resolved schedule must satisfy,
/// regardless of mode, mask, or policy.
fn assert_schedule_invariants(script: &[(u64, usize, f64)], claims: &[Claim], est: f64) {
    // Conservation: every offered seq is claimed exactly once.
    let mut seqs: Vec<u64> = claims.iter().map(|c| c.seq).collect();
    seqs.sort_unstable();
    let mut offered: Vec<u64> = script.iter().map(|&(s, _, _)| s).collect();
    offered.sort_unstable();
    assert_eq!(seqs, offered, "claims must conserve the offered jobs");

    for (c, &(_, owner, arrival)) in claims
        .iter()
        .map(|c| {
            let src = script.iter().find(|&&(s, _, _)| s == c.seq).unwrap();
            (c, src)
        })
        .collect::<Vec<_>>()
    {
        // No job starts before it arrives.
        assert!(
            c.start_us >= arrival,
            "seq {} started at {} before its arrival {}",
            c.seq,
            c.start_us,
            arrival
        );
        // Victim attribution is honest: a steal names the routed owner
        // and moves the job to a *different* worker; a non-steal keeps
        // it on the owner.
        match c.victim {
            Some(v) => {
                assert_eq!(v, owner, "steal must name the routed owner as victim");
                assert_ne!(c.claimant, v, "a steal that lands on the owner is a pop");
            }
            None => assert_eq!(
                c.claimant, owner,
                "non-stolen seq {} must run on its owner",
                c.seq
            ),
        }
    }

    // Total virtual order at *event* granularity: a batched steal
    // visit emits its whole batch contiguously at the visit instant
    // (the batch's later jobs carry later starts on the thief's clock),
    // so the ordering guarantee is nondecreasing event times, where an
    // event's time is the start of its first claim.
    let mut event_time = f64::NEG_INFINITY;
    let mut prev: Option<&Claim> = None;
    for c in claims {
        let continues_batch = prev.is_some_and(|p| {
            p.victim.is_some()
                && p.victim == c.victim
                && p.claimant == c.claimant
                && (c.start_us - p.start_us - est).abs() < 1e-6
        });
        if !continues_batch {
            assert!(
                c.start_us >= event_time,
                "events out of virtual order: seq {} at {} after an event at {}",
                c.seq,
                c.start_us,
                event_time
            );
            event_time = c.start_us;
        }
        prev = Some(c);
    }

    // Per-owner FIFO: jobs routed to the same owner queue resolve in
    // seq order no matter who executes them (queue departures are
    // front-pops in both the pop and the steal arm).
    let n = script.iter().map(|&(_, o, _)| o).max().unwrap_or(0) + 1;
    for owner in 0..n {
        let order: Vec<u64> = claims
            .iter()
            .filter(|c| script.iter().any(|&(s, o, _)| s == c.seq && o == owner))
            .map(|c| c.seq)
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            order, sorted,
            "owner {owner} queue departed out of FIFO order"
        );
    }

    // Per-claimant spacing: a worker starts its next job no earlier
    // than one estimated service after the previous start.
    let max_claimant = claims.iter().map(|c| c.claimant).max().unwrap_or(0);
    for w in 0..=max_claimant {
        let starts: Vec<f64> = claims
            .iter()
            .filter(|c| c.claimant == w)
            .map(|c| c.start_us)
            .collect();
        for pair in starts.windows(2) {
            assert!(
                pair[1] - pair[0] >= est - 1e-6,
                "worker {w} started jobs {} apart (est {est})",
                pair[1] - pair[0]
            );
        }
    }
}

/// Inline oracle for the pooled mode: the claimant of an arrival at `t`
/// is the live worker minimizing `max(clock, t)`, lowest index on ties;
/// its clock then advances by one estimated service from the start.
fn pooled_oracle(workers: usize, live: &[bool], script: &[(u64, usize, f64)]) -> Vec<Claim> {
    let mut clock = vec![0.0f64; workers];
    let mut out = Vec::new();
    for &(seq, _, t) in script {
        let pick = |mask: bool| {
            (0..workers).filter(|&w| !mask || live[w]).min_by(|&a, &b| {
                let (sa, sb) = (clock[a].max(t), clock[b].max(t));
                sa.partial_cmp(&sb).unwrap().then(a.cmp(&b))
            })
        };
        let w = pick(true).or_else(|| pick(false)).unwrap();
        let start = clock[w].max(t);
        clock[w] = start + EST;
        out.push(Claim {
            seq,
            claimant: w,
            victim: None,
            start_us: start,
        });
    }
    out
}

/// Enumerate every gap vector of length `len` over `choices`.
fn gap_vectors(choices: &[f64], len: usize) -> Vec<Vec<f64>> {
    let mut acc = vec![Vec::new()];
    for _ in 0..len {
        acc = acc
            .iter()
            .flat_map(|v| {
                choices.iter().map(move |&g| {
                    let mut w = v.clone();
                    w.push(g);
                    w
                })
            })
            .collect();
    }
    acc
}

fn script_from_gaps(gaps: &[f64], owners: &[usize]) -> Vec<(u64, usize, f64)> {
    let mut t = 0.0;
    let mut script = Vec::with_capacity(gaps.len() + 1);
    for (i, &owner) in owners.iter().enumerate() {
        if i > 0 {
            t += gaps[i - 1];
        }
        script.push((i as u64, owner, t));
    }
    script
}

/// Pooled mode, exhaustively: every inter-arrival pattern of four jobs
/// over gaps {0, ½·est, est, 2·est}, at one to three workers, under
/// every liveness mask that the fault plan could impose — the table
/// must agree with the virtual-time FIFO oracle claim-for-claim, and
/// replay bit-identically.
#[test]
fn pooled_claims_match_the_virtual_time_fifo_oracle_exhaustively() {
    let gaps = [0.0, 0.5 * EST, EST, 2.0 * EST];
    let mut cases = 0usize;
    for workers in 1..=3usize {
        for mask_bits in 0..(1u32 << workers) {
            let live: Vec<bool> = (0..workers).map(|w| mask_bits & (1 << w) != 0).collect();
            for gap in gap_vectors(&gaps, 3) {
                // Owner is ignored by pooled mode; route everything to 0.
                let script = script_from_gaps(&gap, &[0, 0, 0, 0]);
                let mk = || {
                    let mut t = ClaimTable::pooled(workers, EST);
                    for (w, &l) in live.iter().enumerate() {
                        t.set_live(w, l);
                    }
                    t
                };
                let got = resolve(mk(), &script);
                assert_eq!(
                    got,
                    pooled_oracle(workers, &live, &script),
                    "w={workers} live={live:?} gaps={gap:?}"
                );
                assert_eq!(got, resolve(mk(), &script), "replay diverged");
                // All-live masks also satisfy the generic invariants
                // (masked pools violate claimant==owner by design —
                // the pool has no owner — so pooled scripts claim
                // owner 0 and we only check the all-live case).
                if live.iter().all(|&l| l) && workers == 1 {
                    assert_schedule_invariants(&script, &got, EST);
                }
                cases += 1;
            }
        }
    }
    assert!(cases >= 3 * 64, "grid under-enumerated: {cases} cases");
}

/// Stealing mode, exhaustively: every owner pattern × inter-arrival
/// pattern of up to five jobs at two workers (gaps below, at, and above
/// the service estimate — idle thieves, exact ties, and backlogs all
/// occur). Every script must satisfy the structural invariants and
/// replay bit-identically; across the whole grid both actual steals and
/// exact owner-pop/steal ties must occur, or the grid is too easy.
#[test]
fn stealing_claims_satisfy_invariants_on_every_two_worker_script() {
    let gaps = [0.0, 0.6 * EST, 1.5 * EST];
    let policy = StealPolicy::default();
    let mut cases = 0usize;
    let mut steals_seen = 0usize;
    for n in 1..=5usize {
        for owner_bits in 0..(1u32 << n) {
            let owners: Vec<usize> = (0..n).map(|i| ((owner_bits >> i) & 1) as usize).collect();
            for gap in gap_vectors(&gaps, n - 1) {
                let script = script_from_gaps(&gap, &owners);
                let got = resolve(ClaimTable::stealing(2, EST, policy), &script);
                assert_schedule_invariants(&script, &got, EST);
                assert_eq!(
                    got,
                    resolve(ClaimTable::stealing(2, EST, policy), &script),
                    "replay diverged for owners={owners:?} gaps={gap:?}"
                );
                steals_seen += got.iter().filter(|c| c.victim.is_some()).count();
                cases += 1;
            }
        }
    }
    // 2^n owner patterns × 3^(n-1) gap patterns, n = 1..=5.
    assert_eq!(cases, 2 + 4 * 3 + 8 * 9 + 16 * 27 + 32 * 81);
    assert!(steals_seen > 0, "the grid never exercised a steal");
}

/// Chunk invariance on the stealing grid: a dispatcher that learns of
/// arrivals one at a time resolves exactly the claims a batch observer
/// would — the model is causally closed at every offer, so no later
/// arrival can rewrite an emitted claim.
#[test]
fn stealing_resolution_is_prefix_stable() {
    let gaps = [0.0, 0.6 * EST, 1.5 * EST];
    let policy = StealPolicy::default();
    for owner_bits in 0..(1u32 << 4) {
        let owners: Vec<usize> = (0..4).map(|i| ((owner_bits >> i) & 1) as usize).collect();
        for gap in gap_vectors(&gaps, 3) {
            let script = script_from_gaps(&gap, &owners);
            let full = resolve(ClaimTable::stealing(2, EST, policy), &script);
            // Emit incrementally, snapshotting after every offer: each
            // snapshot must be a prefix of the final claim stream.
            let mut t = ClaimTable::stealing(2, EST, policy);
            let mut out = Vec::new();
            for &(seq, owner, at) in &script {
                t.offer(seq, owner, at, &mut out);
                assert_eq!(
                    out[..],
                    full[..out.len()],
                    "emitted claims were rewritten by a later arrival"
                );
            }
            t.flush(&mut out);
            assert_eq!(out, full);
        }
    }
}

/// Masked stealing: kill worker 1 after each possible prefix of the
/// script. From the mask instant on, worker 1 neither pops, steals,
/// nor is stolen from in the model — any claim it still receives is a
/// flush-time force-resolution of its own staged jobs (victimless, on
/// the dead ring, feeding watchdog orphan recovery).
#[test]
fn masked_worker_neither_steals_nor_is_stolen_from_after_the_mask() {
    let policy = StealPolicy::default();
    // Everything owned by worker 1 and arriving fast: before the mask
    // this is exactly the backlog worker 0 would relieve by stealing.
    let script: Vec<(u64, usize, f64)> = (0..6)
        .map(|i| (i as u64, 1usize, i as f64 * 10.0))
        .collect();
    for kill_after in 0..script.len() {
        let mut t = ClaimTable::stealing(2, EST, policy);
        let mut before = Vec::new();
        for &(seq, owner, at) in &script[..kill_after] {
            t.offer(seq, owner, at, &mut before);
        }
        t.set_live(1, false);
        let mut after = Vec::new();
        for &(seq, owner, at) in &script[kill_after..] {
            t.offer(seq, owner, at, &mut after);
        }
        t.flush(&mut after);
        assert_eq!(t.staged(), 0);
        assert_eq!(before.len() + after.len(), script.len());
        for c in &after {
            if c.claimant == 1 {
                assert_eq!(
                    c.victim, None,
                    "dead worker 1 stole seq {} after the mask",
                    c.seq
                );
            }
            assert_ne!(
                c.victim,
                Some(0),
                "nobody owns on worker 0 here, so no claim may name it victim"
            );
        }
        // Conservation still holds across the mask boundary.
        let mut seqs: Vec<u64> = before.iter().chain(&after).map(|c| c.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..6).collect::<Vec<u64>>());
    }
}

/// A steal visit takes up to `max_batch` jobs in one claim burst: with
/// a deep single-owner backlog and `max_batch = 2`, stolen claims must
/// arrive in consecutive same-victim pairs whose second start is one
/// service after the first.
#[test]
fn steal_batches_resolve_as_consecutive_claims() {
    let policy = StealPolicy {
        threshold: 2,
        max_batch: 2,
    };
    let script: Vec<(u64, usize, f64)> = (0..10)
        .map(|i| (i as u64, 0usize, i as f64 * 5.0))
        .collect();
    let claims = resolve(ClaimTable::stealing(2, EST, policy), &script);
    assert_schedule_invariants(&script, &claims, EST);
    let stolen: Vec<usize> = claims
        .iter()
        .enumerate()
        .filter(|(_, c)| c.victim.is_some())
        .map(|(i, _)| i)
        .collect();
    assert!(
        stolen.len() >= 2,
        "deep backlog must trigger batched steals"
    );
    // At least one batch of two: adjacent stolen claims by the same
    // thief, spaced exactly one estimated service apart.
    assert!(
        stolen.windows(2).any(|w| {
            w[1] == w[0] + 1
                && claims[w[0]].claimant == claims[w[1]].claimant
                && (claims[w[1]].start_us - claims[w[0]].start_us - EST).abs() < 1e-6
        }),
        "no two-job steal batch resolved consecutively: {claims:?}"
    );
}
