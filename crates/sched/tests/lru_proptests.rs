//! Differential property battery for the hashed LRU table.
//!
//! [`HashedLru`] backs both the Flow-Director steering table and the
//! hashed stream-state cache, so its behavior must be *exactly* LRU —
//! not approximately. Every test here drives the table and an oracle
//! built on a `VecDeque` (front = most recently used) through the same
//! operation sequence and compares:
//!
//! * the capacity bound is never exceeded;
//! * every eviction removes precisely the oracle's LRU entry;
//! * hit/miss/insert/evict counters balance against the op stream;
//! * a seeded replay of the same operations is bit-identical.

use std::collections::VecDeque;

use afs_sched::{HashedLru, LruStats};
use proptest::prelude::*;

/// One table operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u64),
    Peek(u64),
    Insert(u64, u32),
    Remove(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    let key = 0..key_space;
    prop_oneof![
        key.clone().prop_map(Op::Get),
        key.clone().prop_map(Op::Peek),
        (key.clone(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.prop_map(Op::Remove),
    ]
}

/// Exact-LRU oracle: a recency-ordered deque of `(key, value)`.
#[derive(Debug, Default)]
struct Oracle {
    deque: VecDeque<(u64, u32)>,
    cap: usize,
    stats: LruStats,
}

impl Oracle {
    fn new(cap: usize) -> Self {
        Oracle {
            deque: VecDeque::new(),
            cap,
            stats: LruStats::default(),
        }
    }

    fn pos(&self, key: u64) -> Option<usize> {
        self.deque.iter().position(|&(k, _)| k == key)
    }

    fn get(&mut self, key: u64) -> Option<u32> {
        match self.pos(key) {
            Some(i) => {
                self.stats.hits += 1;
                let e = self.deque.remove(i).unwrap();
                self.deque.push_front(e);
                Some(e.1)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn peek(&self, key: u64) -> Option<u32> {
        self.pos(key).map(|i| self.deque[i].1)
    }

    fn insert(&mut self, key: u64, value: u32) -> Option<(u64, u32)> {
        if let Some(i) = self.pos(key) {
            self.deque.remove(i);
            self.deque.push_front((key, value));
            return None;
        }
        let mut evicted = None;
        if self.deque.len() == self.cap {
            evicted = self.deque.pop_back();
            self.stats.evictions += 1;
        }
        self.deque.push_front((key, value));
        self.stats.inserts += 1;
        evicted
    }

    fn remove(&mut self, key: u64) -> Option<u32> {
        let i = self.pos(key)?;
        self.deque.remove(i).map(|(_, v)| v)
    }

    fn keys_mru_first(&self) -> Vec<u64> {
        self.deque.iter().map(|&(k, _)| k).collect()
    }
}

fn run_ops(cap: usize, ops: &[Op]) -> (HashedLru<u32>, Vec<u64>) {
    let mut table: HashedLru<u32> = HashedLru::new(cap);
    let mut oracle = Oracle::new(cap);
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Get(k) => {
                assert_eq!(table.get(k), oracle.get(k), "get({k}) at step {step}");
            }
            Op::Peek(k) => {
                assert_eq!(table.peek(k), oracle.peek(k), "peek({k}) at step {step}");
            }
            Op::Insert(k, v) => {
                assert_eq!(
                    table.insert(k, v),
                    oracle.insert(k, v),
                    "insert({k}) evicted the wrong entry at step {step}"
                );
            }
            Op::Remove(k) => {
                assert_eq!(
                    table.remove(k),
                    oracle.remove(k),
                    "remove({k}) at step {step}"
                );
            }
        }
        assert!(
            table.len() <= cap,
            "capacity bound {cap} exceeded: {} at step {step}",
            table.len()
        );
        assert_eq!(table.len(), oracle.deque.len(), "len drift at step {step}");
        assert_eq!(table.stats, oracle.stats, "counter drift at step {step}");
        assert_eq!(table.lru_key(), oracle.deque.back().map(|&(k, _)| k));
    }
    let keys = table.keys_mru_first();
    assert_eq!(keys, oracle.keys_mru_first(), "recency order drift");
    (table, keys)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok().and_then(|v| v.parse().ok()).unwrap_or(256),
        ..ProptestConfig::default()
    })]

    /// The table is a bit-exact LRU against the deque oracle for any
    /// op sequence: same hits, same misses, same victims, same order.
    #[test]
    fn matches_deque_oracle(
        cap in 1usize..24,
        ops in proptest::collection::vec(op_strategy(48), 1..400),
    ) {
        run_ops(cap, &ops);
    }

    /// Tight key spaces hammer the update/touch paths.
    #[test]
    fn matches_oracle_under_heavy_reuse(
        cap in 1usize..4,
        ops in proptest::collection::vec(op_strategy(6), 1..200),
    ) {
        run_ops(cap, &ops);
    }

    /// Counter balance: every lookup is a hit or a miss, and every
    /// insert is still resident, was evicted, or was removed.
    #[test]
    fn counters_balance(
        cap in 1usize..16,
        ops in proptest::collection::vec(op_strategy(32), 1..300),
    ) {
        let lookups = ops.iter().filter(|o| matches!(o, Op::Get(_))).count() as u64;
        let removes = ops.iter().filter(|o| matches!(o, Op::Remove(_))).count() as u64;
        let (table, _) = run_ops(cap, &ops);
        prop_assert_eq!(table.stats.hits + table.stats.misses, lookups);
        // inserts = live + evicted + removed-while-live; removals of
        // absent keys don't consume an insert, hence the inequality.
        prop_assert!(table.stats.inserts >= table.stats.evictions + table.len() as u64);
        prop_assert!(
            table.stats.inserts <= table.stats.evictions + table.len() as u64 + removes
        );
    }

    /// Seeded replay: the same op sequence gives bit-identical counters
    /// and recency order every time (no hidden layout dependence).
    #[test]
    fn replay_is_bit_identical(
        cap in 1usize..16,
        ops in proptest::collection::vec(op_strategy(32), 1..300),
    ) {
        let (a, keys_a) = run_ops(cap, &ops);
        let (b, keys_b) = run_ops(cap, &ops);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(keys_a, keys_b);
    }
}

/// A full-table crash-style sweep with `for_each_value_mut` keeps the
/// recency order and counters intact (pure value mutation).
#[test]
fn value_sweep_preserves_order() {
    let mut t: HashedLru<u32> = HashedLru::new(8);
    for k in 0..12u64 {
        t.insert(k, k as u32);
    }
    let before = t.keys_mru_first();
    let stats = t.stats;
    t.for_each_value_mut(|_, v| *v = u32::MAX);
    assert_eq!(t.keys_mru_first(), before);
    assert_eq!(t.stats, stats);
    for &k in &before {
        assert_eq!(t.peek(k), Some(u32::MAX));
    }
}
