//! Typed decisions policies hand back to their backend.

/// Where an arriving packet is queued (enqueue-time routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The backend's shared queue (the Locking global FIFO, the pooled
    /// native ring).
    Shared,
    /// Worker `w`'s own queue (wired family, load-aware routing).
    Worker(usize),
}

/// Which protocol thread a Locking dispatch runs as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSource {
    /// The chosen worker's own per-processor thread (footnote-7 pools).
    Own,
    /// The next free thread of the shared FIFO pool (Baseline) — the
    /// backend pops its pool and may stall the dispatch if none is free.
    SharedPool,
}

/// A dispatch-time decision for the head of a shared queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The worker that takes the packet.
    pub worker: usize,
    /// Where its protocol thread comes from (IPS drivers ignore this —
    /// a stack *is* its thread).
    pub thread: ThreadSource,
}

/// A work-stealing decision: which victim to relieve and how much.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealDecision {
    /// The worker whose queue is popped.
    pub victim: usize,
    /// Upper bound on packets taken this visit (≥ 1).
    pub max_batch: usize,
}
