//! A deterministic hashed LRU table for million-entity state.
//!
//! The dense `LocTable`/last-owner vectors both backends carry per
//! stream stop scaling somewhere around 10^5 entities — real hosts
//! instead keep a *bounded* table hashed by flow id and evict the least
//! recently used entry when a new flow needs a slot (Jain's
//! destination-address-locality study is the canonical argument that
//! LRU over a Zipf-popular flow population keeps the hit rate high with
//! a table far smaller than the population). [`HashedLru`] is that
//! table, built for the determinism contract every scheduling structure
//! in this workspace obeys:
//!
//! * **Layout-independent behavior.** Keys are hashed with a fixed
//!   [`splitmix64`] finalizer into a power-of-two bucket array; no
//!   `std::collections` iteration order, pointer value, or allocator
//!   state ever influences a result. The same operation sequence gives
//!   the same hits, misses and evictions on every run and platform.
//! * **O(1) operations.** Entries live in a slab indexed by `u32`; the
//!   recency list is intrusive (prev/next indices in the entry), so
//!   touch/insert/evict never allocate after construction.
//! * **Counted.** Hits, misses, insertions and evictions are tallied in
//!   [`LruStats`]; the proptest battery pins `hits + misses == lookups`
//!   and `inserts == evictions + len` as table invariants.
//!
//! Reads come in two flavors: [`HashedLru::get`] promotes the entry to
//! most-recently-used (a cache access), while [`HashedLru::peek`] is a
//! pure read that leaves recency untouched (a model inspection). The
//! distinction is what lets the simulator's pricing views inspect the
//! stream-state cache without perturbing its eviction order.

/// The 64-bit finalizer from Steele et al.'s SplitMix64 — a fixed,
/// dependency-free avalanche function. Used for bucket selection and by
/// the RSS front-end hash.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Lifetime counters of one [`HashedLru`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups ([`HashedLru::get`]) that found the key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries inserted (first writes of a key).
    pub inserts: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry<V> {
    key: u64,
    value: V,
    /// Next entry in the bucket chain.
    chain: u32,
    /// Toward more recently used.
    newer: u32,
    /// Toward less recently used.
    older: u32,
}

/// A bounded, deterministically hashed LRU map from `u64` keys to
/// `Copy` values. See the module docs for the determinism contract.
#[derive(Debug, Clone)]
pub struct HashedLru<V> {
    /// Bucket heads (slab indices), length a power of two.
    buckets: Vec<u32>,
    mask: u64,
    slab: Vec<Entry<V>>,
    /// Free slab slots (reused before the slab grows).
    free: Vec<u32>,
    head: u32,
    tail: u32,
    capacity: usize,
    len: usize,
    /// Lifetime counters.
    pub stats: LruStats,
}

impl<V: Copy> HashedLru<V> {
    /// A table holding at most `capacity` entries (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be at least 1");
        // Load factor ≤ 1: buckets is the capacity rounded up to a
        // power of two, so chains stay short at any fill level.
        let n_buckets = capacity.next_power_of_two().max(8);
        HashedLru {
            buckets: vec![NIL; n_buckets],
            mask: (n_buckets - 1) as u64,
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            len: 0,
            stats: LruStats::default(),
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (splitmix64(key) & self.mask) as usize
    }

    /// Slab index of `key`, if resident.
    #[inline]
    fn find(&self, key: u64) -> Option<u32> {
        let mut i = self.buckets[self.bucket_of(key)];
        while i != NIL {
            let e = &self.slab[i as usize];
            if e.key == key {
                return Some(i);
            }
            i = e.chain;
        }
        None
    }

    /// Unlink `i` from the recency list.
    fn unlink_recency(&mut self, i: u32) {
        let (newer, older) = {
            let e = &self.slab[i as usize];
            (e.newer, e.older)
        };
        if newer == NIL {
            self.head = older;
        } else {
            self.slab[newer as usize].older = older;
        }
        if older == NIL {
            self.tail = newer;
        } else {
            self.slab[older as usize].newer = newer;
        }
    }

    /// Push `i` to the most-recently-used end.
    fn push_front_recency(&mut self, i: u32) {
        let old_head = self.head;
        {
            let e = &mut self.slab[i as usize];
            e.newer = NIL;
            e.older = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].newer = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: u32) {
        if self.head != i {
            self.unlink_recency(i);
            self.push_front_recency(i);
        }
    }

    /// Unlink `i` from its bucket chain.
    fn unlink_chain(&mut self, i: u32) {
        let key = self.slab[i as usize].key;
        let b = self.bucket_of(key);
        let mut cur = self.buckets[b];
        if cur == i {
            self.buckets[b] = self.slab[i as usize].chain;
            return;
        }
        while cur != NIL {
            let next = self.slab[cur as usize].chain;
            if next == i {
                self.slab[cur as usize].chain = self.slab[i as usize].chain;
                return;
            }
            cur = next;
        }
        unreachable!("entry missing from its bucket chain");
    }

    /// Look `key` up and promote it to most recently used. Counts a hit
    /// or a miss.
    pub fn get(&mut self, key: u64) -> Option<V> {
        match self.find(key) {
            Some(i) => {
                self.stats.hits += 1;
                self.touch(i);
                Some(self.slab[i as usize].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Pure read: neither recency order nor counters change.
    pub fn peek(&self, key: u64) -> Option<V> {
        self.find(key).map(|i| self.slab[i as usize].value)
    }

    /// Insert or update `key`, promoting it to most recently used. When
    /// the table is full and `key` is absent, the least recently used
    /// entry is evicted first; the evicted `(key, value)` is returned.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        if let Some(i) = self.find(key) {
            self.slab[i as usize].value = value;
            self.touch(i);
            return None;
        }
        let mut evicted = None;
        if self.len == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let e = self.slab[victim as usize];
            self.unlink_recency(victim);
            self.unlink_chain(victim);
            self.free.push(victim);
            self.len -= 1;
            self.stats.evictions += 1;
            evicted = Some((e.key, e.value));
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Entry {
                    key,
                    value,
                    chain: NIL,
                    newer: NIL,
                    older: NIL,
                };
                s
            }
            None => {
                let s = self.slab.len() as u32;
                self.slab.push(Entry {
                    key,
                    value,
                    chain: NIL,
                    newer: NIL,
                    older: NIL,
                });
                s
            }
        };
        let b = self.bucket_of(key);
        self.slab[slot as usize].chain = self.buckets[b];
        self.buckets[b] = slot;
        self.push_front_recency(slot);
        self.len += 1;
        self.stats.inserts += 1;
        evicted
    }

    /// Remove `key` if resident, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let i = self.find(key)?;
        let v = self.slab[i as usize].value;
        self.unlink_recency(i);
        self.unlink_chain(i);
        self.free.push(i);
        self.len -= 1;
        Some(v)
    }

    /// The key that would be evicted next (the least recently used).
    pub fn lru_key(&self) -> Option<u64> {
        if self.tail == NIL {
            None
        } else {
            Some(self.slab[self.tail as usize].key)
        }
    }

    /// Visit every resident entry's value mutably, in slab (insertion
    /// slot) order — a deterministic order independent of recency.
    /// Used for whole-table state transitions such as a processor
    /// crash invalidating every entry bound to it.
    pub fn for_each_value_mut(&mut self, mut f: impl FnMut(u64, &mut V)) {
        // Walk the recency list rather than the slab so freed slots
        // (which keep stale contents) are never visited.
        let mut i = self.head;
        while i != NIL {
            let next = self.slab[i as usize].older;
            let key = self.slab[i as usize].key;
            f(key, &mut self.slab[i as usize].value);
            i = next;
        }
    }

    /// Keys in recency order, most recent first (diagnostics/tests).
    pub fn keys_mru_first(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut i = self.head;
        while i != NIL {
            out.push(self.slab[i as usize].key);
            i = self.slab[i as usize].older;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_evict_in_lru_order() {
        let mut t: HashedLru<u32> = HashedLru::new(2);
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(2, 20), None);
        assert_eq!(t.len(), 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.insert(3, 30), Some((2, 20)));
        assert_eq!(t.peek(2), None);
        assert_eq!(t.peek(1), Some(10));
        assert_eq!(t.peek(3), Some(30));
        assert_eq!(t.stats.evictions, 1);
        assert_eq!(t.stats.inserts, 3);
    }

    #[test]
    fn update_does_not_evict() {
        let mut t: HashedLru<u32> = HashedLru::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.insert(1, 11), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.peek(1), Some(11));
        // 2 is now LRU.
        assert_eq!(t.lru_key(), Some(2));
    }

    #[test]
    fn peek_leaves_recency_untouched() {
        let mut t: HashedLru<u32> = HashedLru::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.peek(1), Some(10));
        // 1 was NOT promoted: it is still the LRU victim.
        assert_eq!(t.insert(3, 30), Some((1, 10)));
        let s = t.stats;
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn counters_balance() {
        let mut t: HashedLru<u64> = HashedLru::new(4);
        let mut lookups = 0u64;
        for k in 0..32u64 {
            t.get(k % 7);
            lookups += 1;
            t.insert(k % 7, k);
        }
        assert_eq!(t.stats.hits + t.stats.misses, lookups);
        assert_eq!(t.stats.inserts, t.stats.evictions + t.len() as u64);
        assert!(t.len() <= t.capacity());
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut t: HashedLru<u32> = HashedLru::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.remove(1), Some(10));
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(3, 30), None); // no eviction needed
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(9), None);
    }

    #[test]
    fn for_each_value_mut_visits_all_live_entries() {
        let mut t: HashedLru<u32> = HashedLru::new(3);
        for k in 0..5u64 {
            t.insert(k, k as u32);
        }
        let mut seen = Vec::new();
        t.for_each_value_mut(|k, v| {
            seen.push(k);
            *v += 100;
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![2, 3, 4]);
        assert_eq!(t.peek(4), Some(104));
    }

    #[test]
    fn splitmix_is_fixed() {
        // Pin the finalizer so RSS hashing never drifts across builds.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
