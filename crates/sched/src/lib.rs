#![warn(missing_docs)]

//! # afs-sched — the backend-agnostic scheduling-policy layer
//!
//! The paper's contribution is a *family* of affinity scheduling
//! policies, not one scheduler: Baseline → Pools → MRU → Wired → Hybrid
//! under the Locking paradigm, Random/MRU/Wired under IPS, plus bounded
//! work stealing on the native backend. This crate holds every one of
//! those decision procedures exactly once, as pure functions over an
//! abstract [`SchedView`] of the backend's scheduler state:
//!
//! * [`paradigm`] — the policy vocabulary ([`Paradigm`], [`LockPolicy`],
//!   [`IpsPolicy`]), including the two policies added on top of the
//!   unified layer: [`LockPolicy::MruLoad`] (MRU with a load threshold,
//!   after Durbhakula's load-aware affinity scheduling) and
//!   [`LockPolicy::MinReload`] (pick the worker minimizing the
//!   `DispatchPricer` reload estimate plus a backlog term).
//! * [`view`] — the [`SchedView`] trait: idle set, per-worker queue
//!   depths, per-entity MRU tables, monotone protocol-end stamps,
//!   published virtual clocks. Each backend implements it over its own
//!   state; the policies never see a clock, an RNG, or a queue.
//! * [`decision`] — the typed decisions policies return: enqueue
//!   [`Route`]s, dispatch [`Assignment`]s, [`StealDecision`]s.
//! * [`policy`] — the [`DispatchPolicy`] trait and the two paradigm
//!   engines ([`LockingDispatch`], [`IpsDispatch`]) plus the bounded
//!   [`StealPolicy`]. Randomized choices draw through a caller-supplied
//!   closure, so the backend keeps RNG-stream ownership (and its
//!   bit-exact draw order).
//! * [`spec`] — the canonical cross-backend [`PolicySpec`]: one enum
//!   both backends' configurations derive from, replacing the
//!   hand-rolled per-backend mappings.
//! * [`router`] — [`RouterState`], the dispatcher-side deterministic
//!   virtual-load model the native backend uses to evaluate enqueue-time
//!   routing policies without consulting racy host queue lengths.
//! * [`claim`] — [`ClaimTable`], the virtual-order claim protocol that
//!   makes shared-pool pops and work stealing deterministic: every
//!   pop/steal becomes a `(start, seq, claimant)` [`Claim`] resolved in
//!   total virtual order on the dispatcher, so arbitration outcomes are
//!   pure functions of the arrival stream at any worker count.
//! * [`lru`] — [`HashedLru`], the deterministic bounded hashed-LRU
//!   table behind million-flow steering and stream-state caches.
//! * [`frontend`] — the NIC-dispatch layer ([`FrontEndState`]): RSS
//!   hashing, the Flow-Director learning table (with its documented
//!   reordering pathology) and the transport-friendly per-flow pin,
//!   implemented once for both backends.
//!
//! Decisions are deterministic functions of `(view, entity, draws)`:
//! same view and same draw results ⇒ same decision, on any backend.

pub mod claim;
pub mod decision;
pub mod frontend;
pub mod lru;
pub mod paradigm;
pub mod policy;
pub mod router;
pub mod spec;
pub mod view;

pub use claim::{Claim, ClaimTable};
pub use decision::{Assignment, Route, StealDecision, ThreadSource};
pub use frontend::{FrontEndConfig, FrontEndKind, FrontEndPlan, FrontEndState};
pub use lru::{splitmix64, HashedLru, LruStats};
pub use paradigm::{IpsPolicy, LockPolicy, Paradigm};
pub use policy::{
    min_reload_route, mru_load_route, newest_idle, next_live, random_idle, shallowest_queue,
    DispatchPolicy, IpsDispatch, LockingDispatch, StealPolicy,
};
pub use router::{Router, RouterState};
pub use spec::{NativeLayout, PolicySpec, DEFAULT_MRU_LOAD_BOUND};
pub use view::{MaskedView, SchedView};
