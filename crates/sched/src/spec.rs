//! The canonical cross-backend policy specification.
//!
//! One [`PolicySpec`] names one scheduling regime; both backends derive
//! their configurations from it (`CrossvalScenario::sim_config` builds
//! the simulator [`Paradigm`], `NativeConfig::new` builds the native
//! [`NativeLayout`]), so the policy↔backend mapping exists exactly once.

use crate::paradigm::{IpsPolicy, LockPolicy, Paradigm};
use crate::policy::StealPolicy;
use crate::router::Router;

/// Default backlog bound of the cross-backend
/// [mru-load](PolicySpec::MruLoad) cells. Occupancy counts the
/// in-service packet, so a bound of 1 keeps a stream on its last
/// processor while that processor is idle or merely busy, and spills to
/// the shallowest queue the moment real waiting would start stacking —
/// at the matrix's ~0.3 utilization that preserves most of the affinity
/// win without giving up work conservation.
pub const DEFAULT_MRU_LOAD_BOUND: usize = 1;

/// The cross-backend policy rungs, in decreasing shared-state coupling.
///
/// The first three are the paper's comparison (the historical
/// `CrossPolicy`); the last two are the policies added on top of the
/// unified decision layer, implemented once in `afs-sched` and runnable
/// on both backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// The affinity-oblivious baseline: any packet lands on any
    /// processor with no regard for cache state (native: uniform random
    /// placement + rotating shared thread pool; simulator:
    /// `Locking/baseline`).
    Oblivious,
    /// One shared stack behind locks with a work-conserving shared run
    /// pool and per-processor threads (native: shared ring + per-worker
    /// threads; simulator: `Locking/pools`, the paper's footnote 7).
    Locking,
    /// Independent per-processor protocol stacks with affinity-preserving
    /// scheduling (native: pinned per-worker pools + bounded stealing;
    /// simulator: `IPS/mru` with one stack per processor).
    Ips,
    /// MRU with a load threshold ([`LockPolicy::MruLoad`]): packets
    /// follow their stream's last processor until its backlog exceeds
    /// [`DEFAULT_MRU_LOAD_BOUND`], then overflow to the shallowest
    /// queue. Enqueue-routed on both backends.
    MruLoad,
    /// Minimum-expected-reload ([`LockPolicy::MinReload`]): packets go
    /// to the processor minimizing the priced reload transient plus a
    /// backlog waiting term. Enqueue-routed on both backends.
    MinReload,
}

impl PolicySpec {
    /// Every rung, in the order reports print them.
    pub const ALL: [PolicySpec; 5] = [
        PolicySpec::Oblivious,
        PolicySpec::Locking,
        PolicySpec::Ips,
        PolicySpec::MruLoad,
        PolicySpec::MinReload,
    ];

    /// The paper's original three-rung comparison (the cells committed
    /// before the unified layer existed).
    pub const CLASSIC: [PolicySpec; 3] =
        [PolicySpec::Oblivious, PolicySpec::Locking, PolicySpec::Ips];

    /// Short label for tables and CSV columns.
    pub fn label(&self) -> &'static str {
        match self {
            PolicySpec::Oblivious => "oblivious",
            PolicySpec::Locking => "locking",
            PolicySpec::Ips => "ips",
            PolicySpec::MruLoad => "mru-load",
            PolicySpec::MinReload => "min-reload",
        }
    }

    /// The simulator paradigm for this rung on a `workers`-processor
    /// host.
    pub fn sim_paradigm(&self, workers: usize) -> Paradigm {
        match self {
            PolicySpec::Oblivious => Paradigm::Locking {
                policy: LockPolicy::Baseline,
            },
            PolicySpec::Locking => Paradigm::Locking {
                policy: LockPolicy::Pools,
            },
            PolicySpec::Ips => Paradigm::Ips {
                policy: IpsPolicy::Mru,
                n_stacks: workers,
            },
            PolicySpec::MruLoad => Paradigm::Locking {
                policy: LockPolicy::MruLoad {
                    max_backlog: DEFAULT_MRU_LOAD_BOUND,
                },
            },
            PolicySpec::MinReload => Paradigm::Locking {
                policy: LockPolicy::MinReload,
            },
        }
    }

    /// The native runtime's structural layout for this rung.
    pub fn native_layout(&self) -> NativeLayout {
        match self {
            PolicySpec::Oblivious => NativeLayout {
                shared_stack: true,
                pooled_queue: false,
                rotating_threads: true,
                steal: None,
                router: Router::RandomWorker,
            },
            PolicySpec::Locking => NativeLayout {
                shared_stack: true,
                pooled_queue: true,
                rotating_threads: false,
                steal: None,
                router: Router::SharedQueue,
            },
            PolicySpec::Ips => NativeLayout {
                shared_stack: false,
                pooled_queue: false,
                rotating_threads: false,
                steal: Some(StealPolicy::default()),
                router: Router::StreamOwner,
            },
            PolicySpec::MruLoad => NativeLayout {
                shared_stack: true,
                pooled_queue: false,
                rotating_threads: false,
                steal: None,
                router: Router::MruLoad {
                    max_backlog: DEFAULT_MRU_LOAD_BOUND,
                },
            },
            PolicySpec::MinReload => NativeLayout {
                shared_stack: true,
                pooled_queue: false,
                rotating_threads: false,
                steal: None,
                router: Router::MinReload,
            },
        }
    }
}

/// The structural knobs of one native run, derived from a
/// [`PolicySpec`]. The runtime consumes these flags and the
/// policy objects — it contains no policy `match` of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeLayout {
    /// One shared locked engine (`true`) vs. one lock-free engine per
    /// worker (`false`).
    pub shared_stack: bool,
    /// One shared ring all workers pop (`true`) vs. per-worker rings.
    pub pooled_queue: bool,
    /// Pool threads rotate across packets (`true`, the Baseline's
    /// shared FIFO pool) vs. each worker running its own thread.
    pub rotating_threads: bool,
    /// Bounded work stealing, if any (`None` disables it).
    pub steal: Option<StealPolicy>,
    /// The dispatcher's routing policy.
    pub router: Router,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in PolicySpec::ALL {
            assert!(seen.insert(p.label()), "duplicate label {}", p.label());
        }
        assert_eq!(PolicySpec::ALL.len(), 5);
        assert_eq!(PolicySpec::CLASSIC.len(), 3);
    }

    #[test]
    fn sim_paradigms_match_rungs() {
        assert!(PolicySpec::Oblivious.sim_paradigm(4).is_locking());
        assert!(PolicySpec::MruLoad.sim_paradigm(4).is_locking());
        assert!(PolicySpec::MinReload.sim_paradigm(4).is_locking());
        match PolicySpec::Ips.sim_paradigm(4) {
            Paradigm::Ips { n_stacks, .. } => assert_eq!(n_stacks, 4),
            _ => panic!("IPS rung must map to the IPS paradigm"),
        }
    }

    #[test]
    fn native_layouts_are_structurally_sound() {
        for p in PolicySpec::ALL {
            let l = p.native_layout();
            // A pooled queue only makes sense over a shared stack, and
            // stealing only over per-worker stacks.
            assert!(!l.pooled_queue || l.shared_stack, "{p:?}");
            assert!(l.steal.is_none() || !l.shared_stack, "{p:?}");
        }
        assert_eq!(
            PolicySpec::Ips.native_layout().steal,
            Some(StealPolicy::default())
        );
    }
}
