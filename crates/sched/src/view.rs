//! The backend-state window policies decide through.

use afs_cache::model::exec_time::ComponentAges;

/// A backend's scheduler state, as seen by a [`crate::DispatchPolicy`].
///
/// Each backend implements this over its own structures — the simulator
/// over `ProcState`/`Locatable` tables at the current simulation time,
/// the native runtime over its ring queues, atomic last-owner tables and
/// published virtual clocks. Policies only *read* through it; every
/// mutation (queue pops, RNG draws, bookkeeping) stays in the backend.
///
/// The `entity` argument of the per-entity methods is whatever unit the
/// calling paradigm schedules: the stream id under Locking, the stack id
/// under IPS. A view is constructed for one decision at one instant, so
/// the interpretation is fixed per call site.
pub trait SchedView {
    /// Number of workers (processors) the backend schedules over.
    fn n_workers(&self) -> usize;

    /// Whether worker `w` can take protocol work right now. Backends
    /// whose policies never consult idleness (enqueue-time routing on
    /// the native dispatcher) may approximate.
    fn is_idle(&self, w: usize) -> bool;

    /// A monotone stamp (simulation ticks) of the last protocol
    /// completion on `w`; `None` if protocol work never ran there.
    /// Drives the most-recently-protocol-active tie-break of MRU's
    /// overflow path.
    fn last_protocol_end(&self, w: usize) -> Option<u64> {
        let _ = w;
        None
    }

    /// Worker `w`'s queue occupancy in packets: its queued backlog
    /// *plus* any packet currently in service. Counting the in-service
    /// packet keeps load-aware routing honest about waiting cost — a
    /// busy worker with an empty queue is one service away from free,
    /// not free.
    fn queue_depth(&self, w: usize) -> usize;

    /// The worker that last ran `entity` (stream or stack), if any —
    /// the MRU table.
    fn last_worker(&self, entity: u32) -> Option<usize>;

    /// Component ages a dispatch of `entity` on `w` would see, for
    /// pricer-driven policies. The default (everything cold) makes such
    /// policies degenerate gracefully on views that cannot price.
    fn ages_on(&self, w: usize, entity: u32) -> ComponentAges {
        let _ = (w, entity);
        ComponentAges::ALL_COLD
    }

    /// Worker `w`'s published virtual clock as ordered bits (nonnegative
    /// f64 bit patterns order like the floats). Only the native backend
    /// has one; the steal policy uses it to gate on *virtual* lag.
    fn vclock_bits(&self, w: usize) -> u64 {
        let _ = w;
        0
    }
}
