//! The backend-state window policies decide through.

use afs_cache::model::exec_time::ComponentAges;

/// A backend's scheduler state, as seen by a [`crate::DispatchPolicy`].
///
/// Each backend implements this over its own structures — the simulator
/// over its field-major `Procs`/`LocTable` arrays at the current
/// simulation time, the native runtime over its ring queues, atomic
/// last-owner tables and published virtual clocks. Policies only *read*
/// through it; every mutation (queue pops, RNG draws, bookkeeping)
/// stays in the backend.
///
/// The `entity` argument of the per-entity methods is whatever unit the
/// calling paradigm schedules: the stream id under Locking, the stack id
/// under IPS. A view is constructed for one decision at one instant, so
/// the interpretation is fixed per call site.
pub trait SchedView {
    /// Number of workers (processors) the backend schedules over.
    fn n_workers(&self) -> usize;

    /// Whether worker `w` can take protocol work right now. Backends
    /// whose policies never consult idleness (enqueue-time routing on
    /// the native dispatcher) may approximate.
    fn is_idle(&self, w: usize) -> bool;

    /// A monotone stamp (simulation ticks) of the last protocol
    /// completion on `w`; `None` if protocol work never ran there.
    /// Drives the most-recently-protocol-active tie-break of MRU's
    /// overflow path.
    fn last_protocol_end(&self, w: usize) -> Option<u64> {
        let _ = w;
        None
    }

    /// Worker `w`'s queue occupancy in packets: its queued backlog
    /// *plus* any packet currently in service. Counting the in-service
    /// packet keeps load-aware routing honest about waiting cost — a
    /// busy worker with an empty queue is one service away from free,
    /// not free.
    fn queue_depth(&self, w: usize) -> usize;

    /// The worker that last ran `entity` (stream or stack), if any —
    /// the MRU table.
    fn last_worker(&self, entity: u32) -> Option<usize>;

    /// Component ages a dispatch of `entity` on `w` would see, for
    /// pricer-driven policies. The default (everything cold) makes such
    /// policies degenerate gracefully on views that cannot price.
    fn ages_on(&self, w: usize, entity: u32) -> ComponentAges {
        let _ = (w, entity);
        ComponentAges::ALL_COLD
    }

    /// Worker `w`'s published virtual clock as ordered bits (nonnegative
    /// f64 bit patterns order like the floats). Only the native backend
    /// has one; the steal policy uses it to gate on *virtual* lag.
    fn vclock_bits(&self, w: usize) -> u64 {
        let _ = w;
        0
    }

    /// Whether worker `w` may receive *new* work: not crashed and not
    /// inside a stall window. Policies must never route, select, or
    /// steal toward a non-live worker; backends without processor
    /// faults keep the default (everything live), which leaves every
    /// decision — and every RNG draw — exactly as it was before the
    /// fault layer existed.
    fn is_live(&self, w: usize) -> bool {
        let _ = w;
        true
    }

    /// Multiplier on worker `w`'s service times (`1.0` = nominal, `2.0`
    /// = a core running at half speed). Cost-pricing policies scale
    /// their estimates by it so degraded cores attract less work.
    fn service_scale(&self, w: usize) -> f64 {
        let _ = w;
        1.0
    }
}

/// A [`SchedView`] wrapper that force-masks a set of workers dead.
///
/// Backends use it to re-route orphaned work through the *policy's own*
/// decisions over a degraded view: the inner view is unchanged except
/// that masked workers report not-live (and not-idle, so idle-set scans
/// skip them too). With an all-false mask every method delegates
/// verbatim, so wrapping is behaviorally free.
pub struct MaskedView<'a> {
    inner: &'a dyn SchedView,
    dead: &'a [bool],
}

impl<'a> MaskedView<'a> {
    /// Wrap `inner`, masking worker `w` wherever `dead[w]` is true
    /// (workers past the slice's end are unmasked).
    pub fn new(inner: &'a dyn SchedView, dead: &'a [bool]) -> Self {
        MaskedView { inner, dead }
    }

    fn masked(&self, w: usize) -> bool {
        self.dead.get(w).copied().unwrap_or(false)
    }
}

impl SchedView for MaskedView<'_> {
    fn n_workers(&self) -> usize {
        self.inner.n_workers()
    }

    fn is_idle(&self, w: usize) -> bool {
        !self.masked(w) && self.inner.is_idle(w)
    }

    fn last_protocol_end(&self, w: usize) -> Option<u64> {
        self.inner.last_protocol_end(w)
    }

    fn queue_depth(&self, w: usize) -> usize {
        self.inner.queue_depth(w)
    }

    fn last_worker(&self, entity: u32) -> Option<usize> {
        self.inner.last_worker(entity)
    }

    fn ages_on(&self, w: usize, entity: u32) -> ComponentAges {
        self.inner.ages_on(w, entity)
    }

    fn vclock_bits(&self, w: usize) -> u64 {
        self.inner.vclock_bits(w)
    }

    fn is_live(&self, w: usize) -> bool {
        !self.masked(w) && self.inner.is_live(w)
    }

    fn service_scale(&self, w: usize) -> f64 {
        self.inner.service_scale(w)
    }
}
