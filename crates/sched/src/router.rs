//! Enqueue-time routing for the native dispatcher.
//!
//! The native backend routes packets *before* they touch a queue, from a
//! single dispatcher thread. Consulting live ring occupancy or worker
//! clocks there would make routing depend on host scheduling races, so
//! the dispatcher instead keeps a [`RouterState`]: a deterministic
//! virtual-load model (last-routed table + per-worker virtual drain
//! clocks) that it updates as it routes. The same [`Router`] policies
//! evaluated over this model produce identical placements on every run
//! with the same workload — which is what cross-validation against the
//! simulator requires.

use afs_cache::model::exec_time::{Age, ComponentAges};
use afs_cache::model::pricer::DispatchPricer;

use crate::decision::Route;
use crate::policy::{min_reload_route, mru_load_route, next_live, DrawFn};
use crate::view::SchedView;

/// The native dispatcher's enqueue-time routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Router {
    /// A uniformly random worker (one draw per packet) — the oblivious
    /// placement.
    RandomWorker,
    /// The single shared (pooled) ring; workers pop it min-vclock-first.
    SharedQueue,
    /// The stream's static owner, `stream mod workers` (the IPS
    /// partition).
    StreamOwner,
    /// [`mru_load_route`] over the dispatcher's virtual view.
    MruLoad {
        /// Backlog bound before spilling to the shallowest queue.
        max_backlog: usize,
    },
    /// [`min_reload_route`] over the dispatcher's virtual view.
    MinReload,
}

impl Router {
    /// Route one packet of `entity` (the stream id). `draw` is consumed
    /// only by [`Router::RandomWorker`], exactly once per packet.
    pub fn route<V: SchedView + ?Sized>(
        &self,
        view: &V,
        entity: u32,
        draw: DrawFn,
        pricer: &DispatchPricer,
    ) -> Route {
        match self {
            Router::RandomWorker => {
                // Draw over the *live* workers only, so dead cores
                // never receive new placements. With everything live
                // the count equals `n_workers()` and the draw — value
                // and sequence position — is exactly the historical one.
                let n = view.n_workers();
                let live = (0..n).filter(|&w| view.is_live(w)).count();
                if live == 0 || live == n {
                    Route::Worker(draw(n))
                } else {
                    let k = draw(live);
                    Route::Worker((0..n).filter(|&w| view.is_live(w)).nth(k).unwrap_or(0))
                }
            }
            Router::SharedQueue => Route::Shared,
            Router::StreamOwner => Route::Worker(next_live(view, entity as usize)),
            Router::MruLoad { max_backlog } => {
                Route::Worker(mru_load_route(view, entity, *max_backlog))
            }
            Router::MinReload => Route::Worker(min_reload_route(view, entity, pricer)),
        }
    }
}

/// The dispatcher-side virtual-load model backing load-aware routing.
///
/// Each routed packet charges its worker one estimated service time on a
/// virtual drain clock; a worker's virtual backlog is how many estimated
/// services its clock sits past "now". The model never reads worker-side
/// state, so routing is a pure function of the (deterministic) workload.
#[derive(Debug, Clone)]
pub struct RouterState {
    /// Worker that last received each stream (grown on demand).
    last: Vec<Option<usize>>,
    /// Virtual time at which each worker's routed backlog drains.
    vfinish_us: Vec<f64>,
    /// Estimated per-packet service time charged to the drain clocks.
    est_service_us: f64,
    /// Plan-derived liveness mask: `false` masks a worker out of every
    /// routing decision. Derived from the fault *plan*, never from racy
    /// host-side health observation, so routing stays a pure function
    /// of the workload.
    live: Vec<bool>,
}

impl RouterState {
    /// A fresh model for `workers` workers charging `est_service_us` per
    /// routed packet (typically the pricer's warm protocol time).
    pub fn new(workers: usize, est_service_us: f64) -> Self {
        RouterState {
            last: Vec::new(),
            vfinish_us: vec![0.0; workers],
            est_service_us: est_service_us.max(1e-9),
            live: vec![true; workers],
        }
    }

    /// Pre-size the MRU table for flows `0..n` so steady-state routing
    /// never grows it — the serving path's allocation-free contract.
    /// Behaviour-neutral: an absent entry and a pre-sized `None` entry
    /// read identically.
    pub fn reserve_flows(&mut self, n: u32) {
        if self.last.len() < n as usize {
            self.last.resize(n as usize, None);
        }
    }

    /// Mask worker `w` in (`true`) or out (`false`) of routing.
    pub fn set_live(&mut self, w: usize, live: bool) {
        self.live[w] = live;
    }

    /// Whether worker `w` is currently routed to.
    pub fn is_live(&self, w: usize) -> bool {
        self.live.get(w).copied().unwrap_or(true)
    }

    /// Record that a packet of `stream` arriving at `arrival_us` was
    /// routed to worker `w`: update the MRU table and charge `w`'s
    /// virtual drain clock one estimated service.
    pub fn note_routed(&mut self, stream: u32, w: usize, arrival_us: f64) {
        let s = stream as usize;
        if s >= self.last.len() {
            self.last.resize(s + 1, None);
        }
        self.last[s] = Some(w);
        self.vfinish_us[w] = self.vfinish_us[w].max(arrival_us) + self.est_service_us;
    }

    /// The virtual instant worker `w`'s routed backlog drains. Read
    /// right after [`RouterState::note_routed`], this is the modeled
    /// completion time of the packet just routed to `w` — what the
    /// native dispatcher keys its Flow-Director completion-feedback
    /// queue on.
    pub fn vfinish_us(&self, w: usize) -> f64 {
        self.vfinish_us[w]
    }

    /// The model's [`SchedView`] at virtual time `now_us` (the arrival
    /// timestamp of the packet being routed).
    pub fn view_at(&self, now_us: f64) -> RouterView<'_> {
        RouterView {
            state: self,
            now_us,
        }
    }
}

/// [`RouterState`]'s read window at one arrival instant.
#[derive(Debug, Clone, Copy)]
pub struct RouterView<'s> {
    state: &'s RouterState,
    now_us: f64,
}

impl SchedView for RouterView<'_> {
    fn n_workers(&self) -> usize {
        self.state.vfinish_us.len()
    }

    fn is_idle(&self, w: usize) -> bool {
        self.state.vfinish_us[w] <= self.now_us
    }

    fn queue_depth(&self, w: usize) -> usize {
        let lag = self.state.vfinish_us[w] - self.now_us;
        if lag <= 0.0 {
            0
        } else {
            (lag / self.state.est_service_us).ceil() as usize
        }
    }

    fn last_worker(&self, entity: u32) -> Option<usize> {
        self.state.last.get(entity as usize).copied().flatten()
    }

    fn is_live(&self, w: usize) -> bool {
        self.state.live[w]
    }

    fn ages_on(&self, w: usize, entity: u32) -> ComponentAges {
        ComponentAges {
            // A worker that ever ran protocol work keeps warm code in
            // this virtual model; per-worker threads stay local.
            code_global: if self.state.vfinish_us[w] > 0.0 {
                Age::Warm
            } else {
                Age::Cold
            },
            thread: Age::Warm,
            stream: match self.last_worker(entity) {
                None => Age::Cold,
                Some(p) if p == w => Age::Warm,
                Some(_) => Age::Remote,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_clocks_model_backlog() {
        let mut st = RouterState::new(2, 10.0);
        st.note_routed(0, 0, 100.0);
        st.note_routed(0, 0, 100.0);
        let v = st.view_at(100.0);
        assert_eq!(v.queue_depth(0), 2);
        assert_eq!(v.queue_depth(1), 0);
        assert!(!v.is_idle(0));
        assert!(v.is_idle(1));
        assert_eq!(v.last_worker(0), Some(0));
        // After the virtual drain the backlog is gone but MRU persists.
        let v = st.view_at(121.0);
        assert_eq!(v.queue_depth(0), 0);
        assert_eq!(v.last_worker(0), Some(0));
    }

    #[test]
    fn masked_workers_never_receive_routes() {
        let pricer = DispatchPricer::new(&crate::policy::tests::test_model());
        let mut st = RouterState::new(3, 10.0);
        st.set_live(1, false);
        // RandomWorker draws over the two live workers and maps the
        // draw onto {0, 2}; the masked worker is unreachable.
        let mut draws = Vec::new();
        for pick in 0..2usize {
            let mut draw = |n: usize| {
                draws.push(n);
                pick
            };
            let route = Router::RandomWorker.route(&st.view_at(0.0), 0, &mut draw, &pricer);
            assert_eq!(route, Route::Worker(if pick == 0 { 0 } else { 2 }));
        }
        assert_eq!(draws, vec![2, 2]);
        // Wired stream ownership falls through to the next live worker.
        let mut no_draw = |_: usize| -> usize { unreachable!() };
        assert_eq!(
            Router::StreamOwner.route(&st.view_at(0.0), 4, &mut no_draw, &pricer),
            Route::Worker(2)
        );
        // Load-aware routing skips the masked worker even when it has
        // the shallowest virtual queue.
        st.note_routed(0, 0, 0.0);
        st.note_routed(0, 2, 0.0);
        st.note_routed(0, 2, 0.0);
        let r = Router::MruLoad { max_backlog: 0 };
        assert_eq!(
            r.route(&st.view_at(0.0), 9, &mut no_draw, &pricer),
            Route::Worker(0)
        );
        // Unmasking restores the historical draw width.
        st.set_live(1, true);
        let mut draw = |n: usize| {
            assert_eq!(n, 3);
            1
        };
        assert_eq!(
            Router::RandomWorker.route(&st.view_at(0.0), 0, &mut draw, &pricer),
            Route::Worker(1)
        );
    }

    #[test]
    fn routing_is_deterministic_over_the_model() {
        let pricer = DispatchPricer::new(&crate::policy::tests::test_model());
        let r = Router::MruLoad { max_backlog: 1 };
        let mut no_draw = |_: usize| -> usize { unreachable!() };
        let mut st = RouterState::new(2, pricer.t_warm_us());
        let mut placements = Vec::new();
        for i in 0..6u32 {
            let now = i as f64; // arrivals much faster than drain
            let route = r.route(&st.view_at(now), 7, &mut no_draw, &pricer);
            let Route::Worker(w) = route else {
                panic!("worker route expected")
            };
            st.note_routed(7, w, now);
            placements.push(w);
        }
        // First touch lands on the shallowest (worker 0), stays affine
        // within the bound, spills to worker 1 past it, and re-homes.
        assert_eq!(placements[0], 0);
        assert!(placements.contains(&1), "bound must eventually spill");
    }
}
