//! Enqueue-time routing for the native dispatcher.
//!
//! The native backend routes packets *before* they touch a queue, from a
//! single dispatcher thread. Consulting live ring occupancy or worker
//! clocks there would make routing depend on host scheduling races, so
//! the dispatcher instead keeps a [`RouterState`]: a deterministic
//! virtual-load model (last-routed table + per-worker virtual drain
//! clocks) that it updates as it routes. The same [`Router`] policies
//! evaluated over this model produce identical placements on every run
//! with the same workload — which is what cross-validation against the
//! simulator requires.

use afs_cache::model::exec_time::{Age, ComponentAges};
use afs_cache::model::pricer::DispatchPricer;

use crate::decision::Route;
use crate::policy::{min_reload_route, mru_load_route, DrawFn};
use crate::view::SchedView;

/// The native dispatcher's enqueue-time routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Router {
    /// A uniformly random worker (one draw per packet) — the oblivious
    /// placement.
    RandomWorker,
    /// The single shared (pooled) ring; workers pop it min-vclock-first.
    SharedQueue,
    /// The stream's static owner, `stream mod workers` (the IPS
    /// partition).
    StreamOwner,
    /// [`mru_load_route`] over the dispatcher's virtual view.
    MruLoad {
        /// Backlog bound before spilling to the shallowest queue.
        max_backlog: usize,
    },
    /// [`min_reload_route`] over the dispatcher's virtual view.
    MinReload,
}

impl Router {
    /// Route one packet of `entity` (the stream id). `draw` is consumed
    /// only by [`Router::RandomWorker`], exactly once per packet.
    pub fn route(
        &self,
        view: &dyn SchedView,
        entity: u32,
        draw: DrawFn,
        pricer: &DispatchPricer,
    ) -> Route {
        match self {
            Router::RandomWorker => Route::Worker(draw(view.n_workers())),
            Router::SharedQueue => Route::Shared,
            Router::StreamOwner => Route::Worker(entity as usize % view.n_workers().max(1)),
            Router::MruLoad { max_backlog } => {
                Route::Worker(mru_load_route(view, entity, *max_backlog))
            }
            Router::MinReload => Route::Worker(min_reload_route(view, entity, pricer)),
        }
    }
}

/// The dispatcher-side virtual-load model backing load-aware routing.
///
/// Each routed packet charges its worker one estimated service time on a
/// virtual drain clock; a worker's virtual backlog is how many estimated
/// services its clock sits past "now". The model never reads worker-side
/// state, so routing is a pure function of the (deterministic) workload.
#[derive(Debug, Clone)]
pub struct RouterState {
    /// Worker that last received each stream (grown on demand).
    last: Vec<Option<usize>>,
    /// Virtual time at which each worker's routed backlog drains.
    vfinish_us: Vec<f64>,
    /// Estimated per-packet service time charged to the drain clocks.
    est_service_us: f64,
}

impl RouterState {
    /// A fresh model for `workers` workers charging `est_service_us` per
    /// routed packet (typically the pricer's warm protocol time).
    pub fn new(workers: usize, est_service_us: f64) -> Self {
        RouterState {
            last: Vec::new(),
            vfinish_us: vec![0.0; workers],
            est_service_us: est_service_us.max(1e-9),
        }
    }

    /// Record that a packet of `stream` arriving at `arrival_us` was
    /// routed to worker `w`: update the MRU table and charge `w`'s
    /// virtual drain clock one estimated service.
    pub fn note_routed(&mut self, stream: u32, w: usize, arrival_us: f64) {
        let s = stream as usize;
        if s >= self.last.len() {
            self.last.resize(s + 1, None);
        }
        self.last[s] = Some(w);
        self.vfinish_us[w] = self.vfinish_us[w].max(arrival_us) + self.est_service_us;
    }

    /// The model's [`SchedView`] at virtual time `now_us` (the arrival
    /// timestamp of the packet being routed).
    pub fn view_at(&self, now_us: f64) -> RouterView<'_> {
        RouterView {
            state: self,
            now_us,
        }
    }
}

/// [`RouterState`]'s read window at one arrival instant.
#[derive(Debug, Clone, Copy)]
pub struct RouterView<'s> {
    state: &'s RouterState,
    now_us: f64,
}

impl SchedView for RouterView<'_> {
    fn n_workers(&self) -> usize {
        self.state.vfinish_us.len()
    }

    fn is_idle(&self, w: usize) -> bool {
        self.state.vfinish_us[w] <= self.now_us
    }

    fn queue_depth(&self, w: usize) -> usize {
        let lag = self.state.vfinish_us[w] - self.now_us;
        if lag <= 0.0 {
            0
        } else {
            (lag / self.state.est_service_us).ceil() as usize
        }
    }

    fn last_worker(&self, entity: u32) -> Option<usize> {
        self.state.last.get(entity as usize).copied().flatten()
    }

    fn ages_on(&self, w: usize, entity: u32) -> ComponentAges {
        ComponentAges {
            // A worker that ever ran protocol work keeps warm code in
            // this virtual model; per-worker threads stay local.
            code_global: if self.state.vfinish_us[w] > 0.0 {
                Age::Warm
            } else {
                Age::Cold
            },
            thread: Age::Warm,
            stream: match self.last_worker(entity) {
                None => Age::Cold,
                Some(p) if p == w => Age::Warm,
                Some(_) => Age::Remote,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_clocks_model_backlog() {
        let mut st = RouterState::new(2, 10.0);
        st.note_routed(0, 0, 100.0);
        st.note_routed(0, 0, 100.0);
        let v = st.view_at(100.0);
        assert_eq!(v.queue_depth(0), 2);
        assert_eq!(v.queue_depth(1), 0);
        assert!(!v.is_idle(0));
        assert!(v.is_idle(1));
        assert_eq!(v.last_worker(0), Some(0));
        // After the virtual drain the backlog is gone but MRU persists.
        let v = st.view_at(121.0);
        assert_eq!(v.queue_depth(0), 0);
        assert_eq!(v.last_worker(0), Some(0));
    }

    #[test]
    fn routing_is_deterministic_over_the_model() {
        let pricer = DispatchPricer::new(&crate::policy::tests::test_model());
        let r = Router::MruLoad { max_backlog: 1 };
        let mut no_draw = |_: usize| -> usize { unreachable!() };
        let mut st = RouterState::new(2, pricer.t_warm_us());
        let mut placements = Vec::new();
        for i in 0..6u32 {
            let now = i as f64; // arrivals much faster than drain
            let route = r.route(&st.view_at(now), 7, &mut no_draw, &pricer);
            let Route::Worker(w) = route else {
                panic!("worker route expected")
            };
            st.note_routed(7, w, now);
            placements.push(w);
        }
        // First touch lands on the shallowest (worker 0), stays affine
        // within the bound, spills to worker 1 past it, and re-homes.
        assert_eq!(placements[0], 0);
        assert!(placements.contains(&1), "bound must eventually spill");
    }
}
