//! The [`DispatchPolicy`] trait and every policy's decision procedure.
//!
//! Policies are pure: they read a [`SchedView`], optionally pull uniform
//! draws through a caller-supplied closure (the backend owns the RNG and
//! its stream order), and return typed decisions. Nothing here mutates
//! backend state, advances a clock, or remembers anything between calls.

use afs_cache::model::pricer::DispatchPricer;

use crate::decision::{Assignment, Route, StealDecision, ThreadSource};
use crate::paradigm::{IpsPolicy, LockPolicy};
use crate::view::SchedView;

/// A uniform draw: `draw(n)` returns a value in `0..n`. Policies call it
/// at most when a random choice is actually available, preserving the
/// backend's exact RNG draw order across refactors.
pub type DrawFn<'a> = &'a mut dyn FnMut(usize) -> usize;

/// One scheduling policy's decision procedures, shared by the simulator
/// and the native runtime.
///
/// The three methods mirror the three moments a backend consults its
/// policy: routing an arrival ([`route`](DispatchPolicy::route)),
/// picking a worker for the head of a shared queue
/// ([`select`](DispatchPolicy::select)), and relieving a backlog
/// ([`steal`](DispatchPolicy::steal)). Defaults are the no-op decision
/// so each policy implements only the moments it participates in.
pub trait DispatchPolicy {
    /// Whether this policy maintains per-worker queues that workers
    /// serve directly (the wired family and the enqueue-routed
    /// policies). Backends use this to run their worker-queue scan.
    fn uses_worker_queues(&self) -> bool {
        false
    }

    /// Route an arriving packet of `entity` to a queue. Policies that
    /// dispatch from the shared queue return [`Route::Shared`].
    fn route<V: SchedView + ?Sized>(&self, view: &V, entity: u32, draw: DrawFn) -> Route {
        let _ = (view, entity, draw);
        Route::Shared
    }

    /// Pick a worker (and thread source) for the shared-queue head
    /// belonging to `entity`; `None` stalls the dispatch (no eligible
    /// worker, or the policy never serves the shared queue).
    fn select<V: SchedView + ?Sized>(
        &self,
        view: &V,
        entity: u32,
        draw: DrawFn,
    ) -> Option<Assignment> {
        let _ = (view, entity, draw);
        None
    }

    /// Pick a steal victim for idle worker `thief`, if the policy
    /// steals at all.
    fn steal<V: SchedView + ?Sized>(&self, view: &V, thief: usize) -> Option<StealDecision> {
        let _ = (view, thief);
        None
    }
}

/// A uniformly random idle worker — the affinity-oblivious placement.
///
/// Exactly one `draw(idle_count)` is consumed, and only when at least
/// one live worker is idle (count-then-select, allocation-free). Dead
/// or stalled workers are excluded from both the count and the
/// selection, so masking never perturbs the draw sequence seen for
/// live-worker choices: with everything live the count — and therefore
/// every draw — is bit-identical to the pre-fault-layer scan.
pub fn random_idle<V: SchedView + ?Sized>(view: &V, draw: DrawFn) -> Option<usize> {
    let eligible = |w: &usize| view.is_idle(*w) && view.is_live(*w);
    let idle_count = (0..view.n_workers()).filter(eligible).count();
    if idle_count == 0 {
        return None;
    }
    let k = draw(idle_count);
    (0..view.n_workers()).filter(eligible).nth(k)
}

/// The live idle worker with the *newest* protocol activity (the best
/// fallback when the preferred worker is busy). Never-protocol workers
/// rank lowest; ties break toward the lowest index.
pub fn newest_idle<V: SchedView + ?Sized>(view: &V) -> Option<usize> {
    (0..view.n_workers())
        .filter(|&w| view.is_idle(w) && view.is_live(w))
        .max_by_key(|&w| {
            (
                view.last_protocol_end(w)
                    .map(|t| (t as i128) + 1)
                    .unwrap_or(0),
                usize::MAX - w,
            )
        })
}

/// MRU choice for an entity: its last worker if live and idle, else the
/// newest-protocol live idle worker.
fn mru_choice<V: SchedView + ?Sized>(view: &V, entity: u32) -> Option<usize> {
    if let Some(last) = view.last_worker(entity) {
        if view.is_idle(last) && view.is_live(last) {
            return Some(last);
        }
    }
    newest_idle(view)
}

/// The preferred worker if live, else the next live worker cyclically
/// upward — the degraded-mode fallback for statically wired routes.
/// With everything live this is the identity on `preferred`.
pub fn next_live<V: SchedView + ?Sized>(view: &V, preferred: usize) -> usize {
    let n = view.n_workers().max(1);
    let preferred = preferred % n;
    (0..n)
        .map(|k| (preferred + k) % n)
        .find(|&w| view.is_live(w))
        .unwrap_or(preferred)
}

/// The live worker with the shallowest queue (lowest index on ties).
pub fn shallowest_queue<V: SchedView + ?Sized>(view: &V) -> usize {
    (0..view.n_workers())
        .filter(|&w| view.is_live(w))
        .min_by_key(|&w| (view.queue_depth(w), w))
        .unwrap_or(0)
}

/// MRU-with-load-threshold routing: the entity's last worker while it
/// is live and its backlog is within `max_backlog`, else the shallowest
/// live queue. A dead last worker is treated as no history.
pub fn mru_load_route<V: SchedView + ?Sized>(view: &V, entity: u32, max_backlog: usize) -> usize {
    if let Some(w) = view.last_worker(entity) {
        if view.is_live(w) && view.queue_depth(w) <= max_backlog {
            return w;
        }
    }
    shallowest_queue(view)
}

/// Minimum-expected-reload routing: argmin over live workers of the
/// priced reload transient for the entity's component ages on that
/// worker, plus one warm protocol service per queued packet of backlog
/// (the waiting cost that keeps affinity from collapsing onto one
/// worker), all scaled by the worker's service multiplier so degraded
/// cores price honestly. Strict `<` comparison keeps the lowest index
/// on exact ties; with every worker live at nominal speed the costs —
/// and the argmin — are bit-identical to the unscaled scan.
pub fn min_reload_route<V: SchedView + ?Sized>(
    view: &V,
    entity: u32,
    pricer: &DispatchPricer,
) -> usize {
    let mut best = 0usize;
    let mut best_cost = f64::INFINITY;
    for w in 0..view.n_workers() {
        if !view.is_live(w) {
            continue;
        }
        let reload_us = pricer
            .protocol_time(view.ages_on(w, entity))
            .as_micros_f64();
        let wait_us = view.queue_depth(w) as f64 * pricer.t_warm_us();
        let cost = view.service_scale(w) * (reload_us + wait_us);
        if cost < best_cost {
            best_cost = cost;
            best = w;
        }
    }
    best
}

/// The Locking paradigm's dispatch engine: borrows the policy (the
/// Hybrid wired mask lives in configuration) and the run's pricer (for
/// [`LockPolicy::MinReload`]).
#[derive(Debug, Clone, Copy)]
pub struct LockingDispatch<'p> {
    /// The configured Locking policy.
    pub policy: &'p LockPolicy,
    /// The run's reload-transient pricer.
    pub pricer: &'p DispatchPricer,
}

impl DispatchPolicy for LockingDispatch<'_> {
    fn uses_worker_queues(&self) -> bool {
        matches!(
            self.policy,
            LockPolicy::Wired
                | LockPolicy::Hybrid { .. }
                | LockPolicy::MruLoad { .. }
                | LockPolicy::MinReload
        )
    }

    fn route<V: SchedView + ?Sized>(&self, view: &V, entity: u32, _draw: DrawFn) -> Route {
        match self.policy {
            // Wired bindings fall through to the next live worker while
            // their home is dead or stalled (identity when all live).
            LockPolicy::Wired => Route::Worker(next_live(view, entity as usize)),
            LockPolicy::Hybrid { wired } if wired[entity as usize] => {
                Route::Worker(next_live(view, entity as usize))
            }
            LockPolicy::MruLoad { max_backlog } => {
                Route::Worker(mru_load_route(view, entity, *max_backlog))
            }
            LockPolicy::MinReload => Route::Worker(min_reload_route(view, entity, self.pricer)),
            _ => Route::Shared,
        }
    }

    fn select<V: SchedView + ?Sized>(
        &self,
        view: &V,
        _entity: u32,
        draw: DrawFn,
    ) -> Option<Assignment> {
        let (worker, thread) = match self.policy {
            LockPolicy::Baseline => (random_idle(view, draw), ThreadSource::SharedPool),
            LockPolicy::Pools => (random_idle(view, draw), ThreadSource::Own),
            // "MRU processor scheduling": run protocol work on the
            // processor that most recently ran protocol code. This
            // concentrates the (dominant) code/global footprint on as
            // few processors as the load requires; per-stream state
            // still bounces, which is what Wired-Streams fixes.
            LockPolicy::Mru | LockPolicy::Hybrid { .. } => (newest_idle(view), ThreadSource::Own),
            // Every packet of these policies lives in a worker queue.
            LockPolicy::Wired | LockPolicy::MruLoad { .. } | LockPolicy::MinReload => {
                (None, ThreadSource::Own)
            }
        };
        worker.map(|worker| Assignment { worker, thread })
    }
}

/// The IPS paradigm's dispatch engine: places runnable *stacks* on idle
/// processors (the entity id is the stack id).
#[derive(Debug, Clone, Copy)]
pub struct IpsDispatch {
    /// The configured IPS policy.
    pub policy: IpsPolicy,
}

impl DispatchPolicy for IpsDispatch {
    fn select<V: SchedView + ?Sized>(
        &self,
        view: &V,
        stack: u32,
        draw: DrawFn,
    ) -> Option<Assignment> {
        let worker = match self.policy {
            IpsPolicy::Wired => {
                let target = next_live(view, stack as usize);
                (view.is_idle(target) && view.is_live(target)).then_some(target)
            }
            IpsPolicy::Mru => mru_choice(view, stack),
            IpsPolicy::Random => random_idle(view, draw),
        };
        worker.map(|worker| Assignment {
            worker,
            thread: ThreadSource::Own,
        })
    }
}

/// Bounds on the IPS work-stealing escape hatch: affinity-preserving
/// scheduling must not leave processors idle while others drown, but
/// unbounded stealing would collapse IPS back into the oblivious pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealPolicy {
    /// A victim is eligible only when its backlog is at least this deep
    /// (stealing from a shallow queue trades a cache reload for almost
    /// no queueing relief).
    pub threshold: usize,
    /// At most this many packets are taken per steal visit.
    pub max_batch: usize,
}

impl Default for StealPolicy {
    fn default() -> Self {
        StealPolicy {
            threshold: 2,
            max_batch: 2,
        }
    }
}

impl DispatchPolicy for StealPolicy {
    /// Pick the deepest eligible victim that is *virtually* behind the
    /// thief (its published clock exceeding the thief's means its
    /// backlog is real waiting work, not future arrivals a dispatcher
    /// pre-staged). Highest index wins depth ties, matching the
    /// historical scan.
    fn steal<V: SchedView + ?Sized>(&self, view: &V, thief: usize) -> Option<StealDecision> {
        let my_bits = view.vclock_bits(thief);
        let mut victim = None;
        let mut deepest = self.threshold.max(1);
        for v in 0..view.n_workers() {
            if v == thief || !view.is_live(v) {
                continue;
            }
            let depth = view.queue_depth(v);
            if depth >= deepest && view.vclock_bits(v) > my_bits {
                deepest = depth;
                victim = Some(v);
            }
        }
        victim.map(|victim| StealDecision {
            victim,
            max_batch: self.max_batch.max(1),
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use afs_cache::model::exec_time::ExecTimeModel;
    use afs_cache::model::exec_time::{Age, ComponentAges, ComponentWeights, TimeBounds};
    use afs_cache::model::footprint::MVS_WORKLOAD;
    use afs_cache::model::hierarchy::FlushModel;
    use afs_cache::model::platform::Platform;

    pub(crate) fn test_model() -> ExecTimeModel {
        ExecTimeModel::new(
            TimeBounds::new(150.0, 185.0, 284.3),
            FlushModel::new(Platform::sgi_challenge_r4400(), MVS_WORKLOAD),
            ComponentWeights::nominal(),
        )
    }

    /// A plain-struct view for decision unit tests.
    pub(crate) struct TestView {
        pub idle: Vec<bool>,
        pub ends: Vec<Option<u64>>,
        pub depths: Vec<usize>,
        pub last: Vec<Option<usize>>,
        pub vclocks: Vec<u64>,
        pub live: Vec<bool>,
        pub scale: Vec<f64>,
    }

    impl TestView {
        pub fn idle(n: usize) -> Self {
            TestView {
                idle: vec![true; n],
                ends: vec![None; n],
                depths: vec![0; n],
                last: vec![None; 64],
                vclocks: vec![0; n],
                live: vec![true; n],
                scale: vec![1.0; n],
            }
        }
    }

    impl SchedView for TestView {
        fn n_workers(&self) -> usize {
            self.idle.len()
        }
        fn is_idle(&self, w: usize) -> bool {
            self.idle[w]
        }
        fn last_protocol_end(&self, w: usize) -> Option<u64> {
            self.ends[w]
        }
        fn queue_depth(&self, w: usize) -> usize {
            self.depths[w]
        }
        fn last_worker(&self, entity: u32) -> Option<usize> {
            self.last[entity as usize]
        }
        fn ages_on(&self, w: usize, entity: u32) -> ComponentAges {
            ComponentAges {
                code_global: Age::Warm,
                thread: Age::Warm,
                stream: match self.last[entity as usize] {
                    None => Age::Cold,
                    Some(p) if p == w => Age::Warm,
                    Some(_) => Age::Remote,
                },
            }
        }
        fn vclock_bits(&self, w: usize) -> u64 {
            self.vclocks[w]
        }
        fn is_live(&self, w: usize) -> bool {
            self.live[w]
        }
        fn service_scale(&self, w: usize) -> f64 {
            self.scale[w]
        }
    }

    #[test]
    fn random_idle_draws_only_with_idle_workers() {
        let mut v = TestView::idle(4);
        let mut draws = 0usize;
        let mut draw = |n: usize| {
            draws += 1;
            n - 1
        };
        assert_eq!(random_idle(&v, &mut draw), Some(3));
        v.idle = vec![false; 4];
        assert_eq!(random_idle(&v, &mut draw), None);
        assert_eq!(draws, 1, "no draw when nothing is idle");
    }

    #[test]
    fn newest_idle_prefers_recent_protocol_then_low_index() {
        let mut v = TestView::idle(3);
        assert_eq!(newest_idle(&v), Some(0), "all-never ties break low");
        v.ends = vec![Some(5), Some(9), None];
        assert_eq!(newest_idle(&v), Some(1));
        v.idle[1] = false;
        assert_eq!(newest_idle(&v), Some(0));
    }

    #[test]
    fn mru_load_spills_past_the_bound() {
        let mut v = TestView::idle(3);
        v.last[7] = Some(2);
        v.depths = vec![4, 1, 2];
        assert_eq!(mru_load_route(&v, 7, 2), 2, "within bound: stay affine");
        v.depths[2] = 3;
        assert_eq!(mru_load_route(&v, 7, 2), 1, "over bound: shallowest");
        assert_eq!(mru_load_route(&v, 9, 2), 1, "no history: shallowest");
    }

    #[test]
    fn min_reload_trades_affinity_against_backlog() {
        let pricer = DispatchPricer::new(&test_model());
        let mut v = TestView::idle(2);
        v.last[3] = Some(1);
        assert_eq!(min_reload_route(&v, 3, &pricer), 1, "warm worker wins");
        // Pile enough backlog on the affine worker and the reload
        // becomes cheaper than the wait.
        v.depths[1] = 64;
        assert_eq!(min_reload_route(&v, 3, &pricer), 0);
        // Cold everywhere: equal cost, lowest index.
        assert_eq!(min_reload_route(&v, 5, &pricer), 0);
    }

    #[test]
    fn steal_respects_threshold_and_vclock_gate() {
        let sp = StealPolicy::default();
        let mut v = TestView::idle(3);
        v.depths = vec![0, 5, 3];
        v.vclocks = vec![10, 20, 30];
        let d = sp.steal(&v, 0).expect("victim available");
        assert_eq!(d.victim, 1);
        assert_eq!(d.max_batch, 2);
        // Virtually ahead victims are ineligible.
        v.vclocks = vec![40, 20, 30];
        assert!(sp.steal(&v, 0).is_none());
        // Shallow queues are ineligible.
        v.vclocks = vec![10, 20, 30];
        v.depths = vec![0, 1, 1];
        assert!(sp.steal(&v, 0).is_none());
    }

    #[test]
    fn empty_mask_preserves_draw_order_exactly() {
        // Satellite regression: wrapping a view in an all-live
        // `MaskedView` must leave every decision AND every RNG draw
        // bit-identical — the fault layer is free when no fault fired.
        use crate::view::MaskedView;
        let pricer = DispatchPricer::new(&test_model());
        let mut v = TestView::idle(4);
        v.idle = vec![true, false, true, true];
        v.ends = vec![Some(3), None, Some(9), None];
        v.depths = vec![2, 0, 1, 3];
        v.last[5] = Some(1);
        v.vclocks = vec![10, 40, 20, 30];
        let dead = vec![false; 4];

        let mut raw_draws = Vec::new();
        let mut masked_draws = Vec::new();
        for seed in 0..8usize {
            let masked = MaskedView::new(&v, &dead);
            let mut raw_draw = |n: usize| {
                raw_draws.push(n);
                seed % n
            };
            let mut masked_draw = |n: usize| {
                masked_draws.push(n);
                seed % n
            };
            assert_eq!(
                random_idle(&v, &mut raw_draw),
                random_idle(&masked, &mut masked_draw)
            );
            assert_eq!(newest_idle(&v), newest_idle(&masked));
            assert_eq!(shallowest_queue(&v), shallowest_queue(&masked));
            assert_eq!(mru_load_route(&v, 5, 1), mru_load_route(&masked, 5, 1));
            assert_eq!(
                min_reload_route(&v, 5, &pricer),
                min_reload_route(&masked, 5, &pricer)
            );
            assert_eq!(
                StealPolicy::default().steal(&v, 0),
                StealPolicy::default().steal(&masked, 0)
            );
            assert_eq!(next_live(&v, seed), seed % 4);
        }
        assert_eq!(raw_draws, masked_draws, "draw sequences must match");
        assert!(!raw_draws.is_empty());
    }

    #[test]
    fn masked_workers_are_skipped_without_extra_draws() {
        let mut v = TestView::idle(4);
        v.live = vec![true, false, true, true];
        let mut draws = Vec::new();
        let mut draw = |n: usize| {
            draws.push(n);
            n - 1
        };
        // The dead worker is excluded from the idle count: one draw
        // over the three live workers, never landing on worker 1.
        assert_eq!(random_idle(&v, &mut draw), Some(3));
        assert_eq!(draws, vec![3]);
        assert_eq!(newest_idle(&v), Some(0));
        v.depths = vec![5, 0, 2, 4];
        assert_eq!(shallowest_queue(&v), 2, "dead empty queue is skipped");
        // A dead last worker is no history: spill to shallowest live.
        v.last[7] = Some(1);
        assert_eq!(mru_load_route(&v, 7, 8), 2);
        // Wired bindings fall through to the next live worker.
        assert_eq!(next_live(&v, 1), 2);
        assert_eq!(next_live(&v, 5), 2);
        assert_eq!(next_live(&v, 0), 0);
    }

    #[test]
    fn steal_and_min_reload_respect_mask_and_scale() {
        let pricer = DispatchPricer::new(&test_model());
        let sp = StealPolicy::default();
        let mut v = TestView::idle(3);
        v.depths = vec![0, 5, 3];
        v.vclocks = vec![10, 20, 30];
        // The deepest victim is dead: the scan settles on the live one.
        v.live = vec![true, false, true];
        assert_eq!(sp.steal(&v, 0).expect("live victim").victim, 2);
        // Min-reload never picks a dead worker even when it is the warm
        // one, and a slow scale tips the argmin off a degraded core.
        let mut v = TestView::idle(2);
        v.last[3] = Some(1);
        v.live = vec![true, false];
        assert_eq!(min_reload_route(&v, 3, &pricer), 0);
        v.live = vec![true, true];
        v.scale = vec![1.0, 100.0];
        assert_eq!(min_reload_route(&v, 3, &pricer), 0, "slow core repels");
    }

    #[test]
    fn wired_routing_is_a_pure_modulus() {
        let pricer = DispatchPricer::new(&test_model());
        let policy = LockPolicy::Wired;
        let d = LockingDispatch {
            policy: &policy,
            pricer: &pricer,
        };
        let v = TestView::idle(4);
        let mut no_draw = |_: usize| -> usize { unreachable!("wired routing draws nothing") };
        for s in 0..16u32 {
            assert_eq!(d.route(&v, s, &mut no_draw), Route::Worker(s as usize % 4));
        }
        assert!(d.uses_worker_queues());
        assert!(d.select(&v, 0, &mut no_draw).is_none());
    }
}
