//! Virtual-order claim arbitration for shared-pool pops and work
//! stealing.
//!
//! The pooled (Locking) and stealing (IPS) rungs used to arbitrate
//! ownership in *host* order: workers raced a min-vclock admission gate
//! on one shared ring, or scanned live ring occupancy to pick steal
//! victims, and previous-owner accounting fell back to a racy
//! `last_stream_worker.swap` (the `PREV_RACY` sentinel). The outcomes
//! were correct but not reproducible — two runs of the same multi-worker
//! config could disagree on who executed what, and therefore on
//! `stream_migrations`, steal counts, and every purge they trigger.
//!
//! [`ClaimTable`] replaces those pop sites with *claims resolved in
//! total virtual order* on the dispatcher thread. A claim is a
//! `(start_us, seq, claimant)` triple: the model instant the job starts,
//! the arrival sequence number, and the worker that takes it. The table
//! maintains the same deterministic est-service drain model as
//! [`RouterState`](crate::router::RouterState) — per-worker virtual
//! clocks charged one estimated service per started job — and resolves
//! every pop/steal against that model, so victim selection, migration
//! accounting and previous-owner stamping become pure functions of the
//! arrival stream. The physical rings then merely *execute* the resolved
//! schedule: each job is pushed to its claimant's ring, workers pop only
//! their own ring FIFO, and no worker-side arbitration remains.
//!
//! Two modes:
//!
//! * **Pooled** ([`ClaimTable::pooled`]) — the work-conserving shared
//!   FIFO pool. Jobs start in arrival order on whichever worker is free
//!   first, so a claim resolves *immediately* at offer time: the
//!   claimant is the live worker minimizing `max(clock_w, arrival)`
//!   (lowest index on ties) — exactly the head-of-queue assignment a
//!   virtual-time FIFO multi-server performs. No future arrival can
//!   change a FIFO pool's next start, so eager resolution is causally
//!   sound.
//! * **Stealing** ([`ClaimTable::stealing`]) — per-owner queues with a
//!   bounded [`StealPolicy`] escape hatch. A steal's outcome *does*
//!   depend on what else is queued at the steal instant, so offered
//!   jobs are **staged**: the table holds them in per-owner model
//!   queues and only resolves a claim when the model reaches its start
//!   event. The model is advanced exactly to the latest offered
//!   arrival, which makes it causally closed — every model event at
//!   virtual time ≤ t is fully determined by arrivals ≤ t, so no later
//!   arrival can invalidate an emitted claim. [`ClaimTable::flush`]
//!   runs the model to completion once the workload ends.
//!
//! Within the stealing model, a worker whose model queue is empty is an
//! eligible thief; steal victims are chosen by the *same*
//! [`StealPolicy::steal`] scan the worker-side site historically ran,
//! evaluated over the model's queues and clocks instead of live rings
//! and published atomics (deepest victim at or past the threshold whose
//! clock is virtually behind the thief's; highest index wins ties).
//! Simultaneous events resolve owner-pop before steal, then lowest
//! worker index — a total order, so the resolved schedule is
//! bit-identical on every run at any physical worker count.
//!
//! Dead workers (masked via [`ClaimTable::set_live`], driven by the
//! fault *plan* exactly like router masking) neither start nor steal
//! nor get stolen from in the model; jobs already staged on a dead
//! owner are force-resolved to that owner at flush, land on its dead
//! ring (or its escrow), and are recovered by the watchdog's
//! deterministic orphan re-dispatch.

use std::collections::VecDeque;

use crate::policy::{DispatchPolicy, StealPolicy};
use crate::view::SchedView;

/// One resolved claim: worker `claimant` starts job `seq` at model
/// instant `start_us`, having stolen it from `victim`'s queue if
/// `victim` is set. Claims are emitted in total virtual *event* order
/// (event time, then event kind, then worker index); a batched steal
/// visit is one event that emits its whole batch contiguously — the
/// batch's later jobs carry later `start_us` on the thief's clock but
/// leave the victim's queue at the visit instant. Emission order is
/// queue-departure order, which is also the order the backend must
/// stamp previous-owner state in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Claim {
    /// Arrival sequence number of the claimed job.
    pub seq: u64,
    /// The worker that executes the job.
    pub claimant: usize,
    /// The owner queue the job was stolen from (`None` = the claimant
    /// popped its own queue, or the pooled mode's direct assignment).
    pub victim: Option<usize>,
    /// Model virtual instant the job starts — the claim's position in
    /// the total order.
    pub start_us: f64,
}

/// One staged job in the stealing model.
#[derive(Debug, Clone, Copy)]
struct Staged {
    seq: u64,
    arrival_us: f64,
    owner: usize,
}

#[derive(Debug, Clone)]
enum ClaimMode {
    Pooled,
    Stealing {
        policy: StealPolicy,
        /// Per-owner model queues of staged (unresolved) jobs.
        queues: Vec<VecDeque<Staged>>,
        /// Model cursor: the latest processed event or offered arrival.
        now_us: f64,
    },
}

/// The dispatcher-side claim arbiter. See the module docs for the
/// protocol; see [`Claim`] for what it emits.
#[derive(Debug, Clone)]
pub struct ClaimTable {
    mode: ClaimMode,
    /// Per-worker model clocks: the virtual instant each worker is free
    /// after the jobs already claimed to it.
    clock_us: Vec<f64>,
    /// Estimated per-job service charged to the model clocks (the same
    /// calibrated all-warm estimate `RouterState` drains at).
    est_service_us: f64,
    /// Plan-derived liveness mask (never host-observed health).
    live: Vec<bool>,
    /// Jobs offered but not yet resolved (stealing mode only).
    staged: usize,
}

impl ClaimTable {
    /// A pooled-mode table for `workers` workers charging
    /// `est_service_us` per claimed job.
    pub fn pooled(workers: usize, est_service_us: f64) -> Self {
        ClaimTable {
            mode: ClaimMode::Pooled,
            clock_us: vec![0.0; workers],
            est_service_us: est_service_us.max(1e-9),
            live: vec![true; workers],
            staged: 0,
        }
    }

    /// A stealing-mode table for `workers` workers under `policy`.
    pub fn stealing(workers: usize, est_service_us: f64, policy: StealPolicy) -> Self {
        ClaimTable {
            mode: ClaimMode::Stealing {
                policy,
                queues: vec![VecDeque::new(); workers],
                now_us: 0.0,
            },
            clock_us: vec![0.0; workers],
            est_service_us: est_service_us.max(1e-9),
            live: vec![true; workers],
            staged: 0,
        }
    }

    /// Number of workers in the model.
    pub fn n_workers(&self) -> usize {
        self.clock_us.len()
    }

    /// Mask worker `w` in (`true`) or out (`false`) of claim
    /// resolution. Driven by the fault plan at the same arrival-time
    /// instants as router masking, so the mask itself is deterministic.
    pub fn set_live(&mut self, w: usize, live: bool) {
        self.live[w] = live;
    }

    /// Jobs offered but not yet resolved (0 in pooled mode; bounded by
    /// the admission policy in serving use).
    pub fn staged(&self) -> usize {
        self.staged
    }

    /// Modeled backlog of worker `w` at virtual time `t_us`, in
    /// estimated services: claimed-but-undrained work plus staged jobs
    /// still queued on `w`. This is the admission gauge the serving
    /// path tail-drops against.
    pub fn model_depth(&self, w: usize, t_us: f64) -> usize {
        let lag = self.clock_us[w] - t_us;
        let draining = if lag <= 0.0 {
            0
        } else {
            (lag / self.est_service_us).ceil() as usize
        };
        let queued = match &self.mode {
            ClaimMode::Pooled => 0,
            ClaimMode::Stealing { queues, .. } => queues[w].len(),
        };
        draining + queued
    }

    /// Record a modeled service obligation for worker `w` that was
    /// placed *outside* the table — a NIC steering hit that bypassed
    /// the shared pool. Keeps the pooled model clocks honest so later
    /// [`ClaimTable::offer`] / [`ClaimTable::min_model_depth`] calls
    /// arbitrate over the worker's real modeled load. No-op in stealing
    /// mode, where every admitted job goes through the table.
    pub fn note_assigned(&mut self, w: usize, t_us: f64) {
        if matches!(self.mode, ClaimMode::Pooled) {
            self.clock_us[w] = self.clock_us[w].max(t_us) + self.est_service_us;
        }
    }

    /// The shallowest live worker's [`ClaimTable::model_depth`] — the
    /// pooled rung's admission gauge (the pool is work-conserving, so
    /// an arrival waits only if *every* live worker is backlogged).
    pub fn min_model_depth(&self, t_us: f64) -> usize {
        (0..self.n_workers())
            .filter(|&w| self.live[w])
            .map(|w| self.model_depth(w, t_us))
            .min()
            .unwrap_or(0)
    }

    /// Offer one job to the table. Pooled mode resolves it immediately;
    /// stealing mode stages it on `owner`'s model queue and resolves
    /// every claim whose model start the new arrival makes causally
    /// final. Resolved claims are appended to `out` in total virtual
    /// order. `owner` is the routed target (ignored by pooled mode).
    pub fn offer(&mut self, seq: u64, owner: usize, arrival_us: f64, out: &mut Vec<Claim>) {
        match &mut self.mode {
            ClaimMode::Pooled => {
                let w = self.pooled_claimant(arrival_us);
                let start = self.clock_us[w].max(arrival_us);
                self.clock_us[w] = start + self.est_service_us;
                out.push(Claim {
                    seq,
                    claimant: w,
                    victim: None,
                    start_us: start,
                });
            }
            ClaimMode::Stealing { queues, now_us, .. } => {
                // Close the model over everything strictly before this
                // arrival, insert it, then run again: the insertion may
                // enable an immediate start (or steal) at its own time.
                *now_us = now_us.max(arrival_us);
                queues[owner].push_back(Staged {
                    seq,
                    arrival_us,
                    owner,
                });
                self.staged += 1;
                self.advance(arrival_us, out);
            }
        }
    }

    /// Run the model to completion: resolve every staged job. Claims
    /// still staged on dead owners are force-resolved to those owners
    /// (their physical rings feed the watchdog's orphan recovery).
    /// Call once after the last offer.
    pub fn flush(&mut self, out: &mut Vec<Claim>) {
        if matches!(self.mode, ClaimMode::Pooled) {
            return;
        }
        self.advance(f64::INFINITY, out);
        // Anything left is queued on a dead owner: no live worker may
        // start it and the policy never steals from the dead. Resolve
        // to the owner in (worker, FIFO) order — deterministic, and
        // physically it lands on the dead ring for orphan recovery.
        let est = self.est_service_us;
        if let ClaimMode::Stealing { queues, .. } = &mut self.mode {
            for (w, queue) in queues.iter_mut().enumerate() {
                while let Some(job) = queue.pop_front() {
                    let start = self.clock_us[w].max(job.arrival_us);
                    self.clock_us[w] = start + est;
                    self.staged -= 1;
                    out.push(Claim {
                        seq: job.seq,
                        claimant: w,
                        victim: None,
                        start_us: start,
                    });
                }
            }
        }
    }

    /// Pooled claimant for an arrival at `t`: the live worker that can
    /// start it first, lowest index on exact ties. Falls back to the
    /// unmasked scan if the plan killed every worker (the jobs then
    /// ride the orphan-recovery path).
    fn pooled_claimant(&self, t: f64) -> usize {
        let best = |mask: bool| {
            (0..self.n_workers())
                .filter(|&w| !mask || self.live[w])
                .min_by(|&a, &b| {
                    let sa = self.clock_us[a].max(t);
                    let sb = self.clock_us[b].max(t);
                    sa.partial_cmp(&sb).unwrap().then(a.cmp(&b))
                })
        };
        best(true).or_else(|| best(false)).unwrap_or(0)
    }

    /// Advance the stealing model, resolving every event with virtual
    /// time ≤ `t`. One loop iteration resolves one owner-pop or one
    /// steal visit (up to `max_batch` jobs).
    fn advance(&mut self, t: f64, out: &mut Vec<Claim>) {
        let est = self.est_service_us;
        loop {
            let ClaimMode::Stealing {
                policy,
                queues,
                now_us,
            } = &mut self.mode
            else {
                return;
            };
            let n = queues.len();
            // Earliest owner-pop: a live worker starting its own queue
            // head at max(clock, head.arrival). Lowest index on ties.
            let mut own: Option<(f64, usize)> = None;
            for (w, queue) in queues.iter().enumerate() {
                if !self.live[w] {
                    continue;
                }
                if let Some(head) = queue.front() {
                    let s = self.clock_us[w].max(head.arrival_us);
                    if own.is_none_or(|(bs, _)| s < bs) {
                        own = Some((s, w));
                    }
                }
            }
            let own_time = own.map_or(f64::INFINITY, |(s, _)| s);
            // Earliest eligible steal. A live thief with an empty model
            // queue attempts at max(its clock, the cursor); eligibility
            // is the historical StealPolicy scan over the model state,
            // which is constant until the next owner-pop — so only
            // attempts strictly before `own_time` are valid here
            // (owner-pop wins exact ties).
            let mut steal: Option<(f64, usize)> = None;
            for i in 0..n {
                if !self.live[i] || !queues[i].is_empty() {
                    continue;
                }
                let a = self.clock_us[i].max(*now_us);
                if a > t || a >= own_time || steal.is_some_and(|(ba, _)| a >= ba) {
                    continue;
                }
                let view = StealModelView {
                    clock_us: &self.clock_us,
                    queues,
                    live: &self.live,
                };
                if policy.steal(&view, i).is_some() {
                    steal = Some((a, i));
                }
            }
            if let Some((a, thief)) = steal {
                *now_us = a;
                let view = StealModelView {
                    clock_us: &self.clock_us,
                    queues,
                    live: &self.live,
                };
                let d = policy
                    .steal(&view, thief)
                    .expect("eligibility re-evaluates over unchanged state");
                for _ in 0..d.max_batch.max(1) {
                    let Some(job) = queues[d.victim].pop_front() else {
                        break;
                    };
                    let start = self.clock_us[thief].max(a).max(job.arrival_us);
                    self.clock_us[thief] = start + est;
                    self.staged -= 1;
                    out.push(Claim {
                        seq: job.seq,
                        claimant: thief,
                        victim: Some(job.owner),
                        start_us: start,
                    });
                }
                continue;
            }
            match own {
                Some((s, w)) if s <= t => {
                    *now_us = s;
                    let job = queues[w].pop_front().expect("owner queue has a head");
                    self.clock_us[w] = s + est;
                    self.staged -= 1;
                    out.push(Claim {
                        seq: job.seq,
                        claimant: w,
                        victim: None,
                        start_us: s,
                    });
                }
                _ => return,
            }
        }
    }
}

/// The stealing model's [`SchedView`]: queue depths are staged-job
/// counts, clocks are the model drain clocks. Only the members
/// [`StealPolicy::steal`] consults are meaningful; the rest are inert
/// defaults.
struct StealModelView<'a> {
    clock_us: &'a [f64],
    queues: &'a [VecDeque<Staged>],
    live: &'a [bool],
}

impl SchedView for StealModelView<'_> {
    fn n_workers(&self) -> usize {
        self.clock_us.len()
    }
    fn is_idle(&self, w: usize) -> bool {
        self.queues[w].is_empty()
    }
    fn queue_depth(&self, w: usize) -> usize {
        self.queues[w].len()
    }
    fn last_worker(&self, _entity: u32) -> Option<usize> {
        None
    }
    fn vclock_bits(&self, w: usize) -> u64 {
        self.clock_us[w].to_bits()
    }
    fn is_live(&self, w: usize) -> bool {
        self.live[w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EST: f64 = 100.0;

    fn drain(table: &mut ClaimTable, offers: &[(u64, usize, f64)]) -> Vec<Claim> {
        let mut out = Vec::new();
        for &(seq, owner, t) in offers {
            table.offer(seq, owner, t, &mut out);
        }
        table.flush(&mut out);
        out
    }

    #[test]
    fn pooled_assigns_in_arrival_order_lowest_free_worker() {
        let mut t = ClaimTable::pooled(2, EST);
        let claims = drain(
            &mut t,
            &[(0, 9, 0.0), (1, 9, 0.0), (2, 9, 0.0), (3, 9, 300.0)],
        );
        // Two simultaneous arrivals split across the free workers
        // (lowest index first); the third waits on worker 0 (earliest
        // free, lowest index on the tie); the late fourth starts at its
        // own arrival on the first-free worker.
        let got: Vec<(usize, f64)> = claims.iter().map(|c| (c.claimant, c.start_us)).collect();
        assert_eq!(got, vec![(0, 0.0), (1, 0.0), (0, 100.0), (0, 300.0)]);
        assert!(claims.iter().all(|c| c.victim.is_none()));
    }

    #[test]
    fn pooled_skips_masked_workers() {
        let mut t = ClaimTable::pooled(3, EST);
        t.set_live(0, false);
        let claims = drain(&mut t, &[(0, 0, 0.0), (1, 0, 0.0), (2, 0, 0.0)]);
        assert_eq!(
            claims.iter().map(|c| c.claimant).collect::<Vec<_>>(),
            vec![1, 2, 1]
        );
    }

    #[test]
    fn stealing_without_pressure_is_fifo_per_owner() {
        let mut t = ClaimTable::stealing(2, EST, StealPolicy::default());
        // Arrivals spaced past the service estimate: owners keep up,
        // nothing is ever eligible to steal.
        let claims = drain(
            &mut t,
            &[(0, 0, 0.0), (1, 1, 50.0), (2, 0, 200.0), (3, 1, 250.0)],
        );
        assert_eq!(claims.len(), 4);
        assert!(claims.iter().all(|c| c.victim.is_none()));
        let seqs: Vec<u64> = claims.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        for c in &claims {
            assert_eq!(c.claimant, (c.seq % 2) as usize);
        }
    }

    #[test]
    fn idle_worker_steals_from_a_backlogged_owner() {
        let mut t = ClaimTable::stealing(2, EST, StealPolicy::default());
        // Every job owned by worker 0, arriving much faster than it
        // drains: worker 1 must relieve it.
        let offers: Vec<(u64, usize, f64)> = (0..8)
            .map(|i| (i as u64, 0usize, i as f64 * 10.0))
            .collect();
        let claims = drain(&mut t, &offers);
        assert_eq!(claims.len(), 8);
        let stolen: Vec<&Claim> = claims.iter().filter(|c| c.victim.is_some()).collect();
        assert!(!stolen.is_empty(), "backlog must trigger steals");
        for c in &stolen {
            assert_eq!(c.victim, Some(0));
            assert_eq!(c.claimant, 1);
        }
        // Per-stream order is preserved: claims of owner-0 jobs resolve
        // in seq order regardless of who executes them.
        let seqs: Vec<u64> = claims.iter().map(|c| c.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "FIFO queue order survives arbitration");
    }

    #[test]
    fn resolution_is_identical_however_arrivals_are_chunked() {
        // Offer-by-offer vs all-up-front must resolve the same claims:
        // the model is causally closed at every arrival.
        let offers: Vec<(u64, usize, f64)> = (0..32)
            .map(|i| (i as u64, (i % 3) as usize, (i as f64) * 23.0))
            .collect();
        let mut a = ClaimTable::stealing(3, EST, StealPolicy::default());
        let all = drain(&mut a, &offers);
        let mut b = ClaimTable::stealing(3, EST, StealPolicy::default());
        let mut out = Vec::new();
        for chunk in offers.chunks(5) {
            for &(seq, owner, t) in chunk {
                b.offer(seq, owner, t, &mut out);
            }
        }
        b.flush(&mut out);
        assert_eq!(all, out);
        assert_eq!(a.staged(), 0);
        assert_eq!(b.staged(), 0);
    }

    #[test]
    fn dead_owners_jobs_force_resolve_at_flush() {
        let mut t = ClaimTable::stealing(2, EST, StealPolicy::default());
        let mut out = Vec::new();
        t.offer(0, 0, 0.0, &mut out);
        t.set_live(0, false);
        t.offer(1, 0, 1.0, &mut out);
        t.offer(2, 0, 2.0, &mut out);
        // Worker 1's clock never falls behind worker 0's, so the vclock
        // gate blocks stealing the dead queue's jobs; flush resolves
        // them to the (dead) owner for orphan recovery.
        t.flush(&mut out);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|c| c.claimant == 0));
        assert_eq!(t.staged(), 0);
    }

    #[test]
    fn model_depth_tracks_claims_and_staging() {
        let mut t = ClaimTable::pooled(2, EST);
        let mut out = Vec::new();
        assert_eq!(t.min_model_depth(0.0), 0);
        t.offer(0, 0, 0.0, &mut out);
        t.offer(1, 0, 0.0, &mut out);
        assert_eq!(t.model_depth(0, 0.0), 1);
        assert_eq!(t.model_depth(1, 0.0), 1);
        assert_eq!(t.min_model_depth(0.0), 1);
        // The modeled backlog drains with virtual time.
        assert_eq!(t.min_model_depth(250.0), 0);
    }
}
