//! NIC-dispatch front-ends: how an arriving packet is steered to a
//! worker queue *before* any scheduler sees it.
//!
//! Real hosts do not route each packet through a scheduling policy —
//! the NIC picks a receive queue first, and that choice is itself a
//! scheduling policy with its own affinity behavior. Three front-ends
//! are implemented once here and consumed by both backends:
//!
//! * [`FrontEndKind::Rss`] — receive-side scaling: a static hash of the
//!   flow id over the live workers. Every packet of a flow lands on the
//!   same queue, so per-flow order is preserved structurally; the cost
//!   is that placement ignores both load and the core actually
//!   consuming the flow.
//! * [`FrontEndKind::FlowDirector`] — an Intel Flow-Director-style
//!   *learning* table: a bounded [`HashedLru`] maps a flow to the queue
//!   of the core that last **completed** one of its packets. A lookup
//!   miss (flow never learned, or its entry evicted) routes through the
//!   configured fallback [`Router`] instead. Because the table rebinds
//!   a flow mid-burst — packets already queued on the old core race
//!   packets steered to the new one — this front-end deliberately
//!   reproduces the packet-reordering pathology analyzed by Wu et al.
//!   ("Why Does Flow Director Cause Packet Reordering?").
//! * [`FrontEndKind::TransportFriendly`] — the "transport-friendly NIC"
//!   remedy: the *host* pins each flow to the core that consumes it at
//!   first placement, and the binding never changes while the flow
//!   lives. The steering memory is the transport's own per-connection
//!   state (a dense table owned by the host, not a bounded NIC cache),
//!   so stickiness cannot be evicted away and per-flow order is again
//!   structural.
//!
//! Front-end routing is deterministic in the same sense as every other
//! decision in this crate: a pure function of `(state, view, flow)`
//! plus caller-supplied draws (consumed only by a randomized fallback
//! router on table misses).

use afs_cache::model::pricer::DispatchPricer;

use crate::decision::Route;
use crate::lru::HashedLru;
use crate::policy::{next_live, DrawFn};
use crate::router::Router;
use crate::view::SchedView;

/// Sentinel for "flow never routed" in the dense last-route table.
const UNROUTED: u32 = u32::MAX;

/// The three NIC front-end flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEndKind {
    /// Static hash of the flow id over the live workers.
    Rss,
    /// Bounded learning table rebinding a flow to its last consuming
    /// core (reordering pathology included).
    FlowDirector,
    /// Host-pinned: first placement sticks for the flow's lifetime.
    TransportFriendly,
}

impl FrontEndKind {
    /// All kinds, in sweep order.
    pub const ALL: [FrontEndKind; 3] = [
        FrontEndKind::Rss,
        FrontEndKind::FlowDirector,
        FrontEndKind::TransportFriendly,
    ];

    /// Short stable label for CSV rows.
    pub fn label(self) -> &'static str {
        match self {
            FrontEndKind::Rss => "rss",
            FrontEndKind::FlowDirector => "fdir",
            FrontEndKind::TransportFriendly => "transport",
        }
    }
}

/// Static configuration of one front-end instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontEndConfig {
    /// Which steering discipline.
    pub kind: FrontEndKind,
    /// Capacity of the Flow-Director learning table. Sized far below
    /// the flow population in the million-stream experiments, so
    /// evictions — and the re-learning churn they cause — actually
    /// happen. Ignored by the other kinds.
    pub table_capacity: usize,
    /// Salt mixed into the RSS hash (models the random key real NICs
    /// generate at boot; fixed per run for determinism).
    pub salt: u64,
}

/// A front-end plus the fallback router its table misses route through.
///
/// The fallback is the *policy axis* of the front-end experiments: the
/// same front-end is swept against oblivious-random, load-bounded-MRU,
/// priced-min-reload and shared-pool miss paths. A
/// [`Router::SharedQueue`] fallback hands the missing flow to the
/// backend's pooled claim arbitration ([`crate::ClaimTable`]) instead
/// of naming a worker — the claimant is resolved in virtual order and
/// reported back through [`FrontEndState::note_placement`], which keeps
/// the rebind ledger (and the transport-friendly pin) exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontEndPlan {
    /// The steering discipline.
    pub config: FrontEndConfig,
    /// Router consulted when the front-end has no binding for a flow.
    pub fallback: Router,
}

impl FrontEndPlan {
    /// A plan with the default salt.
    pub fn new(kind: FrontEndKind, table_capacity: usize, fallback: Router) -> Self {
        FrontEndPlan {
            config: FrontEndConfig {
                kind,
                table_capacity,
                salt: 0x5EED_0F10,
            },
            fallback,
        }
    }

    /// Panics unless the plan is internally consistent (positive table
    /// capacity).
    pub fn validate(&self) {
        assert!(
            self.config.table_capacity >= 1,
            "front-end table capacity must be at least 1"
        );
    }
}

/// The mutable routing state of one front-end over one run.
#[derive(Debug, Clone)]
pub struct FrontEndState {
    plan: FrontEndPlan,
    /// Flow → bound queue, for [`FrontEndKind::FlowDirector`].
    table: HashedLru<u32>,
    /// Flow → last routed worker (dense; the transport-friendly
    /// steering memory and the rebind ledger for every kind).
    last_route: Vec<u32>,
    /// Routed packets whose worker differed from the flow's previous
    /// one — each is a potential reordering point.
    pub rebinds: u64,
    /// Transport-friendly first placements (its "miss" analogue).
    first_placements: u64,
}

impl FrontEndState {
    /// Fresh state for `plan`.
    pub fn new(plan: FrontEndPlan) -> Self {
        plan.validate();
        FrontEndState {
            plan,
            table: HashedLru::new(plan.config.table_capacity),
            last_route: Vec::new(),
            rebinds: 0,
            first_placements: 0,
        }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &FrontEndPlan {
        &self.plan
    }

    /// Pre-size the steering memory for flows `0..n` so steady-state
    /// routing never grows it — the serving path's allocation-free
    /// contract. Behaviour-neutral: an absent entry and a pre-sized
    /// `UNROUTED` entry read identically.
    pub fn reserve_flows(&mut self, n: u32) {
        if self.last_route.len() < n as usize {
            self.last_route.resize(n as usize, UNROUTED);
        }
    }

    /// Whether completions must be fed back via
    /// [`FrontEndState::note_complete`] (only Flow Director learns).
    pub fn wants_completion_feedback(&self) -> bool {
        self.plan.config.kind == FrontEndKind::FlowDirector
    }

    /// Steering-table misses: learning-table lookup misses for Flow
    /// Director, first placements for the transport-friendly pin, zero
    /// for RSS (it has no table).
    pub fn table_misses(&self) -> u64 {
        match self.plan.config.kind {
            FrontEndKind::Rss => 0,
            FrontEndKind::FlowDirector => self.table.stats.misses,
            FrontEndKind::TransportFriendly => self.first_placements,
        }
    }

    /// Steering-table hits (Flow Director only; the sticky pin's reuse
    /// of its binding is not a bounded-table hit).
    pub fn table_hits(&self) -> u64 {
        match self.plan.config.kind {
            FrontEndKind::FlowDirector => self.table.stats.hits,
            _ => 0,
        }
    }

    /// Learning-table evictions (Flow Director only).
    pub fn table_evictions(&self) -> u64 {
        match self.plan.config.kind {
            FrontEndKind::FlowDirector => self.table.stats.evictions,
            _ => 0,
        }
    }

    #[inline]
    fn last_routed(&self, flow: u32) -> Option<usize> {
        match self.last_route.get(flow as usize) {
            Some(&w) if w != UNROUTED => Some(w as usize),
            _ => None,
        }
    }

    /// The worker `flow`'s previous packet was routed to, if any —
    /// read *before* [`FrontEndState::route`] to attribute a rebind's
    /// `from` side in the observability trace.
    pub fn previous_route(&self, flow: u32) -> Option<usize> {
        self.last_routed(flow)
    }

    /// Record that a packet of `flow` was placed on `worker`, updating
    /// the rebind ledger and the steering memory (the transport-
    /// friendly pin and the rebind `from` side). Called internally for
    /// every worker-routed packet; callers resolving a
    /// [`Route::Shared`] steer through the pooled claim table must call
    /// it themselves once the claimant is known, so ledger and pin see
    /// the *actual* placement.
    pub fn note_placement(&mut self, flow: u32, worker: usize) {
        let s = flow as usize;
        if s >= self.last_route.len() {
            self.last_route.resize(s + 1, UNROUTED);
        }
        let prev = self.last_route[s];
        if prev != UNROUTED && prev as usize != worker {
            self.rebinds += 1;
        }
        self.last_route[s] = worker as u32;
    }

    /// Steer one packet of `flow`. `draw` is consumed only by a
    /// randomized fallback router, and only on misses. Steering hits
    /// always name a worker; a miss through a [`Router::SharedQueue`]
    /// fallback returns [`Route::Shared`] — the caller resolves the
    /// claimant (pooled claim arbitration) and reports it back via
    /// [`FrontEndState::note_placement`].
    pub fn route_flow<V: SchedView + ?Sized>(
        &mut self,
        view: &V,
        flow: u32,
        draw: DrawFn,
        pricer: &DispatchPricer,
    ) -> Route {
        let target = match self.plan.config.kind {
            FrontEndKind::Rss => {
                let n = view.n_workers();
                let h = crate::lru::splitmix64(flow as u64 ^ self.plan.config.salt);
                Route::Worker(next_live(view, (h % n as u64) as usize))
            }
            FrontEndKind::FlowDirector => match self.table.get(flow as u64) {
                Some(w) => Route::Worker(next_live(view, w as usize)),
                None => self.plan.fallback.route(view, flow, draw, pricer),
            },
            FrontEndKind::TransportFriendly => match self.last_routed(flow) {
                Some(w) => Route::Worker(next_live(view, w)),
                None => {
                    self.first_placements += 1;
                    self.plan.fallback.route(view, flow, draw, pricer)
                }
            },
        };
        if let Route::Worker(w) = target {
            self.note_placement(flow, w);
        }
        target
    }

    /// Steer one packet of `flow` to a worker queue — the worker-only
    /// wrapper over [`FrontEndState::route_flow`] for plans whose
    /// fallback never routes to the shared pool.
    pub fn route<V: SchedView + ?Sized>(
        &mut self,
        view: &V,
        flow: u32,
        draw: DrawFn,
        pricer: &DispatchPricer,
    ) -> usize {
        match self.route_flow(view, flow, draw, pricer) {
            Route::Worker(w) => w,
            Route::Shared => unreachable!(
                "worker-routing fallback never reaches the shared pool; \
                 pooled plans must call route_flow"
            ),
        }
    }

    /// Feed one completion back: `worker` finished a packet of `flow`.
    /// Flow Director (re)learns the binding from it — the "last core
    /// that transmitted" signal driving its mid-burst migrations. The
    /// other kinds ignore completions.
    pub fn note_complete(&mut self, flow: u32, worker: u32) {
        if self.plan.config.kind == FrontEndKind::FlowDirector {
            self.table.insert(flow as u64, worker);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::tests::{test_model, TestView};

    fn pricer() -> DispatchPricer {
        DispatchPricer::new(&test_model())
    }

    fn view(n: usize) -> TestView {
        TestView::idle(n)
    }

    fn no_draw(_: usize) -> usize {
        unreachable!("this path draws no randomness")
    }

    #[test]
    fn rss_is_static_and_never_rebinds() {
        let p = pricer();
        let v = view(4);
        let mut fe = FrontEndState::new(FrontEndPlan::new(
            FrontEndKind::Rss,
            8,
            Router::MruLoad { max_backlog: 1 },
        ));
        let mut first = Vec::new();
        for flow in 0..32u32 {
            first.push(fe.route(&v, flow, &mut no_draw, &p));
        }
        for flow in 0..32u32 {
            assert_eq!(fe.route(&v, flow, &mut no_draw, &p), first[flow as usize]);
        }
        assert_eq!(fe.rebinds, 0);
        assert_eq!(fe.table_misses(), 0);
        // The hash actually spreads flows over queues.
        let mut used = [false; 4];
        for &w in &first {
            used[w] = true;
        }
        assert!(used.iter().filter(|&&u| u).count() >= 2);
    }

    #[test]
    fn flow_director_learns_from_completions_and_rebinds() {
        let p = pricer();
        let v = view(4);
        let mut fe = FrontEndState::new(FrontEndPlan::new(
            FrontEndKind::FlowDirector,
            8,
            Router::StreamOwner,
        ));
        assert!(fe.wants_completion_feedback());
        // Miss path: StreamOwner sends flow 1 to worker 1.
        assert_eq!(fe.route(&v, 1, &mut no_draw, &p), 1);
        assert_eq!(fe.table_misses(), 1);
        // Worker 3 completes a packet of flow 1 → table rebinds it.
        fe.note_complete(1, 3);
        assert_eq!(fe.route(&v, 1, &mut no_draw, &p), 3);
        assert_eq!(fe.table_hits(), 1);
        assert_eq!(fe.rebinds, 1);
    }

    #[test]
    fn flow_director_eviction_reopens_the_miss_path() {
        let p = pricer();
        let v = view(2);
        let mut fe = FrontEndState::new(FrontEndPlan::new(
            FrontEndKind::FlowDirector,
            1,
            Router::StreamOwner,
        ));
        fe.note_complete(0, 1);
        fe.note_complete(1, 1); // capacity 1: evicts flow 0's binding
        assert_eq!(fe.table_evictions(), 1);
        // Flow 0 misses again and falls back to its static owner.
        assert_eq!(fe.route(&v, 0, &mut no_draw, &p), 0);
        assert_eq!(fe.table_misses(), 1);
    }

    #[test]
    fn transport_friendly_pins_first_placement_forever() {
        let p = pricer();
        let v = view(4);
        let mut fe = FrontEndState::new(FrontEndPlan::new(
            FrontEndKind::TransportFriendly,
            1, // bounded table irrelevant: the pin is host-side
            Router::StreamOwner,
        ));
        assert!(!fe.wants_completion_feedback());
        let w = fe.route(&v, 7, &mut no_draw, &p);
        assert_eq!(fe.table_misses(), 1);
        // Completions elsewhere do not move the pin.
        fe.note_complete(7, ((w + 1) % 4) as u32);
        for _ in 0..10 {
            assert_eq!(fe.route(&v, 7, &mut no_draw, &p), w);
        }
        assert_eq!(fe.rebinds, 0);
        assert_eq!(fe.table_misses(), 1);
    }

    #[test]
    fn dead_workers_are_masked_out() {
        let p = pricer();
        let mut v = view(4);
        let mut fe =
            FrontEndState::new(FrontEndPlan::new(FrontEndKind::Rss, 8, Router::StreamOwner));
        let w = fe.route(&v, 5, &mut no_draw, &p);
        v.live[w] = false;
        let w2 = fe.route(&v, 5, &mut no_draw, &p);
        assert_ne!(w, w2);
        assert!(v.live[w2]);
        assert_eq!(fe.rebinds, 1);
    }

    #[test]
    fn shared_queue_fallback_defers_to_claim_resolution() {
        let p = pricer();
        let v = view(4);
        let mut fe = FrontEndState::new(FrontEndPlan::new(
            FrontEndKind::FlowDirector,
            8,
            Router::SharedQueue,
        ));
        // Miss: the pooled fallback names no worker — the caller's
        // claim table decides.
        assert_eq!(fe.route_flow(&v, 1, &mut no_draw, &p), Route::Shared);
        assert_eq!(fe.table_misses(), 1);
        assert_eq!(fe.rebinds, 0);
        // The caller resolves the claim on worker 2 and reports it.
        fe.note_placement(1, 2);
        assert_eq!(fe.previous_route(1), Some(2));
        // A learned binding steers around the pool; moving placements
        // still land in the rebind ledger.
        fe.note_complete(1, 3);
        assert_eq!(fe.route_flow(&v, 1, &mut no_draw, &p), Route::Worker(3));
        assert_eq!(fe.rebinds, 1);
    }
}
