//! Parallelization paradigms and their scheduling policies — the shared
//! vocabulary both backends configure themselves with.

/// How protocol processing is parallelized (the paper's two alternatives).
#[derive(Debug, Clone, PartialEq)]
pub enum Paradigm {
    /// One shared protocol stack; fine-grained locks let any processor
    /// process any packet concurrently (packet-level parallelism). Each
    /// packet pays the lock overhead; stream state migrates between
    /// caches as packets of one stream visit different processors.
    Locking {
        /// Scheduling policy.
        policy: LockPolicy,
    },
    /// Independent Protocol Stacks: each stream is bound to one of
    /// `n_stacks` private stack instances with no locking. A stack
    /// processes one packet at a time (its state is single-threaded), so
    /// a stream's throughput is capped by one processor — the paper's
    /// "limited intra-stream scalability".
    Ips {
        /// Scheduling policy.
        policy: IpsPolicy,
        /// Number of independent stacks (streams are assigned
        /// round-robin). The paper's extension iii varies this; the
        /// default is one stack per stream.
        n_stacks: usize,
    },
}

impl Paradigm {
    /// True for the Locking paradigm.
    pub fn is_locking(&self) -> bool {
        matches!(self, Paradigm::Locking { .. })
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Paradigm::Locking { policy } => format!("Locking/{}", policy.label()),
            Paradigm::Ips { policy, n_stacks } => {
                format!("IPS({n_stacks})/{}", policy.label())
            }
        }
    }
}

/// Scheduling policies under Locking, ordered by increasing affinity
/// awareness — the paper evaluates the marginal contribution of each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockPolicy {
    /// Affinity-oblivious baseline: packets go to the idle processor
    /// that has been away from protocol work the longest (a fair
    /// round-robin, the worst case for cache state), threads from a
    /// shared FIFO pool (thread stacks migrate freely).
    Baseline,
    /// Per-processor thread pools (footnote 7): each processor always
    /// runs its own protocol thread, keeping thread state local;
    /// processor choice still affinity-oblivious.
    Pools,
    /// MRU processor scheduling + per-processor pools: a packet prefers
    /// the processor that most recently processed its *stream*; if that
    /// processor is busy it overflows to the most-recently-protocol-
    /// active idle processor (work-conserving, but migrates streams
    /// under load).
    Mru,
    /// Wired-Streams: stream `s` is statically bound to processor
    /// `s mod N`; packets wait for their processor even when others are
    /// idle (not work-conserving, never migrates).
    Wired,
    /// The hybrid of TR-94-075: streams flagged in the mask are wired,
    /// all others are MRU-scheduled. (Wire the hot streams, let the
    /// long tail load-balance.)
    Hybrid {
        /// `wired[s]` = stream `s` is wired to processor `s mod N`.
        wired: Vec<bool>,
    },
    /// MRU with a load threshold (load-aware affinity scheduling, after
    /// Durbhakula): a packet is routed to the processor that last served
    /// its stream *unless* that processor's backlog exceeds
    /// `max_backlog`, in which case it falls back to the shallowest
    /// queue (lowest index on ties). Routing happens at enqueue time —
    /// like Wired, each processor serves its own queue — so affinity
    /// holds at low load and degrades gracefully into load balancing
    /// under bursts instead of head-of-line blocking.
    MruLoad {
        /// Maximum backlog (queued packets) the affine processor may
        /// carry before the packet overflows to the shallowest queue.
        max_backlog: usize,
    },
    /// Minimum-expected-reload scheduling: a packet is routed to the
    /// processor minimizing the `DispatchPricer` reload estimate for its
    /// stream's component ages *plus* one warm service time per queued
    /// packet of backlog. The backlog term is what keeps the argmin from
    /// collapsing onto the first-touched processor: affinity wins while
    /// queues are short, load balance wins once waiting would cost more
    /// than reloading. Enqueue-routed, per-processor queues, like
    /// [`LockPolicy::MruLoad`].
    MinReload,
}

impl LockPolicy {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            LockPolicy::Baseline => "baseline",
            LockPolicy::Pools => "pools",
            LockPolicy::Mru => "mru",
            LockPolicy::Wired => "wired",
            LockPolicy::Hybrid { .. } => "hybrid",
            LockPolicy::MruLoad { .. } => "mru-load",
            LockPolicy::MinReload => "min-reload",
        }
    }
}

/// Scheduling policies under IPS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpsPolicy {
    /// Affinity-oblivious baseline: a runnable stack is placed on a
    /// uniformly random idle processor (Figure 11's reference curve).
    Random,
    /// A runnable stack prefers the processor it last ran on; if busy it
    /// overflows to the most-recently-protocol-active idle processor.
    Mru,
    /// Stack `w` is wired to processor `w mod N` and waits for it.
    Wired,
}

impl IpsPolicy {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            IpsPolicy::Random => "random",
            IpsPolicy::Mru => "mru",
            IpsPolicy::Wired => "wired",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(
            Paradigm::Locking {
                policy: LockPolicy::MruLoad { max_backlog: 3 }
            }
            .label(),
            "Locking/mru-load"
        );
        assert_eq!(
            Paradigm::Locking {
                policy: LockPolicy::MinReload
            }
            .label(),
            "Locking/min-reload"
        );
        assert_eq!(
            Paradigm::Ips {
                policy: IpsPolicy::Wired,
                n_stacks: 16
            }
            .label(),
            "IPS(16)/wired"
        );
    }
}
