//! Property-based tests for the traffic models: gap validity, exact-rate
//! accounting, and rescaling invariants over randomized parameters.

use proptest::prelude::*;

use afs_desim::rng::RngFactory;
use afs_workload::{ArrivalGen, Population};

fn gen_strategy() -> impl Strategy<Value = ArrivalGen> {
    prop_oneof![
        (1.0f64..20_000.0).prop_map(ArrivalGen::poisson),
        (1.0f64..20_000.0, 1.0f64..32.0).prop_map(|(r, b)| ArrivalGen::bursty(r, b)),
        (1.0f64..2_000.0, 1.0f64..20.0, 0.0f64..200.0).prop_filter_map(
            "train rate reachable",
            |(r, cars, gap)| {
                // inter_train must stay positive.
                if cars * 1e6 / r > (cars - 1.0) * gap {
                    Some(ArrivalGen::train(r, cars, gap))
                } else {
                    None
                }
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gaps_are_finite_and_nonnegative(mut gen in gen_strategy(), seed in any::<u64>()) {
        let mut rng = RngFactory::new(seed).stream("wl");
        for _ in 0..500 {
            let g = gen.next_gap(&mut rng);
            prop_assert!(g.as_micros_f64().is_finite());
        }
    }

    #[test]
    fn measured_rate_tracks_analytic(mut gen in gen_strategy(), seed in any::<u64>()) {
        let analytic = gen.rate_per_sec();
        prop_assert!(analytic.is_finite() && analytic > 0.0);
        let mut rng = RngFactory::new(seed).stream("wl");
        let n = 60_000u64;
        let mut total_us = 0.0;
        for _ in 0..n {
            total_us += gen.next_gap(&mut rng).as_micros_f64();
        }
        let measured = n as f64 / (total_us / 1e6);
        // Worst case: 32-packet batches -> ~1.9k exponential gaps in the
        // sample; 6 sigma of the total-time estimator is ~14%.
        prop_assert!(
            (measured - analytic).abs() < 0.15 * analytic,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn with_rate_rescales_exactly(
        k in 1usize..32,
        r0 in 10.0f64..5_000.0,
        r1 in 10.0f64..5_000.0,
        batch in 1.0f64..16.0,
    ) {
        let p = Population::homogeneous_bursty(k, r0, batch).with_rate(r1);
        let expect = r1 * k as f64;
        prop_assert!((p.total_rate_per_sec() - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn offered_rho_linear(
        k in 1usize..32,
        rate in 10.0f64..5_000.0,
        svc in 10.0f64..500.0,
        n in 1usize..16,
    ) {
        let p = Population::homogeneous_poisson(k, rate);
        let rho = p.offered_rho(n, svc);
        let expect = rate * k as f64 * svc / 1e6 / n as f64;
        prop_assert!((rho - expect).abs() < 1e-9 * (1.0 + expect));
        // Linearity in service time.
        prop_assert!((p.offered_rho(n, svc * 2.0) - 2.0 * rho).abs() < 1e-9 * (1.0 + rho));
    }

    #[test]
    fn generators_deterministic_per_seed(gen in gen_strategy(), seed in any::<u64>()) {
        let mut a = gen.clone();
        let mut b = gen;
        let mut ra = RngFactory::new(seed).stream("d");
        let mut rb = RngFactory::new(seed).stream("d");
        for _ in 0..200 {
            prop_assert_eq!(a.next_gap(&mut ra), b.next_gap(&mut rb));
        }
    }
}
