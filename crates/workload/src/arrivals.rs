//! Per-stream packet arrival processes.
//!
//! Three generator families cover the paper's traffic assumptions and its
//! extension experiments:
//!
//! * [`ArrivalGen::Poisson`] — the baseline used for the delay-vs-rate
//!   figures.
//! * [`ArrivalGen::Batch`] — compound-Poisson batch arrivals: batches of
//!   geometric size arrive at exponential gaps. The batch-size mean is
//!   the *intra-stream burstiness* knob behind the robustness results
//!   (IPS serializes a burst on one stack; Locking fans it out).
//! * [`ArrivalGen::Train`] — the Jain–Routhier Packet-Train model cited
//!   by the paper's future-work list (extension E13): trains of packets
//!   separated by inter-car gaps, trains separated by inter-train gaps.
//!
//! All generators expose one contract: [`ArrivalGen::next_gap`] returns
//! the time from the previous arrival to the next one (zero gaps encode
//! simultaneous batch members). Mean rates are exact, not sampled.

use rand::rngs::StdRng;

use afs_desim::dist::{CountDist, Dist};
use afs_desim::time::SimDuration;

/// A per-stream arrival-time generator.
#[derive(Debug, Clone)]
pub enum ArrivalGen {
    /// Poisson arrivals: i.i.d. exponential gaps.
    Poisson {
        /// Mean gap between packets (µs).
        mean_gap_us: f64,
    },
    /// Batch (compound Poisson) arrivals.
    Batch {
        /// Mean gap between batches (µs).
        mean_batch_gap_us: f64,
        /// Batch-size distribution (≥ 1).
        batch: CountDist,
        /// Packets remaining in the current batch (state).
        remaining: u64,
    },
    /// Replay a recorded interarrival-gap trace cyclically — for
    /// reproducing measured traffic (the reproducibility counterpart of
    /// the paper's trace-driven methodology).
    Replay {
        /// Recorded gaps in µs (finite, non-negative, non-empty).
        gaps: std::sync::Arc<Vec<f64>>,
        /// Cursor into the trace (state).
        cursor: usize,
    },
    /// Jain–Routhier packet trains.
    Train {
        /// Gap between the last car of a train and the first of the next.
        inter_train: Dist,
        /// Gap between cars within a train.
        inter_car: Dist,
        /// Cars per train (≥ 1).
        cars: CountDist,
        /// Cars remaining in the current train (state).
        remaining: u64,
    },
}

impl ArrivalGen {
    /// Poisson arrivals at `rate` packets/second.
    pub fn poisson(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        ArrivalGen::Poisson {
            mean_gap_us: 1e6 / rate_per_sec,
        }
    }

    /// Batch arrivals with geometric batches of mean `batch_mean`,
    /// tuned so the long-run packet rate equals `rate_per_sec`.
    pub fn bursty(rate_per_sec: f64, batch_mean: f64) -> Self {
        assert!(rate_per_sec > 0.0 && batch_mean >= 1.0);
        // Packet rate = batch_mean / batch_gap ⇒ gap = batch_mean / rate.
        ArrivalGen::Batch {
            mean_batch_gap_us: batch_mean * 1e6 / rate_per_sec,
            batch: CountDist::geometric_with_mean(batch_mean),
            remaining: 0,
        }
    }

    /// Packet trains with `cars_mean` cars at `inter_car_us` spacing,
    /// tuned so the long-run packet rate equals `rate_per_sec`.
    pub fn train(rate_per_sec: f64, cars_mean: f64, inter_car_us: f64) -> Self {
        assert!(rate_per_sec > 0.0 && cars_mean >= 1.0 && inter_car_us >= 0.0);
        // Cycle = inter_train + (cars−1)·inter_car, packets = cars.
        // rate = cars / cycle ⇒ inter_train = cars/rate − (cars−1)·inter_car.
        let cycle_us = cars_mean * 1e6 / rate_per_sec;
        let inter_train_us = cycle_us - (cars_mean - 1.0) * inter_car_us;
        assert!(
            inter_train_us > 0.0,
            "rate {rate_per_sec}/s unreachable with these train parameters"
        );
        ArrivalGen::Train {
            inter_train: Dist::exponential(inter_train_us),
            inter_car: if inter_car_us == 0.0 {
                Dist::constant(0.0)
            } else {
                Dist::exponential(inter_car_us)
            },
            cars: CountDist::geometric_with_mean(cars_mean),
            remaining: 0,
        }
    }

    /// Replay a recorded gap trace (µs), cycling when exhausted.
    pub fn replay(gaps: Vec<f64>) -> Self {
        assert!(!gaps.is_empty(), "replay trace must be non-empty");
        assert!(
            gaps.iter().all(|g| g.is_finite() && *g >= 0.0),
            "replay gaps must be finite and non-negative"
        );
        assert!(
            gaps.iter().sum::<f64>() > 0.0,
            "replay trace must span positive time"
        );
        ArrivalGen::Replay {
            gaps: std::sync::Arc::new(gaps),
            cursor: 0,
        }
    }

    /// Long-run mean packet rate (packets/second), exact.
    pub fn rate_per_sec(&self) -> f64 {
        match self {
            ArrivalGen::Poisson { mean_gap_us } => 1e6 / mean_gap_us,
            ArrivalGen::Replay { gaps, .. } => gaps.len() as f64 * 1e6 / gaps.iter().sum::<f64>(),
            ArrivalGen::Batch {
                mean_batch_gap_us,
                batch,
                ..
            } => batch.mean() * 1e6 / mean_batch_gap_us,
            ArrivalGen::Train {
                inter_train,
                inter_car,
                cars,
                ..
            } => {
                let cycle = inter_train.mean() + (cars.mean() - 1.0) * inter_car.mean();
                cars.mean() * 1e6 / cycle
            }
        }
    }

    /// Gap from the previous arrival to the next (zero inside a batch).
    pub fn next_gap(&mut self, rng: &mut StdRng) -> SimDuration {
        match self {
            ArrivalGen::Poisson { mean_gap_us } => {
                Dist::exponential(*mean_gap_us).sample_duration_us(rng)
            }
            ArrivalGen::Replay { gaps, cursor } => {
                let g = gaps[*cursor];
                *cursor = (*cursor + 1) % gaps.len();
                SimDuration::from_micros_f64(g)
            }
            ArrivalGen::Batch {
                mean_batch_gap_us,
                batch,
                remaining,
            } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    SimDuration::ZERO
                } else {
                    *remaining = batch.sample(rng) - 1;
                    Dist::exponential(*mean_batch_gap_us).sample_duration_us(rng)
                }
            }
            ArrivalGen::Train {
                inter_train,
                inter_car,
                cars,
                remaining,
            } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    inter_car.sample_duration_us(rng)
                } else {
                    *remaining = cars.sample(rng) - 1;
                    inter_train.sample_duration_us(rng)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_desim::rng::RngFactory;

    fn measured_rate(gen: &mut ArrivalGen, n: usize, seed: u64) -> f64 {
        let mut rng = RngFactory::new(seed).stream("arrivals");
        let mut total_us = 0.0;
        for _ in 0..n {
            total_us += gen.next_gap(&mut rng).as_micros_f64();
        }
        n as f64 / (total_us / 1e6)
    }

    #[test]
    fn poisson_rate_matches() {
        let mut g = ArrivalGen::poisson(500.0);
        assert!((g.rate_per_sec() - 500.0).abs() < 1e-9);
        let r = measured_rate(&mut g, 100_000, 1);
        assert!((r - 500.0).abs() / 500.0 < 0.02, "measured {r}/s");
    }

    #[test]
    fn bursty_rate_matches_and_is_bursty() {
        let mut g = ArrivalGen::bursty(500.0, 8.0);
        assert!((g.rate_per_sec() - 500.0).abs() < 1e-9);
        let r = measured_rate(&mut g, 200_000, 2);
        assert!((r - 500.0).abs() / 500.0 < 0.03, "measured {r}/s");
        // A healthy fraction of gaps are zero (inside batches).
        let mut rng = RngFactory::new(3).stream("z");
        let mut zeros = 0;
        let mut g = ArrivalGen::bursty(500.0, 8.0);
        for _ in 0..10_000 {
            if g.next_gap(&mut rng).is_zero() {
                zeros += 1;
            }
        }
        // Mean batch 8 → 7/8 of arrivals are batch-followers.
        assert!((zeros as f64 / 10_000.0 - 0.875).abs() < 0.03);
    }

    #[test]
    fn batch_mean_one_degenerates_to_poisson_rate() {
        let mut g = ArrivalGen::bursty(300.0, 1.0);
        let r = measured_rate(&mut g, 100_000, 4);
        assert!((r - 300.0).abs() / 300.0 < 0.03, "measured {r}/s");
    }

    #[test]
    fn train_rate_matches() {
        let mut g = ArrivalGen::train(800.0, 10.0, 100.0);
        assert!((g.rate_per_sec() - 800.0).abs() < 1e-6);
        let r = measured_rate(&mut g, 200_000, 5);
        assert!((r - 800.0).abs() / 800.0 < 0.03, "measured {r}/s");
    }

    #[test]
    fn train_cars_cluster() {
        // With tight cars and long inter-train gaps, gap distribution is
        // strongly bimodal: most gaps near inter_car, a few large.
        let mut g = ArrivalGen::train(100.0, 10.0, 50.0);
        let mut rng = RngFactory::new(6).stream("t");
        let mut small = 0;
        let n = 10_000;
        for _ in 0..n {
            if g.next_gap(&mut rng).as_micros_f64() < 500.0 {
                small += 1;
            }
        }
        assert!(
            small as f64 / n as f64 > 0.8,
            "expected ≥80% intra-train gaps, got {}",
            small as f64 / n as f64
        );
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn impossible_train_rate_rejected() {
        // 10 cars at 200 µs spacing cannot average 10 000 pkts/s.
        ArrivalGen::train(10_000.0, 10.0, 200.0);
    }

    #[test]
    fn replay_cycles_exactly() {
        let mut g = ArrivalGen::replay(vec![10.0, 20.0, 30.0]);
        assert!((g.rate_per_sec() - 3e6 / 60.0).abs() < 1e-9);
        let mut rng = RngFactory::new(1).stream("r");
        let gaps: Vec<f64> = (0..7)
            .map(|_| g.next_gap(&mut rng).as_micros_f64())
            .collect();
        assert_eq!(gaps, vec![10.0, 20.0, 30.0, 10.0, 20.0, 30.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn replay_rejects_empty() {
        ArrivalGen::replay(vec![]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ArrivalGen::bursty(100.0, 4.0);
        let mut b = ArrivalGen::bursty(100.0, 4.0);
        let mut ra = RngFactory::new(9).stream("x");
        let mut rb = RngFactory::new(9).stream("x");
        for _ in 0..100 {
            assert_eq!(a.next_gap(&mut ra), b.next_gap(&mut rb));
        }
    }
}
