#![warn(missing_docs)]

//! # afs-workload — offered traffic models
//!
//! Arrival processes and stream populations for the scheduling
//! simulator:
//!
//! * [`arrivals`] — Poisson, compound-Poisson batch (intra-stream
//!   burstiness) and Jain–Routhier packet-train generators, all with
//!   exact mean-rate accounting.
//! * [`population`] — stream sets (homogeneous, hot/cold mixes) and
//!   packet-size distributions (tiny, FDDI-max, bimodal), with offered-ρ
//!   helpers.

pub mod arrivals;
pub mod population;

pub use arrivals::ArrivalGen;
pub use population::{zipf_weights, Population, SizeDist, StreamSpec};
