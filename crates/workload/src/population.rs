//! Stream populations: the set of concurrent connections offered to the
//! host, with per-stream arrival processes and packet sizes.
//!
//! The paper's figures sweep the per-stream arrival rate for a fixed
//! population of homogeneous streams (K = N and K > N cases); the
//! capacity results ask how many concurrent streams the host can carry.
//! [`Population`] builds these configurations and computes exact offered
//! loads.

use afs_desim::dist::Dist;

use crate::arrivals::ArrivalGen;

/// Packet-size (payload bytes) distributions.
///
/// Most packets in real environments are small (the paper, citing
/// Gusella and Kay–Pasquale, uses this to justify the fixed-overhead
/// focus); the FDDI maximum is 4432 bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeDist(pub Dist);

impl SizeDist {
    /// 1-byte packets: isolates fixed per-packet costs (the paper's
    /// calibration configuration).
    pub fn tiny() -> Self {
        SizeDist(Dist::constant(1.0))
    }

    /// Full-MTU FDDI packets (4432 bytes) — the paper's worst case for
    /// data-touching overhead.
    pub fn fddi_max() -> Self {
        SizeDist(Dist::constant(4432.0))
    }

    /// A bimodal mix: fraction `p_small` of `small`-byte packets, rest
    /// full-MTU. Approximates measured LAN mixes.
    pub fn bimodal(p_small: f64, small: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_small));
        SizeDist(Dist::TwoPoint {
            value_a: small,
            p_a: p_small,
            value_b: 4432.0,
        })
    }

    /// Mean payload bytes.
    pub fn mean_bytes(&self) -> f64 {
        self.0.mean()
    }
}

/// Normalized Zipf popularity weights for ranks `1..=k`: weight of
/// rank `r` is `r^-alpha / H_k(alpha)`, so the vector sums to 1.
///
/// This is the locality model of Jain's destination-address study (and
/// of most flow-popularity measurements since): a few head streams
/// carry most of the traffic while a long tail of cold streams keeps
/// the population — and any bounded state table — under pressure.
/// `alpha = 0` degenerates to a uniform population. Both backends draw
/// their Zipf traffic from this one function, so the sim's per-stream
/// rates and the native generator's per-packet stream draw follow the
/// same law.
pub fn zipf_weights(k: usize, alpha: f64) -> Vec<f64> {
    assert!(k >= 1, "zipf population must be non-empty");
    assert!(
        alpha.is_finite() && alpha >= 0.0,
        "zipf exponent must be finite and non-negative"
    );
    let mut w: Vec<f64> = (1..=k).map(|r| (r as f64).powf(-alpha)).collect();
    let h: f64 = w.iter().sum();
    for x in &mut w {
        *x /= h;
    }
    w
}

/// One stream's offered traffic.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Arrival process.
    pub arrivals: ArrivalGen,
    /// Payload-size distribution.
    pub sizes: SizeDist,
}

/// A complete offered workload: one spec per stream.
#[derive(Debug, Clone, Default)]
pub struct Population {
    /// Per-stream specifications, indexed by stream id.
    pub streams: Vec<StreamSpec>,
}

impl Population {
    /// `k` identical Poisson streams of `rate_per_sec` each, tiny packets.
    pub fn homogeneous_poisson(k: usize, rate_per_sec: f64) -> Self {
        Population {
            streams: (0..k)
                .map(|_| StreamSpec {
                    arrivals: ArrivalGen::poisson(rate_per_sec),
                    sizes: SizeDist::tiny(),
                })
                .collect(),
        }
    }

    /// `k` identical bursty streams (geometric batches of mean
    /// `batch_mean`) of `rate_per_sec` each.
    pub fn homogeneous_bursty(k: usize, rate_per_sec: f64, batch_mean: f64) -> Self {
        Population {
            streams: (0..k)
                .map(|_| StreamSpec {
                    arrivals: ArrivalGen::bursty(rate_per_sec, batch_mean),
                    sizes: SizeDist::tiny(),
                })
                .collect(),
        }
    }

    /// `k` Poisson streams with Zipf(`alpha`)-distributed popularity:
    /// stream `s` (rank `s + 1`) offers `aggregate_rate_pps ×`
    /// [`zipf_weights`]`[s]` packets/second, so the population's total
    /// rate is exactly `aggregate_rate_pps` at any `k`. Tiny packets.
    pub fn zipf(k: usize, aggregate_rate_pps: f64, alpha: f64) -> Self {
        assert!(aggregate_rate_pps > 0.0, "aggregate rate must be positive");
        Population {
            streams: zipf_weights(k, alpha)
                .into_iter()
                .map(|w| StreamSpec {
                    arrivals: ArrivalGen::poisson(aggregate_rate_pps * w),
                    sizes: SizeDist::tiny(),
                })
                .collect(),
        }
    }

    /// [`Population::zipf`] with bursty (compound-Poisson) arrivals:
    /// each stream's packets come in geometric batches of mean
    /// `batch_mean`. The burstiness is what turns Flow Director's
    /// mid-burst rebinds into observable reordering — a rebind between
    /// two widely spaced packets reorders nothing.
    pub fn zipf_bursty(k: usize, aggregate_rate_pps: f64, alpha: f64, batch_mean: f64) -> Self {
        assert!(aggregate_rate_pps > 0.0, "aggregate rate must be positive");
        Population {
            streams: zipf_weights(k, alpha)
                .into_iter()
                .map(|w| StreamSpec {
                    arrivals: ArrivalGen::bursty(aggregate_rate_pps * w, batch_mean),
                    sizes: SizeDist::tiny(),
                })
                .collect(),
        }
    }

    /// A hot/cold mix: `hot` streams at `hot_rate`, `cold` streams at
    /// `cold_rate` (Poisson, tiny packets). Exercises the hybrid policy:
    /// wire the hot streams, MRU the rest.
    pub fn hot_cold(hot: usize, hot_rate: f64, cold: usize, cold_rate: f64) -> Self {
        let mut streams = Vec::with_capacity(hot + cold);
        for _ in 0..hot {
            streams.push(StreamSpec {
                arrivals: ArrivalGen::poisson(hot_rate),
                sizes: SizeDist::tiny(),
            });
        }
        for _ in 0..cold {
            streams.push(StreamSpec {
                arrivals: ArrivalGen::poisson(cold_rate),
                sizes: SizeDist::tiny(),
            });
        }
        Population { streams }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when no streams are configured.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Aggregate offered packet rate (packets/second), exact.
    pub fn total_rate_per_sec(&self) -> f64 {
        self.streams.iter().map(|s| s.arrivals.rate_per_sec()).sum()
    }

    /// Offered utilization against `n_procs` servers of mean service time
    /// `service_us` — the `ρ` that must stay below 1 for stability.
    pub fn offered_rho(&self, n_procs: usize, service_us: f64) -> f64 {
        self.total_rate_per_sec() * service_us / 1e6 / n_procs as f64
    }

    /// Replace every stream's rate, keeping processes/sizes (for sweeps).
    pub fn with_rate(mut self, rate_per_sec: f64) -> Self {
        for s in &mut self.streams {
            s.arrivals = match &s.arrivals {
                ArrivalGen::Poisson { .. } => ArrivalGen::poisson(rate_per_sec),
                ArrivalGen::Replay { gaps, .. } => {
                    // Rescale every recorded gap so the trace's mean rate
                    // becomes `rate_per_sec`, preserving its shape.
                    let old_rate = gaps.len() as f64 * 1e6 / gaps.iter().sum::<f64>();
                    let k = old_rate / rate_per_sec;
                    ArrivalGen::replay(gaps.iter().map(|g| g * k).collect())
                }
                ArrivalGen::Batch { batch, .. } => ArrivalGen::bursty(rate_per_sec, batch.mean()),
                ArrivalGen::Train {
                    inter_car, cars, ..
                } => ArrivalGen::train(rate_per_sec, cars.mean(), inter_car.mean()),
            };
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_population_rates() {
        let p = Population::homogeneous_poisson(16, 250.0);
        assert_eq!(p.len(), 16);
        assert!((p.total_rate_per_sec() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn offered_rho() {
        // 4000 pkts/s × 200 µs over 8 processors = 0.1 utilization.
        let p = Population::homogeneous_poisson(16, 250.0);
        assert!((p.offered_rho(8, 200.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn hot_cold_split() {
        let p = Population::hot_cold(2, 2000.0, 6, 100.0);
        assert_eq!(p.len(), 8);
        assert!((p.total_rate_per_sec() - 4600.0).abs() < 1e-9);
    }

    #[test]
    fn with_rate_rescales_preserving_shape() {
        let p = Population::homogeneous_bursty(4, 100.0, 8.0).with_rate(400.0);
        assert!((p.total_rate_per_sec() - 1600.0).abs() < 1e-9);
        match &p.streams[0].arrivals {
            ArrivalGen::Batch { batch, .. } => assert!((batch.mean() - 8.0).abs() < 1e-12),
            other => panic!("expected batch arrivals, got {other:?}"),
        }
    }

    #[test]
    fn zipf_weights_are_normalized_and_monotone() {
        let w = zipf_weights(1000, 1.1);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] >= p[1]), "must decay with rank");
        // Analytic spot check: w[0]/w[1] = 2^alpha.
        assert!((w[0] / w[1] - 2f64.powf(1.1)).abs() < 1e-9);
        // alpha = 0 is uniform.
        let u = zipf_weights(8, 0.0);
        assert!(u.iter().all(|&x| (x - 0.125).abs() < 1e-12));
    }

    #[test]
    fn zipf_population_rate_is_exact() {
        let p = Population::zipf(5000, 4000.0, 1.0);
        assert_eq!(p.len(), 5000);
        assert!((p.total_rate_per_sec() - 4000.0).abs() < 1e-6);
        // The head stream carries the largest rate.
        let head = p.streams[0].arrivals.rate_per_sec();
        let tail = p.streams[4999].arrivals.rate_per_sec();
        assert!(head > 100.0 * tail);
    }

    #[test]
    fn zipf_bursty_keeps_rate_and_shape() {
        let p = Population::zipf_bursty(64, 1000.0, 1.0, 8.0);
        assert!((p.total_rate_per_sec() - 1000.0).abs() < 1e-9);
        match &p.streams[0].arrivals {
            ArrivalGen::Batch { batch, .. } => assert!((batch.mean() - 8.0).abs() < 1e-12),
            other => panic!("expected batch arrivals, got {other:?}"),
        }
    }

    #[test]
    fn size_dists() {
        assert_eq!(SizeDist::tiny().mean_bytes(), 1.0);
        assert_eq!(SizeDist::fddi_max().mean_bytes(), 4432.0);
        let m = SizeDist::bimodal(0.9, 64.0).mean_bytes();
        assert!((m - (0.9 * 64.0 + 0.1 * 4432.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_population() {
        let p = Population::default();
        assert!(p.is_empty());
        assert_eq!(p.total_rate_per_sec(), 0.0);
    }
}
