//! Stream populations: the set of concurrent connections offered to the
//! host, with per-stream arrival processes and packet sizes.
//!
//! The paper's figures sweep the per-stream arrival rate for a fixed
//! population of homogeneous streams (K = N and K > N cases); the
//! capacity results ask how many concurrent streams the host can carry.
//! [`Population`] builds these configurations and computes exact offered
//! loads.

use afs_desim::dist::Dist;

use crate::arrivals::ArrivalGen;

/// Packet-size (payload bytes) distributions.
///
/// Most packets in real environments are small (the paper, citing
/// Gusella and Kay–Pasquale, uses this to justify the fixed-overhead
/// focus); the FDDI maximum is 4432 bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeDist(pub Dist);

impl SizeDist {
    /// 1-byte packets: isolates fixed per-packet costs (the paper's
    /// calibration configuration).
    pub fn tiny() -> Self {
        SizeDist(Dist::constant(1.0))
    }

    /// Full-MTU FDDI packets (4432 bytes) — the paper's worst case for
    /// data-touching overhead.
    pub fn fddi_max() -> Self {
        SizeDist(Dist::constant(4432.0))
    }

    /// A bimodal mix: fraction `p_small` of `small`-byte packets, rest
    /// full-MTU. Approximates measured LAN mixes.
    pub fn bimodal(p_small: f64, small: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_small));
        SizeDist(Dist::TwoPoint {
            value_a: small,
            p_a: p_small,
            value_b: 4432.0,
        })
    }

    /// Mean payload bytes.
    pub fn mean_bytes(&self) -> f64 {
        self.0.mean()
    }
}

/// One stream's offered traffic.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Arrival process.
    pub arrivals: ArrivalGen,
    /// Payload-size distribution.
    pub sizes: SizeDist,
}

/// A complete offered workload: one spec per stream.
#[derive(Debug, Clone, Default)]
pub struct Population {
    /// Per-stream specifications, indexed by stream id.
    pub streams: Vec<StreamSpec>,
}

impl Population {
    /// `k` identical Poisson streams of `rate_per_sec` each, tiny packets.
    pub fn homogeneous_poisson(k: usize, rate_per_sec: f64) -> Self {
        Population {
            streams: (0..k)
                .map(|_| StreamSpec {
                    arrivals: ArrivalGen::poisson(rate_per_sec),
                    sizes: SizeDist::tiny(),
                })
                .collect(),
        }
    }

    /// `k` identical bursty streams (geometric batches of mean
    /// `batch_mean`) of `rate_per_sec` each.
    pub fn homogeneous_bursty(k: usize, rate_per_sec: f64, batch_mean: f64) -> Self {
        Population {
            streams: (0..k)
                .map(|_| StreamSpec {
                    arrivals: ArrivalGen::bursty(rate_per_sec, batch_mean),
                    sizes: SizeDist::tiny(),
                })
                .collect(),
        }
    }

    /// A hot/cold mix: `hot` streams at `hot_rate`, `cold` streams at
    /// `cold_rate` (Poisson, tiny packets). Exercises the hybrid policy:
    /// wire the hot streams, MRU the rest.
    pub fn hot_cold(hot: usize, hot_rate: f64, cold: usize, cold_rate: f64) -> Self {
        let mut streams = Vec::with_capacity(hot + cold);
        for _ in 0..hot {
            streams.push(StreamSpec {
                arrivals: ArrivalGen::poisson(hot_rate),
                sizes: SizeDist::tiny(),
            });
        }
        for _ in 0..cold {
            streams.push(StreamSpec {
                arrivals: ArrivalGen::poisson(cold_rate),
                sizes: SizeDist::tiny(),
            });
        }
        Population { streams }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when no streams are configured.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Aggregate offered packet rate (packets/second), exact.
    pub fn total_rate_per_sec(&self) -> f64 {
        self.streams.iter().map(|s| s.arrivals.rate_per_sec()).sum()
    }

    /// Offered utilization against `n_procs` servers of mean service time
    /// `service_us` — the `ρ` that must stay below 1 for stability.
    pub fn offered_rho(&self, n_procs: usize, service_us: f64) -> f64 {
        self.total_rate_per_sec() * service_us / 1e6 / n_procs as f64
    }

    /// Replace every stream's rate, keeping processes/sizes (for sweeps).
    pub fn with_rate(mut self, rate_per_sec: f64) -> Self {
        for s in &mut self.streams {
            s.arrivals = match &s.arrivals {
                ArrivalGen::Poisson { .. } => ArrivalGen::poisson(rate_per_sec),
                ArrivalGen::Replay { gaps, .. } => {
                    // Rescale every recorded gap so the trace's mean rate
                    // becomes `rate_per_sec`, preserving its shape.
                    let old_rate = gaps.len() as f64 * 1e6 / gaps.iter().sum::<f64>();
                    let k = old_rate / rate_per_sec;
                    ArrivalGen::replay(gaps.iter().map(|g| g * k).collect())
                }
                ArrivalGen::Batch { batch, .. } => ArrivalGen::bursty(rate_per_sec, batch.mean()),
                ArrivalGen::Train {
                    inter_car, cars, ..
                } => ArrivalGen::train(rate_per_sec, cars.mean(), inter_car.mean()),
            };
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_population_rates() {
        let p = Population::homogeneous_poisson(16, 250.0);
        assert_eq!(p.len(), 16);
        assert!((p.total_rate_per_sec() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn offered_rho() {
        // 4000 pkts/s × 200 µs over 8 processors = 0.1 utilization.
        let p = Population::homogeneous_poisson(16, 250.0);
        assert!((p.offered_rho(8, 200.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn hot_cold_split() {
        let p = Population::hot_cold(2, 2000.0, 6, 100.0);
        assert_eq!(p.len(), 8);
        assert!((p.total_rate_per_sec() - 4600.0).abs() < 1e-9);
    }

    #[test]
    fn with_rate_rescales_preserving_shape() {
        let p = Population::homogeneous_bursty(4, 100.0, 8.0).with_rate(400.0);
        assert!((p.total_rate_per_sec() - 1600.0).abs() < 1e-9);
        match &p.streams[0].arrivals {
            ArrivalGen::Batch { batch, .. } => assert!((batch.mean() - 8.0).abs() < 1e-12),
            other => panic!("expected batch arrivals, got {other:?}"),
        }
    }

    #[test]
    fn size_dists() {
        assert_eq!(SizeDist::tiny().mean_bytes(), 1.0);
        assert_eq!(SizeDist::fddi_max().mean_bytes(), 4432.0);
        let m = SizeDist::bimodal(0.9, 64.0).mean_bytes();
        assert!((m - (0.9 * 64.0 + 0.1 * 4432.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_population() {
        let p = Population::default();
        assert!(p.is_empty());
        assert_eq!(p.total_rate_per_sec(), 0.0);
    }
}
