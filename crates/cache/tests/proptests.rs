//! Property-based tests for the cache models and simulator.
//!
//! The LRU set-associative cache is checked against a brute-force
//! reference model on random traces; the analytic functions against
//! their mathematical contracts (bounds, monotonicity, closed forms);
//! the execution-time model against its interpolation invariants; and
//! the SST fitter against exact recovery from noiseless data.

use proptest::prelude::*;
use std::collections::VecDeque;

use afs_cache::model::exec_time::{
    Age, ComponentAges, ComponentWeights, ExecTimeModel, TimeBounds,
};
use afs_cache::model::fit::{fit_sst, FootprintObs};
use afs_cache::model::flush::flushed_fraction;
use afs_cache::model::footprint::SstParams;
use afs_cache::model::hierarchy::FlushModel;
use afs_cache::model::platform::{CacheGeometry, Platform};
use afs_cache::sim::cache::{Cache, Replacement};
use afs_cache::sim::trace::Region;
use afs_desim::time::SimDuration;

/// Brute-force LRU reference: per set, a recency-ordered deque of tags.
struct RefLru {
    sets: Vec<VecDeque<u64>>,
    line: u64,
    assoc: usize,
}

impl RefLru {
    fn new(sets: usize, line: u64, assoc: usize) -> Self {
        RefLru {
            sets: (0..sets).map(|_| VecDeque::new()).collect(),
            line,
            assoc,
        }
    }
    /// Returns hit.
    fn access(&mut self, addr: u64) -> bool {
        let l = addr / self.line;
        let s = (l % self.sets.len() as u64) as usize;
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&t| t == l) {
            set.remove(pos);
            set.push_front(l);
            true
        } else {
            if set.len() == self.assoc {
                set.pop_back();
            }
            set.push_front(l);
            false
        }
    }
    fn contains(&self, addr: u64) -> bool {
        let l = addr / self.line;
        let s = (l % self.sets.len() as u64) as usize;
        self.sets[s].contains(&l)
    }
}

fn small_geometry() -> impl Strategy<Value = (u64, u32, u32)> {
    // (sets, line, assoc) with modest sizes for brute-force comparison.
    (1u32..=5, 0u32..=2, 1u32..=4).prop_map(|(set_pow, line_pow, assoc)| {
        let sets = 1u64 << set_pow;
        let line = 16u32 << line_pow;
        (sets, line, assoc)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn lru_cache_matches_reference(
        (sets, line, assoc) in small_geometry(),
        addrs in prop::collection::vec(0u64..4096, 1..300),
    ) {
        let cap = sets * line as u64 * assoc as u64;
        let mut real = Cache::new(CacheGeometry::new(cap, line, assoc), Replacement::Lru);
        let mut model = RefLru::new(sets as usize, line as u64, assoc as usize);
        for &a in &addrs {
            let hit_real = real.access(a, Region::Stream).hit;
            let hit_model = model.access(a);
            prop_assert_eq!(hit_real, hit_model, "divergence at addr {}", a);
        }
        // Residency agrees everywhere afterwards.
        for &a in &addrs {
            prop_assert_eq!(real.contains(a), model.contains(a));
        }
    }

    #[test]
    fn cache_occupancy_is_bounded_and_consistent(
        addrs in prop::collection::vec(0u64..100_000, 1..400),
    ) {
        let mut c = Cache::new(CacheGeometry::new(4096, 16, 2), Replacement::Lru);
        for &a in &addrs {
            c.access(a, Region::NonProtocol);
            prop_assert!(c.total_occupancy() <= 256); // 4096/16 lines
        }
        let purged = c.purge_region(Region::NonProtocol);
        prop_assert_eq!(c.total_occupancy(), 0);
        prop_assert!(purged <= 256);
    }

    #[test]
    fn flushed_fraction_contracts(n in 0.0f64..1e7, set_pow in 2u32..14, assoc in 1u32..5) {
        let sets = 1u64 << set_pow;
        let f = flushed_fraction(n, sets, assoc);
        prop_assert!((0.0..=1.0).contains(&f));
        // Monotone in n.
        let f2 = flushed_fraction(n * 1.5 + 1.0, sets, assoc);
        prop_assert!(f2 >= f - 1e-12);
        // More sets (same assoc) never increases displacement.
        let f_bigger = flushed_fraction(n, sets * 2, assoc);
        prop_assert!(f_bigger <= f + 1e-12);
    }

    #[test]
    fn flushed_fraction_direct_mapped_closed_form(n in 0.0f64..1e6, set_pow in 2u32..14) {
        let sets = 1u64 << set_pow;
        let f = flushed_fraction(n, sets, 1);
        let closed = 1.0 - (1.0 - 1.0 / sets as f64).powf(n);
        prop_assert!((f - closed).abs() < 1e-9);
    }

    #[test]
    fn footprint_contracts(
        w in 0.5f64..10.0,
        a in 0.0f64..0.1,
        b in 0.3f64..0.95,
        log_d in -0.3f64..0.0,
        r in 1.0f64..1e8,
        line_pow in 2u32..8,
    ) {
        let p = SstParams { w, a, b, log_d };
        let line = f64::from(1u32 << line_pow);
        let u = p.footprint(r, line);
        prop_assert!(u >= 0.0 && u <= r, "u = {u} outside [0, {r}]");
        // Monotone in R — guaranteed only inside the model's validity
        // domain (b + log d · log L >= 0), which the MVS constants
        // satisfy for all realistic line sizes.
        prop_assume!(p.is_monotone_for(line));
        let u2 = p.footprint(r * 2.0, line);
        prop_assert!(u2 >= u - 1e-9);
    }

    #[test]
    fn displacement_curves_monotone(x1 in 0.0f64..1e7, x2 in 0.0f64..1e7) {
        let model = FlushModel::new(
            Platform::sgi_challenge_r4400(),
            afs_cache::model::footprint::MVS_WORKLOAD,
        );
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let d_lo = model.displacement(SimDuration::from_micros_f64(lo));
        let d_hi = model.displacement(SimDuration::from_micros_f64(hi));
        prop_assert!(d_hi.f1 >= d_lo.f1 - 1e-12);
        prop_assert!(d_hi.f2 >= d_lo.f2 - 1e-12);
        prop_assert!(d_lo.f1 >= d_lo.f2 - 1e-12, "L1 never outlives L2");
    }

    #[test]
    fn exec_time_within_bounds(
        warm in 50.0f64..200.0,
        l2_extra in 1.0f64..100.0,
        cold_extra in 1.0f64..100.0,
        wc in 0.0f64..1.0,
        wt_frac in 0.0f64..1.0,
        x_us in 0.0f64..1e7,
    ) {
        let bounds = TimeBounds::new(warm, warm + l2_extra, warm + l2_extra + cold_extra);
        let wt = (1.0 - wc) * wt_frac;
        let ws = 1.0 - wc - wt;
        let weights = ComponentWeights::new(wc, wt, ws);
        let model = ExecTimeModel::new(
            bounds,
            FlushModel::new(
                Platform::sgi_challenge_r4400(),
                afs_cache::model::footprint::MVS_WORKLOAD,
            ),
            weights,
        );
        let x = SimDuration::from_micros_f64(x_us);
        let t = model.protocol_time(ComponentAges::uniform(x)).as_micros_f64();
        prop_assert!(t >= warm - 1e-3, "t = {t} below warm {warm}");
        prop_assert!(
            t <= bounds.t_cold_us + 1e-3,
            "t = {t} above cold {}",
            bounds.t_cold_us
        );
        // Remote never cheaper than cold for the same ages.
        let t_cold = model
            .protocol_time(ComponentAges {
                stream: Age::Cold,
                ..ComponentAges::ALL_WARM
            })
            .as_micros_f64();
        let t_remote = model
            .protocol_time(ComponentAges {
                stream: Age::Remote,
                ..ComponentAges::ALL_WARM
            })
            .as_micros_f64();
        prop_assert!(t_remote >= t_cold - 1e-9);
    }

    #[test]
    fn sst_fit_recovers_random_parameters(
        w in 0.5f64..5.0,
        a in 0.0f64..0.08,
        b in 0.4f64..0.9,
        log_d in -0.25f64..-0.01,
    ) {
        let truth = SstParams { w, a, b, log_d };
        let mut obs = Vec::new();
        for &line in &[16.0, 32.0, 64.0, 128.0] {
            for e in 2..8 {
                let r = 10f64.powi(e);
                let u = truth.footprint(r, line);
                // Skip saturated points (u clamped to R breaks linearity).
                if u < r * 0.99 {
                    obs.push(FootprintObs {
                        refs: r,
                        line_bytes: line,
                        unique_lines: u,
                    });
                }
            }
        }
        prop_assume!(obs.len() >= 8);
        let fitted = fit_sst(&obs).expect("fit");
        prop_assert!((fitted.b - b).abs() < 1e-6, "b: {} vs {b}", fitted.b);
        prop_assert!((fitted.log_d - log_d).abs() < 1e-6);
    }

    #[test]
    fn back_invalidation_preserves_inclusion(
        addrs in prop::collection::vec(0u64..65_536, 1..500),
    ) {
        // Small hierarchy: every L1-resident line must also be in L2.
        let mut platform = Platform::sgi_challenge_r4400();
        platform.l1 = CacheGeometry::new(512, 16, 1);
        platform.l1_split = false;
        platform.l2 = CacheGeometry::new(4096, 64, 1);
        let mut h = afs_cache::sim::hierarchy::MemoryHierarchy::new(platform);
        for &a in &addrs {
            h.access(afs_cache::sim::trace::MemRef::read(a, Region::Stream));
        }
        for &a in &addrs {
            if h.l1d.contains(a) {
                prop_assert!(h.l2.contains(a), "inclusion violated at {a:#x}");
            }
        }
    }
}
