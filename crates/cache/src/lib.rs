#![warn(missing_docs)]

//! # afs-cache — cache behaviour, analytic and simulated
//!
//! Everything the HPDC-95 paper needs to reason about caches:
//!
//! * [`model`] — the analytic side. The Singh–Stone–Thiebaut footprint
//!   function `u(R, L)` with the published MVS-workload constants, the
//!   binomial set-conflict displacement model `F = P[X ≥ A]`, the
//!   two-level `F1(x)/F2(x)` curves for the SGI Challenge / R4400
//!   platform, and the reload-transient execution-time interpolation
//!   `T(x) = t_warm + F1·(t_L2 − t_warm) + F2·(t_cold − t_L2)` with
//!   per-component (code/thread/stream) aging. A least-squares fitter
//!   recovers SST constants from measured `(R, L, u)` triples.
//! * [`sim`] — the executable side. A region-tagged, trace-driven
//!   set-associative cache hierarchy (split direct-mapped L1 over an
//!   inclusive unified L2 with back-invalidation) standing in for the
//!   paper's hardware, plus a synthetic power-law workload generator used
//!   to cross-validate the analytic displacement curves.

pub mod model;
pub mod sim;
