//! A simulated two-level memory hierarchy: split L1 (I + D) over a
//! unified, inclusive L2, with cycle-cost accounting.
//!
//! Models the SGI Challenge / R4400 arrangement the paper measures:
//! direct-mapped split primaries backed by a large direct-mapped unified
//! secondary. Inclusion is enforced: when L2 evicts a line, any covered
//! L1 lines are back-invalidated (an L2 line spans several L1 lines when
//! the line sizes differ).

use crate::model::platform::Platform;
use crate::sim::cache::{Cache, Replacement};
use crate::sim::trace::{MemRef, Region, TraceSink};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Hit in the relevant L1.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both; served from memory.
    Memory,
}

/// Cycle counters per service level.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyStats {
    /// Total references.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that hit L2).
    pub l2_hits: u64,
    /// Memory fills.
    pub mem_fills: u64,
    /// Total cycles charged.
    pub cycles: f64,
}

impl HierarchyStats {
    /// Average cycles per reference.
    pub fn cpr(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.cycles / self.accesses as f64
        }
    }
}

/// The simulated hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    /// Instruction-side L1 (present when the platform's L1 is split).
    pub l1i: Option<Cache>,
    /// Data-side L1.
    pub l1d: Cache,
    /// Unified second level.
    pub l2: Cache,
    platform: Platform,
    /// Counters.
    pub stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Build from a platform description (direct-mapped → LRU degenerate).
    pub fn new(platform: Platform) -> Self {
        let l1i = if platform.l1_split {
            Some(Cache::new(platform.l1, Replacement::Lru))
        } else {
            None
        };
        MemoryHierarchy {
            l1i,
            l1d: Cache::new(platform.l1, Replacement::Lru),
            l2: Cache::new(platform.l2, Replacement::Lru),
            platform,
            stats: HierarchyStats::default(),
        }
    }

    /// The platform this hierarchy models.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Perform one reference; returns where it was served and charges
    /// cycles to `stats`.
    pub fn access(&mut self, mref: MemRef) -> ServedBy {
        self.stats.accesses += 1;
        let mut cycles = self.platform.l1_hit_cycles;

        let l1 = if mref.is_instr {
            self.l1i.as_mut().unwrap_or(&mut self.l1d)
        } else {
            &mut self.l1d
        };
        let l1_result = l1.access_rw(mref.addr, mref.region, mref.is_write);
        if l1_result.hit {
            self.stats.l1_hits += 1;
            self.stats.cycles += cycles;
            return ServedBy::L1;
        }

        cycles += self.platform.l2_hit_penalty_cycles;
        let l2_result = self.l2.access_rw(mref.addr, mref.region, mref.is_write);
        let served = if l2_result.hit {
            self.stats.l2_hits += 1;
            ServedBy::L2
        } else {
            self.stats.mem_fills += 1;
            cycles += self.platform.mem_penalty_cycles;
            ServedBy::Memory
        };

        // Enforce inclusion: an L2 eviction back-invalidates the covered
        // L1 lines in both halves.
        if let Some((l2_line, _)) = l2_result.evicted {
            self.back_invalidate(l2_line);
        }

        self.stats.cycles += cycles;
        served
    }

    /// Invalidate every L1 line covered by an evicted L2 line.
    fn back_invalidate(&mut self, l2_line: u64) {
        let l2_bytes = self.platform.l2.line_bytes as u64;
        let l1_bytes = self.platform.l1.line_bytes as u64;
        debug_assert!(l2_bytes >= l1_bytes);
        let first_l1_line = l2_line * (l2_bytes / l1_bytes);
        let count = l2_bytes / l1_bytes;
        for i in 0..count {
            let line = first_l1_line + i;
            self.l1d.invalidate_line(line);
            if let Some(l1i) = self.l1i.as_mut() {
                l1i.invalidate_line(line);
            }
        }
    }

    /// Charge cycles directly (for non-memory work: ALU time between
    /// references). Counted in `stats.cycles` but not as an access.
    pub fn charge_cycles(&mut self, cycles: f64) {
        self.stats.cycles += cycles;
    }

    /// Drop all cached state (a fully cold machine).
    pub fn flush_all(&mut self) {
        self.l1d.flush_all();
        if let Some(l1i) = self.l1i.as_mut() {
            l1i.flush_all();
        }
        self.l2.flush_all();
    }

    /// Flush only the L1s, leaving L2 contents (an "L2-resident" state
    /// for the calibration experiments).
    pub fn flush_l1(&mut self) {
        self.l1d.flush_all();
        if let Some(l1i) = self.l1i.as_mut() {
            l1i.flush_all();
        }
    }

    /// Evict all lines of a region from every level (models migration of
    /// that state to another processor: exclusive fetch + invalidate).
    pub fn purge_region(&mut self, region: Region) {
        self.l1d.purge_region(region);
        if let Some(l1i) = self.l1i.as_mut() {
            l1i.purge_region(region);
        }
        self.l2.purge_region(region);
    }

    /// Evict every line overlapping `[addr, addr + bytes)` from every
    /// level. Models cache-coherent migration of one entity's state at
    /// address granularity: when another processor takes ownership of a
    /// stream's session or a thread's stack, this processor's copies of
    /// exactly those lines are invalidated, while unrelated state in the
    /// same region class stays resident.
    pub fn purge_range(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let end = addr + bytes - 1;
        for (cache_line_bytes, which) in [
            (self.platform.l1.line_bytes as u64, 0u8),
            (self.platform.l2.line_bytes as u64, 1u8),
        ] {
            let first = addr / cache_line_bytes;
            let last = end / cache_line_bytes;
            for line in first..=last {
                if which == 0 {
                    self.l1d.invalidate_line(line);
                    if let Some(l1i) = self.l1i.as_mut() {
                        l1i.invalidate_line(line);
                    }
                } else {
                    self.l2.invalidate_line(line);
                }
            }
        }
    }

    /// Reset counters without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1d.reset_stats();
        if let Some(l1i) = self.l1i.as_mut() {
            l1i.reset_stats();
        }
        self.l2.reset_stats();
    }

    /// Elapsed microseconds implied by the charged cycles.
    pub fn elapsed_us(&self) -> f64 {
        self.platform.cycles_to_us(self.stats.cycles)
    }
}

impl TraceSink for MemoryHierarchy {
    fn access(&mut self, mref: MemRef) {
        let _ = MemoryHierarchy::access(self, mref);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::platform::CacheGeometry;

    fn small_platform() -> Platform {
        Platform {
            clock_hz: 100e6,
            cycles_per_ref: 5.0,
            l1: CacheGeometry::new(256, 16, 1), // 16 sets
            l1_split: true,
            l2: CacheGeometry::new(2048, 64, 1), // 32 sets
            l1_hit_cycles: 1.0,
            l2_hit_penalty_cycles: 10.0,
            mem_penalty_cycles: 100.0,
            remote_penalty_cycles: 130.0,
        }
    }

    #[test]
    fn first_touch_costs_memory_then_warms() {
        let mut h = MemoryHierarchy::new(small_platform());
        assert_eq!(
            h.access(MemRef::read(0x40, Region::Stream)),
            ServedBy::Memory
        );
        assert_eq!(h.access(MemRef::read(0x40, Region::Stream)), ServedBy::L1);
        assert_eq!(h.stats.accesses, 2);
        assert_eq!(h.stats.mem_fills, 1);
        assert_eq!(h.stats.l1_hits, 1);
        // 1 + 10 + 100 cycles then 1 cycle.
        assert!((h.stats.cycles - 112.0).abs() < 1e-12);
    }

    #[test]
    fn l1_flush_leaves_l2_warm() {
        let mut h = MemoryHierarchy::new(small_platform());
        h.access(MemRef::read(0x40, Region::Stream));
        h.flush_l1();
        assert_eq!(h.access(MemRef::read(0x40, Region::Stream)), ServedBy::L2);
    }

    #[test]
    fn full_flush_is_cold() {
        let mut h = MemoryHierarchy::new(small_platform());
        h.access(MemRef::read(0x40, Region::Stream));
        h.flush_all();
        assert_eq!(
            h.access(MemRef::read(0x40, Region::Stream)),
            ServedBy::Memory
        );
    }

    #[test]
    fn purge_range_evicts_only_the_named_lines() {
        let mut h = MemoryHierarchy::new(small_platform());
        // Two distinct 64 B L2 lines in distinct L1 sets (0x000 → set 0,
        // 0x040 → set 4), same region class.
        h.access(MemRef::read(0x000, Region::Stream));
        h.access(MemRef::read(0x040, Region::Stream));
        // Purging the first entity's bytes leaves the second warm, and
        // the cold re-fill of the first cannot displace it.
        h.purge_range(0x000, 64);
        assert_eq!(
            h.access(MemRef::read(0x000, Region::Stream)),
            ServedBy::Memory
        );
        assert_eq!(h.access(MemRef::read(0x040, Region::Stream)), ServedBy::L1);
    }

    #[test]
    fn purge_range_of_zero_bytes_is_noop() {
        let mut h = MemoryHierarchy::new(small_platform());
        h.access(MemRef::read(0x40, Region::Stream));
        h.purge_range(0x40, 0);
        assert_eq!(h.access(MemRef::read(0x40, Region::Stream)), ServedBy::L1);
    }

    #[test]
    fn instruction_fetches_use_l1i() {
        let mut h = MemoryHierarchy::new(small_platform());
        h.access(MemRef::fetch(0x100));
        // The same address as data should miss L1-D but hit L2.
        assert_eq!(h.access(MemRef::read(0x100, Region::Code)), ServedBy::L2);
    }

    #[test]
    fn unsplit_platform_shares_one_l1() {
        let mut p = small_platform();
        p.l1_split = false;
        let mut h = MemoryHierarchy::new(p);
        assert!(h.l1i.is_none());
        h.access(MemRef::fetch(0x100));
        assert_eq!(h.access(MemRef::read(0x100, Region::Code)), ServedBy::L1);
    }

    #[test]
    fn inclusion_back_invalidates_l1() {
        let mut h = MemoryHierarchy::new(small_platform());
        // L2: 32 sets × 64 B lines. Two addresses 32*64 = 2048 B apart
        // conflict in L2 but land in different L1 sets (L1: 16 sets × 16 B
        // = 256 B period; 2048 % 256 == 0 → same L1 set too; choose a
        // different offset to keep L1 sets distinct).
        let a = 0x40u64;
        let b = a + 2048 + 16; // same L2 set? (a/64)%32 vs (b/64)%32
                               // Compute the actual conflicting pair instead of guessing:
        let l2_sets = 32u64;
        let conflict = a + l2_sets * 64; // same L2 set, different tag
        h.access(MemRef::read(a, Region::Stream));
        assert!(h.l1d.contains(a));
        h.access(MemRef::read(conflict, Region::NonProtocol));
        // a was evicted from L2 → must also be gone from L1 (inclusion).
        assert!(!h.l1d.contains(a), "inclusion violated");
        let _ = b;
    }

    #[test]
    fn cpr_and_elapsed_us() {
        let mut h = MemoryHierarchy::new(small_platform());
        h.access(MemRef::read(0, Region::Stream)); // 111 cycles
        h.access(MemRef::read(0, Region::Stream)); // 1 cycle
        assert!((h.stats.cpr() - 56.0).abs() < 1e-12);
        // 112 cycles at 100 MHz = 1.12 µs.
        assert!((h.elapsed_us() - 1.12).abs() < 1e-12);
        h.charge_cycles(88.0);
        assert!((h.elapsed_us() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = MemoryHierarchy::new(small_platform());
        h.access(MemRef::read(0x80, Region::Thread));
        h.reset_stats();
        assert_eq!(h.stats.accesses, 0);
        assert_eq!(h.access(MemRef::read(0x80, Region::Thread)), ServedBy::L1);
    }
}
