//! Synthetic non-protocol reference streams with SST-like locality.
//!
//! The paper models the *non-protocol* workload purely analytically (the
//! SST footprint function with MVS-trace constants). To validate our
//! pipeline end to end we also need an executable stand-in — a reference
//! generator whose unique-line growth follows the same power-law shape —
//! so that:
//!
//! 1. the trace-driven cache simulator can *displace* a preloaded protocol
//!    footprint the way real intervening work would, and
//! 2. fitting SST constants to the generator's measured `u(R, L)` and
//!    pushing them through the analytic `F(x)` model reproduces the
//!    displacement the simulator measures directly (the cross-validation
//!    behind Figure 5).
//!
//! Generation scheme: at each step the generator either *re-references* a
//! previously touched word (temporal locality) or touches a *fresh* word.
//! The fresh-touch probability decays as `∂(W·R^b)/∂R = W·b·R^(b−1)`, so
//! unique words grow like `W·R^b`. Fresh words are allocated in sequential
//! runs of geometric length (spatial locality), which is what makes larger
//! cache lines capture more of the stream — the `L`-dependence of SST.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::model::fit::FootprintObs;
use crate::sim::trace::{MemRef, Region, TraceSink};

/// Locality parameters of the synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthParams {
    /// Working-set scale `W` of the target `u ≈ W·R^b` (in 4-byte words).
    pub w: f64,
    /// Temporal-locality exponent `b ∈ (0, 1)`.
    pub b: f64,
    /// Mean length of sequential fresh-allocation runs, in words
    /// (geometric). Longer runs = more spatial locality.
    pub seq_run_mean: f64,
    /// Probability that a fresh run starts at a far-away address (a new
    /// "object"/page) rather than adjacent to the previous run.
    pub jump_prob: f64,
}

impl SynthParams {
    /// Defaults chosen to resemble the MVS constants' growth rate.
    pub fn mvs_like() -> Self {
        SynthParams {
            w: 2.2,
            b: 0.83,
            seq_run_mean: 6.0,
            jump_prob: 0.3,
        }
    }
}

/// The generator.
#[derive(Debug, Clone)]
pub struct SynthWorkload {
    params: SynthParams,
    rng: StdRng,
    /// All previously touched word addresses (for re-reference draws).
    history: Vec<u64>,
    /// Total references issued.
    refs_issued: u64,
    /// Remaining words in the current sequential fresh run.
    run_remaining: u32,
    /// Next sequential fresh address.
    next_seq_addr: u64,
    /// Bump allocator for far jumps (4 KiB strides).
    next_page: u64,
}

/// Word size in bytes for generated references.
const WORD: u64 = 4;
/// Far-jump stride. Deliberately *not* a multiple of any cache-set
/// period: a 4 KiB-aligned stride would land every jump on the same few
/// set positions (and only the first few lines of each page get used
/// before the next jump), violating the uniform set-mapping assumption
/// the binomial displacement model makes — and that real allocators
/// approximately satisfy. 4096 + 272 is coprime with the 16 KiB L1 and
/// 1 MiB L2 periods.
const PAGE: u64 = 4096 + 272;

impl SynthWorkload {
    /// Create a generator. `base` is the start of its private address
    /// range (keep it disjoint from protocol footprints; e.g. `1 << 32`).
    pub fn new(seed: u64, base: u64, params: SynthParams) -> Self {
        assert!(params.b > 0.0 && params.b < 1.0, "b must be in (0,1)");
        assert!(params.w > 0.0);
        assert!(params.seq_run_mean >= 1.0);
        assert!((0.0..=1.0).contains(&params.jump_prob));
        SynthWorkload {
            params,
            rng: StdRng::seed_from_u64(seed),
            history: Vec::new(),
            refs_issued: 0,
            run_remaining: 0,
            next_seq_addr: base,
            next_page: base,
        }
    }

    /// Total references issued so far.
    pub fn refs_issued(&self) -> u64 {
        self.refs_issued
    }

    /// Unique words touched so far.
    pub fn unique_words(&self) -> u64 {
        self.history.len() as u64
    }

    fn fresh_word(&mut self) -> u64 {
        if self.run_remaining == 0 {
            // Start a new run.
            let len = {
                let p = 1.0 / self.params.seq_run_mean;
                let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
                ((u.ln() / (1.0 - p).ln()).ceil() as u32).max(1)
            };
            self.run_remaining = len;
            if self.rng.gen::<f64>() < self.params.jump_prob || self.history.is_empty() {
                self.next_page += PAGE;
                self.next_seq_addr = self.next_page;
            }
            // else: continue from wherever next_seq_addr points.
        }
        self.run_remaining -= 1;
        let addr = self.next_seq_addr;
        self.next_seq_addr += WORD;
        addr
    }

    /// Generate the next reference.
    pub fn next_ref(&mut self) -> MemRef {
        self.refs_issued += 1;
        let r = self.refs_issued as f64;
        // Target fresh-touch rate: d(W R^b)/dR = W b R^(b-1), clamped.
        let p_new = (self.params.w * self.params.b * r.powf(self.params.b - 1.0)).min(1.0);
        let addr = if self.history.is_empty() || self.rng.gen::<f64>() < p_new {
            let a = self.fresh_word();
            self.history.push(a);
            a
        } else {
            let idx = self.rng.gen_range(0..self.history.len());
            self.history[idx]
        };
        MemRef::read(addr, Region::NonProtocol)
    }

    /// Issue `n` references into a sink.
    pub fn issue(&mut self, n: u64, sink: &mut impl TraceSink) {
        for _ in 0..n {
            let r = self.next_ref();
            sink.access(r);
        }
    }
}

/// Measure the unique-line growth `u(R, L)` of a synthetic stream:
/// issue references up to the largest checkpoint, recording the unique
/// line count at each `(checkpoint, line_size)` pair.
pub fn measure_growth(
    seed: u64,
    params: SynthParams,
    checkpoints: &[u64],
    line_sizes: &[u64],
) -> Vec<FootprintObs> {
    assert!(!checkpoints.is_empty() && !line_sizes.is_empty());
    for l in line_sizes {
        assert!(l.is_power_of_two(), "line sizes must be powers of two");
    }
    let mut sorted = checkpoints.to_vec();
    sorted.sort_unstable();
    let mut gen = SynthWorkload::new(seed, 1 << 32, params);
    let mut seen: Vec<HashSet<u64>> = line_sizes.iter().map(|_| HashSet::new()).collect();
    let mut out = Vec::new();
    let mut issued = 0u64;
    for &cp in &sorted {
        while issued < cp {
            let r = gen.next_ref();
            for (i, &l) in line_sizes.iter().enumerate() {
                seen[i].insert(r.addr / l);
            }
            issued += 1;
        }
        for (i, &l) in line_sizes.iter().enumerate() {
            out.push(FootprintObs {
                refs: cp as f64,
                line_bytes: l as f64,
                unique_lines: seen[i].len() as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fit::fit_sst;
    use crate::sim::trace::TraceBuffer;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SynthWorkload::new(1, 0, SynthParams::mvs_like());
        let mut b = SynthWorkload::new(1, 0, SynthParams::mvs_like());
        for _ in 0..1000 {
            assert_eq!(a.next_ref(), b.next_ref());
        }
        let mut c = SynthWorkload::new(2, 0, SynthParams::mvs_like());
        let same = (0..1000).all(|_| a.next_ref().addr == c.next_ref().addr);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn all_refs_are_nonprotocol_reads_in_range() {
        let base = 1 << 32;
        let mut g = SynthWorkload::new(3, base, SynthParams::mvs_like());
        for _ in 0..5000 {
            let r = g.next_ref();
            assert_eq!(r.region, Region::NonProtocol);
            assert!(!r.is_write && !r.is_instr);
            assert!(r.addr >= base);
        }
    }

    #[test]
    fn unique_growth_is_sublinear_power_law() {
        let mut g = SynthWorkload::new(5, 0, SynthParams::mvs_like());
        let mut counts = Vec::new();
        for _ in 0..4 {
            let mut buf = TraceBuffer::new();
            g.issue(25_000, &mut buf);
            counts.push(g.unique_words());
        }
        // u(100k)/u(25k) should be ≈ 4^0.83 ≈ 3.16, certainly < 4.
        let ratio = counts[3] as f64 / counts[0] as f64;
        assert!(
            (2.0..3.9).contains(&ratio),
            "growth ratio {ratio}, counts {counts:?}"
        );
    }

    #[test]
    fn larger_lines_capture_more() {
        let obs = measure_growth(7, SynthParams::mvs_like(), &[50_000], &[16, 128]);
        let u16 = obs
            .iter()
            .find(|o| o.line_bytes == 16.0)
            .unwrap()
            .unique_lines;
        let u128 = obs
            .iter()
            .find(|o| o.line_bytes == 128.0)
            .unwrap()
            .unique_lines;
        assert!(
            u128 < u16 * 0.6,
            "spatial locality too weak: u128 = {u128}, u16 = {u16}"
        );
    }

    #[test]
    fn sst_fit_recovers_growth_exponent() {
        let obs = measure_growth(
            11,
            SynthParams::mvs_like(),
            &[1_000, 4_000, 16_000, 64_000, 256_000],
            &[16, 32, 64, 128],
        );
        let p = fit_sst(&obs).expect("fit");
        assert!(
            (p.b - 0.83).abs() < 0.12,
            "fitted temporal exponent b = {} far from target 0.83",
            p.b
        );
        // The interaction term should be negative (spatial × temporal),
        // matching the sign of the MVS constants.
        assert!(p.log_d < 0.05, "log_d = {}", p.log_d);
    }

    #[test]
    fn issue_counts_match() {
        let mut g = SynthWorkload::new(9, 0, SynthParams::mvs_like());
        let mut buf = TraceBuffer::new();
        g.issue(1234, &mut buf);
        assert_eq!(buf.len(), 1234);
        assert_eq!(g.refs_issued(), 1234);
    }

    #[test]
    fn measure_growth_monotone_in_refs() {
        let obs = measure_growth(13, SynthParams::mvs_like(), &[1_000, 10_000], &[16]);
        assert!(obs[1].unique_lines > obs[0].unique_lines);
        assert_eq!(obs[0].refs, 1_000.0);
        assert_eq!(obs[1].refs, 10_000.0);
    }

    #[test]
    #[should_panic(expected = "b must be in (0,1)")]
    fn invalid_params_rejected() {
        SynthWorkload::new(
            1,
            0,
            SynthParams {
                b: 1.5,
                ..SynthParams::mvs_like()
            },
        );
    }
}
