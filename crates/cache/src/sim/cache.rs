//! A set-associative cache with per-region occupancy tracking.
//!
//! Used trace-driven: the calibration harness replays instrumented
//! protocol executions and controlled flush workloads through it, standing
//! in for the paper's hardware measurements. Supports LRU / FIFO / random
//! replacement (the R4400 and Challenge secondary are direct-mapped, where
//! all three coincide).

use crate::model::platform::CacheGeometry;
use crate::sim::trace::Region;

/// Replacement policy within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict the oldest-filled way.
    Fifo,
    /// Evict a pseudo-random way (xorshift; deterministic per cache).
    Random,
}

/// One resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineEntry {
    /// Line tag (full line address; sets are selected separately, keeping
    /// the tag redundant but simple and cheap at these sizes).
    line_addr: u64,
    /// Owner of the line (for occupancy statistics).
    region: Region,
    /// Written since fill (write-back caches must flush it on eviction;
    /// dirty lines are also what makes migrating stream state dearer
    /// than a clean memory fill — the remote premium's physical basis).
    dirty: bool,
}

/// A cache set: ways ordered most-recent-first (for LRU) or
/// oldest-last (FIFO uses insertion order too — push-front, evict-back).
#[derive(Debug, Clone, Default)]
struct CacheSet {
    ways: Vec<LineEntry>,
}

/// Result of a lookup-and-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was resident.
    pub hit: bool,
    /// The line displaced to make room, if any.
    pub evicted: Option<(u64, Region)>,
    /// The displaced line was dirty (a write-back was issued).
    pub wrote_back: bool,
}

/// A set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    replacement: Replacement,
    sets: Vec<CacheSet>,
    /// Per-region resident line counts, dense-indexed by `Region::index`.
    occupancy: [u64; 6],
    /// Xorshift state for `Replacement::Random`.
    rand_state: u64,
    /// Statistics.
    pub stats: CacheStats,
}

/// Hit/miss counters, total and per region.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Per-region accesses.
    pub region_accesses: [u64; 6],
    /// Per-region hits.
    pub region_hits: [u64; 6],
}

impl CacheStats {
    /// Overall miss ratio (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss ratio for one region.
    pub fn region_miss_ratio(&self, region: Region) -> f64 {
        let i = region.index();
        if self.region_accesses[i] == 0 {
            0.0
        } else {
            1.0 - self.region_hits[i] as f64 / self.region_accesses[i] as f64
        }
    }
}

impl Cache {
    /// Create an empty cache.
    pub fn new(geometry: CacheGeometry, replacement: Replacement) -> Self {
        let sets = geometry.sets() as usize;
        Cache {
            geometry,
            replacement,
            sets: vec![CacheSet::default(); sets],
            occupancy: [0; 6],
            rand_state: 0x9e3779b97f4a7c15,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Line address for a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.geometry.line_bytes as u64
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr % self.geometry.sets()) as usize
    }

    fn next_rand(&mut self) -> u64 {
        // Xorshift64*.
        let mut x = self.rand_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rand_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Access a byte address with a read, filling on miss.
    pub fn access(&mut self, addr: u64, region: Region) -> AccessResult {
        self.access_rw(addr, region, false)
    }

    /// Access a byte address, filling on miss; `is_write` marks the line
    /// dirty. Returns hit/evicted/write-back info.
    pub fn access_rw(&mut self, addr: u64, region: Region, is_write: bool) -> AccessResult {
        let line = self.line_of(addr);
        let set_idx = self.set_of(line);
        let assoc = self.geometry.associativity as usize;

        self.stats.accesses += 1;
        self.stats.region_accesses[region.index()] += 1;

        let hit_pos = self.sets[set_idx]
            .ways
            .iter()
            .position(|e| e.line_addr == line);
        if let Some(pos) = hit_pos {
            self.stats.hits += 1;
            self.stats.region_hits[region.index()] += 1;
            // Occupancy region may change owner on re-touch (e.g. a
            // packet buffer recycled as stream state).
            let old_region = self.sets[set_idx].ways[pos].region;
            if old_region != region {
                self.occupancy[old_region.index()] -= 1;
                self.occupancy[region.index()] += 1;
                self.sets[set_idx].ways[pos].region = region;
            }
            if is_write {
                self.sets[set_idx].ways[pos].dirty = true;
            }
            if self.replacement == Replacement::Lru {
                let e = self.sets[set_idx].ways.remove(pos);
                self.sets[set_idx].ways.insert(0, e);
            }
            return AccessResult {
                hit: true,
                evicted: None,
                wrote_back: false,
            };
        }

        // Miss: fill, possibly evicting.
        let occupied = self.sets[set_idx].ways.len();
        let mut wrote_back = false;
        let evicted = if occupied >= assoc {
            let victim_pos = match self.replacement {
                Replacement::Lru | Replacement::Fifo => occupied - 1,
                Replacement::Random => (self.next_rand() % occupied as u64) as usize,
            };
            let victim = self.sets[set_idx].ways.remove(victim_pos);
            self.occupancy[victim.region.index()] -= 1;
            if victim.dirty {
                self.stats.writebacks += 1;
                wrote_back = true;
            }
            Some((victim.line_addr, victim.region))
        } else {
            None
        };

        self.sets[set_idx].ways.insert(
            0,
            LineEntry {
                line_addr: line,
                region,
                dirty: is_write,
            },
        );
        self.occupancy[region.index()] += 1;
        AccessResult {
            hit: false,
            evicted,
            wrote_back,
        }
    }

    /// Resident dirty-line count for one region — the lines a migration
    /// must transfer cache-to-cache rather than refetch from memory.
    pub fn dirty_occupancy(&self, region: Region) -> u64 {
        self.sets
            .iter()
            .flat_map(|s| s.ways.iter())
            .filter(|e| e.region == region && e.dirty)
            .count() as u64
    }

    /// Whether a byte address is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = &self.sets[self.set_of(line)];
        set.ways.iter().any(|e| e.line_addr == line)
    }

    /// Invalidate a line (back-invalidation from an inclusive outer
    /// level). Returns true if it was resident.
    pub fn invalidate_line(&mut self, line_addr: u64) -> bool {
        let set_idx = self.set_of(line_addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.ways.iter().position(|e| e.line_addr == line_addr) {
            let e = set.ways.remove(pos);
            self.occupancy[e.region.index()] -= 1;
            true
        } else {
            false
        }
    }

    /// Evict every resident line owned by `region`. Returns the number of
    /// lines removed.
    pub fn purge_region(&mut self, region: Region) -> u64 {
        let mut removed = 0;
        for set in &mut self.sets {
            let before = set.ways.len();
            set.ways.retain(|e| e.region != region);
            removed += (before - set.ways.len()) as u64;
        }
        self.occupancy[region.index()] -= removed;
        removed
    }

    /// Drop every resident line.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.ways.clear();
        }
        self.occupancy = [0; 6];
    }

    /// Resident line count for one region.
    pub fn occupancy(&self, region: Region) -> u64 {
        self.occupancy[region.index()]
    }

    /// Total resident lines.
    pub fn total_occupancy(&self) -> u64 {
        self.occupancy.iter().sum()
    }

    /// Fraction of `lines` (given as line addresses) still resident —
    /// the direct measurement of `1 − F(x)` for a preloaded footprint.
    pub fn resident_fraction(&self, lines: &[u64]) -> f64 {
        if lines.is_empty() {
            return 1.0;
        }
        let resident = lines
            .iter()
            .filter(|&&l| {
                let set = &self.sets[self.set_of(l)];
                set.ways.iter().any(|e| e.line_addr == l)
            })
            .count();
        resident as f64 / lines.len() as f64
    }

    /// Reset statistics (occupancy is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32) -> Cache {
        // 4 sets × assoc ways × 16-byte lines.
        let cap = 4 * assoc as u64 * 16;
        Cache::new(CacheGeometry::new(cap, 16, assoc), Replacement::Lru)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(1);
        let r1 = c.access(0x100, Region::Stream);
        assert!(!r1.hit);
        let r2 = c.access(0x104, Region::Stream); // same 16B line
        assert!(r2.hit);
        assert_eq!(c.stats.accesses, 2);
        assert_eq!(c.stats.hits, 1);
        assert!((c.stats.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = tiny(1);
        // Lines 0 and 4 map to set 0 (4 sets).
        c.access(0, Region::Stream);
        let r = c.access(4 * 16, Region::NonProtocol);
        assert!(!r.hit);
        assert_eq!(r.evicted, Some((0, Region::Stream)));
        assert!(!c.contains(0));
        assert!(c.contains(4 * 16));
        assert_eq!(c.occupancy(Region::Stream), 0);
        assert_eq!(c.occupancy(Region::NonProtocol), 1);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = tiny(2);
        // Set 0 lines: 0, 4, 8 (2-way).
        c.access(0, Region::Code);
        c.access(4 * 16, Region::Global);
        c.access(0, Region::Code); // touch line 0 again → 4*16 is LRU
        let r = c.access(8 * 16, Region::Thread);
        assert_eq!(r.evicted, Some((4, Region::Global)));
        assert!(c.contains(0));
    }

    #[test]
    fn fifo_evicts_oldest_regardless_of_touch() {
        let cap = 4 * 2 * 16;
        let mut c = Cache::new(CacheGeometry::new(cap, 16, 2), Replacement::Fifo);
        c.access(0, Region::Code);
        c.access(4 * 16, Region::Global);
        c.access(0, Region::Code); // FIFO ignores the re-touch
        let r = c.access(8 * 16, Region::Thread);
        assert_eq!(r.evicted, Some((0, Region::Code)));
    }

    #[test]
    fn random_replacement_stays_within_set() {
        let cap = 4 * 2 * 16;
        let mut c = Cache::new(CacheGeometry::new(cap, 16, 2), Replacement::Random);
        c.access(0, Region::Code);
        c.access(4 * 16, Region::Global);
        let r = c.access(8 * 16, Region::Thread);
        let (line, _) = r.evicted.unwrap();
        assert!(line == 0 || line == 4);
        assert_eq!(c.total_occupancy(), 2);
    }

    #[test]
    fn occupancy_tracks_region_change_on_retouch() {
        let mut c = tiny(1);
        c.access(0x20, Region::PacketData);
        assert_eq!(c.occupancy(Region::PacketData), 1);
        c.access(0x20, Region::Stream);
        assert_eq!(c.occupancy(Region::PacketData), 0);
        assert_eq!(c.occupancy(Region::Stream), 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny(1);
        c.access(0, Region::Stream);
        c.access(16, Region::Stream);
        assert!(c.invalidate_line(0));
        assert!(!c.invalidate_line(0));
        assert_eq!(c.total_occupancy(), 1);
        c.flush_all();
        assert_eq!(c.total_occupancy(), 0);
        assert!(!c.contains(16));
    }

    #[test]
    fn resident_fraction_measures_displacement() {
        let mut c = tiny(1);
        // Preload footprint lines 0..4 (one per set).
        let footprint: Vec<u64> = (0..4).collect();
        for &l in &footprint {
            c.access(l * 16, Region::Stream);
        }
        assert_eq!(c.resident_fraction(&footprint), 1.0);
        // Conflict-displace two of them.
        c.access(4 * 16, Region::NonProtocol); // displaces line 0
        c.access(5 * 16, Region::NonProtocol); // displaces line 1
        assert!((c.resident_fraction(&footprint) - 0.5).abs() < 1e-12);
        assert_eq!(c.resident_fraction(&[]), 1.0);
    }

    #[test]
    fn per_region_miss_ratio() {
        let mut c = tiny(1);
        c.access(0, Region::Stream); // miss
        c.access(0, Region::Stream); // hit
        c.access(16, Region::Code); // miss
        assert!((c.stats.region_miss_ratio(Region::Stream) - 0.5).abs() < 1e-12);
        assert!((c.stats.region_miss_ratio(Region::Code) - 1.0).abs() < 1e-12);
        assert_eq!(c.stats.region_miss_ratio(Region::Thread), 0.0);
    }

    #[test]
    fn dirty_tracking_and_writebacks() {
        let mut c = tiny(1);
        // Clean fill, then dirty it, then conflict-evict.
        c.access(0, Region::Stream);
        assert_eq!(c.dirty_occupancy(Region::Stream), 0);
        c.access_rw(4, Region::Stream, true); // same line, write
        assert_eq!(c.dirty_occupancy(Region::Stream), 1);
        let r = c.access(4 * 16, Region::NonProtocol); // conflicts in set 0
        assert!(r.wrote_back, "dirty victim must write back");
        assert_eq!(c.stats.writebacks, 1);
        assert_eq!(c.dirty_occupancy(Region::Stream), 0);
        // Clean victim evicts silently.
        let r = c.access(8 * 16, Region::NonProtocol);
        assert!(!r.wrote_back);
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn write_miss_fills_dirty() {
        let mut c = tiny(1);
        c.access_rw(0x10, Region::Thread, true);
        assert_eq!(c.dirty_occupancy(Region::Thread), 1);
        // A read hit does not clean it.
        c.access(0x10, Region::Thread);
        assert_eq!(c.dirty_occupancy(Region::Thread), 1);
    }

    #[test]
    fn purge_region_removes_only_that_region() {
        let mut c = tiny(2);
        c.access(0, Region::Stream);
        c.access(16, Region::Stream);
        c.access(32, Region::Code);
        assert_eq!(c.purge_region(Region::Stream), 2);
        assert_eq!(c.occupancy(Region::Stream), 0);
        assert_eq!(c.occupancy(Region::Code), 1);
        assert!(!c.contains(0));
        assert!(c.contains(32));
        assert_eq!(c.purge_region(Region::Stream), 0);
    }

    #[test]
    fn stats_reset_preserves_contents() {
        let mut c = tiny(1);
        c.access(0, Region::Stream);
        c.reset_stats();
        assert_eq!(c.stats.accesses, 0);
        assert!(c.contains(0));
        assert!(c.access(0, Region::Stream).hit);
    }
}
