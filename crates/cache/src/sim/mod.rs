//! Trace-driven simulation: region-tagged references, a set-associative
//! cache, the two-level hierarchy with inclusion and cycle accounting,
//! and a synthetic SST-like workload generator for cross-validation.

pub mod cache;
pub mod hierarchy;
pub mod synth;
pub mod trace;

pub use cache::{AccessResult, Cache, CacheStats, Replacement};
pub use hierarchy::{HierarchyStats, MemoryHierarchy, ServedBy};
pub use synth::{measure_growth, SynthParams, SynthWorkload};
pub use trace::{CountingSink, MemRef, Region, TraceBuffer, TraceSink};
