//! Region-tagged memory-reference traces.
//!
//! The calibration experiments need to know not just *whether* a line is
//! cached but *whose* it is: the paper's Section-4 methodology isolates
//! the individual components of affinity overhead (protocol code/globals,
//! thread stack, per-stream connection state, packet data). Every
//! reference therefore carries a [`Region`] tag, and the cache simulator
//! tracks per-region occupancy.

/// The logical owner of a memory reference / cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Protocol text (instruction fetches) and read-mostly tables.
    Code,
    /// Shared mutable protocol structures (demux maps, counters, locks).
    Global,
    /// A thread's stack and control block.
    Thread,
    /// Per-stream (connection) protocol state: sessions, PCBs.
    Stream,
    /// Packet headers and payload.
    PacketData,
    /// The competing non-protocol workload.
    NonProtocol,
}

impl Region {
    /// All regions, for iteration in reports.
    pub const ALL: [Region; 6] = [
        Region::Code,
        Region::Global,
        Region::Thread,
        Region::Stream,
        Region::PacketData,
        Region::NonProtocol,
    ];

    /// Short fixed-width label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Region::Code => "code",
            Region::Global => "global",
            Region::Thread => "thread",
            Region::Stream => "stream",
            Region::PacketData => "packet",
            Region::NonProtocol => "nonproto",
        }
    }

    /// Index into dense per-region arrays.
    pub fn index(self) -> usize {
        match self {
            Region::Code => 0,
            Region::Global => 1,
            Region::Thread => 2,
            Region::Stream => 3,
            Region::PacketData => 4,
            Region::NonProtocol => 5,
        }
    }
}

/// One memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Byte address.
    pub addr: u64,
    /// Owner tag.
    pub region: Region,
    /// Instruction fetch (routes to L1-I on a split L1).
    pub is_instr: bool,
    /// Store (tracked for statistics; the timing model charges reads and
    /// writes identically, as the paper's reference-rate model does).
    pub is_write: bool,
}

impl MemRef {
    /// A data read.
    pub fn read(addr: u64, region: Region) -> Self {
        MemRef {
            addr,
            region,
            is_instr: false,
            is_write: false,
        }
    }

    /// A data write.
    pub fn write(addr: u64, region: Region) -> Self {
        MemRef {
            addr,
            region,
            is_instr: false,
            is_write: true,
        }
    }

    /// An instruction fetch.
    pub fn fetch(addr: u64) -> Self {
        MemRef {
            addr,
            region: Region::Code,
            is_instr: true,
            is_write: false,
        }
    }
}

/// Anything that consumes a reference stream.
pub trait TraceSink {
    /// Consume one reference.
    fn access(&mut self, mref: MemRef);
}

/// A sink that simply buffers references (for replay / unique counting).
#[derive(Debug, Default, Clone)]
pub struct TraceBuffer {
    /// The recorded references, in order.
    pub refs: Vec<MemRef>,
}

impl TraceBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count unique `line_bytes`-sized lines in the buffer — the exact
    /// footprint `u(R, L)` of the recorded stream.
    pub fn unique_lines(&self, line_bytes: u64) -> u64 {
        assert!(line_bytes.is_power_of_two());
        let mut lines: Vec<u64> = self.refs.iter().map(|r| r.addr / line_bytes).collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len() as u64
    }

    /// Number of references recorded.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True when no references are recorded.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }
}

impl TraceSink for TraceBuffer {
    fn access(&mut self, mref: MemRef) {
        self.refs.push(mref);
    }
}

/// A sink that counts references without storing them.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Total references seen.
    pub count: u64,
    /// Writes seen.
    pub writes: u64,
    /// Instruction fetches seen.
    pub fetches: u64,
}

impl TraceSink for CountingSink {
    fn access(&mut self, mref: MemRef) {
        self.count += 1;
        if mref.is_write {
            self.writes += 1;
        }
        if mref.is_instr {
            self.fetches += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_labels_and_indices_unique() {
        let mut labels: Vec<&str> = Region::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
        let mut idx: Vec<usize> = Region::ALL.iter().map(|r| r.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn unique_lines_counts_lines_not_bytes() {
        let mut buf = TraceBuffer::new();
        // Four references in the same 16-byte line, one in the next.
        for a in [0u64, 4, 8, 12, 16] {
            buf.access(MemRef::read(a, Region::Stream));
        }
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.unique_lines(16), 2);
        assert_eq!(buf.unique_lines(32), 1);
        assert_eq!(buf.unique_lines(4), 5);
    }

    #[test]
    fn counting_sink_tallies() {
        let mut c = CountingSink::default();
        c.access(MemRef::read(0, Region::Global));
        c.access(MemRef::write(8, Region::Global));
        c.access(MemRef::fetch(0x1000));
        assert_eq!(c.count, 3);
        assert_eq!(c.writes, 1);
        assert_eq!(c.fetches, 1);
    }

    #[test]
    fn constructors_set_flags() {
        assert!(MemRef::fetch(0).is_instr);
        assert!(!MemRef::read(0, Region::Code).is_instr);
        assert!(MemRef::write(0, Region::Code).is_write);
    }
}
