//! The Singh–Stone–Thiebaut footprint function `u(R, L)`.
//!
//! `u(R, L)` is the expected number of **unique cache lines** of size `L`
//! bytes touched by a workload in `R` memory references. Singh, Stone and
//! Thiebaut (IEEE Trans. Computers, 41(7), 1992) show it is closely
//! modelled by
//!
//! ```text
//! u(R, L) = W · L^a · R^b · d^(log L · log R)          (base-10 logs)
//! ```
//!
//! where `W`, `a`, `b`, `d` capture working-set size, spatial locality,
//! temporal locality, and the spatial×temporal interaction of the
//! intervening processing.
//!
//! The paper parameterizes the non-protocol workload with the constants
//! the SST authors fitted to a 200-million-reference trace of a
//! multiprogrammed IBM/370 MVS system (user applications plus OS
//! activity):
//!
//! ```text
//! W = 2.19827   a = 0.033233   b = 0.827457   log d = −0.13025
//! ```
//!
//! These exact constants are exported as [`MVS_WORKLOAD`].

/// Parameters of the SST footprint model (base-10 logs in the cross term).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SstParams {
    /// Multiplicative working-set constant `W`.
    pub w: f64,
    /// Spatial-locality exponent `a` (on line size `L`).
    pub a: f64,
    /// Temporal-locality exponent `b` (on reference count `R`).
    pub b: f64,
    /// `log₁₀ d` for the interaction term `d^(log L · log R)`.
    pub log_d: f64,
}

/// The multiprogrammed IBM/370 MVS workload constants used by the paper
/// (Salehi/Kurose/Towsley §appendix, quoting Singh–Stone–Thiebaut).
pub const MVS_WORKLOAD: SstParams = SstParams {
    w: 2.19827,
    a: 0.033233,
    b: 0.827457,
    log_d: -0.13025,
};

impl SstParams {
    /// Is the model monotone increasing in `R` at this line size?
    ///
    /// The fitted power law grows like `R^(b + log d · log L)`, so it is
    /// monotone iff `b + log₁₀d · log₁₀L ≥ 0`. The MVS constants satisfy
    /// this for every line size below ~2 MB; wildly different parameter
    /// sets (outside the empirical fitting domain) may not.
    pub fn is_monotone_for(&self, line_bytes: f64) -> bool {
        self.b + self.log_d * line_bytes.log10() >= 0.0
    }

    /// Expected unique `line_bytes`-sized lines touched in `refs` references.
    ///
    /// The raw power law is clamped to the hard bound `u ≤ refs` (one new
    /// line per reference at most); `refs = 0` yields 0.
    pub fn footprint(&self, refs: f64, line_bytes: f64) -> f64 {
        assert!(line_bytes >= 1.0, "line size must be >= 1 byte");
        assert!(refs >= 0.0, "negative reference count");
        if refs < 1.0 {
            // Fewer than one reference touches (fractionally) that many lines.
            return refs.max(0.0);
        }
        let log_l = line_bytes.log10();
        let log_r = refs.log10();
        let log_u = self.w.log10() + self.a * log_l + self.b * log_r + self.log_d * log_l * log_r;
        let u = 10f64.powf(log_u);
        u.min(refs)
    }

    /// Precompute the line-size-dependent constants of the power law for
    /// repeated evaluation at one `line_bytes` (the per-dispatch hot
    /// path evaluates `u(R, L)` for the two fixed cache line sizes on
    /// every packet). The returned [`LineFootprint`] is bit-identical to
    /// [`Self::footprint`] at the same line size — see
    /// [`LineFootprint::footprint`] for the operation-order argument.
    pub fn at_line(&self, line_bytes: f64) -> LineFootprint {
        assert!(line_bytes >= 1.0, "line size must be >= 1 byte");
        let log_l = line_bytes.log10();
        LineFootprint {
            // Exactly the first two terms of `log_u` as `footprint`
            // associates them: `(W.log10() + a·log_l)`.
            base: self.w.log10() + self.a * log_l,
            b: self.b,
            // The cross term's left-associated factor `(log_d·log_l)`.
            cross: self.log_d * log_l,
        }
    }

    /// The number of references needed to touch `lines` unique lines
    /// (inverse of [`Self::footprint`] in `R`), via bisection.
    ///
    /// Useful for answering "how long until the workload has walked over a
    /// whole cache?". Returns `f64::INFINITY` if unreachable within
    /// `1e18` references.
    pub fn refs_for_footprint(&self, lines: f64, line_bytes: f64) -> f64 {
        assert!(lines >= 0.0);
        if lines == 0.0 {
            return 0.0;
        }
        let mut lo = 1.0f64;
        let mut hi = 1e18f64;
        if self.footprint(hi, line_bytes) < lines {
            return f64::INFINITY;
        }
        for _ in 0..200 {
            let mid = (lo.ln() + hi.ln()).mul_add(0.5, 0.0).exp(); // geometric midpoint
            if self.footprint(mid, line_bytes) < lines {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

/// [`SstParams::footprint`] specialized to one line size, with the
/// line-size-dependent subexpressions folded into constants.
///
/// Bit-identity argument: the original evaluates
/// `log_u = ((W.log10() + a·log_l) + b·log_r) + (log_d·log_l)·log_r`
/// (Rust's left-associated `+`/`*`). `base` and `cross` are exactly the
/// two parenthesized groups that do not involve `log_r`; folding them
/// performs the identical IEEE-754 operations in the identical order,
/// so every intermediate — and the result — has the same bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFootprint {
    /// `W.log10() + a·log_l`.
    base: f64,
    /// Temporal exponent `b` (unchanged).
    b: f64,
    /// `log_d · log_l`.
    cross: f64,
}

impl LineFootprint {
    /// Expected unique lines touched in `refs` references; bit-identical
    /// to [`SstParams::footprint`] at the precomputed line size.
    pub fn footprint(&self, refs: f64) -> f64 {
        assert!(refs >= 0.0, "negative reference count");
        if refs < 1.0 {
            return refs.max(0.0);
        }
        let log_r = refs.log10();
        let log_u = self.base + self.b * log_r + self.cross * log_r;
        let u = 10f64.powf(log_u);
        u.min(refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_line_bitwise_matches_footprint() {
        for &l in &[4.0, 16.0, 64.0, 128.0, 4096.0] {
            let lf = MVS_WORKLOAD.at_line(l);
            for i in 0..4000 {
                // Awkward, non-round reference counts across 12 decades.
                let refs = 0.37_f64 * (1.013_f64).powi(i) + (i as f64) * 0.61;
                let a = MVS_WORKLOAD.footprint(refs, l);
                let b = lf.footprint(refs);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "u({refs}, {l}) diverged: {a} vs {b}"
                );
            }
            assert_eq!(lf.footprint(0.0).to_bits(), 0.0f64.to_bits());
            assert_eq!(lf.footprint(0.5), MVS_WORKLOAD.footprint(0.5, l));
        }
    }

    #[test]
    fn mvs_constants_match_paper() {
        assert_eq!(MVS_WORKLOAD.w, 2.19827);
        assert_eq!(MVS_WORKLOAD.a, 0.033233);
        assert_eq!(MVS_WORKLOAD.b, 0.827457);
        assert_eq!(MVS_WORKLOAD.log_d, -0.13025);
    }

    #[test]
    fn footprint_zero_refs_is_zero() {
        assert_eq!(MVS_WORKLOAD.footprint(0.0, 16.0), 0.0);
    }

    #[test]
    fn footprint_monotone_in_refs() {
        let mut prev = 0.0;
        for &r in &[1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7] {
            let u = MVS_WORKLOAD.footprint(r, 16.0);
            assert!(u > prev, "u({r}) = {u} not > {prev}");
            prev = u;
        }
    }

    #[test]
    fn footprint_bounded_by_refs() {
        for &r in &[1.0, 2.0, 5.0, 100.0, 1e6] {
            for &l in &[4.0, 16.0, 128.0] {
                let u = MVS_WORKLOAD.footprint(r, l);
                assert!(u <= r, "u({r},{l}) = {u} > R");
                assert!(u >= 0.0);
            }
        }
    }

    #[test]
    fn larger_lines_fewer_unique_lines() {
        // For any realistic R, larger lines exploit spatial locality: the
        // effective exponent of L is a + log_d·log10(R) < 0 once R ≳ 2.
        for &r in &[100.0, 1e4, 1e6] {
            let u16 = MVS_WORKLOAD.footprint(r, 16.0);
            let u128 = MVS_WORKLOAD.footprint(r, 128.0);
            assert!(u128 < u16, "u({r},128)={u128} not < u({r},16)={u16}");
        }
    }

    #[test]
    fn known_magnitudes() {
        // Spot values hand-computed from the formula (regression pins).
        // u(20000, 16): 10^(0.3420 + 0.0332·1.2041 + 0.8275·4.3010
        //                    − 0.13025·1.2041·4.3010) ≈ 1.85e3
        let u = MVS_WORKLOAD.footprint(20_000.0, 16.0);
        assert!((u - 1850.0).abs() / 1850.0 < 0.02, "u = {u}");
        // u(20000, 128) ≈ 6.2e2
        let u2 = MVS_WORKLOAD.footprint(20_000.0, 128.0);
        assert!((u2 - 618.0).abs() / 618.0 < 0.03, "u2 = {u2}");
    }

    #[test]
    fn inverse_roundtrip() {
        let lines = 1000.0;
        let r = MVS_WORKLOAD.refs_for_footprint(lines, 16.0);
        let u = MVS_WORKLOAD.footprint(r, 16.0);
        assert!((u - lines).abs() / lines < 1e-6, "u(R⁻¹) = {u}");
    }

    #[test]
    fn inverse_of_zero_is_zero() {
        assert_eq!(MVS_WORKLOAD.refs_for_footprint(0.0, 16.0), 0.0);
    }

    #[test]
    fn sublinear_growth() {
        // Doubling references should much less than double footprint at
        // large R (temporal locality b < 1 plus negative interaction).
        let u1 = MVS_WORKLOAD.footprint(1e6, 16.0);
        let u2 = MVS_WORKLOAD.footprint(2e6, 16.0);
        assert!(u2 / u1 < 1.8);
        assert!(u2 / u1 > 1.0);
    }
}
