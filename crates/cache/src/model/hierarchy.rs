//! Two-level displacement curves `F1(x)`, `F2(x)`.
//!
//! Given that non-protocol processing has executed for time `x` on a
//! processor since protocol code last ran there, the model computes the
//! fractions of the protocol footprint displaced from L1 and L2:
//!
//! 1. the workload issued `R = x · clock / m` references in that time;
//! 2. on a split L1, each half sees `R/2` of the stream (the paper's
//!    equal-split assumption, supported by Hill & Smith's measurements);
//!    the unified L2 sees the full stream filtered through L1 — the model
//!    conservatively applies all `R` references' footprint to L2, which is
//!    exact for unique-line counting because every unique line visits L2
//!    once regardless of later L1 hits;
//! 3. the unique-line counts `u(R_level, L_level)` come from the SST
//!    footprint function ([`SstParams`]);
//! 4. the displaced fractions come from the binomial set-conflict model
//!    ([`flushed_fraction`]).
//!
//! As the paper observes, the footprint is flushed much more slowly from
//! L2 than from L1, reflecting L2's much larger size — L1 erodes on a
//! millisecond scale, L2 over hundreds of milliseconds (see tests).

use afs_desim::time::SimDuration;

use super::flush::flushed_fraction;
use super::footprint::SstParams;
use super::platform::Platform;

/// Displaced footprint fractions at each level after `x` of intervening
/// non-protocol execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Displacement {
    /// Fraction of the footprint no longer in L1.
    pub f1: f64,
    /// Fraction of the footprint no longer in L2.
    pub f2: f64,
}

impl Displacement {
    /// Nothing displaced (protocol just ran here).
    pub const NONE: Displacement = Displacement { f1: 0.0, f2: 0.0 };
    /// Everything displaced (fully cold processor).
    pub const FULL: Displacement = Displacement { f1: 1.0, f2: 1.0 };
}

/// The flush model: a platform plus the locality parameters of the
/// intervening (non-protocol) workload.
#[derive(Debug, Clone, Copy)]
pub struct FlushModel {
    /// Cache geometry and timing.
    pub platform: Platform,
    /// SST locality constants of the intervening workload.
    pub workload: SstParams,
}

impl FlushModel {
    /// Build a flush model.
    pub fn new(platform: Platform, workload: SstParams) -> Self {
        FlushModel { platform, workload }
    }

    /// `F1(x)` and `F2(x)` for intervening non-protocol time `x`.
    pub fn displacement(&self, x: SimDuration) -> Displacement {
        let refs = self.platform.refs_in(x.as_secs_f64());
        self.displacement_refs(refs)
    }

    /// Displacement after a given number of intervening references.
    pub fn displacement_refs(&self, refs: f64) -> Displacement {
        if refs <= 0.0 {
            return Displacement::NONE;
        }
        let p = &self.platform;
        let r1 = if p.l1_split { refs * 0.5 } else { refs };
        let u1 = self.workload.footprint(r1, p.l1.line_bytes as f64);
        let u2 = self.workload.footprint(refs, p.l2.line_bytes as f64);
        Displacement {
            f1: flushed_fraction(u1, p.l1.sets(), p.l1.associativity),
            f2: flushed_fraction(u2, p.l2.sets(), p.l2.associativity),
        }
    }

    /// The intervening time after which L1 displacement reaches `frac`
    /// (bisection; useful for characterizing the platform).
    pub fn time_to_l1_fraction(&self, frac: f64) -> SimDuration {
        self.time_to_fraction(frac, |d| d.f1)
    }

    /// The intervening time after which L2 displacement reaches `frac`.
    pub fn time_to_l2_fraction(&self, frac: f64) -> SimDuration {
        self.time_to_fraction(frac, |d| d.f2)
    }

    fn time_to_fraction(&self, frac: f64, pick: impl Fn(Displacement) -> f64) -> SimDuration {
        assert!((0.0..1.0).contains(&frac));
        if frac == 0.0 {
            return SimDuration::ZERO;
        }
        let mut lo_us = 1e-3f64;
        let mut hi_us = 1e9f64; // 1000 s — beyond any realistic horizon
        for _ in 0..200 {
            let mid = (lo_us.ln() + hi_us.ln()).mul_add(0.5, 0.0).exp();
            let d = self.displacement(SimDuration::from_micros_f64(mid));
            if pick(d) < frac {
                lo_us = mid;
            } else {
                hi_us = mid;
            }
        }
        SimDuration::from_micros_f64(hi_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::footprint::MVS_WORKLOAD;

    fn model() -> FlushModel {
        FlushModel::new(Platform::sgi_challenge_r4400(), MVS_WORKLOAD)
    }

    #[test]
    fn zero_time_no_displacement() {
        let d = model().displacement(SimDuration::ZERO);
        assert_eq!(d, Displacement::NONE);
    }

    #[test]
    fn displacement_monotone_in_time() {
        let m = model();
        let times = [10u64, 100, 1_000, 10_000, 100_000, 1_000_000];
        let mut prev = Displacement::NONE;
        for &us in &times {
            let d = m.displacement(SimDuration::from_micros(us));
            assert!(d.f1 >= prev.f1, "F1 not monotone at {us}us");
            assert!(d.f2 >= prev.f2, "F2 not monotone at {us}us");
            assert!((0.0..=1.0).contains(&d.f1));
            assert!((0.0..=1.0).contains(&d.f2));
            prev = d;
        }
    }

    #[test]
    fn l2_flushes_much_more_slowly_than_l1() {
        // The paper: "the protocol footprint is flushed much more slowly
        // from L2 than from L1, reflecting its much larger size."
        let m = model();
        let t1 = m.time_to_l1_fraction(0.5);
        let t2 = m.time_to_l2_fraction(0.5);
        assert!(
            t2.as_micros_f64() > 20.0 * t1.as_micros_f64(),
            "t_half(L2) = {t2} not ≫ t_half(L1) = {t1}"
        );
    }

    #[test]
    fn l1_erodes_on_millisecond_scale() {
        let m = model();
        let t1 = m.time_to_l1_fraction(0.5);
        let us = t1.as_micros_f64();
        assert!(
            (100.0..20_000.0).contains(&us),
            "L1 half-flush at {us} µs, expected O(ms)"
        );
    }

    #[test]
    fn l2_erodes_on_hundreds_of_ms_scale() {
        let m = model();
        let t2 = m.time_to_l2_fraction(0.5);
        let us = t2.as_micros_f64();
        assert!(
            (20_000.0..5_000_000.0).contains(&us),
            "L2 half-flush at {us} µs, expected O(100ms)"
        );
    }

    #[test]
    fn f1_dominates_f2_everywhere() {
        // The smaller L1 always loses at least as much as L2.
        let m = model();
        for exp in 0..8 {
            let us = 10u64.pow(exp);
            let d = m.displacement(SimDuration::from_micros(us));
            assert!(d.f1 >= d.f2, "F1 {} < F2 {} at {us}us", d.f1, d.f2);
        }
    }

    #[test]
    fn split_l1_halves_the_stream() {
        let mut unsplit = model();
        unsplit.platform.l1_split = false;
        let split = model();
        let x = SimDuration::from_micros(500);
        let du = unsplit.displacement(x);
        let ds = split.displacement(x);
        assert!(ds.f1 < du.f1, "split L1 should see fewer references");
        assert_eq!(ds.f2, du.f2, "L2 unaffected by the L1 split");
    }

    #[test]
    fn saturates_fully_cold() {
        let d = model().displacement(SimDuration::from_secs(100));
        assert!(d.f1 > 0.999999);
        assert!(d.f2 > 0.99);
    }

    #[test]
    fn spot_values_regression() {
        // Pin the curve shape: values computed from the published
        // constants; these serve as regression anchors for Figure 5.
        let m = model();
        let d1ms = m.displacement(SimDuration::from_micros(1_000));
        assert!((d1ms.f1 - 0.67).abs() < 0.05, "F1(1ms) = {}", d1ms.f1);
        assert!(d1ms.f2 < 0.12, "F2(1ms) = {}", d1ms.f2);
        let d100ms = m.displacement(SimDuration::from_micros(100_000));
        assert!(d100ms.f1 > 0.999, "F1(100ms) = {}", d100ms.f1);
        assert!(
            (0.35..0.85).contains(&d100ms.f2),
            "F2(100ms) = {}",
            d100ms.f2
        );
    }
}
