//! Analytic models: footprint growth, binomial displacement, two-level
//! `F1(x)/F2(x)` curves, the reload-transient execution-time model, the
//! platform description, and least-squares SST fitting.

pub mod exec_time;
pub mod fit;
pub mod flush;
pub mod footprint;
pub mod hierarchy;
pub mod platform;
pub mod pricer;

pub use exec_time::{Age, ComponentAges, ComponentWeights, ExecTimeModel, TimeBounds};
pub use fit::{fit_sst, FootprintObs};
pub use flush::{flushed_fraction, flushed_fraction_poisson};
pub use footprint::{LineFootprint, SstParams, MVS_WORKLOAD};
pub use hierarchy::{Displacement, FlushModel};
pub use platform::{CacheGeometry, Platform};
pub use pricer::{Component, DispatchPricer};
