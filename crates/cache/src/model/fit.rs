//! Fitting SST footprint constants to measured `(R, L, u)` triples.
//!
//! The SST model is log-linear in its parameters:
//!
//! ```text
//! log u = log W + a·log L + b·log R + (log d)·(log L · log R)
//! ```
//!
//! so ordinary least squares over `(1, log L, log R, log L·log R)`
//! recovers `(log W, a, b, log d)`. The paper takes these constants from
//! Singh–Stone–Thiebaut's MVS trace; this module lets us *re-derive*
//! constants from traces produced by our own synthetic workload generator
//! (`sim::synth`) and verify the pipeline end-to-end — the validation the
//! SST authors performed against [1, 23].

use super::footprint::SstParams;

/// One observation: `refs` references at line size `line_bytes` touched
/// `unique_lines` unique lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FootprintObs {
    /// Number of references.
    pub refs: f64,
    /// Line size in bytes.
    pub line_bytes: f64,
    /// Measured unique-line count.
    pub unique_lines: f64,
}

/// Error from [`fit_sst`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer observations than parameters (need ≥ 4, ideally many more).
    TooFewObservations,
    /// Observations are degenerate (e.g. a single line size, making the
    /// `a` and `log d` columns collinear).
    Singular,
    /// An observation had a non-positive field.
    InvalidObservation,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewObservations => write!(f, "need at least 4 observations"),
            FitError::Singular => write!(f, "design matrix is singular (vary both R and L)"),
            FitError::InvalidObservation => write!(f, "observations must be positive"),
        }
    }
}

impl std::error::Error for FitError {}

/// Solve the 4×4 system `M·x = v` by Gaussian elimination with partial
/// pivoting. Returns `None` when singular.
fn solve4(mut m: [[f64; 4]; 4], mut v: [f64; 4]) -> Option<[f64; 4]> {
    for col in 0..4 {
        // Pivot.
        let mut best = col;
        for row in (col + 1)..4 {
            if m[row][col].abs() > m[best][col].abs() {
                best = row;
            }
        }
        if m[best][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, best);
        v.swap(col, best);
        // Eliminate below.
        for row in (col + 1)..4 {
            let k = m[row][col] / m[col][col];
            let pivot_row = m[col];
            for (c, entry) in m[row].iter_mut().enumerate().skip(col) {
                *entry -= k * pivot_row[c];
            }
            v[row] -= k * v[col];
        }
    }
    // Back-substitute.
    let mut x = [0.0; 4];
    for col in (0..4).rev() {
        let mut s = v[col];
        for c in (col + 1)..4 {
            s -= m[col][c] * x[c];
        }
        x[col] = s / m[col][col];
    }
    Some(x)
}

/// Least-squares fit of SST constants. Observations should span several
/// decades of `R` and at least two line sizes.
pub fn fit_sst(obs: &[FootprintObs]) -> Result<SstParams, FitError> {
    if obs.len() < 4 {
        return Err(FitError::TooFewObservations);
    }
    // Normal equations: (XᵀX) β = Xᵀy with X rows (1, lL, lR, lL·lR).
    let mut xtx = [[0.0f64; 4]; 4];
    let mut xty = [0.0f64; 4];
    for o in obs {
        if o.refs <= 0.0 || o.line_bytes <= 0.0 || o.unique_lines <= 0.0 {
            return Err(FitError::InvalidObservation);
        }
        let ll = o.line_bytes.log10();
        let lr = o.refs.log10();
        let row = [1.0, ll, lr, ll * lr];
        let y = o.unique_lines.log10();
        for i in 0..4 {
            for j in 0..4 {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * y;
        }
    }
    let beta = solve4(xtx, xty).ok_or(FitError::Singular)?;
    Ok(SstParams {
        w: 10f64.powf(beta[0]),
        a: beta[1],
        b: beta[2],
        log_d: beta[3],
    })
}

/// Root-mean-square relative error of a parameter set on observations, in
/// log space (the quantity the fit minimizes).
pub fn fit_rms_log_error(params: &SstParams, obs: &[FootprintObs]) -> f64 {
    let mut se = 0.0;
    for o in obs {
        let pred = params.footprint(o.refs, o.line_bytes).max(1e-12);
        let e = pred.log10() - o.unique_lines.log10();
        se += e * e;
    }
    (se / obs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::footprint::MVS_WORKLOAD;

    /// Generate noiseless observations straight from the MVS model.
    fn synthetic_obs() -> Vec<FootprintObs> {
        let mut out = Vec::new();
        for &l in &[16.0, 32.0, 64.0, 128.0] {
            for e in 2..8 {
                let r = 10f64.powi(e);
                out.push(FootprintObs {
                    refs: r,
                    line_bytes: l,
                    unique_lines: MVS_WORKLOAD.footprint(r, l),
                });
            }
        }
        out
    }

    #[test]
    fn recovers_exact_parameters_from_noiseless_data() {
        let obs = synthetic_obs();
        let p = fit_sst(&obs).unwrap();
        assert!((p.w - MVS_WORKLOAD.w).abs() < 1e-6, "W = {}", p.w);
        assert!((p.a - MVS_WORKLOAD.a).abs() < 1e-8, "a = {}", p.a);
        assert!((p.b - MVS_WORKLOAD.b).abs() < 1e-8, "b = {}", p.b);
        assert!(
            (p.log_d - MVS_WORKLOAD.log_d).abs() < 1e-8,
            "log_d = {}",
            p.log_d
        );
        assert!(fit_rms_log_error(&p, &obs) < 1e-9);
    }

    #[test]
    fn robust_to_small_noise() {
        let mut obs = synthetic_obs();
        // ±2 % deterministic "noise".
        for (i, o) in obs.iter_mut().enumerate() {
            let eps = if i % 2 == 0 { 1.02 } else { 0.98 };
            o.unique_lines *= eps;
        }
        let p = fit_sst(&obs).unwrap();
        assert!((p.b - MVS_WORKLOAD.b).abs() < 0.02, "b drifted: {}", p.b);
        assert!(fit_rms_log_error(&p, &obs) < 0.02);
    }

    #[test]
    fn too_few_observations_rejected() {
        let obs = synthetic_obs();
        assert_eq!(
            fit_sst(&obs[..3]).unwrap_err(),
            FitError::TooFewObservations
        );
    }

    #[test]
    fn single_line_size_is_singular() {
        let obs: Vec<_> = (2..10)
            .map(|e| {
                let r = 10f64.powi(e);
                FootprintObs {
                    refs: r,
                    line_bytes: 16.0,
                    unique_lines: MVS_WORKLOAD.footprint(r, 16.0),
                }
            })
            .collect();
        assert_eq!(fit_sst(&obs).unwrap_err(), FitError::Singular);
    }

    #[test]
    fn invalid_observation_rejected() {
        let mut obs = synthetic_obs();
        obs[0].unique_lines = 0.0;
        assert_eq!(fit_sst(&obs).unwrap_err(), FitError::InvalidObservation);
    }

    #[test]
    fn solve4_identity() {
        let m = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 2.0, 0.0, 0.0],
            [0.0, 0.0, 4.0, 0.0],
            [0.0, 0.0, 0.0, 8.0],
        ];
        let x = solve4(m, [1.0, 2.0, 4.0, 8.0]).unwrap();
        for v in x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn solve4_detects_singular() {
        let m = [[1.0, 1.0, 0.0, 0.0]; 4];
        assert!(solve4(m, [1.0; 4]).is_none());
    }
}
