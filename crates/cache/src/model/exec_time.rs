//! Packet execution time as a reload-transient interpolation.
//!
//! The paper models the execution time of protocol processing that finds
//! fractions `F1`, `F2` of its footprint displaced from L1 and L2 as the
//! linear interpolation between three measured bounds (the approach of
//! Squillante & Lazowska's `D + R·C`, generalized to two cache levels):
//!
//! ```text
//! T = t_warm + F1·(t_L2 − t_warm) + F2·(t_cold − t_L2)
//! ```
//!
//! * `t_warm` — footprint entirely in L1 (and L2),
//! * `t_L2`   — footprint in L2 but displaced from L1,
//! * `t_cold` — footprint in neither cache (the paper measures
//!   `t_cold = 284.3 µs` for receive-side UDP/IP/FDDI processing).
//!
//! The paper's Section-4 experiments isolate the affinity-sensitive
//! footprint into **components** that age independently:
//!
//! * **code/global** — protocol text and shared structures; warm iff
//!   *any* protocol processing ran on this processor recently;
//! * **thread** — thread stack and control block; follows the thread;
//! * **stream** — per-connection state (PCB, session, routes); follows
//!   the stream, and migrates between caches when consecutive packets of
//!   a stream are processed on different processors.
//!
//! Each component contributes its weight `w_c` of the reload span, scaled
//! by the displacement of *its own* age, and migrated components pay a
//! remote-fetch premium (cache-to-cache intervention instead of a plain
//! memory fill). On top of the affinity-sensitive time, a packet may carry
//! a fixed uncached overhead `V` (data-touching work: copies, checksums —
//! the paper's Figures 10/11 parameter) and paradigm overhead (locking).

use afs_desim::time::SimDuration;

use super::hierarchy::{Displacement, FlushModel};

/// Measured per-packet protocol time bounds (µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBounds {
    /// Everything in L1: minimum processing time.
    pub t_warm_us: f64,
    /// Footprint in L2 only.
    pub t_l2_us: f64,
    /// Footprint in memory only (the paper: 284.3 µs).
    pub t_cold_us: f64,
}

impl TimeBounds {
    /// Validate ordering `t_warm ≤ t_L2 ≤ t_cold`.
    pub fn new(t_warm_us: f64, t_l2_us: f64, t_cold_us: f64) -> Self {
        assert!(
            0.0 < t_warm_us && t_warm_us <= t_l2_us && t_l2_us <= t_cold_us,
            "bounds must satisfy 0 < warm <= l2 <= cold; got {t_warm_us}, {t_l2_us}, {t_cold_us}"
        );
        TimeBounds {
            t_warm_us,
            t_l2_us,
            t_cold_us,
        }
    }

    /// The full reload transient `t_cold − t_warm` (µs).
    pub fn reload_span_us(&self) -> f64 {
        self.t_cold_us - self.t_warm_us
    }
}

/// How the affinity-sensitive reload span divides among the independently
/// aging footprint components. Weights must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentWeights {
    /// Protocol code + shared global structures.
    pub code_global: f64,
    /// Per-thread stack and control state.
    pub thread: f64,
    /// Per-stream (connection) protocol state.
    pub stream: f64,
}

impl ComponentWeights {
    /// Validated constructor.
    pub fn new(code_global: f64, thread: f64, stream: f64) -> Self {
        let sum = code_global + thread + stream;
        assert!(
            (sum - 1.0).abs() < 1e-9 && code_global >= 0.0 && thread >= 0.0 && stream >= 0.0,
            "weights must be non-negative and sum to 1 (sum = {sum})"
        );
        ComponentWeights {
            code_global,
            thread,
            stream,
        }
    }

    /// Nominal division pending calibration (overwritten by the
    /// `afs-xkernel` calibration harness, which measures the real split).
    pub fn nominal() -> Self {
        ComponentWeights::new(0.55, 0.15, 0.30)
    }
}

/// The cache age of one footprint component at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Age {
    /// Just used on this processor (no displacement).
    Warm,
    /// Last used on this processor, with the given intervening
    /// non-protocol execution time since.
    Elapsed(SimDuration),
    /// Resident in another processor's cache: full reload at the
    /// remote-fetch premium.
    Remote,
    /// Never loaded anywhere (first touch) or known fully displaced:
    /// full reload from memory.
    Cold,
}

/// Ages of all three components at dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentAges {
    /// Code/global component age (per-processor).
    pub code_global: Age,
    /// Thread component age.
    pub thread: Age,
    /// Stream-state component age.
    pub stream: Age,
}

impl ComponentAges {
    /// Everything warm: the best case.
    pub const ALL_WARM: ComponentAges = ComponentAges {
        code_global: Age::Warm,
        thread: Age::Warm,
        stream: Age::Warm,
    };

    /// Everything cold: the worst (non-migrated) case.
    pub const ALL_COLD: ComponentAges = ComponentAges {
        code_global: Age::Cold,
        thread: Age::Cold,
        stream: Age::Cold,
    };

    /// All components share one elapsed age (the classic single-footprint
    /// model of the paper's equation).
    pub fn uniform(x: SimDuration) -> Self {
        ComponentAges {
            code_global: Age::Elapsed(x),
            thread: Age::Elapsed(x),
            stream: Age::Elapsed(x),
        }
    }
}

/// The full execution-time model.
#[derive(Debug, Clone, Copy)]
pub struct ExecTimeModel {
    /// Measured time bounds.
    pub bounds: TimeBounds,
    /// Displacement curves for the platform/workload pair.
    pub flush: FlushModel,
    /// Component split of the reload span.
    pub weights: ComponentWeights,
    /// Extra fraction of a component's cold reload charged when it must
    /// be fetched from a remote cache instead of memory (dirty-line
    /// intervention + invalidation traffic on the Challenge bus).
    pub remote_premium: f64,
}

impl ExecTimeModel {
    /// Build a model.
    pub fn new(bounds: TimeBounds, flush: FlushModel, weights: ComponentWeights) -> Self {
        ExecTimeModel {
            bounds,
            flush,
            weights,
            remote_premium: 0.35,
        }
    }

    /// Displacement of a component at a given age. `Remote`/`Cold` are
    /// fully displaced; `Remote` additionally reports the premium flag.
    fn component_cost_us(&self, age: Age, weight: f64) -> f64 {
        if weight == 0.0 {
            return 0.0;
        }
        let b = &self.bounds;
        let span1 = b.t_l2_us - b.t_warm_us;
        let span2 = b.t_cold_us - b.t_l2_us;
        let (d, premium) = match age {
            Age::Warm => (Displacement::NONE, 0.0),
            Age::Elapsed(x) => (self.flush.displacement(x), 0.0),
            Age::Cold => (Displacement::FULL, 0.0),
            Age::Remote => (Displacement::FULL, self.remote_premium),
        };
        let reload = d.f1 * span1 + d.f2 * span2;
        weight * (reload + premium * (span1 + span2))
    }

    /// Pure protocol processing time for the given component ages,
    /// excluding V and paradigm overheads.
    pub fn protocol_time(&self, ages: ComponentAges) -> SimDuration {
        let w = &self.weights;
        let us = self.bounds.t_warm_us
            + self.component_cost_us(ages.code_global, w.code_global)
            + self.component_cost_us(ages.thread, w.thread)
            + self.component_cost_us(ages.stream, w.stream);
        SimDuration::from_micros_f64(us)
    }

    /// Total service time: protocol time plus fixed uncached per-packet
    /// overhead `v` (data touching) plus paradigm overhead (locking).
    pub fn service_time(
        &self,
        ages: ComponentAges,
        v: SimDuration,
        paradigm_overhead: SimDuration,
    ) -> SimDuration {
        self.protocol_time(ages) + v + paradigm_overhead
    }

    /// The classic single-footprint equation
    /// `T(x) = t_warm + F1(x)·(t_L2 − t_warm) + F2(x)·(t_cold − t_L2)`.
    pub fn uniform_time(&self, x: SimDuration) -> SimDuration {
        self.protocol_time(ComponentAges::uniform(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::footprint::MVS_WORKLOAD;
    use crate::model::platform::Platform;

    fn model() -> ExecTimeModel {
        ExecTimeModel::new(
            TimeBounds::new(150.0, 185.0, 284.3),
            FlushModel::new(Platform::sgi_challenge_r4400(), MVS_WORKLOAD),
            ComponentWeights::nominal(),
        )
    }

    #[test]
    fn warm_is_t_warm() {
        let m = model();
        let t = m.protocol_time(ComponentAges::ALL_WARM);
        assert!((t.as_micros_f64() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn cold_is_t_cold() {
        let m = model();
        let t = m.protocol_time(ComponentAges::ALL_COLD);
        assert!((t.as_micros_f64() - 284.3).abs() < 1e-6);
    }

    #[test]
    fn uniform_interpolates_between_bounds() {
        let m = model();
        for &us in &[0u64, 100, 1_000, 100_000, 10_000_000] {
            let t = m.uniform_time(SimDuration::from_micros(us)).as_micros_f64();
            assert!(
                (150.0..=284.3 + 1e-6).contains(&t),
                "T({us}us) = {t} outside bounds"
            );
        }
    }

    #[test]
    fn uniform_monotone_in_age() {
        let m = model();
        let mut prev = 0.0;
        for &us in &[0u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let t = m.uniform_time(SimDuration::from_micros(us)).as_micros_f64();
            assert!(t >= prev, "T not monotone at {us}");
            prev = t;
        }
    }

    #[test]
    fn remote_costs_more_than_cold_for_that_component() {
        let m = model();
        let cold_stream = ComponentAges {
            code_global: Age::Warm,
            thread: Age::Warm,
            stream: Age::Cold,
        };
        let remote_stream = ComponentAges {
            stream: Age::Remote,
            ..cold_stream
        };
        let tc = m.protocol_time(cold_stream);
        let tr = m.protocol_time(remote_stream);
        assert!(tr > tc, "remote {tr} not > cold {tc}");
        // Premium = 0.35 × weight × span = 0.35 × 0.30 × 134.3 ≈ 14.1 µs.
        let premium = tr.as_micros_f64() - tc.as_micros_f64();
        assert!((premium - 0.35 * 0.30 * 134.3).abs() < 1e-2, "{premium}");
    }

    #[test]
    fn component_weights_partition_reload() {
        // Cold stream only ≈ warm + w_stream × span.
        let m = model();
        let t = m.protocol_time(ComponentAges {
            code_global: Age::Warm,
            thread: Age::Warm,
            stream: Age::Cold,
        });
        let expected = 150.0 + 0.30 * 134.3;
        assert!((t.as_micros_f64() - expected).abs() < 1e-9);
    }

    #[test]
    fn service_time_adds_v_and_lock() {
        let m = model();
        let t = m.service_time(
            ComponentAges::ALL_WARM,
            SimDuration::from_micros(139),
            SimDuration::from_micros(10),
        );
        assert!((t.as_micros_f64() - (150.0 + 139.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bounds must satisfy")]
    fn bounds_must_be_ordered() {
        TimeBounds::new(200.0, 150.0, 284.3);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn weights_must_sum_to_one() {
        ComponentWeights::new(0.5, 0.5, 0.5);
    }

    #[test]
    fn zero_weight_component_free() {
        let m = ExecTimeModel::new(
            TimeBounds::new(150.0, 185.0, 284.3),
            FlushModel::new(Platform::sgi_challenge_r4400(), MVS_WORKLOAD),
            ComponentWeights::new(1.0, 0.0, 0.0),
        );
        let t = m.protocol_time(ComponentAges {
            code_global: Age::Warm,
            thread: Age::Cold,
            stream: Age::Remote,
        });
        assert!((t.as_micros_f64() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn affinity_benefit_magnitude_matches_paper_band() {
        // The V = 0 upper bound on delay reduction in Figures 10/11 is
        // 40–50 %; at low load that is ≈ (t_cold − t_warm)/t_cold.
        let m = model();
        let gain = m.bounds.reload_span_us() / m.bounds.t_cold_us;
        assert!(
            (0.40..0.55).contains(&gain),
            "reload span fraction {gain} outside the paper's band"
        );
    }
}
