//! Precomputed per-dispatch pricing of the reload-transient model.
//!
//! [`ExecTimeModel::protocol_time`] sits on the simulator's hot path —
//! it runs once per packet dispatch — and recomputes, per call, values
//! that are constants of the configuration: the two reload spans, the
//! full cold/remote cost of each footprint component, the line-size
//! terms of the SST footprint power law. [`DispatchPricer`] folds those
//! into constants once per run.
//!
//! The contract is **bit identity**: every committed artifact is a
//! byte-for-byte golden, so the pricer must produce exactly the bits the
//! plain model produces. Each folded constant is computed by the same
//! IEEE-754 operations in the same order as the original expression (the
//! individual functions document their operation-order argument), and
//! the test module asserts `to_bits()` equality against the un-folded
//! model over a dense grid of ages. There is no approximation anywhere —
//! only hoisting of loop-invariant subexpressions.

use afs_desim::time::SimDuration;

use super::exec_time::{Age, ComponentAges, ExecTimeModel};
use super::flush::{flushed_fraction, flushed_fraction_direct, ln_retention};
use super::footprint::LineFootprint;
use super::hierarchy::Displacement;
use super::platform::Platform;

/// The three independently aging footprint components, as indices into
/// the pricer's precomputed cost tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Protocol text + shared globals.
    CodeGlobal = 0,
    /// Thread stack and control block.
    Thread = 1,
    /// Per-connection stream state.
    Stream = 2,
}

/// [`ExecTimeModel`] with every configuration-constant subexpression
/// precomputed. Build once per run ([`DispatchPricer::new`]), then call
/// [`DispatchPricer::protocol_time`] per dispatch.
#[derive(Debug, Clone, Copy)]
pub struct DispatchPricer {
    /// Cache geometry/timing, for `refs_in` (kept whole so the
    /// seconds→references conversion uses the original expression).
    platform: Platform,
    /// SST power law folded to the L1 line size.
    l1_foot: LineFootprint,
    /// SST power law folded to the L2 line size.
    l2_foot: LineFootprint,
    l1_sets: u64,
    l1_assoc: u32,
    l2_sets: u64,
    l2_assoc: u32,
    /// `ln(1 − 1/sets)` per level, folded for the direct-mapped
    /// closed form (unused when the level is set-associative).
    l1_ln_q: f64,
    l2_ln_q: f64,
    l1_split: bool,
    t_warm_us: f64,
    /// `t_L2 − t_warm`, exactly as `component_cost_us` computes it.
    span1: f64,
    /// `t_cold − t_L2`.
    span2: f64,
    /// Component weights in [`Component`] order.
    weights: [f64; 3],
    /// Full cold cost per component: the bits of
    /// `w·((1·span1 + 1·span2) + 0·(span1+span2))`.
    cold_us: [f64; 3],
    /// Full remote-fetch cost per component: the bits of
    /// `w·((1·span1 + 1·span2) + premium·(span1+span2))`.
    remote_us: [f64; 3],
}

impl DispatchPricer {
    /// Fold `model`'s configuration constants. Pure precomputation: the
    /// pricer answers every query with the same bits as `model`.
    pub fn new(model: &ExecTimeModel) -> Self {
        let b = &model.bounds;
        // Exactly the spans `component_cost_us` recomputes per call.
        let span1 = b.t_l2_us - b.t_warm_us;
        let span2 = b.t_cold_us - b.t_l2_us;
        let weights = [
            model.weights.code_global,
            model.weights.thread,
            model.weights.stream,
        ];
        // For Cold, `component_cost_us` evaluates, in order:
        //   reload = 1.0·span1 + 1.0·span2
        //   weight · (reload + 0.0·(span1 + span2))
        // and for Remote the same with `premium` in place of `0.0`.
        // Reproduce those exact operations here, once.
        let priced = |weight: f64, premium: f64| {
            let reload = 1.0 * span1 + 1.0 * span2;
            weight * (reload + premium * (span1 + span2))
        };
        let p = &model.flush.platform;
        DispatchPricer {
            platform: *p,
            l1_foot: model.flush.workload.at_line(p.l1.line_bytes as f64),
            l2_foot: model.flush.workload.at_line(p.l2.line_bytes as f64),
            l1_sets: p.l1.sets(),
            l1_assoc: p.l1.associativity,
            l2_sets: p.l2.sets(),
            l2_assoc: p.l2.associativity,
            l1_ln_q: ln_retention(p.l1.sets()),
            l2_ln_q: ln_retention(p.l2.sets()),
            l1_split: p.l1_split,
            t_warm_us: b.t_warm_us,
            span1,
            span2,
            weights,
            cold_us: weights.map(|w| priced(w, 0.0)),
            remote_us: weights.map(|w| priced(w, model.remote_premium)),
        }
    }

    /// `F1(x)/F2(x)`; bit-identical to [`FlushModel::displacement`]
    /// (same `refs_in` expression, [`LineFootprint`]s bit-identical to
    /// the un-folded power law, same [`flushed_fraction`]).
    ///
    /// [`FlushModel::displacement`]: super::hierarchy::FlushModel::displacement
    pub fn displacement(&self, x: SimDuration) -> Displacement {
        let refs = self.platform.refs_in(x.as_secs_f64());
        if refs <= 0.0 {
            return Displacement::NONE;
        }
        let r1 = if self.l1_split { refs * 0.5 } else { refs };
        // Direct-mapped levels (every platform in this workspace) take
        // the closed form with the folded `ln_q` — the same bits as
        // `flushed_fraction` minus its per-call `ln_1p`.
        let f1 = if self.l1_assoc == 1 {
            flushed_fraction_direct(self.l1_foot.footprint(r1), self.l1_ln_q)
        } else {
            flushed_fraction(self.l1_foot.footprint(r1), self.l1_sets, self.l1_assoc)
        };
        let f2 = if self.l2_assoc == 1 {
            flushed_fraction_direct(self.l2_foot.footprint(refs), self.l2_ln_q)
        } else {
            flushed_fraction(self.l2_foot.footprint(refs), self.l2_sets, self.l2_assoc)
        };
        Displacement { f1, f2 }
    }

    /// Cost of one component at a displacement it has already evaluated
    /// (an `Elapsed` age whose `F1/F2` the caller also needs for
    /// telemetry — evaluate once, use twice). Matches the original
    /// `weight · ((d.f1·span1 + d.f2·span2) + 0.0·(span1+span2))`:
    /// adding literal `+0.0` to the non-negative finite reload leaves
    /// its bits unchanged, so the trailing term is dropped.
    pub fn elapsed_cost_us(&self, d: Displacement, c: Component) -> f64 {
        self.weights[c as usize] * (d.f1 * self.span1 + d.f2 * self.span2)
    }

    /// Cost of one component at an arbitrary age; bit-identical to the
    /// model's `component_cost_us`. (`Warm` is exactly `0.0` there:
    /// every product has a `0.0` factor and non-negative cofactors.)
    pub fn component_cost_us(&self, age: Age, c: Component) -> f64 {
        match age {
            Age::Warm => 0.0,
            Age::Elapsed(x) => self.elapsed_cost_us(self.displacement(x), c),
            Age::Cold => self.cold_us[c as usize],
            Age::Remote => self.remote_us[c as usize],
        }
    }

    /// `t_warm`, for callers assembling the sum themselves.
    pub fn t_warm_us(&self) -> f64 {
        self.t_warm_us
    }

    /// Protocol time with the code/global component priced from an
    /// already-evaluated displacement (`code_disp`), sharing the one
    /// `F1/F2` evaluation between telemetry and pricing. `code_disp`
    /// must be `Some` exactly when the code age is `Elapsed`.
    ///
    /// Components whose `Elapsed` ages carry bit-equal durations also
    /// share a single displacement evaluation: `displacement` is a pure
    /// function of the elapsed time, so reusing its result for an equal
    /// input returns exactly the bits a fresh evaluation would — and the
    /// equal-age case is the common one (a thread that last ran on the
    /// dispatching processor aged in lockstep with its code footprint,
    /// and the IPS stack prices thread and stream at one shared age).
    /// Each saved evaluation avoids two `log10`+`powf` footprint calls
    /// and two `exp_m1` flush calls — the dispatch path's dominant cost.
    pub fn protocol_time_shared(
        &self,
        ages: ComponentAges,
        code_disp: Option<Displacement>,
    ) -> SimDuration {
        let code_x = match ages.code_global {
            Age::Elapsed(x) => Some(x),
            _ => None,
        };
        let code_d = match (code_x, code_disp) {
            (Some(x), None) => Some(self.displacement(x)),
            (_, d) => d,
        };
        let code = match code_d {
            Some(d) => self.elapsed_cost_us(d, Component::CodeGlobal),
            None => self.component_cost_us(ages.code_global, Component::CodeGlobal),
        };
        let mut thread_xd = None;
        let thread = match ages.thread {
            Age::Elapsed(x) => {
                let d = match code_d {
                    Some(d) if code_x == Some(x) => d,
                    _ => self.displacement(x),
                };
                thread_xd = Some((x, d));
                self.elapsed_cost_us(d, Component::Thread)
            }
            age => self.component_cost_us(age, Component::Thread),
        };
        let stream = match ages.stream {
            Age::Elapsed(x) => {
                let d = match (code_d, thread_xd) {
                    (Some(d), _) if code_x == Some(x) => d,
                    (_, Some((tx, d))) if tx == x => d,
                    _ => self.displacement(x),
                };
                self.elapsed_cost_us(d, Component::Stream)
            }
            age => self.component_cost_us(age, Component::Stream),
        };
        // The model's sum, in its order: t_warm + code + thread + stream.
        let us = self.t_warm_us + code + thread + stream;
        SimDuration::from_micros_f64(us)
    }

    /// Protocol time for the given ages; bit-identical to
    /// [`ExecTimeModel::protocol_time`].
    pub fn protocol_time(&self, ages: ComponentAges) -> SimDuration {
        self.protocol_time_shared(
            ages,
            match ages.code_global {
                Age::Elapsed(x) => Some(self.displacement(x)),
                _ => None,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::exec_time::{ComponentWeights, TimeBounds};
    use crate::model::footprint::MVS_WORKLOAD;
    use crate::model::hierarchy::FlushModel;

    fn model() -> ExecTimeModel {
        ExecTimeModel::new(
            TimeBounds::new(150.0, 185.0, 284.3),
            FlushModel::new(Platform::sgi_challenge_r4400(), MVS_WORKLOAD),
            ComponentWeights::nominal(),
        )
    }

    /// A dense, awkward (non-round) grid of elapsed times spanning
    /// sub-microsecond to hundreds of seconds.
    fn elapsed_grid() -> Vec<SimDuration> {
        (0..600)
            .map(|i| SimDuration::from_micros_f64(0.73 * (1.047_f64).powi(i) + i as f64 * 0.31))
            .collect()
    }

    #[test]
    fn displacement_bitwise_matches_flush_model() {
        let m = model();
        let p = DispatchPricer::new(&m);
        for x in elapsed_grid() {
            let a = m.flush.displacement(x);
            let b = p.displacement(x);
            assert_eq!(a.f1.to_bits(), b.f1.to_bits(), "F1({x}) diverged");
            assert_eq!(a.f2.to_bits(), b.f2.to_bits(), "F2({x}) diverged");
        }
        assert_eq!(p.displacement(SimDuration::ZERO), Displacement::NONE);
    }

    #[test]
    fn protocol_time_bitwise_matches_model() {
        let m = model();
        let p = DispatchPricer::new(&m);
        let mut ages_pool = vec![Age::Warm, Age::Cold, Age::Remote];
        for x in elapsed_grid().into_iter().step_by(37) {
            ages_pool.push(Age::Elapsed(x));
        }
        for (i, &code) in ages_pool.iter().enumerate() {
            for (j, &thread) in ages_pool.iter().enumerate() {
                // Sample the stream axis to keep the cube affordable.
                let stream = ages_pool[(i * 7 + j * 3) % ages_pool.len()];
                let ages = ComponentAges {
                    code_global: code,
                    thread,
                    stream,
                };
                let a = m.protocol_time(ages);
                let b = p.protocol_time(ages);
                assert_eq!(
                    a.as_micros_f64().to_bits(),
                    b.as_micros_f64().to_bits(),
                    "protocol_time diverged for {ages:?}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn shared_code_displacement_is_the_same_bits() {
        let m = model();
        let p = DispatchPricer::new(&m);
        for x in elapsed_grid().into_iter().step_by(11) {
            let ages = ComponentAges {
                code_global: Age::Elapsed(x),
                thread: Age::Remote,
                stream: Age::Elapsed(x),
            };
            let d = p.displacement(x);
            let shared = p.protocol_time_shared(ages, Some(d));
            let plain = m.protocol_time(ages);
            assert_eq!(
                shared.as_micros_f64().to_bits(),
                plain.as_micros_f64().to_bits()
            );
        }
    }

    #[test]
    fn component_cost_matches_weights_partition() {
        let m = model();
        let p = DispatchPricer::new(&m);
        // Cold stream component alone = w_stream × full span.
        let c = p.component_cost_us(Age::Cold, Component::Stream);
        assert!((c - 0.30 * 134.3).abs() < 1e-9, "{c}");
        // Warm components are free, remote beats cold.
        assert_eq!(p.component_cost_us(Age::Warm, Component::Thread), 0.0);
        assert!(
            p.component_cost_us(Age::Remote, Component::Stream)
                > p.component_cost_us(Age::Cold, Component::Stream)
        );
    }

    #[test]
    fn zero_weight_component_is_zero_bits() {
        let m = ExecTimeModel::new(
            TimeBounds::new(150.0, 185.0, 284.3),
            FlushModel::new(Platform::sgi_challenge_r4400(), MVS_WORKLOAD),
            ComponentWeights::new(1.0, 0.0, 0.0),
        );
        let p = DispatchPricer::new(&m);
        for age in [Age::Cold, Age::Remote, Age::Warm] {
            let c = p.component_cost_us(age, Component::Stream);
            assert_eq!(c.to_bits(), 0.0f64.to_bits(), "{age:?}");
        }
    }
}
