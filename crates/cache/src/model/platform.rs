//! Platform description: cache geometry and processor timing.
//!
//! The defaults model the paper's experimental platform — an SGI Challenge
//! XL with 100 MHz MIPS R4400 processors:
//!
//! * split 16 KB + 16 KB direct-mapped primary caches with 16-byte lines,
//! * a 1 MB direct-mapped unified secondary cache with 128-byte lines,
//! * an average memory-reference rate of one reference per `m = 5` clock
//!   cycles (the value the paper uses when computing `F(x)` "for the
//!   100-MHz clock rate of the MIPS R4400").

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line (block) size in bytes.
    pub line_bytes: u32,
    /// Associativity (1 = direct-mapped).
    pub associativity: u32,
}

impl CacheGeometry {
    /// Construct, validating that the geometry is self-consistent.
    pub fn new(capacity_bytes: u64, line_bytes: u32, associativity: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(associativity >= 1);
        assert!(
            capacity_bytes.is_multiple_of(line_bytes as u64 * associativity as u64),
            "capacity must be a whole number of sets"
        );
        let g = CacheGeometry {
            capacity_bytes,
            line_bytes,
            associativity,
        };
        assert!(g.sets() >= 1);
        g
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.line_bytes as u64 * self.associativity as u64)
    }

    /// Number of lines.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes as u64
    }
}

/// A two-level cache hierarchy on one processor, plus timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Processor clock in Hz.
    pub clock_hz: f64,
    /// Average clock cycles per memory reference issued by the workload
    /// (the paper's `m`).
    pub cycles_per_ref: f64,
    /// Primary data cache geometry.
    pub l1: CacheGeometry,
    /// True when L1 is split I/D and the intervening reference stream is
    /// divided approximately equally between the two halves (the paper's
    /// assumption, citing Hill & Smith): each half then sees `R/2`
    /// references.
    pub l1_split: bool,
    /// Secondary (unified) cache geometry.
    pub l2: CacheGeometry,
    /// L1 hit time in cycles (pipelined loads; effectively 1).
    pub l1_hit_cycles: f64,
    /// Additional cycles for an L1 miss that hits in L2.
    pub l2_hit_penalty_cycles: f64,
    /// Additional cycles for an L2 miss served from memory.
    pub mem_penalty_cycles: f64,
    /// Cycles to fetch a line from a remote processor's cache
    /// (cache-to-cache intervention on the Challenge's POWERpath-2 bus) —
    /// used for migrated stream/thread state.
    pub remote_penalty_cycles: f64,
}

impl Platform {
    /// The paper's platform: 100 MHz R4400 on an SGI Challenge XL.
    pub fn sgi_challenge_r4400() -> Self {
        Platform {
            clock_hz: 100e6,
            cycles_per_ref: 5.0,
            l1: CacheGeometry::new(16 * 1024, 16, 1),
            l1_split: true,
            l2: CacheGeometry::new(1024 * 1024, 128, 1),
            l1_hit_cycles: 1.0,
            l2_hit_penalty_cycles: 12.0,
            mem_penalty_cycles: 100.0,
            remote_penalty_cycles: 130.0,
        }
    }

    /// Memory references issued by the non-protocol workload in
    /// `elapsed_secs` seconds of wall-clock execution.
    pub fn refs_in(&self, elapsed_secs: f64) -> f64 {
        assert!(elapsed_secs >= 0.0);
        elapsed_secs * self.clock_hz / self.cycles_per_ref
    }

    /// Seconds per cycle.
    pub fn cycle_secs(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Convert a cycle count to microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r4400_geometry() {
        let p = Platform::sgi_challenge_r4400();
        assert_eq!(p.l1.sets(), 1024); // 16 KB / 16 B, direct-mapped
        assert_eq!(p.l2.sets(), 8192); // 1 MB / 128 B, direct-mapped
        assert_eq!(p.l1.lines(), 1024);
        assert_eq!(p.l2.lines(), 8192);
    }

    #[test]
    fn reference_rate_matches_paper() {
        // 100 MHz at one reference per 5 cycles → 20 references/µs.
        let p = Platform::sgi_challenge_r4400();
        let refs = p.refs_in(1e-6);
        assert!((refs - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_to_us() {
        let p = Platform::sgi_challenge_r4400();
        assert!((p.cycles_to_us(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_rejected() {
        CacheGeometry::new(1000, 16, 1);
    }

    #[test]
    fn set_associative_geometry() {
        let g = CacheGeometry::new(32 * 1024, 32, 2);
        assert_eq!(g.sets(), 512);
        assert_eq!(g.lines(), 1024);
    }
}
