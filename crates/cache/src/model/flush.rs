//! The binomial cache-displacement model.
//!
//! Following the paper's appendix (and Squillante–Lazowska / Thiebaut–Stone
//! before it): the `u` unique intervening lines are assumed to map
//! **independently and uniformly** into the `S` cache sets. The number `X`
//! of intervening lines landing in a randomly chosen set is then
//! `Binomial(n = u, p = 1/S)`.
//!
//! A resident footprint line in an `A`-way set-associative cache with LRU
//! replacement is displaced when its set receives at least `A` distinct
//! intervening lines (the footprint line is the locally least-recent entry
//! once protocol processing has been away — the conservative assumption the
//! paper makes). The expected fraction of the footprint displaced is
//! therefore
//!
//! ```text
//! F = P[X ≥ A] = 1 − Σ_{k<A} C(n,k) pᵏ (1−p)ⁿ⁻ᵏ
//! ```
//!
//! For the direct-mapped caches of the R4400/Challenge (`A = 1`) this
//! reduces to `F = 1 − (1 − 1/S)ⁿ`.

/// Expected fraction of resident footprint lines displaced when `n`
/// intervening unique lines map uniformly into `sets` sets of
/// associativity `assoc`.
///
/// `n` may be fractional (it comes from the continuous footprint model);
/// it is used directly in the exponential/log-space formulas.
pub fn flushed_fraction(n: f64, sets: u64, assoc: u32) -> f64 {
    assert!(sets >= 1, "cache must have at least one set");
    assert!(assoc >= 1, "associativity must be at least 1");
    assert!(n >= 0.0, "negative line count");
    if n == 0.0 {
        return 0.0;
    }
    let p = 1.0 / sets as f64;
    if assoc == 1 {
        return flushed_fraction_direct(n, f64::ln_1p(-p));
    }
    // P[X < A] = Σ_{k<A} C(n,k) p^k (1−p)^(n−k), generalized to real n via
    // the product form C(n,k) = Π_{j<k} (n−j)/(j+1). Terms are built
    // iteratively from term₀ = (1−p)^n.
    let ln_q = f64::ln_1p(-p);
    let mut term = (n * ln_q).exp(); // k = 0
    let mut below = term;
    let ratio_p = p / (1.0 - p);
    for k in 0..(assoc - 1) {
        let kf = k as f64;
        if n - kf <= 0.0 {
            // Fewer than k+1 intervening lines: no further mass.
            break;
        }
        term *= (n - kf) / (kf + 1.0) * ratio_p;
        below += term;
    }
    (1.0 - below).clamp(0.0, 1.0)
}

/// The direct-mapped (`A = 1`) closed form `1 − (1−p)^n`, computed
/// stably as `−expm1(n · ln(1−p))` with `ln_q = ln(1−p) = ln_1p(−1/S)`
/// supplied by the caller.
///
/// `ln_q` is a constant of the cache geometry, so per-dispatch callers
/// ([`DispatchPricer`]) fold it once per run instead of paying a `ln_1p`
/// per evaluation. Bit-identity with [`flushed_fraction`] holds because
/// the folded value is produced by exactly the same expression — only
/// *when* it is computed changes, never *what*.
///
/// [`DispatchPricer`]: super::pricer::DispatchPricer
#[inline]
pub fn flushed_fraction_direct(n: f64, ln_q: f64) -> f64 {
    if n == 0.0 {
        // Exactly the +0.0 the general entry point returns (the formula
        // would produce -0.0: different bits).
        return 0.0;
    }
    -f64::exp_m1(n * ln_q)
}

/// `ln(1 − 1/sets)`: the per-geometry constant [`flushed_fraction_direct`]
/// consumes, computed by the same expression `flushed_fraction` uses
/// inline.
pub fn ln_retention(sets: u64) -> f64 {
    assert!(sets >= 1, "cache must have at least one set");
    f64::ln_1p(-(1.0 / sets as f64))
}

/// Poisson approximation of [`flushed_fraction`]: for `sets ≫ 1` the
/// per-set hit count is ≈ Poisson(λ = n/sets), so
/// `F ≈ P[Pois(λ) ≥ A] = 1 − e^{−λ} Σ_{k<A} λᵏ/k!`.
///
/// Used as an ablation reference (see the Criterion benches): the exact
/// binomial evaluation is already O(A), so the approximation buys
/// little; it is kept to document the accuracy trade-off (relative
/// error O(1/sets)).
pub fn flushed_fraction_poisson(n: f64, sets: u64, assoc: u32) -> f64 {
    assert!(sets >= 1 && assoc >= 1 && n >= 0.0);
    if n == 0.0 {
        return 0.0;
    }
    let lambda = n / sets as f64;
    let mut term = (-lambda).exp(); // k = 0
    let mut below = term;
    for k in 0..(assoc - 1) {
        term *= lambda / (k as f64 + 1.0);
        below += term;
    }
    (1.0 - below).clamp(0.0, 1.0)
}

/// The `n` needed for a direct-mapped cache of `sets` sets to reach
/// displacement fraction `f` (inverse of [`flushed_fraction`] at A = 1).
pub fn lines_for_fraction_direct(f: f64, sets: u64) -> f64 {
    assert!((0.0..1.0).contains(&f), "fraction must be in [0,1)");
    if f == 0.0 {
        return 0.0;
    }
    let p = 1.0 / sets as f64;
    f64::ln_1p(-f) / f64::ln_1p(-p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lines_no_displacement() {
        assert_eq!(flushed_fraction(0.0, 1024, 1), 0.0);
        assert_eq!(flushed_fraction(0.0, 1024, 4), 0.0);
    }

    #[test]
    fn direct_mapped_closed_form() {
        let n = 500.0;
        let s = 1024u64;
        let f = flushed_fraction(n, s, 1);
        let expected = 1.0 - (1.0 - 1.0 / s as f64).powf(n);
        assert!((f - expected).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_lines() {
        let mut prev = -1.0;
        for &n in &[0.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
            let f = flushed_fraction(n, 1024, 1);
            assert!(f > prev || (n == 0.0 && f == 0.0));
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn saturates_to_one() {
        let f = flushed_fraction(1e7, 1024, 1);
        assert!(f > 0.999999);
        let f4 = flushed_fraction(1e7, 256, 4);
        assert!(f4 > 0.999999);
    }

    #[test]
    fn higher_associativity_displaces_less() {
        // Same total capacity: sets × assoc constant.
        let n = 800.0;
        let f1 = flushed_fraction(n, 1024, 1);
        let f2 = flushed_fraction(n, 512, 2);
        let f4 = flushed_fraction(n, 256, 4);
        assert!(f2 < f1, "2-way {f2} !< direct {f1}");
        assert!(f4 < f2, "4-way {f4} !< 2-way {f2}");
    }

    #[test]
    fn assoc_two_matches_manual_sum() {
        // P[X ≥ 2] with integer n — compare against a direct binomial sum.
        let n = 100usize;
        let sets = 64u64;
        let p = 1.0 / sets as f64;
        let q = 1.0 - p;
        let p0 = q.powi(n as i32);
        let p1 = n as f64 * p * q.powi(n as i32 - 1);
        let expected = 1.0 - p0 - p1;
        let f = flushed_fraction(n as f64, sets, 2);
        assert!((f - expected).abs() < 1e-10, "{f} vs {expected}");
    }

    #[test]
    fn small_n_high_assoc_zero() {
        // 2 intervening lines can never evict from a 4-way set under the
        // ≥A rule.
        let f = flushed_fraction(2.0, 16, 4);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn fractional_n_is_continuous() {
        let a = flushed_fraction(99.9, 1024, 1);
        let b = flushed_fraction(100.0, 1024, 1);
        let c = flushed_fraction(100.1, 1024, 1);
        assert!(a < b && b < c);
        assert!(c - a < 1e-3);
    }

    #[test]
    fn inverse_roundtrip_direct() {
        let s = 8192u64;
        for &f in &[0.01, 0.1, 0.5, 0.9, 0.999] {
            let n = lines_for_fraction_direct(f, s);
            let back = flushed_fraction(n, s, 1);
            assert!((back - f).abs() < 1e-9, "f={f} back={back}");
        }
        assert_eq!(lines_for_fraction_direct(0.0, s), 0.0);
    }

    #[test]
    fn poisson_approximation_tracks_exact() {
        // At realistic set counts the approximation is within 1e-3.
        for &sets in &[256u64, 1024, 8192] {
            for &assoc in &[1u32, 2, 4] {
                for &n in &[10.0, 100.0, 1_000.0, 10_000.0] {
                    let exact = flushed_fraction(n, sets, assoc);
                    let approx = flushed_fraction_poisson(n, sets, assoc);
                    assert!(
                        (exact - approx).abs() < 2e-3,
                        "sets={sets} A={assoc} n={n}: {exact} vs {approx}"
                    );
                }
            }
        }
    }

    #[test]
    fn poisson_approximation_diverges_at_tiny_sets() {
        // The documented failure mode: few sets, the binomial matters.
        let exact = flushed_fraction(3.0, 2, 2);
        let approx = flushed_fraction_poisson(3.0, 2, 2);
        assert!((exact - approx).abs() > 0.01);
    }

    #[test]
    fn single_set_direct_mapped_flushes_everything() {
        // One set, one way: any intervening line displaces the footprint.
        let f = flushed_fraction(1.0, 1, 1);
        assert!((f - 1.0).abs() < 1e-12);
    }
}
