//! Property tests for the unified observability layer, driven by the
//! *real* backends (dev-dependency cycle, permitted by cargo): random
//! small configurations run through the simulator and the native
//! pinned-thread runtime, and the resulting traces must satisfy the
//! schema's lifecycle invariants regardless of policy, load or seed.
//!
//! The invariants:
//! * exactly one `Enqueue` per message, at most one `Dispatch` and one
//!   `Complete`, and a `Complete` only after a `Dispatch`;
//! * per-worker dispatch timestamps are monotone (virtual clocks never
//!   run backwards);
//! * steal conservation: `Steal` events, stolen-dispatch flags and the
//!   `steals` counter all describe the same set of messages;
//! * attaching a recorder changes nothing about a simulator run;
//! * identical seed + config ⇒ byte-identical JSONL (seeded replay).

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use afs_core::prelude::*;
use afs_native::{poisson_workload, run_native, run_native_recorded, NativeConfig, PolicySpec};
use afs_obs::{MemRecorder, ObsEvent};

const CASES: u32 = 24;

/// A small random simulator configuration: short horizon, any paradigm.
fn sim_cfg(policy_ix: u8, streams: u8, rate: f64, procs: u8, seed: u64) -> SystemConfig {
    let paradigm = match policy_ix % 7 {
        0 => Paradigm::Locking {
            policy: LockPolicy::Baseline,
        },
        1 => Paradigm::Locking {
            policy: LockPolicy::Pools,
        },
        2 => Paradigm::Locking {
            policy: LockPolicy::Mru,
        },
        3 => Paradigm::Locking {
            policy: LockPolicy::Wired,
        },
        4 => Paradigm::Locking {
            policy: LockPolicy::MruLoad { max_backlog: 2 },
        },
        5 => Paradigm::Locking {
            policy: LockPolicy::MinReload,
        },
        _ => Paradigm::Ips {
            policy: IpsPolicy::Mru,
            n_stacks: 1 + (procs as usize).min(3),
        },
    };
    let mut cfg = SystemConfig::new(
        paradigm,
        Population::homogeneous_poisson(1 + streams as usize % 6, 80.0 + rate),
    );
    cfg.n_procs = 1 + procs as usize % 4;
    cfg.seed = seed;
    cfg.warmup = SimDuration::from_millis(10);
    cfg.horizon = SimDuration::from_millis(70);
    cfg
}

/// A small random native configuration plus its workload.
fn native_case(
    policy_ix: u8,
    workers: u8,
    streams: u8,
    rate: f64,
    seed: u64,
) -> (NativeConfig, Vec<afs_native::NativePacket>) {
    let spec = match policy_ix % 6 {
        0 => PolicySpec::Oblivious,
        1 => PolicySpec::Locking,
        2 | 3 => PolicySpec::Ips,
        4 => PolicySpec::MruLoad,
        _ => PolicySpec::MinReload,
    };
    let mut cfg = NativeConfig::new(1 + workers as usize % 3, spec);
    if policy_ix % 6 == 2 {
        cfg.layout.steal = None;
    }
    cfg.seed = seed ^ 0x0B5;
    let workload = poisson_workload(1 + streams as u32 % 6, 40, 60.0 + rate, 64, seed);
    (cfg, workload)
}

/// Check the lifecycle invariants on one event stream.
fn assert_lifecycle(events: &[ObsEvent]) -> Result<(), TestCaseError> {
    let mut enq: HashMap<u64, u32> = HashMap::new();
    let mut disp: HashMap<u64, u32> = HashMap::new();
    let mut comp: HashMap<u64, u32> = HashMap::new();
    let mut evicted: HashSet<u64> = HashSet::new();
    let mut last_dispatch_t: HashMap<u32, f64> = HashMap::new();
    let mut steal_seqs: HashSet<u64> = HashSet::new();
    let mut stolen_dispatch_seqs: HashSet<u64> = HashSet::new();

    for ev in events {
        match *ev {
            ObsEvent::Enqueue { seq, .. } => *enq.entry(seq).or_insert(0) += 1,
            ObsEvent::Dispatch {
                t_us,
                seq,
                worker,
                stolen,
                ..
            } => {
                *disp.entry(seq).or_insert(0) += 1;
                let last = last_dispatch_t.entry(worker).or_insert(f64::NEG_INFINITY);
                prop_assert!(
                    t_us >= *last,
                    "worker {worker} dispatch clock ran backwards: {t_us} < {last}"
                );
                *last = t_us;
                if stolen {
                    stolen_dispatch_seqs.insert(seq);
                }
            }
            ObsEvent::StealClaim { seq, from, to, .. } => {
                prop_assert!(from != to, "self-claim of seq {seq}");
            }
            ObsEvent::Steal { seq, from, to, .. } => {
                prop_assert!(from != to, "self-steal of seq {seq}");
                steal_seqs.insert(seq);
            }
            ObsEvent::Complete { seq, .. } => *comp.entry(seq).or_insert(0) += 1,
            ObsEvent::Evict { seq, .. } => {
                evicted.insert(seq);
            }
            ObsEvent::CacheCharge { .. }
            | ObsEvent::QueueDepth { .. }
            | ObsEvent::WorkerDown { .. }
            | ObsEvent::WorkerUp { .. }
            | ObsEvent::Orphaned { .. }
            | ObsEvent::Requeue { .. }
            | ObsEvent::TableMiss { .. }
            | ObsEvent::Rebind { .. } => {}
        }
    }

    for (&seq, &n) in &enq {
        prop_assert_eq!(n, 1, "message {} enqueued {} times", seq, n);
    }
    for (&seq, &n) in &disp {
        prop_assert_eq!(n, 1, "message {} dispatched {} times", seq, n);
        prop_assert!(enq.contains_key(&seq), "dispatch of never-enqueued {seq}");
        prop_assert!(!evicted.contains(&seq), "dispatch of evicted {seq}");
    }
    for (&seq, &n) in &comp {
        prop_assert_eq!(n, 1, "message {} completed {} times", seq, n);
        prop_assert!(
            disp.contains_key(&seq),
            "completion of never-dispatched {seq}"
        );
    }
    prop_assert_eq!(
        steal_seqs,
        stolen_dispatch_seqs,
        "Steal events and stolen dispatch flags describe different messages"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn simulator_traces_satisfy_the_lifecycle_invariants(
        policy_ix in 0u8..5,
        streams in 0u8..6,
        rate in 0.0f64..400.0,
        procs in 0u8..4,
        seed in any::<u64>(),
    ) {
        let mut rec = MemRecorder::new();
        let (report, _probe) = run_observed(&sim_cfg(policy_ix, streams, rate, procs, seed), &mut rec);
        assert_lifecycle(&rec.events)?;

        let c = &rec.counters;
        prop_assert_eq!(
            c.enqueued as i64,
            c.completed as i64 + c.evicted as i64 + c.in_flight(),
            "conservation violated"
        );
        prop_assert_eq!(c.dispatched, c.affinity_hits + c.stream_migrations);
        prop_assert!(c.completed_ok <= c.completed);
        prop_assert!(report.offered_total >= c.completed);
    }

    #[test]
    fn recorder_attachment_is_invisible_to_the_simulator(
        policy_ix in 0u8..5,
        streams in 0u8..6,
        rate in 0.0f64..400.0,
        procs in 0u8..4,
        seed in any::<u64>(),
    ) {
        let cfg = sim_cfg(policy_ix, streams, rate, procs, seed);
        let plain = run(&cfg);
        let mut rec = MemRecorder::new();
        let (observed, _probe) = run_observed(&cfg, &mut rec);
        prop_assert_eq!(plain, observed, "recorder changed the report");
    }

    #[test]
    fn identical_seed_and_config_replay_to_identical_jsonl(
        policy_ix in 0u8..5,
        streams in 0u8..6,
        rate in 0.0f64..400.0,
        procs in 0u8..4,
        seed in any::<u64>(),
    ) {
        let mut a = MemRecorder::new();
        let mut b = MemRecorder::new();
        let (ra, _) = run_observed(&sim_cfg(policy_ix, streams, rate, procs, seed), &mut a);
        let (rb, _) = run_observed(&sim_cfg(policy_ix, streams, rate, procs, seed), &mut b);
        prop_assert_eq!(ra, rb, "report replay diverged");
        prop_assert_eq!(
            afs_obs::jsonl::render(&a.events),
            afs_obs::jsonl::render(&b.events),
            "JSONL replay diverged"
        );
    }

    #[test]
    fn native_traces_satisfy_the_lifecycle_invariants(
        policy_ix in 0u8..4,
        workers in 0u8..3,
        streams in 0u8..6,
        rate in 0.0f64..300.0,
        seed in any::<u64>(),
    ) {
        let (cfg, workload) = native_case(policy_ix, workers, streams, rate, seed);
        let (report, rec) = run_native_recorded(&cfg, workload);
        assert_lifecycle(&rec.events)?;

        // The native runtime is lossless: the merged trace accounts for
        // every offered packet exactly once through each stage.
        let c = &rec.counters;
        prop_assert_eq!(c.enqueued, report.offered);
        prop_assert_eq!(c.dispatched, report.offered);
        prop_assert_eq!(c.completed, report.offered);
        prop_assert_eq!(c.evicted, 0);
        prop_assert_eq!(c.in_flight(), 0);
        prop_assert_eq!(c.steals, report.steals);
    }

    #[test]
    fn native_accounting_ignores_the_recorder(
        policy_ix in 0u8..4,
        workers in 0u8..3,
        streams in 0u8..6,
        rate in 0.0f64..300.0,
        seed in any::<u64>(),
    ) {
        let (cfg, workload) = native_case(policy_ix, workers, streams, rate, seed);
        let plain = run_native(&cfg, workload.clone());
        let (recorded, _rec) = run_native_recorded(&cfg, workload);
        prop_assert_eq!(plain.offered, recorded.offered);
        prop_assert_eq!(plain.outcomes, recorded.outcomes);
    }
}
