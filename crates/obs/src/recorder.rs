//! The `Recorder` trait and the built-in sinks.
//!
//! Backends emit [`ObsEvent`]s through a `&mut dyn Recorder`; what the
//! recorder does with them is its own business. [`NullRecorder`] ignores
//! everything (and backends skip recording entirely when no recorder is
//! attached, so the un-observed hot path pays nothing). [`MemRecorder`]
//! keeps the full event stream plus live [`Counters`] — it preallocates
//! its event buffer so steady-state recording does not allocate.

use crate::counters::Counters;
use crate::event::ObsEvent;

/// A sink for structured scheduling events.
///
/// Implementations must be pure observers: recording an event must not
/// feed back into the system under observation (no RNG draws, no shared
/// state the scheduler reads). The differential tests enforce this by
/// asserting byte-identical run reports with the recorder on and off.
pub trait Recorder {
    /// Record one event.
    fn record(&mut self, ev: ObsEvent);
}

/// A recorder that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _ev: ObsEvent) {}
}

/// In-memory recorder: the full event stream plus folded [`Counters`].
///
/// When constructed with [`MemRecorder::with_event_capacity`], at most
/// that many events are retained (counters keep counting; the overflow
/// is reported in [`MemRecorder::dropped_events`]).
#[derive(Debug, Default, Clone)]
pub struct MemRecorder {
    /// Retained events, in emission order (see [`MemRecorder::sort_events`]).
    pub events: Vec<ObsEvent>,
    /// Counters folded from *every* event, including unretained ones.
    pub counters: Counters,
    cap: usize,
    dropped: u64,
}

impl MemRecorder {
    /// Unbounded recorder with a modest preallocation.
    pub fn new() -> Self {
        MemRecorder {
            events: Vec::with_capacity(4096),
            counters: Counters::new(),
            cap: usize::MAX,
            dropped: 0,
        }
    }

    /// Recorder retaining at most `cap` events (preallocated up front).
    pub fn with_event_capacity(cap: usize) -> Self {
        MemRecorder {
            events: Vec::with_capacity(cap),
            counters: Counters::new(),
            cap,
            dropped: 0,
        }
    }

    /// Events that arrived after the retention cap was reached.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Sort retained events by the deterministic merge key
    /// `(virtual time, seq, causal rank)`. Used after folding several
    /// per-worker recorders into one trace.
    pub fn sort_events(&mut self) {
        self.events.sort_by_key(|e| e.merge_key());
    }

    /// Fold another recorder's events and counters into this one, then
    /// re-sort into deterministic merge order.
    pub fn absorb(&mut self, other: MemRecorder) {
        self.counters.merge(&other.counters);
        self.dropped += other.dropped;
        for ev in other.events {
            if self.events.len() < self.cap {
                self.events.push(ev);
            } else {
                self.dropped += 1;
            }
        }
        self.sort_events();
    }
}

impl Recorder for MemRecorder {
    fn record(&mut self, ev: ObsEvent) {
        self.counters.observe(&ev);
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, seq: u64) -> ObsEvent {
        ObsEvent::Enqueue {
            t_us: t,
            seq,
            stream: 0,
            queue: 0,
            depth: 1,
        }
    }

    #[test]
    fn null_recorder_is_a_no_op() {
        let mut r = NullRecorder;
        r.record(ev(0.0, 0));
    }

    #[test]
    fn mem_recorder_keeps_events_and_counts() {
        let mut r = MemRecorder::new();
        r.record(ev(0.0, 0));
        r.record(ev(1.0, 1));
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.counters.enqueued, 2);
        assert_eq!(r.dropped_events(), 0);
    }

    #[test]
    fn capacity_caps_events_but_not_counters() {
        let mut r = MemRecorder::with_event_capacity(1);
        r.record(ev(0.0, 0));
        r.record(ev(1.0, 1));
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.counters.enqueued, 2);
        assert_eq!(r.dropped_events(), 1);
    }

    #[test]
    fn absorb_merges_and_sorts() {
        let mut a = MemRecorder::new();
        let mut b = MemRecorder::new();
        a.record(ev(2.0, 2));
        b.record(ev(1.0, 1));
        a.absorb(b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.counters.enqueued, 2);
        assert!(a
            .events
            .windows(2)
            .all(|w| w[0].merge_key() <= w[1].merge_key()));
    }
}
