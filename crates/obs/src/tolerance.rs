//! Documented tolerances for the simulator ↔ native differential trace
//! tests (`tests/obs_differential.rs` in the workspace root).
//!
//! The two backends are *structurally* equivalent but not numerically
//! identical: the simulator models per-processor protocol-thread pools
//! and analytic reload transients, while the native backend runs real
//! pinned threads with round-robin thread placement, hardware-calibrated
//! cycle costs and opportunistic stealing. The quantities below are
//! per-dispatch *rates*, which both backends agree on to within the
//! placement-policy differences; the tolerances document how much of a
//! gap is expected rather than papering over bugs — a regression in
//! either backend's affinity logic moves these rates by far more (an
//! affinity policy flips a rate between ~0 and ~(w-1)/w).

/// Absolute tolerance on the per-dispatch stream-migration rate
/// (equivalently the affinity-hit rate, its complement). Affinity
/// policies sit near 0 on both backends; random/shared placement sits
/// near `(w-1)/w` on the simulator but lower on the native backend,
/// where a host-fast worker pops *bursts* of consecutive packets from
/// the shared pool and consecutive packets of a stream then count as
/// hits — an effect that grows with optimization level (debug ≈ 0.35,
/// release ≈ 0.2–0.3 observed at w = 2). A real affinity regression
/// flips the rate between ~0 and ~`(w-1)/w` ≥ 0.5, well past this
/// tolerance.
pub const STREAM_MIGRATION_RATE_TOL: f64 = 0.35;

/// Absolute tolerance on the per-dispatch thread-migration rate. Thread
/// placement is where the backends differ most (simulator: FIFO thread
/// pool per paradigm rules; native: static round-robin assignment), and
/// the oblivious rung inherits the same host-speed burst effect as the
/// stream rate: a worker that drains the pool in a burst keeps re-running
/// threads it already owns.
pub const THREAD_MIGRATION_RATE_TOL: f64 = 0.35;

/// Absolute tolerance on flush charges per dispatch. A flush is charged
/// per migrated footprint, so the backend gap is the *sum* of the two
/// migration-rate gaps and the tolerance compounds accordingly.
pub const FLUSH_RATE_TOL: f64 = STREAM_MIGRATION_RATE_TOL + THREAD_MIGRATION_RATE_TOL;

/// Ceiling on the per-dispatch steal rate at the cross-validation smoke
/// scenario (near-saturation but stable). Stealing is a rare rebalancing
/// event there; a rate above this means the steal gate (vclock + depth
/// threshold) regressed into churn.
pub const STEAL_RATE_MAX: f64 = 0.10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerances_are_sane_fractions() {
        // A regression flips a migration rate by at least (w-1)/w >= 0.5
        // at the smallest scenario (w = 2), so per-rate tolerances must
        // stay below 0.5 to keep their detection power.
        for t in [
            STREAM_MIGRATION_RATE_TOL,
            THREAD_MIGRATION_RATE_TOL,
            STEAL_RATE_MAX,
        ] {
            assert!(t > 0.0 && t < 0.5, "tolerance {t} out of range");
        }
        // Flush compounds the two migration gaps.
        assert_eq!(
            FLUSH_RATE_TOL,
            STREAM_MIGRATION_RATE_TOL + THREAD_MIGRATION_RATE_TOL
        );
    }
}
