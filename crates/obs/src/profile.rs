//! Profiling hooks for the discrete-event engine.
//!
//! [`EngineProbe`] is an optional attachment for `afs-desim`'s engine: a
//! cheap per-step sampler of event-set pressure. It answers "where did
//! the simulation spend its events" questions without touching model
//! code, and its overhead (two compares and a histogram record per step)
//! is only paid when a probe is attached.

use crate::hist::LogHistogram;

/// Per-step engine statistics: event counts and pending-set pressure.
#[derive(Debug, Clone, Default)]
pub struct EngineProbe {
    /// Events delivered while the probe was attached.
    pub steps: u64,
    /// Largest pending-event set observed.
    pub max_pending: u64,
    /// Pending-set size sampled after each delivery (unitless).
    pub pending: LogHistogram,
    /// Virtual timestamp of the last delivered event (µs).
    pub last_t_us: f64,
}

impl EngineProbe {
    /// Fresh probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one engine step: the delivered event's timestamp and the
    /// pending-set size after delivery.
    pub fn on_step(&mut self, t_us: f64, pending: usize) {
        self.steps += 1;
        self.max_pending = self.max_pending.max(pending as u64);
        self.pending.record(pending as f64);
        self.last_t_us = t_us;
    }

    /// One-line summary for experiment output.
    pub fn render(&self) -> String {
        format!(
            "engine: {} events to t={:.0}us | pending mean {:.1} p95 {:.0} max {}",
            self.steps,
            self.last_t_us,
            self.pending.mean(),
            self.pending.quantile(0.95),
            self.max_pending
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_tracks_steps_and_pressure() {
        let mut p = EngineProbe::new();
        p.on_step(1.0, 3);
        p.on_step(2.0, 7);
        p.on_step(3.0, 5);
        assert_eq!(p.steps, 3);
        assert_eq!(p.max_pending, 7);
        assert_eq!(p.last_t_us, 3.0);
        let s = p.render();
        assert!(s.contains("3 events"), "{s}");
        assert!(s.contains("max 7"), "{s}");
    }
}
