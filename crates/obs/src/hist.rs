//! A fixed-footprint HDR-style log-bucketed histogram.
//!
//! Values (microseconds, or unitless counts) are quantized to integer
//! nanoseconds and bucketed with 32 sub-buckets per power of two, giving
//! a worst-case relative quantization error of about 3% across the full
//! `u64` nanosecond range. The bucket array is allocated once up front
//! (~15 KiB); recording is a handful of integer ops and never allocates,
//! which keeps the recorder usable on the scheduling hot path.

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Octaves above the linear range (exponents `SUB_BITS..=63`), each with
/// `SUB` sub-buckets, plus the initial linear `0..SUB` range.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Log-bucketed histogram with ~3% relative precision and O(1),
/// allocation-free recording.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram (allocates its bucket array eagerly).
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: f64::NEG_INFINITY,
        }
    }

    fn index(n: u64) -> usize {
        if n < SUB {
            return n as usize;
        }
        let exp = 63 - n.leading_zeros() as u64; // >= SUB_BITS
        let shift = exp - SUB_BITS as u64;
        let sub = (n >> shift) & (SUB - 1);
        ((exp - SUB_BITS as u64 + 1) * SUB + sub) as usize
    }

    /// Upper edge (inclusive) of bucket `i`, in nanoseconds.
    fn upper_ns(i: usize) -> u64 {
        let band = i as u64 / SUB;
        let sub = i as u64 % SUB;
        if band == 0 {
            return sub;
        }
        let exp = band - 1 + SUB_BITS as u64;
        let shift = exp - SUB_BITS as u64;
        ((SUB + sub) << shift) + ((1u64 << shift) - 1)
    }

    /// Record one value (µs). Negative or non-finite values clamp to 0.
    pub fn record(&mut self, v_us: f64) {
        let v = if v_us.is_finite() && v_us > 0.0 {
            v_us
        } else {
            0.0
        };
        let ns = (v * 1e3).round().min(u64::MAX as f64) as u64;
        self.counts[Self::index(ns)] += 1;
        self.count += 1;
        self.sum_us += v;
        if v < self.min_us {
            self.min_us = v;
        }
        if v > self.max_us {
            self.max_us = v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact running mean (µs); 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Exact running sum (µs).
    pub fn sum(&self) -> f64 {
        self.sum_us
    }

    /// Exact minimum recorded value (µs); 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us
        }
    }

    /// Exact maximum recorded value (µs); 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max_us
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) as the upper edge of the bucket
    /// holding the target rank, in µs. Quantization error is bounded by
    /// the bucket width (~3% relative). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: ceil(q * count), at least 1.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::upper_ns(i) as f64 / 1e3;
            }
        }
        self.max()
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn index_is_monotone_and_in_bounds() {
        let mut last = 0usize;
        for e in 0..64 {
            let n = 1u64 << e;
            for probe in [n, n + n / 3, n + n / 2] {
                let i = LogHistogram::index(probe);
                assert!(i < BUCKETS, "index {i} out of bounds for {probe}");
                assert!(i >= last, "index not monotone at {probe}");
                last = i;
            }
        }
    }

    #[test]
    fn upper_edge_bounds_its_bucket() {
        for probe in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456, u64::MAX / 2] {
            let i = LogHistogram::index(probe);
            let hi = LogHistogram::upper_ns(i);
            assert!(hi >= probe, "upper edge {hi} < member {probe}");
            if i > 0 {
                assert!(LogHistogram::upper_ns(i - 1) < probe);
            }
        }
    }

    #[test]
    fn quantiles_bracket_the_data_within_precision() {
        let mut h = LogHistogram::new();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        assert!((p50 - 500.0).abs() / 500.0 < 0.04, "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 990.0).abs() / 990.0 < 0.04, "p99={p99}");
        assert!(h.quantile(1.0) >= 1000.0 * 0.97);
        assert_eq!(h.max(), 1000.0);
        assert_eq!(h.min(), 1.0);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        let mut h = LogHistogram::new();
        h.record(-4.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 0..200 {
            let x = (v * 37 % 991) as f64 * 0.5;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
