//! Live serving-path snapshots.
//!
//! `afs-serve` (the sustained-ingest binary on the native backend)
//! periodically publishes one [`ServeSnapshot`] per interval: the
//! admission ledger so far (offered = admitted + dropped), worker
//! progress, the generator's position on the virtual clock, and two
//! host-side gauges (wall time, resident set). Rendering follows the
//! [`crate::jsonl`] rules — fixed key order, fixed float formats, no
//! serde — so a given snapshot always renders to identical bytes.
//!
//! The host gauges (`wall_s`, `rss_kb`) exist for operators watching a
//! live run; committed artifacts and differential tests must only use
//! the virtual-domain fields, exactly as with [`crate::event`] traces.

use std::fmt::Write as _;

/// One point-in-time view of a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSnapshot {
    /// Host wall-clock seconds since the run started (gauge only —
    /// never part of a committed artifact).
    pub wall_s: f64,
    /// Packets the generator has offered so far.
    pub offered: u64,
    /// Packets admitted into a worker ring (offered − dropped).
    pub admitted: u64,
    /// Packets tail-dropped at admission (modeled queue full).
    pub dropped: u64,
    /// Packets workers have finished processing.
    pub processed: u64,
    /// Virtual arrival stamp of the newest offered packet, µs.
    pub arrival_us: f64,
    /// Slowest worker's published virtual clock, µs.
    pub min_worker_vclock_us: f64,
    /// Fastest worker's published virtual clock, µs.
    pub max_worker_vclock_us: f64,
    /// Resident set size in KiB (`0` where unavailable; gauge only).
    pub rss_kb: u64,
}

impl ServeSnapshot {
    /// Append this snapshot as one JSON line (with trailing newline):
    /// fixed key order, timestamps with nanosecond precision, wall
    /// seconds with milliseconds — identical snapshots render to
    /// identical bytes.
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "{{\"e\":\"serve\",\"wall_s\":{:.3},\"offered\":{},\"admitted\":{},\"dropped\":{},\"processed\":{},\"arrival_us\":{:.3},\"vclock_min\":{:.3},\"vclock_max\":{:.3},\"rss_kb\":{}}}",
            self.wall_s,
            self.offered,
            self.admitted,
            self.dropped,
            self.processed,
            self.arrival_us,
            self.min_worker_vclock_us,
            self.max_worker_vclock_us,
            self.rss_kb,
        );
    }

    /// One-line human summary for terminal streaming.
    pub fn summary_line(&self) -> String {
        let backlog = self.admitted.saturating_sub(self.processed);
        format!(
            "t={:.1}s offered={} admitted={} dropped={} processed={} backlog={} v={:.0}µs rss={}KiB",
            self.wall_s,
            self.offered,
            self.admitted,
            self.dropped,
            self.processed,
            backlog,
            self.arrival_us,
            self.rss_kb,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> ServeSnapshot {
        ServeSnapshot {
            wall_s: 1.25,
            offered: 1000,
            admitted: 990,
            dropped: 10,
            processed: 960,
            arrival_us: 123456.789_25,
            min_worker_vclock_us: 120000.0,
            max_worker_vclock_us: 123000.5,
            rss_kb: 20480,
        }
    }

    #[test]
    fn jsonl_is_deterministic_and_fixed_format() {
        let mut a = String::new();
        snap().write_jsonl(&mut a);
        let mut b = String::new();
        snap().write_jsonl(&mut b);
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\"e\":\"serve\",\"wall_s\":1.250,\"offered\":1000,\"admitted\":990,\"dropped\":10,\"processed\":960,\"arrival_us\":123456.789,\"vclock_min\":120000.000,\"vclock_max\":123000.500,\"rss_kb\":20480}\n"
        );
    }

    #[test]
    fn summary_reports_backlog() {
        assert!(snap().summary_line().contains("backlog=30"));
    }
}
