#![warn(missing_docs)]

//! # afs-obs — the unified observability layer
//!
//! One trace schema for every backend: the discrete-event simulator
//! (`afs-core::sim` on `afs-desim`) and the native pinned-thread runtime
//! (`afs-native::runtime`) emit the same structured [`ObsEvent`]s through
//! a [`Recorder`], so per-message scheduling/cache telemetry — affinity
//! hits, steals, flushes, reload-transient charges, queueing delay — can
//! be compared *across* backends and regression-tested without rerunning
//! full experiments.
//!
//! Design rules:
//!
//! * **Zero cost when off.** Backends hold an `Option<&mut dyn Recorder>`
//!   and skip emission entirely when none is attached; events are `Copy`
//!   structs built on the stack, and [`MemRecorder`] preallocates, so the
//!   observed hot path allocates nothing per message.
//! * **Virtual time only.** Every timestamp is simulation time or a
//!   native worker's virtual clock. Host wall-clock time never enters a
//!   trace, which is what makes seeded replays byte-identical.
//! * **Recording is pure observation.** Attaching a recorder must not
//!   change a single metric or golden-artifact byte; the proptests and
//!   differential suite enforce this.
//!
//! Modules:
//!
//! * [`event`] — the [`ObsEvent`] schema and merge ordering.
//! * [`recorder`] — the [`Recorder`] trait, [`NullRecorder`],
//!   [`MemRecorder`].
//! * [`counters`] — [`Counters`]/[`WorkerLane`] aggregation.
//! * [`hist`] — [`LogHistogram`], the HDR-style fixed-footprint
//!   histogram behind the delay/service/depth percentiles.
//! * [`jsonl`] — deterministic JSONL trace rendering.
//! * [`order`] — [`SequenceChecker`], the independent per-stream
//!   delivery-order judge behind the reordering differential tests.
//! * [`serve`] — [`ServeSnapshot`], the live serving-run gauge line.
//! * [`summary`] — compact text summary for experiment output.
//! * [`profile`] — [`EngineProbe`] hooks for the desim engine.
//! * [`tolerance`] — documented backend-agreement tolerances used by the
//!   differential tests.

pub mod counters;
pub mod event;
pub mod hist;
pub mod jsonl;
pub mod order;
pub mod profile;
pub mod recorder;
pub mod serve;
pub mod summary;
pub mod tolerance;

pub use counters::{Counters, WorkerLane};
pub use event::{ChargeKind, ObsEvent, SHARED_QUEUE};
pub use hist::LogHistogram;
pub use order::{SequenceChecker, SequenceReport};
pub use profile::EngineProbe;
pub use recorder::{MemRecorder, NullRecorder, Recorder};
pub use serve::ServeSnapshot;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_surface_round_trip() {
        let mut rec = MemRecorder::new();
        rec.record(ObsEvent::Enqueue {
            t_us: 0.5,
            seq: 0,
            stream: 1,
            queue: SHARED_QUEUE,
            depth: 1,
        });
        rec.record(ObsEvent::Dispatch {
            t_us: 1.0,
            seq: 0,
            stream: 1,
            worker: 0,
            service_us: 9.0,
            stream_migrated: false,
            thread_migrated: false,
            stolen: false,
        });
        rec.record(ObsEvent::CacheCharge {
            t_us: 1.0,
            worker: 0,
            kind: ChargeKind::ReloadTransient,
            amount_us: 2.5,
        });
        rec.record(ObsEvent::Complete {
            t_us: 10.0,
            seq: 0,
            stream: 1,
            worker: 0,
            delay_us: 9.5,
            ok: true,
        });
        assert_eq!(rec.counters.enqueued, 1);
        assert_eq!(rec.counters.affinity_hits, 1);
        assert_eq!(rec.counters.in_flight(), 0);
        let trace = jsonl::render(&rec.events);
        assert_eq!(trace.lines().count(), 4);
        let text = summary::render(&rec.counters);
        assert!(text.contains("1 enqueued"), "{text}");
    }
}
