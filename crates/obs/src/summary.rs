//! Compact text summary of a [`Counters`] snapshot, suitable for
//! appending to experiment output.

use std::fmt::Write as _;

use crate::counters::Counters;

/// Render a human-readable multi-line summary.
pub fn render(c: &Counters) -> String {
    let mut out = String::with_capacity(512);
    let _ = writeln!(
        out,
        "obs: {} enqueued / {} dispatched / {} completed ({} ok, {} evicted, {} in flight)",
        c.enqueued,
        c.dispatched,
        c.completed,
        c.completed_ok,
        c.evicted,
        c.in_flight()
    );
    let _ = writeln!(
        out,
        "  affinity: {:.1}% hits | {} stream migrations | {} thread migrations | {} flushes",
        100.0 * c.affinity_hit_rate(),
        c.stream_migrations,
        c.thread_migrations,
        c.flushes
    );
    let _ = writeln!(
        out,
        "  steals: {} ({:.2}% of dispatches) | reload {:.1}us over {} charges | lock {:.1}us over {} charges",
        c.steals,
        100.0 * c.steal_rate(),
        c.reload_transient_us,
        c.reload_charges,
        c.lock_us,
        c.lock_charges
    );
    let _ = writeln!(
        out,
        "  delay us: mean {:.2} p50 {:.2} p95 {:.2} p99 {:.2} max {:.2}",
        c.delay_us.mean(),
        c.delay_us.quantile(0.50),
        c.delay_us.quantile(0.95),
        c.delay_us.quantile(0.99),
        c.delay_us.max()
    );
    let _ = writeln!(
        out,
        "  service us: mean {:.2} p95 {:.2} | queue depth: mean {:.2} max {}",
        c.service_us.mean(),
        c.service_us.quantile(0.95),
        c.queue_depth.mean(),
        c.max_queue_depth
    );
    if c.fault_examined > 0
        || c.delivered + c.dropped_no_session + c.dropped_queue_full + c.errored > 0
    {
        let _ = writeln!(
            out,
            "  faults: {} examined, {} wire drops, {} dup, {} reorder, {} corrupt, {} trunc | outcomes: {} delivered, {} no-session, {} queue-full, {} errored",
            c.fault_examined,
            c.wire_drops,
            c.duplicates,
            c.reorders,
            c.corruptions,
            c.truncations,
            c.delivered,
            c.dropped_no_session,
            c.dropped_queue_full,
            c.errored
        );
    }
    if c.worker_downs > 0 || c.orphaned > 0 {
        let _ = writeln!(
            out,
            "  proc faults: {} down, {} up | {} orphaned, {} requeued ({})",
            c.worker_downs,
            c.worker_ups,
            c.orphaned,
            c.requeued,
            if c.requeued == c.orphaned {
                "conserved"
            } else {
                "IMBALANCED"
            }
        );
    }
    for (w, lane) in c.by_worker.iter().enumerate() {
        if lane.dispatched == 0 && lane.steals_in == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  worker {w}: {} dispatched, {} completed, {:.1}% affinity, {} steals in, {} flushes, busy {:.0}us",
            lane.dispatched,
            lane.completed,
            if lane.dispatched > 0 {
                100.0 * lane.affinity_hits as f64 / lane.dispatched as f64
            } else {
                0.0
            },
            lane.steals_in,
            lane.flushes,
            lane.busy_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let mut c = Counters::new();
        for seq in 0..4u64 {
            c.observe(&ObsEvent::Enqueue {
                t_us: 0.0,
                seq,
                stream: 0,
                queue: 0,
                depth: 1,
            });
            c.observe(&ObsEvent::Dispatch {
                t_us: 1.0,
                seq,
                stream: 0,
                worker: 0,
                service_us: 10.0,
                stream_migrated: seq == 0,
                thread_migrated: false,
                stolen: false,
            });
            c.observe(&ObsEvent::Complete {
                t_us: 11.0,
                seq,
                stream: 0,
                worker: 0,
                delay_us: 11.0,
                ok: true,
            });
        }
        let s = render(&c);
        assert!(s.contains("4 enqueued"), "{s}");
        assert!(s.contains("75.0% hits"), "{s}");
        assert!(s.contains("worker 0: 4 dispatched"), "{s}");
        // No faults section when nothing fault-related was observed.
        assert!(!s.contains("faults:"), "{s}");
    }
}
