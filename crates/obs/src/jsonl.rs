//! Deterministic JSONL rendering of an event stream.
//!
//! One event per line, fixed key order, fixed float formatting
//! (timestamps with nanosecond precision, durations with 4 decimals), so
//! an identical event stream always renders to identical bytes — the
//! property the seeded-replay golden test pins down. The workspace
//! carries no serde; every value here is program-generated and needs no
//! escaping.

use std::fmt::Write as _;

use crate::event::ObsEvent;

/// Append one event as a JSON line (including the trailing newline).
pub fn write_event(out: &mut String, ev: &ObsEvent) {
    match *ev {
        ObsEvent::Enqueue {
            t_us,
            seq,
            stream,
            queue,
            depth,
        } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"enq\",\"t\":{t_us:.3},\"seq\":{seq},\"stream\":{stream},\"queue\":{queue},\"depth\":{depth}}}"
            );
        }
        ObsEvent::Dispatch {
            t_us,
            seq,
            stream,
            worker,
            service_us,
            stream_migrated,
            thread_migrated,
            stolen,
        } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"disp\",\"t\":{t_us:.3},\"seq\":{seq},\"stream\":{stream},\"worker\":{worker},\"service\":{service_us:.4},\"smig\":{stream_migrated},\"tmig\":{thread_migrated},\"stolen\":{stolen}}}"
            );
        }
        ObsEvent::StealClaim {
            t_us,
            seq,
            from,
            to,
        } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"claim\",\"t\":{t_us:.3},\"seq\":{seq},\"from\":{from},\"to\":{to}}}"
            );
        }
        ObsEvent::Steal {
            t_us,
            seq,
            from,
            to,
        } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"steal\",\"t\":{t_us:.3},\"seq\":{seq},\"from\":{from},\"to\":{to}}}"
            );
        }
        ObsEvent::Complete {
            t_us,
            seq,
            stream,
            worker,
            delay_us,
            ok,
        } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"done\",\"t\":{t_us:.3},\"seq\":{seq},\"stream\":{stream},\"worker\":{worker},\"delay\":{delay_us:.4},\"ok\":{ok}}}"
            );
        }
        ObsEvent::Evict { t_us, seq, queue } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"evict\",\"t\":{t_us:.3},\"seq\":{seq},\"queue\":{queue}}}"
            );
        }
        ObsEvent::CacheCharge {
            t_us,
            worker,
            kind,
            amount_us,
        } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"charge\",\"t\":{t_us:.3},\"worker\":{worker},\"kind\":\"{}\",\"amount\":{amount_us:.4}}}",
                kind.label()
            );
        }
        ObsEvent::QueueDepth { t_us, queue, depth } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"qdepth\",\"t\":{t_us:.3},\"queue\":{queue},\"depth\":{depth}}}"
            );
        }
        ObsEvent::WorkerDown { t_us, worker } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"wdown\",\"t\":{t_us:.3},\"worker\":{worker}}}"
            );
        }
        ObsEvent::WorkerUp { t_us, worker } => {
            let _ = writeln!(out, "{{\"e\":\"wup\",\"t\":{t_us:.3},\"worker\":{worker}}}");
        }
        ObsEvent::Orphaned { t_us, seq, worker } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"orphan\",\"t\":{t_us:.3},\"seq\":{seq},\"worker\":{worker}}}"
            );
        }
        ObsEvent::Requeue { t_us, seq, queue } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"requeue\",\"t\":{t_us:.3},\"seq\":{seq},\"queue\":{queue}}}"
            );
        }
        ObsEvent::TableMiss { t_us, seq, stream } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"tmiss\",\"t\":{t_us:.3},\"seq\":{seq},\"stream\":{stream}}}"
            );
        }
        ObsEvent::Rebind {
            t_us,
            seq,
            stream,
            from,
            to,
        } => {
            let _ = writeln!(
                out,
                "{{\"e\":\"rebind\",\"t\":{t_us:.3},\"seq\":{seq},\"stream\":{stream},\"from\":{from},\"to\":{to}}}"
            );
        }
    }
}

/// Render a whole event stream as JSONL.
pub fn render(events: &[ObsEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        write_event(&mut out, ev);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ChargeKind;

    #[test]
    fn rendering_is_deterministic_and_line_oriented() {
        let events = vec![
            ObsEvent::Enqueue {
                t_us: 1.2345,
                seq: 0,
                stream: 2,
                queue: u32::MAX,
                depth: 1,
            },
            ObsEvent::Dispatch {
                t_us: 2.0,
                seq: 0,
                stream: 2,
                worker: 1,
                service_us: 10.55555,
                stream_migrated: true,
                thread_migrated: false,
                stolen: false,
            },
            ObsEvent::Steal {
                t_us: 2.0,
                seq: 1,
                from: 0,
                to: 1,
            },
            ObsEvent::Complete {
                t_us: 12.5,
                seq: 0,
                stream: 2,
                worker: 1,
                delay_us: 11.2655,
                ok: true,
            },
            ObsEvent::Evict {
                t_us: 13.0,
                seq: 3,
                queue: 0,
            },
            ObsEvent::CacheCharge {
                t_us: 2.0,
                worker: 1,
                kind: ChargeKind::ReloadTransient,
                amount_us: 8.5,
            },
            ObsEvent::QueueDepth {
                t_us: 2.0,
                queue: 0,
                depth: 4,
            },
            ObsEvent::WorkerDown {
                t_us: 14.0,
                worker: 2,
            },
            ObsEvent::Orphaned {
                t_us: 14.0,
                seq: 4,
                worker: 2,
            },
            ObsEvent::Requeue {
                t_us: 14.0,
                seq: 4,
                queue: 1,
            },
            ObsEvent::WorkerUp {
                t_us: 20.0,
                worker: 2,
            },
            ObsEvent::TableMiss {
                t_us: 21.0,
                seq: 5,
                stream: 7,
            },
            ObsEvent::Rebind {
                t_us: 21.0,
                seq: 5,
                stream: 7,
                from: 1,
                to: 0,
            },
        ];
        let a = render(&events);
        let b = render(&events);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), events.len());
        assert!(a.starts_with("{\"e\":\"enq\",\"t\":1.234,"), "{a}");
        assert!(a.contains("\"kind\":\"reload\""));
        assert!(a.contains("\"queue\":4294967295"));
        assert!(a.contains("{\"e\":\"wdown\",\"t\":14.000,\"worker\":2}"));
        assert!(a.contains("{\"e\":\"orphan\",\"t\":14.000,\"seq\":4,\"worker\":2}"));
        assert!(a.contains("{\"e\":\"requeue\",\"t\":14.000,\"seq\":4,\"queue\":1}"));
        assert!(a.contains("{\"e\":\"wup\",\"t\":20.000,\"worker\":2}"));
        assert!(a.contains("{\"e\":\"tmiss\",\"t\":21.000,\"seq\":5,\"stream\":7}"));
        assert!(a.contains(
            "{\"e\":\"rebind\",\"t\":21.000,\"seq\":5,\"stream\":7,\"from\":1,\"to\":0}"
        ));
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
