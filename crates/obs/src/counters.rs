//! Aggregate counters derived from the event stream.
//!
//! [`Counters`] folds [`ObsEvent`]s into scalar counts, per-worker lanes
//! and [`LogHistogram`]s. The backend-independent definitions here are
//! what the differential tests compare across the simulator and the
//! native backend: an *affinity hit* is a dispatch whose stream state was
//! still resident on the executing worker; a *flush* is a cache-charge of
//! kind [`ChargeKind::Flush`]; steal counts come from [`ObsEvent::Steal`]
//! events only (the redundant `stolen` dispatch flag is tracked
//! separately so the two can be cross-checked).

use crate::event::{ChargeKind, ObsEvent};
use crate::hist::LogHistogram;

/// Per-worker slice of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerLane {
    /// Messages this worker began servicing.
    pub dispatched: u64,
    /// Messages this worker finished.
    pub completed: u64,
    /// Dispatches that found the stream state resident here.
    pub affinity_hits: u64,
    /// Dispatches whose stream state migrated in from another worker.
    pub stream_migrations: u64,
    /// Dispatches whose protocol thread last ran elsewhere.
    pub thread_migrations: u64,
    /// Messages this worker executed after stealing them.
    pub steals_in: u64,
    /// Flush charges attributed to this worker.
    pub flushes: u64,
    /// Total service time executed here (µs of virtual time).
    pub busy_us: f64,
}

/// Aggregated metrics for one run (or one worker, before merging).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counters {
    /// Messages enqueued.
    pub enqueued: u64,
    /// Messages dispatched.
    pub dispatched: u64,
    /// Messages completed (any outcome).
    pub completed: u64,
    /// Messages completed with useful (non-corrupt) work.
    pub completed_ok: u64,
    /// Messages evicted from a queue by an overload drop policy.
    pub evicted: u64,
    /// Steal transfers observed.
    pub steals: u64,
    /// Steal claims resolved by the dispatcher's virtual-order claim
    /// table (must equal [`Counters::steals`] in a consistent trace:
    /// every executed steal was arbitrated by exactly one claim).
    pub steal_claims: u64,
    /// Dispatches flagged as operating on a stolen message (must equal
    /// [`Counters::steals`] in a consistent trace).
    pub stolen_dispatches: u64,
    /// Dispatches with the stream state resident (affinity preserved).
    pub affinity_hits: u64,
    /// Dispatches that migrated stream state between workers.
    pub stream_migrations: u64,
    /// Dispatches that migrated a protocol thread between workers.
    pub thread_migrations: u64,
    /// Cache-flush charges.
    pub flushes: u64,
    /// Warm-service charges (all footprints resident).
    pub warm_charges: u64,
    /// Reload-transient charges.
    pub reload_charges: u64,
    /// Total reload-transient virtual time charged (µs).
    pub reload_transient_us: f64,
    /// Lock-overhead charges.
    pub lock_charges: u64,
    /// Total lock-overhead virtual time charged (µs).
    pub lock_us: f64,

    /// Frames examined by a fault injector ahead of this run.
    pub fault_examined: u64,
    /// Frames dropped on the wire by fault injection.
    pub wire_drops: u64,
    /// Duplicate frames injected.
    pub duplicates: u64,
    /// Frames reordered by fault injection.
    pub reorders: u64,
    /// Frames corrupted by fault injection.
    pub corruptions: u64,
    /// Frames truncated by fault injection.
    pub truncations: u64,

    /// Receive-path outcomes: payload reached the user queue.
    pub delivered: u64,
    /// Receive-path outcomes: shed for want of a session.
    pub dropped_no_session: u64,
    /// Receive-path outcomes: shed at a full user queue.
    pub dropped_queue_full: u64,
    /// Receive-path outcomes: rejected as malformed by a protocol layer.
    pub errored: u64,

    /// Workers observed leaving service (crash or stall window start).
    pub worker_downs: u64,
    /// Workers observed returning to service.
    pub worker_ups: u64,
    /// Messages orphaned by a worker failure.
    pub orphaned: u64,
    /// Orphaned messages re-routed into a queue. Conservation across
    /// failures requires `requeued == orphaned`: nothing a failed
    /// worker held may be lost, and [`Counters::in_flight`] is
    /// unchanged by the orphan/requeue pair (the message was already
    /// enqueued once and completes at most once).
    pub requeued: u64,

    /// NIC front-end steering-table misses (bounded flow table lookups
    /// that fell through to the fallback routing policy).
    pub table_misses: u64,
    /// NIC front-end flow rebinds (a flow routed to a different worker
    /// than its previous packet).
    pub rebinds: u64,

    /// Queueing + service delay distribution (µs).
    pub delay_us: LogHistogram,
    /// Service-time distribution (µs).
    pub service_us: LogHistogram,
    /// Queue-depth samples (unitless).
    pub queue_depth: LogHistogram,
    /// Deepest queue observed.
    pub max_queue_depth: u64,

    /// Per-worker lanes, indexed by worker id (grown on demand; the
    /// shared-queue sentinel never lands here).
    pub by_worker: Vec<WorkerLane>,
}

impl Counters {
    /// Empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn lane(&mut self, worker: u32) -> &mut WorkerLane {
        let w = worker as usize;
        if w >= self.by_worker.len() {
            self.by_worker.resize(w + 1, WorkerLane::default());
        }
        &mut self.by_worker[w]
    }

    /// Fold one event into the counters.
    pub fn observe(&mut self, ev: &ObsEvent) {
        match *ev {
            ObsEvent::Enqueue { depth, .. } => {
                self.enqueued += 1;
                self.queue_depth.record(depth as f64);
                self.max_queue_depth = self.max_queue_depth.max(depth as u64);
            }
            ObsEvent::Dispatch {
                worker,
                service_us,
                stream_migrated,
                thread_migrated,
                stolen,
                ..
            } => {
                self.dispatched += 1;
                self.service_us.record(service_us);
                if stolen {
                    self.stolen_dispatches += 1;
                }
                if stream_migrated {
                    self.stream_migrations += 1;
                } else {
                    self.affinity_hits += 1;
                }
                if thread_migrated {
                    self.thread_migrations += 1;
                }
                let lane = self.lane(worker);
                lane.dispatched += 1;
                lane.busy_us += service_us;
                if stream_migrated {
                    lane.stream_migrations += 1;
                } else {
                    lane.affinity_hits += 1;
                }
                if thread_migrated {
                    lane.thread_migrations += 1;
                }
            }
            ObsEvent::StealClaim { .. } => {
                self.steal_claims += 1;
            }
            ObsEvent::Steal { to, .. } => {
                self.steals += 1;
                self.lane(to).steals_in += 1;
            }
            ObsEvent::Complete {
                worker,
                delay_us,
                ok,
                ..
            } => {
                self.completed += 1;
                if ok {
                    self.completed_ok += 1;
                }
                self.delay_us.record(delay_us);
                self.lane(worker).completed += 1;
            }
            ObsEvent::Evict { .. } => {
                self.evicted += 1;
            }
            ObsEvent::CacheCharge {
                worker,
                kind,
                amount_us,
                ..
            } => match kind {
                ChargeKind::Warm => self.warm_charges += 1,
                ChargeKind::Flush => {
                    self.flushes += 1;
                    self.lane(worker).flushes += 1;
                }
                ChargeKind::ReloadTransient => {
                    self.reload_charges += 1;
                    self.reload_transient_us += amount_us;
                }
                ChargeKind::Lock => {
                    self.lock_charges += 1;
                    self.lock_us += amount_us;
                }
            },
            ObsEvent::QueueDepth { depth, .. } => {
                self.queue_depth.record(depth as f64);
                self.max_queue_depth = self.max_queue_depth.max(depth as u64);
            }
            ObsEvent::WorkerDown { .. } => {
                self.worker_downs += 1;
            }
            ObsEvent::WorkerUp { .. } => {
                self.worker_ups += 1;
            }
            ObsEvent::Orphaned { .. } => {
                self.orphaned += 1;
            }
            ObsEvent::Requeue { .. } => {
                self.requeued += 1;
            }
            ObsEvent::TableMiss { .. } => {
                self.table_misses += 1;
            }
            ObsEvent::Rebind { .. } => {
                self.rebinds += 1;
            }
        }
    }

    /// Messages enqueued but neither completed nor evicted (still queued
    /// or in service when observation stopped).
    pub fn in_flight(&self) -> i64 {
        self.enqueued as i64 - self.completed as i64 - self.evicted as i64
    }

    /// Fraction of dispatches that preserved stream affinity; 0 when no
    /// dispatch was observed.
    pub fn affinity_hit_rate(&self) -> f64 {
        ratio(self.affinity_hits, self.dispatched)
    }

    /// Stream migrations per dispatch.
    pub fn stream_migration_rate(&self) -> f64 {
        ratio(self.stream_migrations, self.dispatched)
    }

    /// Thread migrations per dispatch.
    pub fn thread_migration_rate(&self) -> f64 {
        ratio(self.thread_migrations, self.dispatched)
    }

    /// Steals per dispatch.
    pub fn steal_rate(&self) -> f64 {
        ratio(self.steals, self.dispatched)
    }

    /// Flush charges per dispatch.
    pub fn flush_rate(&self) -> f64 {
        ratio(self.flushes, self.dispatched)
    }

    /// Fold `other` into `self` (commutative up to per-worker vec
    /// length; used to merge per-worker recorders).
    pub fn merge(&mut self, other: &Counters) {
        self.enqueued += other.enqueued;
        self.dispatched += other.dispatched;
        self.completed += other.completed;
        self.completed_ok += other.completed_ok;
        self.evicted += other.evicted;
        self.steals += other.steals;
        self.steal_claims += other.steal_claims;
        self.stolen_dispatches += other.stolen_dispatches;
        self.affinity_hits += other.affinity_hits;
        self.stream_migrations += other.stream_migrations;
        self.thread_migrations += other.thread_migrations;
        self.flushes += other.flushes;
        self.warm_charges += other.warm_charges;
        self.reload_charges += other.reload_charges;
        self.reload_transient_us += other.reload_transient_us;
        self.lock_charges += other.lock_charges;
        self.lock_us += other.lock_us;
        self.fault_examined += other.fault_examined;
        self.wire_drops += other.wire_drops;
        self.duplicates += other.duplicates;
        self.reorders += other.reorders;
        self.corruptions += other.corruptions;
        self.truncations += other.truncations;
        self.delivered += other.delivered;
        self.dropped_no_session += other.dropped_no_session;
        self.dropped_queue_full += other.dropped_queue_full;
        self.errored += other.errored;
        self.worker_downs += other.worker_downs;
        self.worker_ups += other.worker_ups;
        self.orphaned += other.orphaned;
        self.requeued += other.requeued;
        self.table_misses += other.table_misses;
        self.rebinds += other.rebinds;
        self.delay_us.merge(&other.delay_us);
        self.service_us.merge(&other.service_us);
        self.queue_depth.merge(&other.queue_depth);
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        if self.by_worker.len() < other.by_worker.len() {
            self.by_worker
                .resize(other.by_worker.len(), WorkerLane::default());
        }
        for (mine, theirs) in self.by_worker.iter_mut().zip(other.by_worker.iter()) {
            mine.dispatched += theirs.dispatched;
            mine.completed += theirs.completed;
            mine.affinity_hits += theirs.affinity_hits;
            mine.stream_migrations += theirs.stream_migrations;
            mine.thread_migrations += theirs.thread_migrations;
            mine.steals_in += theirs.steals_in;
            mine.flushes += theirs.flushes;
            mine.busy_us += theirs.busy_us;
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lifecycle(seq: u64, worker: u32, migrated: bool) -> Vec<ObsEvent> {
        vec![
            ObsEvent::Enqueue {
                t_us: seq as f64,
                seq,
                stream: 1,
                queue: worker,
                depth: 1,
            },
            ObsEvent::Dispatch {
                t_us: seq as f64 + 1.0,
                seq,
                stream: 1,
                worker,
                service_us: 10.0,
                stream_migrated: migrated,
                thread_migrated: false,
                stolen: false,
            },
            ObsEvent::Complete {
                t_us: seq as f64 + 11.0,
                seq,
                stream: 1,
                worker,
                delay_us: 11.0,
                ok: true,
            },
        ]
    }

    #[test]
    fn counts_follow_lifecycle() {
        let mut c = Counters::new();
        for ev in lifecycle(0, 0, false)
            .iter()
            .chain(lifecycle(1, 1, true).iter())
        {
            c.observe(ev);
        }
        assert_eq!(c.enqueued, 2);
        assert_eq!(c.dispatched, 2);
        assert_eq!(c.completed, 2);
        assert_eq!(c.affinity_hits, 1);
        assert_eq!(c.stream_migrations, 1);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.affinity_hit_rate(), 0.5);
        assert_eq!(c.by_worker.len(), 2);
        assert_eq!(c.by_worker[1].stream_migrations, 1);
        assert_eq!(c.delay_us.count(), 2);
    }

    #[test]
    fn steals_counted_from_steal_events_only() {
        let mut c = Counters::new();
        c.observe(&ObsEvent::StealClaim {
            t_us: 0.0,
            seq: 7,
            from: 0,
            to: 1,
        });
        c.observe(&ObsEvent::Steal {
            t_us: 0.0,
            seq: 7,
            from: 0,
            to: 1,
        });
        c.observe(&ObsEvent::Dispatch {
            t_us: 1.0,
            seq: 7,
            stream: 0,
            worker: 1,
            service_us: 5.0,
            stream_migrated: true,
            thread_migrated: true,
            stolen: true,
        });
        assert_eq!(c.steals, 1);
        assert_eq!(c.steal_claims, 1);
        assert_eq!(c.stolen_dispatches, 1);
        assert_eq!(c.by_worker[1].steals_in, 1);
    }

    #[test]
    fn charges_split_by_kind() {
        let mut c = Counters::new();
        c.observe(&ObsEvent::CacheCharge {
            t_us: 0.0,
            worker: 0,
            kind: ChargeKind::Flush,
            amount_us: 0.0,
        });
        c.observe(&ObsEvent::CacheCharge {
            t_us: 0.0,
            worker: 0,
            kind: ChargeKind::ReloadTransient,
            amount_us: 8.5,
        });
        c.observe(&ObsEvent::CacheCharge {
            t_us: 0.0,
            worker: 0,
            kind: ChargeKind::Lock,
            amount_us: 1.0,
        });
        c.observe(&ObsEvent::CacheCharge {
            t_us: 0.0,
            worker: 0,
            kind: ChargeKind::Warm,
            amount_us: 0.0,
        });
        assert_eq!(
            (c.flushes, c.reload_charges, c.lock_charges, c.warm_charges),
            (1, 1, 1, 1)
        );
        assert!((c.reload_transient_us - 8.5).abs() < 1e-12);
        assert!((c.lock_us - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let mut a = Counters::new();
        let mut b = Counters::new();
        let mut whole = Counters::new();
        for seq in 0..10 {
            let evs = lifecycle(seq, (seq % 3) as u32, seq % 2 == 0);
            for ev in &evs {
                if seq % 2 == 0 {
                    a.observe(ev)
                } else {
                    b.observe(ev)
                }
                whole.observe(ev);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn orphan_requeue_pair_conserves_in_flight() {
        let mut c = Counters::new();
        c.observe(&ObsEvent::Enqueue {
            t_us: 0.0,
            seq: 3,
            stream: 0,
            queue: 1,
            depth: 1,
        });
        c.observe(&ObsEvent::WorkerDown {
            t_us: 5.0,
            worker: 1,
        });
        c.observe(&ObsEvent::Orphaned {
            t_us: 5.0,
            seq: 3,
            worker: 1,
        });
        c.observe(&ObsEvent::Requeue {
            t_us: 5.0,
            seq: 3,
            queue: 0,
        });
        // The orphan/requeue ledger balances and does not disturb the
        // enqueue/complete conservation identity.
        assert_eq!(c.orphaned, 1);
        assert_eq!(c.requeued, 1);
        assert_eq!(c.worker_downs, 1);
        assert_eq!(c.in_flight(), 1);
        c.observe(&ObsEvent::Complete {
            t_us: 9.0,
            seq: 3,
            stream: 0,
            worker: 0,
            delay_us: 9.0,
            ok: true,
        });
        assert_eq!(c.in_flight(), 0);
        c.observe(&ObsEvent::WorkerUp {
            t_us: 20.0,
            worker: 1,
        });
        assert_eq!(c.worker_ups, 1);
    }

    #[test]
    fn frontend_events_counted() {
        let mut c = Counters::new();
        c.observe(&ObsEvent::TableMiss {
            t_us: 0.0,
            seq: 1,
            stream: 9,
        });
        c.observe(&ObsEvent::Rebind {
            t_us: 0.0,
            seq: 1,
            stream: 9,
            from: 0,
            to: 2,
        });
        assert_eq!(c.table_misses, 1);
        assert_eq!(c.rebinds, 1);
        // Steering events are observations, not ledger entries.
        assert_eq!(c.in_flight(), 0);
        let mut merged = Counters::new();
        merged.merge(&c);
        assert_eq!(merged.table_misses, 1);
        assert_eq!(merged.rebinds, 1);
    }

    #[test]
    fn evictions_tracked_in_flight() {
        let mut c = Counters::new();
        c.observe(&ObsEvent::Enqueue {
            t_us: 0.0,
            seq: 0,
            stream: 0,
            queue: 0,
            depth: 5,
        });
        c.observe(&ObsEvent::Evict {
            t_us: 1.0,
            seq: 0,
            queue: 0,
        });
        assert_eq!(c.evicted, 1);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.max_queue_depth, 5);
    }
}
