//! Per-stream delivery-order checking over an event trace.
//!
//! TCP (and every other ordered transport) pays for each out-of-order
//! delivery with buffering, delayed acks, and — under enough reordering
//! — spurious fast retransmits, which is why NIC steering designs are
//! judged on whether they preserve per-flow order. [`SequenceChecker`]
//! is the *independent* judge: it reconstructs per-stream delivery
//! order from nothing but [`ObsEvent::Complete`] records, so it shares
//! no state with either backend's scheduler and can arbitrate between
//! the sim's online out-of-order counter and the native runtime's
//! merged per-worker traces.
//!
//! Definition: message sequence numbers are assigned globally in
//! arrival order, so within one stream the `seq` order *is* the
//! arrival order. A delivery is out of order when a stream completes a
//! message whose `seq` is below the stream's completion high-water
//! mark. Every completion (corrupt or not) counts as a delivery: a
//! mis-ordered corrupt frame still occupies the transport's resequencing
//! buffer.
//!
//! The checker processes events **in the order given** — it never
//! re-sorts. Simulator traces arrive in emission (virtual-time) order;
//! native per-worker traces must be merged by
//! [`ObsEvent::merge_key`](crate::ObsEvent::merge_key) first, which is
//! exactly what [`MemRecorder::sort_events`](crate::MemRecorder) does.

use crate::event::ObsEvent;

/// What [`SequenceChecker`] found in a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequenceReport {
    /// Deliveries observed ([`ObsEvent::Complete`] events).
    pub completions: u64,
    /// Deliveries whose `seq` was below the stream's high-water mark.
    pub ooo_deliveries: u64,
    /// Distinct streams that suffered at least one out-of-order
    /// delivery.
    pub ooo_streams: u64,
}

/// Streaming per-stream order checker. Feed it events (or a whole
/// trace via [`SequenceChecker::check`]) and read the totals.
#[derive(Debug, Clone, Default)]
pub struct SequenceChecker {
    /// Per-stream completion high-water `seq`; `u64::MAX` = none yet.
    high_water: Vec<u64>,
    /// Per-stream flag: this stream already has an OOO delivery.
    tainted: Vec<bool>,
    report: SequenceReport,
}

impl SequenceChecker {
    /// Fresh checker with no streams observed.
    pub fn new() -> Self {
        Self::default()
    }

    /// One-shot: run a fresh checker over `events` in the order given.
    pub fn check(events: &[ObsEvent]) -> SequenceReport {
        let mut c = SequenceChecker::new();
        for ev in events {
            c.observe(ev);
        }
        c.report()
    }

    /// Fold one event. Only [`ObsEvent::Complete`] affects the report;
    /// everything else is ignored, so the checker can be driven with a
    /// full mixed trace.
    pub fn observe(&mut self, ev: &ObsEvent) {
        let ObsEvent::Complete { seq, stream, .. } = *ev else {
            return;
        };
        let s = stream as usize;
        if s >= self.high_water.len() {
            self.high_water.resize(s + 1, u64::MAX);
            self.tainted.resize(s + 1, false);
        }
        self.report.completions += 1;
        let hw = self.high_water[s];
        if hw != u64::MAX && seq < hw {
            self.report.ooo_deliveries += 1;
            if !self.tainted[s] {
                self.tainted[s] = true;
                self.report.ooo_streams += 1;
            }
        } else {
            self.high_water[s] = seq;
        }
    }

    /// Totals so far.
    pub fn report(&self) -> SequenceReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(t_us: f64, seq: u64, stream: u32) -> ObsEvent {
        ObsEvent::Complete {
            t_us,
            seq,
            stream,
            worker: 0,
            delay_us: 1.0,
            ok: true,
        }
    }

    #[test]
    fn in_order_deliveries_are_clean() {
        let trace = vec![
            done(1.0, 0, 0),
            done(2.0, 1, 1),
            done(3.0, 2, 0),
            done(4.0, 3, 1),
        ];
        let r = SequenceChecker::check(&trace);
        assert_eq!(
            r,
            SequenceReport {
                completions: 4,
                ooo_deliveries: 0,
                ooo_streams: 0,
            }
        );
    }

    #[test]
    fn cross_stream_interleaving_is_not_reordering() {
        // Stream 1's seq 5 completing before stream 0's seq 2 is fine:
        // order is per-stream only.
        let trace = vec![done(1.0, 5, 1), done(2.0, 2, 0), done(3.0, 7, 1)];
        assert_eq!(SequenceChecker::check(&trace).ooo_deliveries, 0);
    }

    #[test]
    fn regression_below_high_water_counts_once_per_delivery() {
        let trace = vec![
            done(1.0, 0, 3),
            done(2.0, 4, 3), // high water 4
            done(3.0, 1, 3), // OOO
            done(4.0, 2, 3), // OOO (still below 4)
            done(5.0, 9, 3), // new high water
            done(6.0, 8, 3), // OOO
        ];
        let r = SequenceChecker::check(&trace);
        assert_eq!(r.completions, 6);
        assert_eq!(r.ooo_deliveries, 3);
        assert_eq!(r.ooo_streams, 1);
    }

    #[test]
    fn corrupt_completions_still_count_as_deliveries() {
        let mut c = SequenceChecker::new();
        c.observe(&done(1.0, 3, 0));
        c.observe(&ObsEvent::Complete {
            t_us: 2.0,
            seq: 1,
            stream: 0,
            worker: 2,
            delay_us: 1.5,
            ok: false,
        });
        assert_eq!(c.report().ooo_deliveries, 1);
    }

    #[test]
    fn non_completion_events_are_ignored() {
        let mut c = SequenceChecker::new();
        c.observe(&ObsEvent::Enqueue {
            t_us: 0.0,
            seq: 9,
            stream: 0,
            queue: 0,
            depth: 1,
        });
        c.observe(&ObsEvent::TableMiss {
            t_us: 0.0,
            seq: 9,
            stream: 0,
        });
        c.observe(&ObsEvent::Rebind {
            t_us: 0.0,
            seq: 9,
            stream: 0,
            from: 0,
            to: 1,
        });
        assert_eq!(c.report(), SequenceReport::default());
        // The high-water mark comes only from completions: seq 9 events
        // above did not move it, so delivering seq 0 now is in order.
        c.observe(&done(1.0, 0, 0));
        assert_eq!(c.report().ooo_deliveries, 0);
    }
}
