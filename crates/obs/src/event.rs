//! The structured event schema shared by every backend.
//!
//! One vocabulary covers the discrete-event simulator (`afs-core::sim`,
//! timestamped with [`SimTime`] microseconds) and the native pinned-thread
//! backend (`afs-native::runtime`, timestamped with per-worker *virtual
//! clocks* — host time never leaks into a trace). Events are small `Copy`
//! structs so emitting one costs a couple of stores; whether anything
//! further happens is up to the [`Recorder`](crate::Recorder) behind it.
//!
//! [`SimTime`]: https://docs.rs/afs-desim

/// Queue identifier used when a message lands in a *shared* queue (the
/// Locking-paradigm global run queue, or the native pooled ring) rather
/// than a per-worker/per-processor one.
pub const SHARED_QUEUE: u32 = u32::MAX;

/// What a [`ObsEvent::CacheCharge`] is paying for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChargeKind {
    /// The dispatch found every footprint resident: warm-bound service.
    Warm,
    /// A migration flushed state (code, thread or stream footprint).
    Flush,
    /// Reload-transient cycles charged on top of the warm bound
    /// (the paper's `D + RC` displacement cost).
    ReloadTransient,
    /// Lock acquisition/contention overhead (Locking paradigm or a
    /// contended native shared structure).
    Lock,
}

impl ChargeKind {
    /// Short stable label used by the JSONL sink.
    pub fn label(self) -> &'static str {
        match self {
            ChargeKind::Warm => "warm",
            ChargeKind::Flush => "flush",
            ChargeKind::ReloadTransient => "reload",
            ChargeKind::Lock => "lock",
        }
    }
}

/// One structured observation. All timestamps are in *virtual*
/// microseconds: simulation time on the desim backend, the executing
/// worker's vclock on the native backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsEvent {
    /// A message entered a run queue.
    Enqueue {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Per-run unique message sequence number.
        seq: u64,
        /// Stream (connection) the message belongs to.
        stream: u32,
        /// Queue it landed in (worker/processor index, or [`SHARED_QUEUE`]).
        queue: u32,
        /// Queue depth *after* the insert.
        depth: u32,
    },
    /// A worker began servicing a message.
    Dispatch {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Message sequence number.
        seq: u64,
        /// Stream the message belongs to.
        stream: u32,
        /// Worker/processor executing the message.
        worker: u32,
        /// Total service time charged (µs), including reload transient
        /// and lock overhead.
        service_us: f64,
        /// The stream's per-connection state last lived on a different
        /// worker (an affinity miss).
        stream_migrated: bool,
        /// The protocol thread (Locking paradigm) last ran elsewhere.
        thread_migrated: bool,
        /// The message was obtained by work stealing.
        stolen: bool,
    },
    /// The dispatcher's claim table resolved a steal in virtual order:
    /// message `seq`, queued on `from`, was claimed by thief `to` at
    /// model start instant `t_us` (native backend). The claim is the
    /// arbitration *decision*; the matching [`ObsEvent::Steal`] records
    /// the thief executing it.
    StealClaim {
        /// Virtual timestamp (µs): the claim's model start instant.
        t_us: f64,
        /// Message sequence number.
        seq: u64,
        /// Victim worker (the queue owner).
        from: u32,
        /// Claimant (thief) worker.
        to: u32,
    },
    /// A message moved between workers by stealing (native backend).
    Steal {
        /// Virtual timestamp (µs) at the thief.
        t_us: f64,
        /// Message sequence number.
        seq: u64,
        /// Victim worker.
        from: u32,
        /// Thief worker.
        to: u32,
    },
    /// A message finished service.
    Complete {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Message sequence number.
        seq: u64,
        /// Stream the message belongs to.
        stream: u32,
        /// Worker/processor that executed it.
        worker: u32,
        /// Queueing + service delay since arrival (µs).
        delay_us: f64,
        /// `false` when the message was corrupted/faulted and its work
        /// was wasted.
        ok: bool,
    },
    /// A queued message was evicted by an overload drop policy before
    /// ever being serviced.
    Evict {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Message sequence number.
        seq: u64,
        /// Queue it was evicted from.
        queue: u32,
    },
    /// Cache/lock cycles charged against a worker.
    CacheCharge {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Worker/processor charged.
        worker: u32,
        /// What the charge pays for.
        kind: ChargeKind,
        /// Amount (µs); `0.0` for pure count events such as flushes
        /// whose cost is already folded into the service time.
        amount_us: f64,
    },
    /// A sampled queue-depth observation.
    QueueDepth {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Queue sampled (worker/processor index, or [`SHARED_QUEUE`]).
        queue: u32,
        /// Depth at the sample point.
        depth: u32,
    },
    /// A worker left service (processor fault: crash or stall window).
    WorkerDown {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// The worker that went down.
        worker: u32,
    },
    /// A worker returned to service (stall ended, or a crash revived it
    /// with cold caches).
    WorkerUp {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// The worker that came back.
        worker: u32,
    },
    /// A message was orphaned by its worker's failure (it was in flight
    /// or queued there) and must be re-routed. Every `Orphaned` is
    /// followed by exactly one [`ObsEvent::Requeue`] of the same `seq`
    /// — the pair is the conservation ledger across a failure.
    Orphaned {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Message sequence number.
        seq: u64,
        /// The failed worker it was recovered from.
        worker: u32,
    },
    /// An orphaned message re-entered a queue via the policy's own
    /// routing decision over the degraded view.
    Requeue {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Message sequence number.
        seq: u64,
        /// Queue it landed in (worker index, or [`SHARED_QUEUE`]).
        queue: u32,
    },
    /// A NIC front-end steering lookup missed its bounded flow table
    /// (Flow Director) or placed a flow for the first time
    /// (transport-friendly): the packet fell through to the fallback
    /// routing policy.
    TableMiss {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Message sequence number.
        seq: u64,
        /// Stream (flow) that missed.
        stream: u32,
    },
    /// A NIC front-end routed a flow to a *different* worker than the
    /// flow's previous packet — the migration that breaks affinity and
    /// (for Flow Director under bursty arrivals) reorders deliveries.
    Rebind {
        /// Virtual timestamp (µs).
        t_us: f64,
        /// Message sequence number.
        seq: u64,
        /// Stream (flow) that was rebound.
        stream: u32,
        /// Worker the flow's previous packet was routed to.
        from: u32,
        /// Worker this packet was routed to.
        to: u32,
    },
}

impl ObsEvent {
    /// Virtual timestamp of the event (µs).
    pub fn t_us(&self) -> f64 {
        match *self {
            ObsEvent::Enqueue { t_us, .. }
            | ObsEvent::Dispatch { t_us, .. }
            | ObsEvent::StealClaim { t_us, .. }
            | ObsEvent::Steal { t_us, .. }
            | ObsEvent::Complete { t_us, .. }
            | ObsEvent::Evict { t_us, .. }
            | ObsEvent::CacheCharge { t_us, .. }
            | ObsEvent::QueueDepth { t_us, .. }
            | ObsEvent::WorkerDown { t_us, .. }
            | ObsEvent::WorkerUp { t_us, .. }
            | ObsEvent::Orphaned { t_us, .. }
            | ObsEvent::Requeue { t_us, .. }
            | ObsEvent::TableMiss { t_us, .. }
            | ObsEvent::Rebind { t_us, .. } => t_us,
        }
    }

    /// Message sequence number, for per-message events.
    pub fn seq(&self) -> Option<u64> {
        match *self {
            ObsEvent::Enqueue { seq, .. }
            | ObsEvent::Dispatch { seq, .. }
            | ObsEvent::StealClaim { seq, .. }
            | ObsEvent::Steal { seq, .. }
            | ObsEvent::Complete { seq, .. }
            | ObsEvent::Evict { seq, .. }
            | ObsEvent::Orphaned { seq, .. }
            | ObsEvent::Requeue { seq, .. }
            | ObsEvent::TableMiss { seq, .. }
            | ObsEvent::Rebind { seq, .. } => Some(seq),
            ObsEvent::CacheCharge { .. }
            | ObsEvent::QueueDepth { .. }
            | ObsEvent::WorkerDown { .. }
            | ObsEvent::WorkerUp { .. } => None,
        }
    }

    /// Causal rank used to order events that share a timestamp when
    /// per-worker streams are merged: a front-end steering decision
    /// (table miss, rebind) records before the enqueue it produced, a
    /// message is enqueued before it is evicted or stolen, a steal
    /// *claim* (the dispatcher's virtual-order arbitration decision)
    /// before the steal executing it, stolen before dispatched,
    /// dispatched (and charged) before completed. Failure
    /// events slot in causally too: within one message's timestamp an
    /// orphan records before its requeue, and a requeue before any
    /// steal/dispatch of the same message. The *relative* order of the
    /// pre-existing kinds is unchanged by the front-end insertions, so
    /// existing merged traces sort identically (ranks are never
    /// serialized).
    pub fn kind_rank(&self) -> u8 {
        match self {
            ObsEvent::TableMiss { .. } => 0,
            ObsEvent::Rebind { .. } => 1,
            ObsEvent::Enqueue { .. } => 2,
            ObsEvent::Evict { .. } => 3,
            ObsEvent::WorkerDown { .. } => 4,
            ObsEvent::WorkerUp { .. } => 5,
            ObsEvent::Orphaned { .. } => 6,
            ObsEvent::Requeue { .. } => 7,
            ObsEvent::StealClaim { .. } => 8,
            ObsEvent::Steal { .. } => 9,
            ObsEvent::Dispatch { .. } => 10,
            ObsEvent::CacheCharge { .. } => 11,
            ObsEvent::QueueDepth { .. } => 12,
            ObsEvent::Complete { .. } => 13,
        }
    }

    /// Deterministic total-order key for merging per-worker event
    /// streams: `(virtual time, sequence number, causal rank)`.
    pub fn merge_key(&self) -> (u64, u64, u8) {
        // f64 timestamps are non-negative here; their bit patterns order
        // identically to their values, giving a total order without
        // pulling `f64: Ord` tricks into every call site.
        (
            self.t_us().to_bits(),
            self.seq().unwrap_or(u64::MAX),
            self.kind_rank(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_follow_message_lifecycle() {
        let enq = ObsEvent::Enqueue {
            t_us: 1.0,
            seq: 0,
            stream: 0,
            queue: 0,
            depth: 1,
        };
        let claim = ObsEvent::StealClaim {
            t_us: 1.0,
            seq: 0,
            from: 0,
            to: 1,
        };
        let steal = ObsEvent::Steal {
            t_us: 1.0,
            seq: 0,
            from: 0,
            to: 1,
        };
        let disp = ObsEvent::Dispatch {
            t_us: 1.0,
            seq: 0,
            stream: 0,
            worker: 1,
            service_us: 5.0,
            stream_migrated: true,
            thread_migrated: false,
            stolen: true,
        };
        let done = ObsEvent::Complete {
            t_us: 1.0,
            seq: 0,
            stream: 0,
            worker: 1,
            delay_us: 6.0,
            ok: true,
        };
        assert!(enq.kind_rank() < claim.kind_rank());
        assert!(claim.kind_rank() < steal.kind_rank());
        assert!(steal.kind_rank() < disp.kind_rank());
        assert_eq!(claim.seq(), Some(0));
        assert!(disp.kind_rank() < done.kind_rank());
        assert!(enq.merge_key() < done.merge_key());
    }

    #[test]
    fn merge_key_orders_by_time_first() {
        let late = ObsEvent::Enqueue {
            t_us: 2.0,
            seq: 0,
            stream: 0,
            queue: 0,
            depth: 1,
        };
        let early = ObsEvent::Complete {
            t_us: 1.0,
            seq: 9,
            stream: 0,
            worker: 0,
            delay_us: 0.5,
            ok: true,
        };
        assert!(early.merge_key() < late.merge_key());
    }

    #[test]
    fn fault_events_order_causally_within_a_message() {
        let orphan = ObsEvent::Orphaned {
            t_us: 3.0,
            seq: 4,
            worker: 1,
        };
        let requeue = ObsEvent::Requeue {
            t_us: 3.0,
            seq: 4,
            queue: 2,
        };
        let disp = ObsEvent::Dispatch {
            t_us: 3.0,
            seq: 4,
            stream: 0,
            worker: 2,
            service_us: 5.0,
            stream_migrated: true,
            thread_migrated: false,
            stolen: false,
        };
        assert!(orphan.merge_key() < requeue.merge_key());
        assert!(requeue.merge_key() < disp.merge_key());
        let down = ObsEvent::WorkerDown {
            t_us: 3.0,
            worker: 1,
        };
        let up = ObsEvent::WorkerUp {
            t_us: 3.0,
            worker: 1,
        };
        assert_eq!(down.seq(), None);
        assert_eq!(up.seq(), None);
        assert!(down.merge_key() < up.merge_key());
        assert_eq!(down.t_us(), 3.0);
    }

    #[test]
    fn frontend_events_order_before_their_enqueue() {
        let miss = ObsEvent::TableMiss {
            t_us: 4.0,
            seq: 6,
            stream: 2,
        };
        let rebind = ObsEvent::Rebind {
            t_us: 4.0,
            seq: 6,
            stream: 2,
            from: 0,
            to: 3,
        };
        let enq = ObsEvent::Enqueue {
            t_us: 4.0,
            seq: 6,
            stream: 2,
            queue: 3,
            depth: 1,
        };
        assert!(miss.merge_key() < rebind.merge_key());
        assert!(rebind.merge_key() < enq.merge_key());
        assert_eq!(miss.seq(), Some(6));
        assert_eq!(rebind.seq(), Some(6));
        assert_eq!(rebind.t_us(), 4.0);
    }

    #[test]
    fn seq_absent_for_samples() {
        let qd = ObsEvent::QueueDepth {
            t_us: 0.0,
            queue: 3,
            depth: 7,
        };
        assert_eq!(qd.seq(), None);
        assert_eq!(qd.t_us(), 0.0);
    }
}
