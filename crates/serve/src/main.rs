//! `afs-serve` — the sustained-ingest serving binary.
//!
//! Drives bursty Zipf × compound-Poisson open-loop traffic through the
//! pinned native pipeline (`afs_native::run_serve`) for as long as
//! asked, in bounded memory, streaming live `afs-obs` serve snapshots
//! as JSONL. Under overload it degrades deterministically: the NIC
//! tail-drops in the virtual domain and the final ledger
//! (`offered = admitted + dropped`, every admitted packet reaching
//! exactly one outcome) is checked before exit.
//!
//! ```text
//! afs-serve --workers 2 --load 1.5 --batch 8 --policy min-reload \
//!           --frontend fdir --packets 1000000 --snapshot-every 100000
//! ```
//!
//! Exit status is non-zero if the ledger does not balance or, when
//! `--gate <BENCH_perf.json>` is given, if host throughput falls below
//! `--gate-frac` (default 0.5) of the committed
//! `native_serve_pkts_per_wall_s` baseline — the CI smoke contract.

use std::io::Write;
use std::process::ExitCode;

use afs_native::{run_serve, FrontEndKind, Pinning, PolicySpec, ServeConfig};

const USAGE: &str = "afs-serve — sustained-ingest serving over the pinned native backend

USAGE:
    afs-serve [OPTIONS]

OPTIONS:
    --workers <N>         worker threads (default 2)
    --streams <N>         flow population size (default 65536)
    --policy <P>          fallback policy: oblivious | locking | ips |
                          mru-load | min-reload (default min-reload)
    --frontend <F>        NIC front-end: rss | fdir | transport (default fdir)
    --batch <N>           dequeue/dispatch batch bound (default 8)
    --packets <N>         total packets to offer (default 1000000)
    --seconds <S>         virtual traffic duration; overrides --packets
                          (packets = offered rate x S)
    --warmup <N>          packets before the statistics window
                          (default packets/10)
    --load <F>            offered load as a multiple of rated capacity
                          (workers / warm service time; default 1.0)
    --pps <F>             explicit offered rate, overrides --load
    --alpha <F>           Zipf skew (default 1.1)
    --batch-mean <F>      mean arrival burst length (default 4.0)
    --payload <N>         UDP payload bytes (default 64)
    --queue-capacity <N>  per-worker admission bound (default from policy)
    --seed <N>            RNG seed (default 0xAF5)
    --pin                 pin workers to cores (default off)
    --snapshot-every <N>  emit a serve snapshot every N offered packets
    --snapshot-out <PATH> write snapshots to PATH instead of stdout
    --gate <PATH>         BENCH_perf.json with the committed
                          native_serve_pkts_per_wall_s baseline
    --gate-frac <F>       minimum fraction of the baseline (default 0.5)
    -h, --help            print this help
";

struct Args {
    workers: usize,
    streams: u32,
    policy: PolicySpec,
    frontend: FrontEndKind,
    batch: usize,
    packets: u64,
    seconds: Option<f64>,
    warmup: Option<u64>,
    load: f64,
    pps: Option<f64>,
    alpha: f64,
    batch_mean: f64,
    payload: usize,
    queue_capacity: Option<usize>,
    seed: Option<u64>,
    pin: bool,
    snapshot_every: Option<u64>,
    snapshot_out: Option<String>,
    gate: Option<String>,
    gate_frac: f64,
}

fn parse_policy(s: &str) -> Result<PolicySpec, String> {
    PolicySpec::ALL
        .into_iter()
        .find(|p| p.label() == s)
        .ok_or_else(|| {
            format!("unknown policy '{s}' (use oblivious | locking | ips | mru-load | min-reload)")
        })
}

fn parse_frontend(s: &str) -> Result<FrontEndKind, String> {
    FrontEndKind::ALL
        .into_iter()
        .find(|k| k.label() == s)
        .ok_or_else(|| format!("unknown front-end '{s}' (use rss | fdir | transport)"))
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        workers: 2,
        streams: 65_536,
        policy: parse_policy("min-reload")?,
        frontend: parse_frontend("fdir")?,
        batch: 8,
        packets: 1_000_000,
        seconds: None,
        warmup: None,
        load: 1.0,
        pps: None,
        alpha: 1.1,
        batch_mean: 4.0,
        payload: 64,
        queue_capacity: None,
        seed: None,
        pin: false,
        snapshot_every: None,
        snapshot_out: None,
        gate: None,
        gate_frac: 0.5,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => return Ok(None),
            "--workers" => {
                args.workers = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--streams" => {
                args.streams = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--streams: {e}"))?
            }
            "--policy" => args.policy = parse_policy(&value(&mut i)?)?,
            "--frontend" => args.frontend = parse_frontend(&value(&mut i)?)?,
            "--batch" => {
                args.batch = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--packets" => {
                args.packets = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--packets: {e}"))?
            }
            "--seconds" => {
                args.seconds = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--seconds: {e}"))?,
                )
            }
            "--warmup" => {
                args.warmup = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--warmup: {e}"))?,
                )
            }
            "--load" => args.load = value(&mut i)?.parse().map_err(|e| format!("--load: {e}"))?,
            "--pps" => args.pps = Some(value(&mut i)?.parse().map_err(|e| format!("--pps: {e}"))?),
            "--alpha" => {
                args.alpha = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?
            }
            "--batch-mean" => {
                args.batch_mean = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--batch-mean: {e}"))?
            }
            "--payload" => {
                args.payload = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--payload: {e}"))?
            }
            "--queue-capacity" => {
                args.queue_capacity = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--queue-capacity: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = Some(value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?)
            }
            "--pin" => args.pin = true,
            "--snapshot-every" => {
                args.snapshot_every = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--snapshot-every: {e}"))?,
                )
            }
            "--snapshot-out" => args.snapshot_out = Some(value(&mut i)?),
            "--gate" => args.gate = Some(value(&mut i)?),
            "--gate-frac" => {
                args.gate_frac = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--gate-frac: {e}"))?
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if args.workers == 0 || args.streams == 0 || args.batch == 0 {
        return Err("--workers, --streams and --batch must be positive".into());
    }
    Ok(Some(args))
}

/// The committed `native_serve_pkts_per_wall_s` baseline, read from a
/// BENCH_perf.json produced by `bench_snapshot` (schema v3+).
fn baseline_serve_pkts_per_s(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let tail = text.split("\"native_serve_pkts_per_wall_s\":").nth(1)?;
    tail.trim_start()
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn main() -> ExitCode {
    let a = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = ServeConfig::new(a.workers, a.streams, a.frontend, a.policy);
    cfg.alpha = a.alpha;
    cfg.batch_mean = a.batch_mean;
    cfg.payload_bytes = a.payload;
    cfg.native.batch = a.batch;
    cfg.native.pinning = if a.pin { Pinning::Auto } else { Pinning::Off };
    if let Some(c) = a.queue_capacity {
        cfg.native.queue_capacity = c;
    }
    if let Some(s) = a.seed {
        cfg.native.seed = s;
    }
    cfg.offered_pps = a.pps.unwrap_or_else(|| a.load * cfg.rated_capacity_pps());
    cfg.total_packets = match a.seconds {
        Some(s) => (cfg.offered_pps * s).ceil() as u64,
        None => a.packets,
    };
    cfg.warmup_packets = a.warmup.unwrap_or(cfg.total_packets / 10);
    cfg.snapshot_every = a.snapshot_every;

    eprintln!(
        "afs-serve: {} workers, {} streams, {}/{} front-end, batch {}, \
         {:.0} pps offered ({:.2}x rated), {} packets ({} warm-up)",
        a.workers,
        a.streams,
        a.frontend.label(),
        a.policy.label(),
        a.batch,
        cfg.offered_pps,
        cfg.offered_pps / cfg.rated_capacity_pps(),
        cfg.total_packets,
        cfg.warmup_packets,
    );

    let mut file_sink = match &a.snapshot_out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let stdout = std::io::stdout();
    let mut stdout_lock;
    let sink: Option<&mut dyn Write> = if cfg.snapshot_every.is_some() {
        match file_sink.as_mut() {
            Some(f) => Some(f),
            None => {
                stdout_lock = stdout.lock();
                Some(&mut stdout_lock)
            }
        }
    } else {
        None
    };

    let r = run_serve(&cfg, sink);

    eprintln!(
        "done: offered {} = admitted {} + dropped {} ({:.2}% drop); \
         delivered {}; goodput {:.0} pps (virtual); mean delay {:.1} us; \
         {:.0} pkts/s host wall ({:.2} s); rss {} KiB; \
         table misses {}; rebinds {}",
        r.offered,
        r.admitted,
        r.dropped,
        100.0 * r.drop_frac(),
        r.outcomes.delivered,
        r.goodput_pps(),
        r.mean_delay_us,
        r.pkts_per_wall_s,
        r.wall_s,
        r.rss_kb,
        r.table_misses,
        r.rebinds,
    );

    let mut failed = false;
    if !r.ledger_balanced() {
        eprintln!("FAIL: serving ledger does not balance");
        failed = true;
    }
    if let Some(path) = &a.gate {
        match baseline_serve_pkts_per_s(path) {
            Some(base) => {
                let floor = a.gate_frac * base;
                if r.pkts_per_wall_s < floor {
                    eprintln!(
                        "FAIL: throughput {:.0} pkts/s below gate {:.0} \
                         ({} x committed baseline {:.0})",
                        r.pkts_per_wall_s, floor, a.gate_frac, base
                    );
                    failed = true;
                } else {
                    eprintln!(
                        "gate ok: {:.0} pkts/s >= {:.0} ({} x baseline {:.0})",
                        r.pkts_per_wall_s, floor, a.gate_frac, base
                    );
                }
            }
            None => eprintln!("gate skipped: no native_serve_pkts_per_wall_s in {path}"),
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
