//! Adversarial fuzz harness for the receive path.
//!
//! Feeds arbitrary byte soup, bit-flipped/truncated mutations of valid
//! frames, and `FaultInjector`-damaged traffic into
//! [`ProtocolEngine::receive_outcome`] and [`ip::parse_header`], and
//! requires that every input terminates in a *typed* outcome — never a
//! panic — with partial work charged on rejection.
//!
//! Seven suites × 256 cases per run (the vendored proptest honours
//! `PROPTEST_CASES` as a global cap for CI smoke runs). The last two
//! suites replay injector-damaged traffic through the native
//! pinned-thread backend and cross-check its typed-outcome accounting
//! against a single-engine reference — the final one while a seeded
//! processor-fault plan crashes, stalls and slows workers mid-run.

use proptest::prelude::*;

use afs_desim::rng::RngFactory;
use afs_xkernel::driver::{PacketFactory, RxFrame};
use afs_xkernel::mem::MemLayout;
use afs_xkernel::msg::Message;
use afs_xkernel::proto::StreamId;
use afs_xkernel::{ip, CostModel, FaultInjector, FaultPlan, ProtocolEngine, RxOutcome, ThreadId};

const CASES: u32 = 256;

/// 50/50 `None`/`Some` over `s` (the vendored proptest has no
/// `prop::option` module).
fn opt<S>(s: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), s.prop_map(Some)]
}

fn frame_at(bytes: Vec<u8>, stream: u32, slot: u32) -> RxFrame {
    RxFrame {
        bytes,
        stream: StreamId(stream),
        buf_addr: MemLayout::new().packet(slot % 8),
    }
}

/// Whatever happened, the outcome must be typed and must have charged
/// the cycle model for the work done before the verdict.
fn assert_typed(out: &RxOutcome) {
    let t = out.timing();
    assert!(t.us.is_finite() && t.us > 0.0, "no work charged: {out:?}");
    assert!(t.us < 10_000.0, "absurd service time: {out:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Raw byte soup into the IP parser: typed error or parse, no panic.
    #[test]
    fn ip_parse_survives_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        base_addr in any::<u32>(),
    ) {
        let mut msg = Message::from_wire(&bytes, u64::from(base_addr));
        let _ = ip::parse_header(&mut msg);
    }

    /// Raw byte soup into the full engine: every frame terminates in a
    /// typed `RxOutcome` with partial work charged.
    #[test]
    fn engine_survives_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
        stream in 0u32..16,
        slot in any::<u32>(),
    ) {
        let mut eng = ProtocolEngine::new(CostModel::default());
        eng.bind_stream(StreamId(stream));
        let mut hier = CostModel::default().hierarchy();
        let frame = frame_at(bytes, stream, slot);
        let out = eng.receive_outcome(&mut hier, &frame, ThreadId(0));
        assert_typed(&out);
        // Byte soup essentially never forms a valid FDDI frame + IP
        // checksum + UDP checksum; but we only require a typed verdict.
    }

    /// Valid frames with a handful of bit flips: either the damage lands
    /// in the payload of an unchecksummed region and the frame delivers,
    /// or a typed error/drop comes back. Never a panic.
    #[test]
    fn engine_survives_bit_flipped_valid_frames(
        stream in 0u32..16,
        len in 0usize..1400,
        flips in prop::collection::vec((any::<prop::sample::Index>(), 0u8..8), 1..6),
        slot in any::<u32>(),
    ) {
        let mut eng = ProtocolEngine::new(CostModel::default());
        eng.bind_stream(StreamId(stream));
        let mut hier = CostModel::default().hierarchy();
        let mut factory = PacketFactory::new();
        let mut bytes = factory.frame_for(StreamId(stream), len);
        for (idx, bit) in &flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= 1 << bit;
        }
        let out = eng.receive_outcome(&mut hier, &frame_at(bytes, stream, slot), ThreadId(0));
        assert_typed(&out);
    }

    /// Valid frames truncated at an arbitrary point.
    #[test]
    fn engine_survives_truncated_valid_frames(
        stream in 0u32..16,
        len in 0usize..1400,
        cut in any::<prop::sample::Index>(),
        slot in any::<u32>(),
    ) {
        let mut eng = ProtocolEngine::new(CostModel::default());
        eng.bind_stream(StreamId(stream));
        let mut hier = CostModel::default().hierarchy();
        let mut factory = PacketFactory::new();
        let mut bytes = factory.frame_for(StreamId(stream), len);
        bytes.truncate(cut.index(bytes.len() + 1));
        let out = eng.receive_outcome(&mut hier, &frame_at(bytes, stream, slot), ThreadId(0));
        assert_typed(&out);
        if let RxOutcome::Delivered(t) = out {
            // An undetected truncation must at least be internally
            // consistent: it cannot deliver more than it carried.
            prop_assert!(t.payload_bytes <= len);
        }
    }

    /// A lossy, corrupting, reordering wire feeding the engine: every
    /// admitted frame still terminates in a typed outcome, and intact
    /// frames still deliver.
    #[test]
    fn engine_survives_fault_injected_traffic(
        seed in any::<u64>(),
        n_frames in 1usize..40,
        drop_p in 0.0f64..0.5,
        corrupt_p in 0.0f64..0.5,
        truncate_p in 0.0f64..0.5,
    ) {
        let plan = FaultPlan {
            drop_p,
            corrupt_p,
            truncate_p,
            duplicate_p: 0.2,
            reorder_p: 0.2,
            ..FaultPlan::none()
        };
        let factory_rng = RngFactory::new(seed);
        let mut inj = FaultInjector::from_factory(plan, &factory_rng);
        let mut eng = ProtocolEngine::new(CostModel::default());
        eng.bind_stream(StreamId(1));
        let mut hier = CostModel::default().hierarchy();
        let mut packets = PacketFactory::new();
        let mut emitted = Vec::new();
        for i in 0..n_frames {
            let frame = frame_at(packets.frame_for(StreamId(1), 64 + i), 1, i as u32);
            emitted.extend(inj.admit(frame));
        }
        emitted.extend(inj.flush());
        // Per-case diagnostics: the injected fault mix and the typed
        // outcome of every traversal, folded into one Counters value so
        // a failing case prints *what the wire did* next to *what the
        // engine concluded* instead of a bare pass/fail.
        let mut obs = afs_obs::Counters::new();
        inj.stats.observe_into(&mut obs);
        for frame in &emitted {
            let out = eng.receive_outcome(&mut hier, frame, ThreadId(0));
            assert_typed(&out);
            out.observe_into(&mut obs);
        }
        prop_assert_eq!(obs.fault_examined, n_frames as u64);
        prop_assert_eq!(
            obs.delivered + obs.dropped_no_session + obs.dropped_queue_full + obs.errored,
            emitted.len() as u64,
            "every admitted frame gets exactly one typed outcome\n{}",
            afs_obs::summary::render(&obs)
        );
        // A damaged original shows up at most twice (itself + one
        // duplicate carrying the same damage); every undamaged frame
        // must deliver.
        let delivered = obs.delivered as usize;
        let damaged = (obs.corruptions + obs.truncations) as usize;
        prop_assert!(
            delivered + 2 * damaged >= emitted.len(),
            "undamaged frames must deliver: {delivered} + 2*{damaged} < {}\n{}",
            emitted.len(),
            afs_obs::summary::render(&obs)
        );
    }

    /// The native pinned-thread backend fed the same fault-injected
    /// traffic: its goodput accounting must be lossless (every offered
    /// frame lands in exactly one typed-outcome bucket) and must agree
    /// with a single-engine replay of the identical wire bytes — the
    /// deliver/reject verdict depends on the frame, never on which
    /// worker, cache, or interleaving processed it.
    #[test]
    fn native_backend_accounts_for_fault_injected_traffic(
        seed in any::<u64>(),
        n_frames in 1usize..60,
        workers in 1usize..4,
        drop_p in 0.0f64..0.4,
        corrupt_p in 0.0f64..0.4,
        truncate_p in 0.0f64..0.4,
    ) {
        use afs_native::{run_native_recorded, NativeConfig, NativePacket, Pinning, PolicySpec};

        let plan = FaultPlan {
            drop_p,
            corrupt_p,
            truncate_p,
            duplicate_p: 0.2,
            reorder_p: 0.2,
            ..FaultPlan::none()
        };
        let factory_rng = RngFactory::new(seed);
        let mut inj = FaultInjector::from_factory(plan, &factory_rng);
        let mut packets = PacketFactory::new();
        let streams = 4u32;
        let mut emitted = Vec::new();
        for i in 0..n_frames {
            let s = i as u32 % streams;
            let frame = frame_at(packets.frame_for(StreamId(s), 32 + i % 256), s, i as u32);
            emitted.extend(inj.admit(frame));
        }
        emitted.extend(inj.flush());

        // Reference verdicts: one engine, one thread, same bytes.
        let mut eng = ProtocolEngine::new(CostModel::default());
        for s in 0..streams {
            eng.bind_stream(StreamId(s));
        }
        let mut hier = CostModel::default().hierarchy();
        let mut want = afs_obs::Counters::new();
        inj.stats.observe_into(&mut want);
        for frame in &emitted {
            let out = eng.receive_outcome(&mut hier, frame, ThreadId(0));
            assert_typed(&out);
            out.observe_into(&mut want);
        }

        // Native run over the identical frames (arrivals spaced so the
        // run exercises real queueing but stays fast), traced through
        // the unified recorder so a failure prints both sides' counters.
        let workload: Vec<NativePacket> = emitted
            .iter()
            .enumerate()
            .map(|(i, f)| NativePacket {
                bytes: f.bytes.clone(),
                stream: f.stream,
                arrival_us: 25.0 * i as f64,
            })
            .collect();
        let mut cfg = NativeConfig::new(workers, PolicySpec::Ips);
        cfg.pinning = Pinning::Off;
        let (report, rec) = run_native_recorded(&cfg, workload);
        let diag = || {
            format!(
                "wire + reference:\n{}\nnative trace:\n{}",
                afs_obs::summary::render(&want),
                afs_obs::summary::render(&rec.counters)
            )
        };

        prop_assert_eq!(report.offered, emitted.len() as u64);
        prop_assert_eq!(report.outcomes.total(), report.offered, "lost frames\n{}", diag());
        prop_assert_eq!(report.outcomes.delivered, want.delivered, "{}", diag());
        prop_assert_eq!(report.outcomes.rejected, want.errored, "{}", diag());
        prop_assert_eq!(
            report.outcomes.no_session + report.outcomes.queue_full,
            want.dropped_no_session + want.dropped_queue_full,
            "{}", diag()
        );
        // The runtime drains each user queue on delivery, so overflow
        // cannot be the native backend's private failure mode here.
        prop_assert_eq!(report.outcomes.queue_full, 0);
        // Trace-side conservation: every offered frame was enqueued,
        // dispatched and completed exactly once — nothing in flight at
        // join, nothing evicted (the dispatcher blocks, never drops).
        let c = &rec.counters;
        prop_assert_eq!(c.enqueued, report.offered, "{}", diag());
        prop_assert_eq!(c.dispatched, report.offered, "{}", diag());
        prop_assert_eq!(c.completed, report.offered, "{}", diag());
        prop_assert_eq!(c.evicted, 0, "{}", diag());
        prop_assert_eq!(c.in_flight(), 0, "{}", diag());
        prop_assert_eq!(c.completed_ok, want.delivered, "{}", diag());
    }

    /// Packet faults and processor faults at once: the injector damages
    /// the wire while a seeded plan crashes, stalls and slows workers
    /// mid-run. The deliver/reject verdict must still depend only on
    /// the frame (it matches the single-engine reference exactly), and
    /// the conservation ledger must balance across the crash — every
    /// orphan re-dispatched, nothing lost, nothing in flight at join.
    #[test]
    fn native_backend_survives_combined_packet_and_processor_faults(
        seed in any::<u64>(),
        n_frames in 8usize..60,
        workers in 2usize..=4,
        drop_p in 0.0f64..0.4,
        corrupt_p in 0.0f64..0.4,
        truncate_p in 0.0f64..0.4,
        victim_r in 0.0f64..1.0,
        crash_frac in 0.1f64..0.8,
        revive in opt(0.05f64..0.4),
        stall in opt((0.0f64..0.6, 0.05f64..0.3)),
        slow in opt((0.0f64..0.7, 1.0f64..3.0)),
    ) {
        use afs_native::{
            run_native_recorded, NativeConfig, NativePacket, Pinning, PolicySpec, ProcFault,
            ProcFaultKind, ProcFaultPlan,
        };

        let plan = FaultPlan {
            drop_p,
            corrupt_p,
            truncate_p,
            duplicate_p: 0.2,
            reorder_p: 0.2,
            ..FaultPlan::none()
        };
        let factory_rng = RngFactory::new(seed);
        let mut inj = FaultInjector::from_factory(plan, &factory_rng);
        let mut packets = PacketFactory::new();
        let streams = 4u32;
        let mut emitted = Vec::new();
        for i in 0..n_frames {
            let s = i as u32 % streams;
            let frame = frame_at(packets.frame_for(StreamId(s), 32 + i % 256), s, i as u32);
            emitted.extend(inj.admit(frame));
        }
        emitted.extend(inj.flush());
        prop_assume!(!emitted.is_empty());

        // Reference verdicts: one engine, one thread, same bytes.
        let mut eng = ProtocolEngine::new(CostModel::default());
        for s in 0..streams {
            eng.bind_stream(StreamId(s));
        }
        let mut hier = CostModel::default().hierarchy();
        let mut want = afs_obs::Counters::new();
        inj.stats.observe_into(&mut want);
        for frame in &emitted {
            let out = eng.receive_outcome(&mut hier, frame, ThreadId(0));
            assert_typed(&out);
            out.observe_into(&mut want);
        }

        let workload: Vec<NativePacket> = emitted
            .iter()
            .enumerate()
            .map(|(i, f)| NativePacket {
                bytes: f.bytes.clone(),
                stream: f.stream,
                arrival_us: 25.0 * i as f64,
            })
            .collect();
        let horizon_us = 25.0 * workload.len() as f64;

        // The processor-fault plan: one crash (never worker 0 — the
        // survivor guarantee), plus an optional stall and slow core.
        let victim = 1 + ((victim_r * (workers - 1) as f64) as usize).min(workers - 2);
        let mut proc_faults = vec![ProcFault {
            proc: victim,
            at_us: crash_frac * horizon_us,
            kind: ProcFaultKind::Crash {
                revive_at_us: revive.map(|d| (crash_frac + d) * horizon_us),
            },
        }];
        if let Some((at, dur)) = stall {
            proc_faults.push(ProcFault {
                proc: 0,
                at_us: at * horizon_us,
                kind: ProcFaultKind::Stall {
                    duration_us: dur * horizon_us,
                },
            });
        }
        if let Some((at, factor)) = slow {
            proc_faults.push(ProcFault {
                proc: victim % workers.saturating_sub(1) + 1,
                at_us: at * horizon_us,
                kind: ProcFaultKind::Slowdown { factor },
            });
        }
        let proc_plan = ProcFaultPlan { faults: proc_faults };
        prop_assert!(proc_plan.validate(workers).is_ok());

        let mut cfg = NativeConfig::new(workers, PolicySpec::Ips);
        cfg.pinning = Pinning::Off;
        cfg.faults = proc_plan;
        let (report, rec) = run_native_recorded(&cfg, workload);
        let diag = || {
            format!(
                "wire + reference:\n{}\nnative trace:\n{}\nreport: {report:?}",
                afs_obs::summary::render(&want),
                afs_obs::summary::render(&rec.counters)
            )
        };

        // Verdicts are frame properties, crash or no crash: home-stack
        // routing keeps diverted streams on their session state, so the
        // typed-outcome totals match the single-engine reference.
        prop_assert_eq!(report.offered, emitted.len() as u64);
        prop_assert_eq!(report.outcomes.total(), report.offered, "lost frames\n{}", diag());
        prop_assert_eq!(report.outcomes.delivered, want.delivered, "{}", diag());
        prop_assert_eq!(report.outcomes.rejected, want.errored, "{}", diag());
        prop_assert_eq!(report.outcomes.no_session, 0, "session lost in a crash\n{}", diag());

        // Conservation across the crash: the ledger balances and every
        // orphan was re-dispatched.
        let c = &rec.counters;
        prop_assert_eq!(c.enqueued, report.offered, "{}", diag());
        prop_assert_eq!(c.completed, report.offered, "{}", diag());
        prop_assert_eq!(c.in_flight(), 0, "{}", diag());
        prop_assert_eq!(c.evicted, 0, "{}", diag());
        prop_assert_eq!(c.orphaned, c.requeued, "{}", diag());
        prop_assert_eq!(c.orphaned, report.orphaned, "{}", diag());
        prop_assert_eq!(report.orphaned, report.requeued, "{}", diag());
        if report.workers_crashed > 0 {
            prop_assert!(c.worker_downs > 0, "crash without a WorkerDown event\n{}", diag());
        }
    }
}
