//! Property-based tests for the protocol substrate: wire-format
//! round-trips with arbitrary payloads, corruption detection, message
//! push/pop inverses, and checksum algebra.

use proptest::prelude::*;

use afs_xkernel::driver::{self, PacketFactory, RxFrame};
use afs_xkernel::mem::MemLayout;
use afs_xkernel::msg::{internet_checksum, ones_complement_sum, Message};
use afs_xkernel::proto::StreamId;
use afs_xkernel::{fddi, ip, udp, CostModel, ProtocolEngine, ThreadId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn fddi_roundtrip_any_payload(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let frame = fddi::build_frame(
            fddi::MacAddr::station(1),
            fddi::MacAddr::station(2),
            fddi::ETHERTYPE_IP,
            &payload,
        )
        .expect("fits");
        let mut msg = Message::from_wire(&frame, 0);
        let hdr = fddi::parse_frame(&mut msg).expect("round-trips");
        prop_assert_eq!(hdr.ethertype, fddi::ETHERTYPE_IP);
        prop_assert_eq!(msg.bytes(), &payload[..]);
    }

    #[test]
    fn fddi_detects_any_single_bit_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let frame = fddi::build_frame(
            fddi::MacAddr::station(1),
            fddi::MacAddr::station(2),
            fddi::ETHERTYPE_IP,
            &payload,
        )
        .expect("fits");
        let mut corrupted = frame.clone();
        let idx = byte_idx.index(corrupted.len());
        corrupted[idx] ^= 1 << bit;
        let mut msg = Message::from_wire(&corrupted, 0);
        // Any single-bit flip anywhere in the frame must be rejected:
        // header fields fail structural checks, payload/FCS flips fail
        // the CRC (CRC-32 detects all single-bit errors).
        prop_assert!(fddi::parse_frame(&mut msg).is_err());
    }

    #[test]
    fn ip_roundtrip_any_payload(
        payload in prop::collection::vec(any::<u8>(), 0..1024),
        ident in any::<u16>(),
        src in any::<u32>(),
        dst in any::<u32>(),
    ) {
        let total = (ip::HEADER_LEN + payload.len()) as u16;
        let h = ip::build_header(
            total, ident, true, false, 0, ip::DEFAULT_TTL, ip::PROTO_UDP,
            ip::Ipv4Addr(src), ip::Ipv4Addr(dst),
        );
        let mut dgram = h.to_vec();
        dgram.extend_from_slice(&payload);
        let mut msg = Message::from_wire(&dgram, 0);
        let parsed = ip::parse_header(&mut msg).expect("round-trips");
        prop_assert_eq!(parsed.ident, ident);
        prop_assert_eq!(parsed.src, ip::Ipv4Addr(src));
        prop_assert_eq!(parsed.dst, ip::Ipv4Addr(dst));
        prop_assert_eq!(msg.bytes(), &payload[..]);
    }

    #[test]
    fn ip_header_detects_any_corruption(
        ident in any::<u16>(),
        byte_idx in 0usize..ip::HEADER_LEN,
        bit in 0u8..8,
    ) {
        let h = ip::build_header(
            (ip::HEADER_LEN + 4) as u16, ident, false, false, 0,
            ip::DEFAULT_TTL, ip::PROTO_UDP,
            ip::Ipv4Addr::host(1), ip::Ipv4Addr::host(2),
        );
        let mut dgram = h.to_vec();
        dgram.extend_from_slice(&[1, 2, 3, 4]);
        dgram[byte_idx] ^= 1 << bit;
        let mut msg = Message::from_wire(&dgram, 0);
        // A single-bit header flip must never parse as the original:
        // either a structural/checksum error, or (if it flipped a field
        // the checksum does not cover — there is none) different fields.
        match ip::parse_header(&mut msg) {
            Err(_) => {}
            Ok(parsed) => {
                // The 16-bit one's-complement checksum cannot catch a
                // flip... actually it catches all single-bit flips.
                prop_assert!(false, "single-bit flip accepted: {parsed:?}");
            }
        }
    }

    #[test]
    fn udp_roundtrip_with_and_without_checksum(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        sp in any::<u16>(),
        dp in any::<u16>(),
        with_checksum in any::<bool>(),
    ) {
        let src = ip::Ipv4Addr::host(7);
        let dst = ip::Ipv4Addr::host(9);
        let d = udp::build_datagram(src, dst, sp, dp, &payload, with_checksum);
        let mut msg = Message::from_wire(&d, 0);
        let h = udp::parse_datagram(&mut msg, src, dst).expect("round-trips");
        prop_assert_eq!(h.src_port, sp);
        prop_assert_eq!(h.dst_port, dp);
        prop_assert_eq!(msg.bytes(), &payload[..]);
    }

    #[test]
    fn udp_checksummed_detects_payload_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let src = ip::Ipv4Addr::host(7);
        let dst = ip::Ipv4Addr::host(9);
        let mut d = udp::build_datagram(src, dst, 1, 2, &payload, true);
        let idx = udp::HEADER_LEN + byte_idx.index(payload.len());
        d[idx] ^= 1 << bit;
        let mut msg = Message::from_wire(&d, 0);
        prop_assert_eq!(
            udp::parse_datagram(&mut msg, src, dst),
            Err(udp::UdpError::BadChecksum)
        );
    }

    #[test]
    fn checksum_verifies_to_zero_when_embedded(data in prop::collection::vec(any::<u8>(), 2..256)) {
        // Compute a checksum over data with a zeroed 16-bit field, embed
        // it, and verify the whole buffer sums to 0 — the IP invariant.
        let mut buf = data.clone();
        if buf.len() % 2 == 1 {
            buf.push(0);
        }
        buf[0] = 0;
        buf[1] = 0;
        let c = internet_checksum(&buf);
        buf[0] = (c >> 8) as u8;
        buf[1] = (c & 0xFF) as u8;
        prop_assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn ones_complement_sum_is_associative_over_splits(
        data in prop::collection::vec(any::<u8>(), 0..256),
        split in any::<prop::sample::Index>(),
    ) {
        // Summing in two even-sized chunks with carry-folding equals
        // summing at once (the property pseudo-header folding relies on).
        let mut even = data.clone();
        if even.len() % 2 == 1 {
            even.push(0);
        }
        let mid = (split.index(even.len() / 2 + 1)) * 2;
        let first = ones_complement_sum(&even[..mid], 0);
        let whole = ones_complement_sum(&even[mid..], u32::from(first));
        prop_assert_eq!(whole, ones_complement_sum(&even, 0));
    }

    #[test]
    fn message_push_pop_inverse(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        hdr_sizes in prop::collection::vec(1usize..16, 0..4),
    ) {
        let total: usize = hdr_sizes.iter().sum();
        prop_assume!(total <= afs_xkernel::msg::DEFAULT_HEADROOM);
        let mut m = Message::for_send(&payload, 0);
        let mut pushed = Vec::new();
        for (i, &n) in hdr_sizes.iter().enumerate() {
            let h = m.push(n).expect("headroom");
            for (j, b) in h.iter_mut().enumerate() {
                *b = (i * 31 + j) as u8;
            }
            pushed.push(h.to_vec());
        }
        // Pop them back off in reverse order.
        for h in pushed.iter().rev() {
            prop_assert_eq!(&m.bytes()[..h.len()], &h[..]);
            m.pop(h.len()).expect("still there");
        }
        prop_assert_eq!(m.bytes(), &payload[..]);
    }

    #[test]
    fn factory_frames_always_deliver(
        stream in 0u32..64,
        len in 0usize..4404,
        slot in 0u32..8,
    ) {
        let mut eng = ProtocolEngine::new(CostModel::default());
        eng.bind_stream(StreamId(stream));
        let mut hier = CostModel::default().hierarchy();
        let mut factory = PacketFactory::new();
        let frame = RxFrame {
            bytes: factory.frame_for(StreamId(stream), len),
            stream: StreamId(stream),
            buf_addr: MemLayout::new().packet(slot),
        };
        let t = eng.receive(&mut hier, &frame, ThreadId(0)).expect("delivers");
        prop_assert_eq!(t.payload_bytes, len);
        prop_assert_eq!(t.stream, StreamId(stream));
        prop_assert!(t.us > 0.0 && t.us < 1_000.0);
    }

    #[test]
    fn ports_and_peers_injective(a in 0u32..1000, b in 0u32..1000) {
        prop_assume!(a != b);
        prop_assert_ne!(driver::port_of(StreamId(a)), driver::port_of(StreamId(b)));
        prop_assert_ne!(driver::peer_of(StreamId(a)), driver::peer_of(StreamId(b)));
    }
}

mod tcp_props {
    use super::*;
    use afs_xkernel::tcp::{self, TcpDisposition, TcpSession};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// Split a byte stream into random segments, deliver them in a
        /// random order (with some duplicated), and require the session
        /// to deliver exactly the original prefix order and byte count.
        #[test]
        fn tcp_reassembles_any_segmentation_in_any_order(
            data in prop::collection::vec(any::<u8>(), 1..600),
            cuts in prop::collection::vec(1usize..40, 1..30),
            shuffle_seed in any::<u64>(),
            isn in any::<u32>(),
            dup_every in 2usize..6,
        ) {
            // Build segments [start, end) from the cut list.
            let mut segments = Vec::new();
            let mut start = 0usize;
            let mut cuts_iter = cuts.iter();
            while start < data.len() {
                let len = (*cuts_iter.next().unwrap_or(&17)).min(data.len() - start);
                segments.push((start, &data[start..start + len]));
                start += len;
            }
            // Duplicate some segments, then shuffle deterministically.
            let mut order: Vec<usize> = (0..segments.len()).collect();
            for i in (0..segments.len()).step_by(dup_every) {
                order.push(i);
            }
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
            order.shuffle(&mut rng);

            let mut session = TcpSession::new(isn);
            let mut delivered = 0usize;
            for &idx in &order {
                let (off, payload) = segments[idx];
                let hdr = tcp::TcpHeader {
                    src_port: 1,
                    dst_port: 2,
                    seq: isn.wrapping_add(off as u32),
                    ack: 0,
                    header_len: tcp::HEADER_LEN,
                    flags: tcp::flags::ACK,
                    window: 8192,
                };
                match session.receive(&hdr, payload).expect("no RST here") {
                    TcpDisposition::Delivered { bytes } => delivered += bytes,
                    TcpDisposition::Queued | TcpDisposition::Duplicate => {}
                }
            }
            prop_assert_eq!(delivered, data.len(), "bytes delivered");
            prop_assert_eq!(session.delivered_bytes as usize, data.len());
            prop_assert_eq!(
                session.rcv_nxt,
                isn.wrapping_add(data.len() as u32),
                "rcv_nxt must land at the end of the stream"
            );
            prop_assert_eq!(session.reorder_depth(), 0, "queue must drain");
        }

        /// Wire round-trip for arbitrary TCP segments.
        #[test]
        fn tcp_wire_roundtrip(
            payload in prop::collection::vec(any::<u8>(), 0..512),
            seq in any::<u32>(),
            ack in any::<u32>(),
            window in any::<u16>(),
        ) {
            let src = ip::Ipv4Addr::host(1);
            let dst = ip::Ipv4Addr::host(2);
            let wire = tcp::build_segment(
                src, dst, 42, 43, seq, ack, tcp::flags::ACK | tcp::flags::PSH, window, &payload,
            );
            let mut msg = Message::from_wire(&wire, 0);
            let h = tcp::parse_segment(&mut msg, src, dst).expect("round-trips");
            prop_assert_eq!(h.seq, seq);
            prop_assert_eq!(h.ack, ack);
            prop_assert_eq!(h.window, window);
            prop_assert_eq!(msg.bytes(), &payload[..]);
        }

        /// Any single-bit corruption of a TCP segment is caught by the
        /// checksum.
        #[test]
        fn tcp_checksum_catches_single_bit_flips(
            payload in prop::collection::vec(any::<u8>(), 1..128),
            byte_idx in any::<prop::sample::Index>(),
            bit in 0u8..8,
        ) {
            let src = ip::Ipv4Addr::host(1);
            let dst = ip::Ipv4Addr::host(2);
            let mut wire = tcp::build_segment(src, dst, 1, 2, 0, 0, tcp::flags::ACK, 0, &payload);
            let idx = byte_idx.index(wire.len());
            wire[idx] ^= 1 << bit;
            let mut msg = Message::from_wire(&wire, 0);
            // One's-complement sums catch all single-bit errors, except a
            // flip that turns 0x0000 into 0xFFFF in the same sum position
            // (both are "zero" in one's complement). Data-offset flips may
            // instead surface as header-length errors.
            match tcp::parse_segment(&mut msg, src, dst) {
                Err(_) => {}
                Ok(h) => {
                    // The only survivable flips are within checksum-equal
                    // representations; re-serialize and compare fields.
                    prop_assert!(
                        h.header_len == tcp::HEADER_LEN,
                        "corrupted segment accepted: {h:?}"
                    );
                }
            }
        }
    }
}
