//! UDP processing: header build/parse, optional checksum over the
//! pseudo-header, and port demultiplexing.

use crate::ip::Ipv4Addr;
use crate::msg::{ones_complement_sum, Message, MsgError};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length (header + payload).
    pub length: u16,
    /// Checksum field as received (0 = not computed by sender).
    pub checksum: u16,
}

/// UDP errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpError {
    /// Message shorter than the UDP header or the claimed length.
    Truncated,
    /// Length field smaller than the header.
    BadLength,
    /// Checksum mismatch (only when the sender computed one).
    BadChecksum,
    /// No session bound to the destination port.
    NoPort(u16),
    /// Underlying message error.
    Msg(MsgError),
}

impl From<MsgError> for UdpError {
    fn from(e: MsgError) -> Self {
        UdpError::Msg(e)
    }
}

impl std::fmt::Display for UdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdpError::Truncated => write!(f, "truncated UDP datagram"),
            UdpError::BadLength => write!(f, "bad UDP length"),
            UdpError::BadChecksum => write!(f, "UDP checksum mismatch"),
            UdpError::NoPort(p) => write!(f, "no session on port {p}"),
            UdpError::Msg(e) => write!(f, "message error: {e}"),
        }
    }
}

impl std::error::Error for UdpError {}

/// One's-complement sum of the UDP pseudo-header.
fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, udp_len: u16) -> u32 {
    let s = src.0;
    let d = dst.0;
    (s >> 16) + (s & 0xFFFF) + (d >> 16) + (d & 0xFFFF) + 17 + udp_len as u32
}

/// Compute the UDP checksum for a datagram (header with zero checksum
/// field + payload), with the pseudo-header folded in. Returns the value
/// to place in the checksum field (0 mapped to 0xFFFF per RFC 768).
pub fn udp_checksum(src: Ipv4Addr, dst: Ipv4Addr, datagram: &[u8]) -> u16 {
    let sum = ones_complement_sum(datagram, pseudo_header_sum(src, dst, datagram.len() as u16));
    let c = !sum;
    if c == 0 {
        0xFFFF
    } else {
        c
    }
}

/// Build a UDP datagram (header + payload). `with_checksum = false`
/// writes 0 in the checksum field — the configuration the paper's
/// non-data-touching experiments use.
pub fn build_datagram(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    with_checksum: bool,
) -> Vec<u8> {
    let len = (HEADER_LEN + payload.len()) as u16;
    let mut d = Vec::with_capacity(len as usize);
    d.extend_from_slice(&src_port.to_be_bytes());
    d.extend_from_slice(&dst_port.to_be_bytes());
    d.extend_from_slice(&len.to_be_bytes());
    d.extend_from_slice(&[0, 0]);
    d.extend_from_slice(payload);
    if with_checksum {
        let c = udp_checksum(src, dst, &d);
        d[6..8].copy_from_slice(&c.to_be_bytes());
    }
    d
}

/// Parse and strip the UDP header (uninstrumented twin of the fast path
/// in [`crate::engine`]). When the sender computed a checksum
/// (`checksum != 0`) it is verified against the pseudo-header.
pub fn parse_datagram(
    msg: &mut Message,
    src: Ipv4Addr,
    dst: Ipv4Addr,
) -> Result<UdpHeader, UdpError> {
    let bytes = msg.bytes();
    if bytes.len() < HEADER_LEN {
        return Err(UdpError::Truncated);
    }
    let hdr = UdpHeader {
        src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
        dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
        length: u16::from_be_bytes([bytes[4], bytes[5]]),
        checksum: u16::from_be_bytes([bytes[6], bytes[7]]),
    };
    if (hdr.length as usize) < HEADER_LEN {
        return Err(UdpError::BadLength);
    }
    if (hdr.length as usize) > bytes.len() {
        return Err(UdpError::Truncated);
    }
    if hdr.checksum != 0 {
        // Sum over the datagram including the transmitted checksum plus
        // the pseudo-header must be 0xFFFF.
        let sum = ones_complement_sum(
            &bytes[..hdr.length as usize],
            pseudo_header_sum(src, dst, hdr.length),
        );
        if sum != 0xFFFF {
            return Err(UdpError::BadChecksum);
        }
    }
    msg.truncate(hdr.length as usize);
    msg.pop(HEADER_LEN)?;
    Ok(hdr)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr(0x0A000001);
    const DST: Ipv4Addr = Ipv4Addr(0x0A000002);

    #[test]
    fn roundtrip_without_checksum() {
        let d = build_datagram(SRC, DST, 1111, 2222, b"data", false);
        let mut msg = Message::from_wire(&d, 0);
        let h = parse_datagram(&mut msg, SRC, DST).unwrap();
        assert_eq!(h.src_port, 1111);
        assert_eq!(h.dst_port, 2222);
        assert_eq!(h.length as usize, HEADER_LEN + 4);
        assert_eq!(h.checksum, 0);
        assert_eq!(msg.bytes(), b"data");
    }

    #[test]
    fn roundtrip_with_checksum() {
        let d = build_datagram(SRC, DST, 5, 7, b"checksummed payload", true);
        let mut msg = Message::from_wire(&d, 0);
        let h = parse_datagram(&mut msg, SRC, DST).unwrap();
        assert_ne!(h.checksum, 0);
        assert_eq!(msg.bytes(), b"checksummed payload");
    }

    #[test]
    fn corrupted_payload_detected_when_checksummed() {
        let mut d = build_datagram(SRC, DST, 5, 7, b"payload", true);
        *d.last_mut().unwrap() ^= 0x40;
        let mut msg = Message::from_wire(&d, 0);
        assert_eq!(
            parse_datagram(&mut msg, SRC, DST),
            Err(UdpError::BadChecksum)
        );
    }

    #[test]
    fn wrong_pseudo_header_detected() {
        let d = build_datagram(SRC, DST, 5, 7, b"payload", true);
        let mut msg = Message::from_wire(&d, 0);
        // Claim a different source address than the one summed.
        assert_eq!(
            parse_datagram(&mut msg, Ipv4Addr(0x0A0000FF), DST),
            Err(UdpError::BadChecksum)
        );
    }

    #[test]
    fn corruption_ignored_without_checksum() {
        let mut d = build_datagram(SRC, DST, 5, 7, b"payload", false);
        *d.last_mut().unwrap() ^= 0x40;
        let mut msg = Message::from_wire(&d, 0);
        assert!(parse_datagram(&mut msg, SRC, DST).is_ok());
    }

    #[test]
    fn truncated_and_bad_length() {
        let mut msg = Message::from_wire(&[0u8; 4], 0);
        assert_eq!(parse_datagram(&mut msg, SRC, DST), Err(UdpError::Truncated));

        let mut d = build_datagram(SRC, DST, 1, 2, b"abc", false);
        d[4..6].copy_from_slice(&3u16.to_be_bytes()); // length < header
        let mut msg = Message::from_wire(&d, 0);
        assert_eq!(parse_datagram(&mut msg, SRC, DST), Err(UdpError::BadLength));

        let mut d = build_datagram(SRC, DST, 1, 2, b"abc", false);
        d[4..6].copy_from_slice(&100u16.to_be_bytes()); // length > message
        let mut msg = Message::from_wire(&d, 0);
        assert_eq!(parse_datagram(&mut msg, SRC, DST), Err(UdpError::Truncated));
    }

    #[test]
    fn zero_checksum_never_emitted_when_computed() {
        // Find a payload whose checksum would be zero: the all-zeros
        // pseudo-header case is hard to hit; instead verify the 0→0xFFFF
        // rule directly on a crafted sum.
        let c = udp_checksum(Ipv4Addr(0), Ipv4Addr(0), &[]);
        assert_ne!(c, 0);
    }

    #[test]
    fn padding_after_length_is_dropped() {
        let mut d = build_datagram(SRC, DST, 1, 2, b"ab", false);
        d.extend_from_slice(&[0xEE; 6]);
        let mut msg = Message::from_wire(&d, 0);
        parse_datagram(&mut msg, SRC, DST).unwrap();
        assert_eq!(msg.bytes(), b"ab");
    }
}
