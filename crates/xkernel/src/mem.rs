//! The instrumented memory model.
//!
//! The paper measures per-packet execution times on real hardware with
//! controlled cache states. Our stand-in executes the *same protocol
//! logic* over simulated memory: every logical access a protocol layer
//! performs is issued as a region-tagged reference into a pluggable
//! [`TraceSink`] (normally the [`MemoryHierarchy`] cache simulator), and
//! instruction execution is charged at one cycle per instruction with
//! instruction fetches swept through each function's code segment.
//!
//! Timing rule (documented in DESIGN.md): a packet's execution time is
//!
//! ```text
//! cycles = instructions × CPI  +  Σ cache-miss penalties
//! ```
//!
//! with the L1 hit time folded into the CPI (loads that hit L1 do not
//! stall the R4400 pipeline). The hierarchy is therefore configured with
//! `l1_hit_cycles = 0` here, and the engine charges `instructions × CPI`
//! explicitly.
//!
//! [`MemoryHierarchy`]: afs_cache::sim::MemoryHierarchy

use afs_cache::sim::trace::{MemRef, Region, TraceSink};

/// One instruction fetch reference is issued per `IFETCH_GRANULE`
/// instructions — i.e. one per 16-byte I-cache line (4 × 4-byte MIPS
/// instructions), which is the granularity at which the I-cache can hit
/// or miss anyway.
pub const IFETCH_GRANULE: u32 = 4;

/// Bytes per MIPS instruction.
pub const INSTR_BYTES: u64 = 4;

/// A contiguous code segment owned by one protocol function/layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeSeg {
    /// Base simulated address.
    pub base: u64,
    /// Segment length in bytes.
    pub len: u64,
}

impl CodeSeg {
    /// Number of instructions the segment holds.
    pub fn instructions(&self) -> u64 {
        self.len / INSTR_BYTES
    }
}

/// Simulated address-space layout.
///
/// Regions live in disjoint 256 MiB windows so tags can never collide;
/// per-entity areas (thread stacks, stream state) are strided within
/// their window. Window bases are **staggered modulo the L1 period**
/// (1024 sets × 16 B = 16 KiB) so that the steady-state footprints of
/// code, globals, thread, stream and packet buffers occupy disjoint L1
/// set ranges — as a real kernel's link map and allocator coloring
/// arrange. Entity strides are a multiple of the L1 period, so two
/// streams' states conflict with *each other* (only one can be L1-hot at
/// a time — exactly the effect stream migration exercises) but never
/// with unrelated regions.
#[derive(Debug, Clone, Copy)]
pub struct MemLayout {
    code_base: u64,
    global_base: u64,
    thread_base: u64,
    stream_base: u64,
    packet_base: u64,
}

impl MemLayout {
    /// Per-thread stack/control window (64 KiB = 4 L1 periods).
    pub const THREAD_STRIDE: u64 = 64 * 1024;
    /// Per-stream protocol-state window (16 KiB = 1 L1 period).
    pub const STREAM_STRIDE: u64 = 16 * 1024;
    /// Per-packet-buffer window (16 KiB, ≥ FDDI MTU; 1 L1 period).
    pub const PACKET_STRIDE: u64 = 16 * 1024;

    /// The standard layout.
    pub fn new() -> Self {
        MemLayout {
            // L1 set = (addr / 16) % 1024; each 0xN000_0000 window base
            // is ≡ 0, so the offsets below pick the starting set. The
            // budget: ≤ 12 032 B of code (752 sets, incl. the TCP
            // segment), 40 sets of globals, 40 of thread stack, 176 of
            // stream state — 1 008 of the 1 024 sets, with the packet
            // window in the remainder (packet data is DMA-cold anyway).
            code_base: 0x1000_0000,            // sets    0..751  (code)
            global_base: 0x2000_0000 + 0x2F00, // sets  752..791  (globals)
            thread_base: 0x3000_0000 + 0x3200, // sets  800..839  (stacks)
            stream_base: 0x4000_0000 + 0x3500, // sets  848..1023 (sessions)
            packet_base: 0x5000_0000 + 0x3F00, // sets 1008..     (buffers)
        }
    }

    /// Allocate code segments sequentially: returns the segment for the
    /// `ordinal`-th function of size `len` bytes given the running
    /// offset; callers use [`CodeAllocator`] instead of this directly.
    fn code_at(&self, offset: u64, len: u64) -> CodeSeg {
        CodeSeg {
            base: self.code_base + offset,
            len,
        }
    }

    /// Base address of the shared-global area.
    pub fn global(&self, offset: u64) -> u64 {
        self.global_base + offset
    }

    /// Base address of thread `tid`'s stack window.
    pub fn thread(&self, tid: u32) -> u64 {
        self.thread_base + tid as u64 * Self::THREAD_STRIDE
    }

    /// Base address of stream `sid`'s protocol state.
    pub fn stream(&self, sid: u32) -> u64 {
        self.stream_base + sid as u64 * Self::STREAM_STRIDE
    }

    /// Base address of packet buffer `slot`.
    pub fn packet(&self, slot: u32) -> u64 {
        self.packet_base + slot as u64 * Self::PACKET_STRIDE
    }
}

impl Default for MemLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Sequential allocator for code segments within the layout's code window.
#[derive(Debug, Clone)]
pub struct CodeAllocator {
    layout: MemLayout,
    offset: u64,
}

impl CodeAllocator {
    /// Start allocating at the bottom of the code window.
    pub fn new(layout: MemLayout) -> Self {
        CodeAllocator { layout, offset: 0 }
    }

    /// Allocate a code segment of `len` bytes (rounded up to a line).
    pub fn alloc(&mut self, len: u64) -> CodeSeg {
        let len = len.next_multiple_of(16);
        let seg = self.layout.code_at(self.offset, len);
        self.offset += len;
        seg
    }

    /// Total code bytes allocated.
    pub fn allocated(&self) -> u64 {
        self.offset
    }
}

/// The instrumented execution context: counts instructions and issues
/// region-tagged references into the sink.
pub struct MemCtx<'a, S: TraceSink> {
    sink: &'a mut S,
    /// Instructions executed under this context.
    pub instructions: u64,
    /// Data references issued.
    pub data_refs: u64,
    /// Instruction-fetch references issued.
    pub ifetch_refs: u64,
}

impl<'a, S: TraceSink> MemCtx<'a, S> {
    /// Wrap a sink.
    pub fn new(sink: &'a mut S) -> Self {
        MemCtx {
            sink,
            instructions: 0,
            data_refs: 0,
            ifetch_refs: 0,
        }
    }

    /// Execute `instrs` instructions of `seg`: charges the instruction
    /// count and sweeps fetch references cyclically through the segment
    /// (loops re-touch the same lines, as real loops do).
    pub fn exec(&mut self, seg: CodeSeg, instrs: u32) {
        self.instructions += instrs as u64;
        let fetches = (instrs / IFETCH_GRANULE).max(1);
        let lines = (seg.len / 16).max(1);
        for i in 0..fetches {
            let line = (i as u64) % lines;
            self.sink.access(MemRef::fetch(seg.base + line * 16));
            self.ifetch_refs += 1;
        }
    }

    /// A 32-bit data load.
    pub fn load(&mut self, addr: u64, region: Region) {
        self.sink.access(MemRef::read(addr, region));
        self.data_refs += 1;
    }

    /// A 32-bit data store.
    pub fn store(&mut self, addr: u64, region: Region) {
        self.sink.access(MemRef::write(addr, region));
        self.data_refs += 1;
    }

    /// Touch `bytes` bytes starting at `addr` with word loads (used for
    /// struct reads, table walks, data checksums).
    pub fn load_range(&mut self, addr: u64, bytes: u64, region: Region) {
        let words = bytes.div_ceil(4);
        for w in 0..words {
            self.load(addr + w * 4, region);
        }
    }

    /// Touch `bytes` bytes starting at `addr` with word stores.
    pub fn store_range(&mut self, addr: u64, bytes: u64, region: Region) {
        let words = bytes.div_ceil(4);
        for w in 0..words {
            self.store(addr + w * 4, region);
        }
    }

    /// Direct access to the sink (for layered helpers).
    pub fn sink(&mut self) -> &mut S {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_cache::sim::trace::TraceBuffer;

    #[test]
    fn layout_regions_are_disjoint() {
        let l = MemLayout::new();
        let points = [
            l.global(0),
            l.thread(0),
            l.thread(7),
            l.stream(0),
            l.stream(31),
            l.packet(0),
            l.packet(63),
        ];
        // All in distinct 256 MiB windows except entities within a window.
        assert!(l.thread(7) - l.thread(0) == 7 * MemLayout::THREAD_STRIDE);
        assert!(l.stream(31) - l.stream(0) == 31 * MemLayout::STREAM_STRIDE);
        for p in points {
            assert!(p >= 0x2000_0000);
        }
        assert!(l.packet(63) < 0x6000_0000);
    }

    #[test]
    fn code_allocator_is_sequential_and_aligned() {
        let mut a = CodeAllocator::new(MemLayout::new());
        let s1 = a.alloc(100); // rounds to 112
        let s2 = a.alloc(16);
        assert_eq!(s1.len, 112);
        assert_eq!(s2.base, s1.base + 112);
        assert_eq!(a.allocated(), 128);
        assert_eq!(s2.instructions(), 4);
    }

    #[test]
    fn exec_sweeps_code_lines_cyclically() {
        let mut buf = TraceBuffer::new();
        let mut ctx = MemCtx::new(&mut buf);
        let seg = CodeSeg {
            base: 0x1000,
            len: 32,
        }; // 2 lines
        ctx.exec(seg, 16); // 4 fetches over 2 lines → each line twice
        assert_eq!(ctx.instructions, 16);
        assert_eq!(ctx.ifetch_refs, 4);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.unique_lines(16), 2);
        assert!(buf.refs.iter().all(|r| r.is_instr));
    }

    #[test]
    fn exec_tiny_function_issues_one_fetch() {
        let mut buf = TraceBuffer::new();
        let mut ctx = MemCtx::new(&mut buf);
        ctx.exec(CodeSeg { base: 0, len: 16 }, 2);
        assert_eq!(ctx.ifetch_refs, 1);
    }

    #[test]
    fn load_range_word_granularity() {
        let mut buf = TraceBuffer::new();
        {
            let mut ctx = MemCtx::new(&mut buf);
            ctx.load_range(0x4000_0000, 10, Region::Stream); // 3 words
            assert_eq!(ctx.data_refs, 3);
            ctx.store_range(0x4000_0000, 8, Region::Stream);
            assert_eq!(ctx.data_refs, 5);
        }
        assert_eq!(buf.len(), 5);
        let loads = buf.refs.iter().filter(|r| !r.is_write).count();
        assert_eq!(loads, 3);
        assert!(buf.refs.iter().all(|r| r.region == Region::Stream));
    }
}
