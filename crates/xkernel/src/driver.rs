//! The in-memory FDDI device driver and packet factory.
//!
//! The paper: *"We developed in-memory drivers (a technique also used in
//! [13, 21]), since the Challenge's eight 100 MHz R4400 processors are
//! together much faster than the single FDDI network attachment on our
//! machine. Data is not received from the actual FDDI network."* We do
//! the same: [`PacketFactory`] fabricates byte-exact UDP/IP/FDDI frames
//! for a set of streams, and [`InMemoryDriver`] hands them to the
//! protocol engine from a ring of simulated packet buffers.

use std::collections::VecDeque;

use crate::fault::{FaultInjector, FaultStats};
use crate::fddi::{self, MacAddr};
use crate::ip::{self, Ipv4Addr};
use crate::mem::MemLayout;
use crate::proto::StreamId;
use crate::tcp;
use crate::udp;

/// Well-known base for per-stream UDP destination ports.
pub const PORT_BASE: u16 = 5000;
/// The receiving host's address.
pub const HOST_ADDR: Ipv4Addr = Ipv4Addr(0x0A00_0001); // 10.0.0.1
/// The receiving host's station address.
pub const HOST_MAC: MacAddr = MacAddr([0x02, 0x00, 0, 0, 0, 1]);

/// Destination UDP port for a stream.
pub fn port_of(stream: StreamId) -> u16 {
    PORT_BASE + stream.0 as u16
}

/// Source host address for a stream (each stream has its own peer).
pub fn peer_of(stream: StreamId) -> Ipv4Addr {
    Ipv4Addr::host(100 + stream.0)
}

/// Fabricates wire frames for streams.
#[derive(Debug, Clone)]
pub struct PacketFactory {
    /// Whether senders fill in UDP checksums (off = the paper's
    /// non-data-touching configuration).
    pub udp_checksums: bool,
    ident: u16,
}

impl PacketFactory {
    /// A factory with checksums off (the paper's default).
    pub fn new() -> Self {
        PacketFactory {
            udp_checksums: false,
            ident: 0,
        }
    }

    /// Build one complete FDDI frame carrying a TCP segment for `stream`
    /// with the given sequence number and payload (receive-side testing
    /// of the paper's TCP extension, E19).
    pub fn tcp_frame_for(&mut self, stream: StreamId, seq: u32, payload: &[u8]) -> Vec<u8> {
        self.ident = self.ident.wrapping_add(1);
        let src = peer_of(stream);
        let seg = tcp::build_segment(
            src,
            HOST_ADDR,
            1024 + stream.0 as u16,
            port_of(stream),
            seq,
            0,
            tcp::flags::ACK,
            8192,
            payload,
        );
        let total = (ip::HEADER_LEN + seg.len()) as u16;
        let iph = ip::build_header(
            total,
            self.ident,
            true,
            false,
            0,
            ip::DEFAULT_TTL,
            ip::PROTO_TCP,
            src,
            HOST_ADDR,
        );
        let mut dgram = iph.to_vec();
        dgram.extend_from_slice(&seg);
        fddi::build_frame(
            HOST_MAC,
            MacAddr::station(100 + stream.0),
            fddi::ETHERTYPE_IP,
            &dgram,
        )
        .expect("factory payloads fit the FDDI MTU")
    }

    /// Build one complete FDDI frame carrying a UDP datagram of
    /// `payload_len` bytes for `stream`.
    pub fn frame_for(&mut self, stream: StreamId, payload_len: usize) -> Vec<u8> {
        let mut out = Vec::new();
        self.frame_into(stream, payload_len, &mut out);
        out
    }

    /// [`frame_for`](Self::frame_for) writing into a caller-owned
    /// buffer: `out` is cleared and refilled in place, so a recycled
    /// buffer makes frame fabrication allocation-free once its capacity
    /// has grown to the frame length. The bytes produced are identical
    /// to [`frame_for`](Self::frame_for)'s — same header fields, same
    /// payload pattern, same checksums, same ident sequence — which the
    /// byte-identity test below pins against the layer builders.
    pub fn frame_into(&mut self, stream: StreamId, payload_len: usize, out: &mut Vec<u8>) {
        assert!(
            ip::HEADER_LEN + udp::HEADER_LEN + payload_len <= fddi::MAX_PAYLOAD,
            "factory payloads fit the FDDI MTU"
        );
        self.ident = self.ident.wrapping_add(1);
        let src = peer_of(stream);
        out.clear();
        // FDDI header (the layout of `fddi::build_frame`).
        out.push(fddi::FC_LLC);
        out.extend_from_slice(&HOST_MAC.0);
        out.extend_from_slice(&MacAddr::station(100 + stream.0).0);
        out.push(fddi::LLC_SNAP_SAP);
        out.push(fddi::LLC_SNAP_SAP);
        out.push(fddi::LLC_UI);
        out.extend_from_slice(&[0, 0, 0]); // SNAP OUI
        out.extend_from_slice(&fddi::ETHERTYPE_IP.to_be_bytes());
        // IP header.
        let total = (ip::HEADER_LEN + udp::HEADER_LEN + payload_len) as u16;
        let iph = ip::build_header(
            total,
            self.ident,
            true,
            false,
            0,
            ip::DEFAULT_TTL,
            ip::PROTO_UDP,
            src,
            HOST_ADDR,
        );
        out.extend_from_slice(&iph);
        // UDP header + patterned payload (the layout of
        // `udp::build_datagram`).
        let udp_start = out.len();
        out.extend_from_slice(&(1024 + stream.0 as u16).to_be_bytes());
        out.extend_from_slice(&port_of(stream).to_be_bytes());
        out.extend_from_slice(&((udp::HEADER_LEN + payload_len) as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend((0..payload_len).map(|i| (i & 0xFF) as u8));
        if self.udp_checksums {
            let c = udp::udp_checksum(src, HOST_ADDR, &out[udp_start..]);
            out[udp_start + 6..udp_start + 8].copy_from_slice(&c.to_be_bytes());
        }
        // FCS over everything so far.
        let fcs = fddi::crc32(out);
        out.extend_from_slice(&fcs.to_be_bytes());
    }
}

impl Default for PacketFactory {
    fn default() -> Self {
        Self::new()
    }
}

/// A received frame waiting in driver memory.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// The wire bytes.
    pub bytes: Vec<u8>,
    /// Which stream generated it (ground truth for experiments; the
    /// engine re-derives the stream by demuxing the headers).
    pub stream: StreamId,
    /// Simulated buffer address the frame occupies.
    pub buf_addr: u64,
}

/// The in-memory driver: a receive ring of simulated buffers, with an
/// optional fault-injection stage between the wire and the ring.
#[derive(Debug)]
pub struct InMemoryDriver {
    layout: MemLayout,
    ring: VecDeque<RxFrame>,
    next_slot: u32,
    slots: u32,
    injector: Option<FaultInjector>,
    /// Frames dropped because the ring was full.
    pub drops: u64,
}

impl InMemoryDriver {
    /// A driver with `slots` receive buffers and a clean wire.
    pub fn new(layout: MemLayout, slots: u32) -> Self {
        assert!(slots >= 1);
        InMemoryDriver {
            layout,
            ring: VecDeque::new(),
            next_slot: 0,
            slots,
            injector: None,
            drops: 0,
        }
    }

    /// Install a fault injector between the wire and the ring. Every
    /// subsequent [`dma_in`](Self::dma_in) passes through it.
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Injected-fault counters, if an injector is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.as_ref().map(|i| i.stats)
    }

    /// "DMA" a frame into the next ring buffer, routing it through the
    /// fault injector (if any) first. A frame the injector eats on the
    /// wire still returns `true` — the DMA itself succeeded. Returns
    /// false (and counts a drop) only when the ring overflows.
    pub fn dma_in(&mut self, bytes: Vec<u8>, stream: StreamId) -> bool {
        let offered = RxFrame {
            bytes,
            stream,
            buf_addr: 0,
        };
        match self.injector.as_mut() {
            None => self.push_frame(offered),
            Some(inj) => {
                let mut ok = true;
                for f in inj.admit(offered) {
                    ok &= self.push_frame(f);
                }
                ok
            }
        }
    }

    /// Release any frames the injector is still delaying into the ring
    /// (end of a run).
    pub fn flush_faults(&mut self) -> usize {
        let Some(inj) = self.injector.as_mut() else {
            return 0;
        };
        let held = inj.flush();
        let n = held.len();
        for f in held {
            self.push_frame(f);
        }
        n
    }

    fn push_frame(&mut self, mut frame: RxFrame) -> bool {
        if self.ring.len() >= self.slots as usize {
            self.drops += 1;
            return false;
        }
        let slot = self.next_slot % self.slots;
        self.next_slot = self.next_slot.wrapping_add(1);
        frame.buf_addr = self.layout.packet(slot);
        self.ring.push_back(frame);
        true
    }

    /// Take the oldest received frame.
    pub fn next_frame(&mut self) -> Option<RxFrame> {
        self.ring.pop_front()
    }

    /// Frames currently queued.
    pub fn pending(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Message;

    #[test]
    fn factory_frames_parse_end_to_end() {
        let mut f = PacketFactory::new();
        let frame = f.frame_for(StreamId(3), 64);
        let mut msg = Message::from_wire(&frame, 0);
        let fh = fddi::parse_frame(&mut msg).unwrap();
        assert_eq!(fh.dst, HOST_MAC);
        assert_eq!(fh.ethertype, fddi::ETHERTYPE_IP);
        let ih = ip::parse_header(&mut msg).unwrap();
        assert_eq!(ih.protocol, ip::PROTO_UDP);
        assert_eq!(ih.src, peer_of(StreamId(3)));
        assert_eq!(ih.dst, HOST_ADDR);
        let uh = udp::parse_datagram(&mut msg, ih.src, ih.dst).unwrap();
        assert_eq!(uh.dst_port, port_of(StreamId(3)));
        assert_eq!(msg.len(), 64);
    }

    #[test]
    fn factory_with_checksums_validates() {
        let mut f = PacketFactory {
            udp_checksums: true,
            ident: 0,
        };
        let frame = f.frame_for(StreamId(0), 100);
        let mut msg = Message::from_wire(&frame, 0);
        fddi::parse_frame(&mut msg).unwrap();
        let ih = ip::parse_header(&mut msg).unwrap();
        let uh = udp::parse_datagram(&mut msg, ih.src, ih.dst).unwrap();
        assert_ne!(uh.checksum, 0);
    }

    #[test]
    fn frame_into_is_byte_identical_to_the_layer_builders() {
        // The in-place fabricator must produce exactly what composing
        // the layer builders produces — the frames are inputs to
        // committed goldens, so this is a byte-for-byte contract.
        for checksums in [false, true] {
            let mut fast = PacketFactory::new();
            fast.udp_checksums = checksums;
            let mut ident = 0u16;
            let mut buf = Vec::new();
            for (stream, payload_len) in [(0u32, 0usize), (3, 32), (7, 64), (41, 1400)] {
                fast.frame_into(StreamId(stream), payload_len, &mut buf);
                // Reference: the original builder composition.
                ident = ident.wrapping_add(1);
                let payload: Vec<u8> = (0..payload_len).map(|i| (i & 0xFF) as u8).collect();
                let src = peer_of(StreamId(stream));
                let udp = udp::build_datagram(
                    src,
                    HOST_ADDR,
                    1024 + stream as u16,
                    port_of(StreamId(stream)),
                    &payload,
                    checksums,
                );
                let total = (ip::HEADER_LEN + udp.len()) as u16;
                let iph = ip::build_header(
                    total,
                    ident,
                    true,
                    false,
                    0,
                    ip::DEFAULT_TTL,
                    ip::PROTO_UDP,
                    src,
                    HOST_ADDR,
                );
                let mut dgram = iph.to_vec();
                dgram.extend_from_slice(&udp);
                let expect = fddi::build_frame(
                    HOST_MAC,
                    MacAddr::station(100 + stream),
                    fddi::ETHERTYPE_IP,
                    &dgram,
                )
                .unwrap();
                assert_eq!(buf, expect, "stream {stream}, payload {payload_len}");
            }
        }
    }

    #[test]
    fn frame_into_reuses_capacity() {
        let mut f = PacketFactory::new();
        let mut buf = Vec::new();
        f.frame_into(StreamId(0), 256, &mut buf);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for _ in 0..16 {
            f.frame_into(StreamId(1), 256, &mut buf);
        }
        assert_eq!(buf.capacity(), cap, "steady-state refills must not grow");
        assert_eq!(buf.as_ptr(), ptr, "steady-state refills must not move");
    }

    #[test]
    fn idents_increment() {
        let mut f = PacketFactory::new();
        let f1 = f.frame_for(StreamId(0), 8);
        let f2 = f.frame_for(StreamId(0), 8);
        let id = |fr: &[u8]| u16::from_be_bytes([fr[25], fr[26]]); // 21 hdr + 4
        assert_eq!(id(&f2), id(&f1).wrapping_add(1));
    }

    #[test]
    fn driver_ring_rotates_slots_and_drops_when_full() {
        let layout = MemLayout::new();
        let mut d = InMemoryDriver::new(layout, 2);
        assert!(d.dma_in(vec![1], StreamId(0)));
        assert!(d.dma_in(vec![2], StreamId(1)));
        assert!(!d.dma_in(vec![3], StreamId(2)));
        assert_eq!(d.drops, 1);
        let a = d.next_frame().unwrap();
        let b = d.next_frame().unwrap();
        assert_eq!(a.bytes, vec![1]);
        assert_ne!(a.buf_addr, b.buf_addr);
        assert!(d.next_frame().is_none());
        // Freed capacity accepts new frames in recycled slots.
        assert!(d.dma_in(vec![4], StreamId(0)));
        assert_eq!(d.pending(), 1);
    }

    #[test]
    fn driver_with_lossy_injector_delivers_fewer_frames() {
        use crate::fault::{FaultInjector, FaultPlan};
        use afs_desim::rng::RngFactory;
        let plan = FaultPlan {
            drop_p: 0.5,
            ..FaultPlan::none()
        };
        let factory = RngFactory::new(7);
        let mut d = InMemoryDriver::new(MemLayout::new(), 1024)
            .with_injector(FaultInjector::from_factory(plan, &factory));
        for i in 0..200u32 {
            d.dma_in(vec![0u8; 16], StreamId(i % 4));
        }
        d.flush_faults();
        let stats = d.fault_stats().unwrap();
        assert_eq!(stats.examined, 200);
        assert!(stats.drops > 0);
        assert_eq!(d.pending() as u64, 200 - stats.drops);
        assert_eq!(d.drops, 0, "ring never overflowed");
    }

    #[test]
    fn distinct_streams_use_distinct_ports_and_peers() {
        assert_ne!(port_of(StreamId(0)), port_of(StreamId(1)));
        assert_ne!(peer_of(StreamId(0)), peer_of(StreamId(1)));
    }
}
