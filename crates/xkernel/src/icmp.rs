//! ICMP error generation: the destination-unreachable replies a real
//! receive path must emit when demultiplexing fails (RFC 792).
//!
//! Off the fast path, like reassembly — but part of what makes the
//! substrate a protocol stack rather than a parser: a UDP datagram for
//! an unbound port elicits a *port unreachable* carrying the offending
//! datagram's IP header plus its first 8 bytes.

use crate::ip::{self, Ipv4Addr};
use crate::msg::{internet_checksum, Message, MsgError};

/// ICMP message type: destination unreachable.
pub const TYPE_DEST_UNREACHABLE: u8 = 3;
/// Destination-unreachable code: port unreachable.
pub const CODE_PORT_UNREACHABLE: u8 = 3;
/// ICMP header length.
pub const HEADER_LEN: usize = 8;

/// A parsed ICMP message (the subset this stack emits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpMessage {
    /// Message type.
    pub icmp_type: u8,
    /// Type-specific code.
    pub code: u8,
    /// The quoted original datagram (IP header + first 8 payload bytes).
    pub quoted: Vec<u8>,
}

/// ICMP errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpError {
    /// Shorter than the ICMP header.
    Truncated,
    /// Checksum mismatch.
    BadChecksum,
    /// Underlying message error.
    Msg(MsgError),
}

impl From<MsgError> for IcmpError {
    fn from(e: MsgError) -> Self {
        IcmpError::Msg(e)
    }
}

impl std::fmt::Display for IcmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IcmpError::Truncated => write!(f, "truncated ICMP message"),
            IcmpError::BadChecksum => write!(f, "ICMP checksum mismatch"),
            IcmpError::Msg(e) => write!(f, "message error: {e}"),
        }
    }
}

impl std::error::Error for IcmpError {}

/// Build a complete IP datagram carrying a *port unreachable* for the
/// offending datagram `original` (its full bytes, header included). The
/// reply is addressed back to the original sender from `our_addr`.
///
/// Returns `None` when the original is too short to quote (malformed
/// input should not elicit errors about errors).
pub fn port_unreachable(original: &[u8], our_addr: Ipv4Addr) -> Option<Vec<u8>> {
    if original.len() < ip::HEADER_LEN {
        return None;
    }
    let orig_header_len = ((original[0] & 0x0F) as usize) * 4;
    if original.len() < orig_header_len {
        return None;
    }
    let orig_src = Ipv4Addr(u32::from_be_bytes([
        original[12],
        original[13],
        original[14],
        original[15],
    ]));
    // Quote the original header + up to 8 payload bytes (RFC 792).
    let quote_len = (orig_header_len + 8).min(original.len());

    let mut icmp = Vec::with_capacity(HEADER_LEN + quote_len);
    icmp.push(TYPE_DEST_UNREACHABLE);
    icmp.push(CODE_PORT_UNREACHABLE);
    icmp.extend_from_slice(&[0, 0]); // checksum placeholder
    icmp.extend_from_slice(&[0, 0, 0, 0]); // unused
    icmp.extend_from_slice(&original[..quote_len]);
    let c = internet_checksum(&icmp);
    icmp[2..4].copy_from_slice(&c.to_be_bytes());

    let total = (ip::HEADER_LEN + icmp.len()) as u16;
    let header = ip::build_header(
        total,
        0,
        false,
        false,
        0,
        ip::DEFAULT_TTL,
        ip::PROTO_ICMP,
        our_addr,
        orig_src,
    );
    let mut datagram = header.to_vec();
    datagram.extend_from_slice(&icmp);
    Some(datagram)
}

/// Parse an ICMP message (after the IP header has been stripped).
pub fn parse(msg: &mut Message) -> Result<IcmpMessage, IcmpError> {
    let bytes = msg.bytes();
    if bytes.len() < HEADER_LEN {
        return Err(IcmpError::Truncated);
    }
    if internet_checksum(bytes) != 0 {
        return Err(IcmpError::BadChecksum);
    }
    let out = IcmpMessage {
        icmp_type: bytes[0],
        code: bytes[1],
        quoted: bytes[HEADER_LEN..].to_vec(),
    };
    msg.pop(msg.len())?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp;

    fn offending_datagram() -> Vec<u8> {
        let payload = udp::build_datagram(
            Ipv4Addr::host(9),
            Ipv4Addr::host(1),
            4444,
            9999, // unbound port
            b"hello port unreachable quoting",
            false,
        );
        let total = (ip::HEADER_LEN + payload.len()) as u16;
        let h = ip::build_header(
            total,
            77,
            false,
            false,
            0,
            ip::DEFAULT_TTL,
            ip::PROTO_UDP,
            Ipv4Addr::host(9),
            Ipv4Addr::host(1),
        );
        let mut d = h.to_vec();
        d.extend_from_slice(&payload);
        d
    }

    #[test]
    fn reply_addresses_and_quote() {
        let orig = offending_datagram();
        let reply = port_unreachable(&orig, Ipv4Addr::host(1)).expect("reply built");
        // The reply parses as a valid IP datagram back to the sender.
        let mut msg = Message::from_wire(&reply, 0);
        let ih = ip::parse_header(&mut msg).unwrap();
        assert_eq!(ih.protocol, ip::PROTO_ICMP);
        assert_eq!(ih.src, Ipv4Addr::host(1));
        assert_eq!(ih.dst, Ipv4Addr::host(9));
        let icmp = parse(&mut msg).unwrap();
        assert_eq!(icmp.icmp_type, TYPE_DEST_UNREACHABLE);
        assert_eq!(icmp.code, CODE_PORT_UNREACHABLE);
        // Quote = original IP header + first 8 bytes (the UDP header,
        // which is what lets the sender match the error to its socket).
        assert_eq!(icmp.quoted.len(), ip::HEADER_LEN + 8);
        assert_eq!(&icmp.quoted[..ip::HEADER_LEN], &orig[..ip::HEADER_LEN]);
        let udp_hdr = &icmp.quoted[ip::HEADER_LEN..];
        assert_eq!(u16::from_be_bytes([udp_hdr[0], udp_hdr[1]]), 4444);
        assert_eq!(u16::from_be_bytes([udp_hdr[2], udp_hdr[3]]), 9999);
    }

    #[test]
    fn short_original_is_quoted_whole() {
        let orig = offending_datagram();
        let short = &orig[..ip::HEADER_LEN + 3];
        let reply = port_unreachable(short, Ipv4Addr::host(1)).unwrap();
        let mut msg = Message::from_wire(&reply, 0);
        ip::parse_header(&mut msg).unwrap();
        let icmp = parse(&mut msg).unwrap();
        assert_eq!(icmp.quoted.len(), ip::HEADER_LEN + 3);
    }

    #[test]
    fn malformed_original_elicits_nothing() {
        assert!(port_unreachable(&[0u8; 4], Ipv4Addr::host(1)).is_none());
        assert!(port_unreachable(&[], Ipv4Addr::host(1)).is_none());
    }

    #[test]
    fn corrupted_icmp_rejected() {
        let orig = offending_datagram();
        let reply = port_unreachable(&orig, Ipv4Addr::host(1)).unwrap();
        let mut msg = Message::from_wire(&reply, 0);
        ip::parse_header(&mut msg).unwrap();
        // Corrupt one quoted byte.
        let mut icmp_bytes = msg.bytes().to_vec();
        *icmp_bytes.last_mut().unwrap() ^= 1;
        let mut corrupted = Message::from_wire(&icmp_bytes, 0);
        assert_eq!(parse(&mut corrupted), Err(IcmpError::BadChecksum));
    }

    #[test]
    fn truncated_icmp_rejected() {
        let mut msg = Message::from_wire(&[3, 3, 0], 0);
        assert_eq!(parse(&mut msg), Err(IcmpError::Truncated));
    }
}
