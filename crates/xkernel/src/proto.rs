//! Protocol-graph plumbing: stream/thread identities, per-stream session
//! state, and the demultiplexing maps.
//!
//! The x-kernel organizes protocols as a graph with *sessions* (per
//! connection state) hanging off each protocol and *maps* performing
//! demultiplexing from header fields to sessions. We model the receive
//! graph `FDDI → IP → UDP → user`, with the UDP port map as the demux
//! step that touches shared (`Global`) memory and the session as the
//! per-stream (`Stream`) state whose cache residency the paper's
//! affinity policies try to preserve.

use std::collections::HashMap;

use crate::ip::Ipv4Addr;

/// Identifies one stream (connection) end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

impl StreamId {
    /// Sentinel for "no stream": packets rejected before the demux point
    /// never resolve to a stream, and their timing records carry this.
    pub const UNKNOWN: StreamId = StreamId(u32::MAX);
}

/// Identifies one protocol thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

/// Per-stream (UDP session) protocol state.
///
/// The field set mirrors what a real UDP/IP session keeps hot per packet:
/// identification of the peer, delivery counters, and the user queue.
/// `Default`-constructed state is a freshly opened session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionState {
    /// Packets delivered to the user.
    pub packets: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Last source seen (address, port) — cached peer identity.
    pub last_peer: Option<(Ipv4Addr, u16)>,
    /// Datagrams dropped due to errors at any layer.
    pub errors: u64,
    /// Depth of the user receive queue (bounded; overflow counts drops).
    pub queue_depth: u32,
    /// Drops due to a full user queue.
    pub queue_drops: u64,
}

/// Maximum user receive-queue depth before drops.
pub const MAX_QUEUE_DEPTH: u32 = 64;

impl SessionState {
    /// Account one delivered datagram.
    pub fn deliver(&mut self, src: Ipv4Addr, src_port: u16, payload_bytes: usize) -> bool {
        if self.queue_depth >= MAX_QUEUE_DEPTH {
            self.queue_drops += 1;
            return false;
        }
        self.packets += 1;
        self.bytes += payload_bytes as u64;
        self.last_peer = Some((src, src_port));
        self.queue_depth += 1;
        true
    }

    /// The user consumed one datagram from the queue.
    pub fn consume(&mut self) -> bool {
        if self.queue_depth == 0 {
            return false;
        }
        self.queue_depth -= 1;
        true
    }
}

/// The UDP demux map plus session storage.
///
/// Ports map to streams; each stream owns one session. In the IPS
/// paradigm every independent stack instance holds its own `SessionTable`
/// (no sharing, no locking); under Locking a single table is shared.
#[derive(Debug, Default)]
pub struct SessionTable {
    ports: HashMap<u16, StreamId>,
    sessions: HashMap<StreamId, SessionState>,
}

/// Errors from session-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindError {
    /// The port is already bound to a different stream.
    PortInUse(u16),
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::PortInUse(p) => write!(f, "port {p} already bound"),
        }
    }
}

impl std::error::Error for BindError {}

impl SessionTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `port` to `stream`, creating its session.
    pub fn bind(&mut self, port: u16, stream: StreamId) -> Result<(), BindError> {
        match self.ports.get(&port) {
            Some(&existing) if existing != stream => Err(BindError::PortInUse(port)),
            _ => {
                self.ports.insert(port, stream);
                self.sessions.entry(stream).or_default();
                Ok(())
            }
        }
    }

    /// Demultiplex a destination port to its stream.
    pub fn demux(&self, port: u16) -> Option<StreamId> {
        self.ports.get(&port).copied()
    }

    /// Session state for a stream.
    pub fn session(&self, stream: StreamId) -> Option<&SessionState> {
        self.sessions.get(&stream)
    }

    /// Mutable session state for a stream.
    pub fn session_mut(&mut self, stream: StreamId) -> Option<&mut SessionState> {
        self.sessions.get_mut(&stream)
    }

    /// Number of bound ports.
    pub fn bound_ports(&self) -> usize {
        self.ports.len()
    }

    /// Remove a binding and its session.
    pub fn unbind(&mut self, port: u16) -> Option<StreamId> {
        let stream = self.ports.remove(&port)?;
        // Only drop the session when no other port references the stream.
        if !self.ports.values().any(|&s| s == stream) {
            self.sessions.remove(&stream);
        }
        Some(stream)
    }
}

/// Names of the receive-graph layers, bottom-up — used by reports.
pub const RECEIVE_GRAPH: [&str; 4] = ["fddi", "ip", "udp", "user"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receive_graph_names_the_layers() {
        assert_eq!(RECEIVE_GRAPH, ["fddi", "ip", "udp", "user"]);
    }

    #[test]
    fn bind_demux_roundtrip() {
        let mut t = SessionTable::new();
        t.bind(5001, StreamId(0)).unwrap();
        t.bind(5002, StreamId(1)).unwrap();
        assert_eq!(t.demux(5001), Some(StreamId(0)));
        assert_eq!(t.demux(5002), Some(StreamId(1)));
        assert_eq!(t.demux(9999), None);
        assert_eq!(t.bound_ports(), 2);
    }

    #[test]
    fn rebinding_same_stream_is_idempotent() {
        let mut t = SessionTable::new();
        t.bind(5001, StreamId(0)).unwrap();
        t.bind(5001, StreamId(0)).unwrap();
        assert_eq!(t.bind(5001, StreamId(1)), Err(BindError::PortInUse(5001)));
    }

    #[test]
    fn deliver_and_consume_track_queue() {
        let mut s = SessionState::default();
        assert!(s.deliver(Ipv4Addr::host(9), 1234, 100));
        assert_eq!(s.packets, 1);
        assert_eq!(s.bytes, 100);
        assert_eq!(s.last_peer, Some((Ipv4Addr::host(9), 1234)));
        assert_eq!(s.queue_depth, 1);
        assert!(s.consume());
        assert_eq!(s.queue_depth, 0);
        assert!(!s.consume());
    }

    #[test]
    fn full_queue_drops() {
        let mut s = SessionState::default();
        for _ in 0..MAX_QUEUE_DEPTH {
            assert!(s.deliver(Ipv4Addr::host(1), 1, 1));
        }
        assert!(!s.deliver(Ipv4Addr::host(1), 1, 1));
        assert_eq!(s.queue_drops, 1);
        assert_eq!(s.packets, MAX_QUEUE_DEPTH as u64);
    }

    #[test]
    fn unbind_cleans_up() {
        let mut t = SessionTable::new();
        t.bind(5001, StreamId(0)).unwrap();
        t.session_mut(StreamId(0)).unwrap().packets = 3;
        assert_eq!(t.unbind(5001), Some(StreamId(0)));
        assert!(t.session(StreamId(0)).is_none());
        assert_eq!(t.unbind(5001), None);
    }

    #[test]
    fn unbind_keeps_session_with_other_ports() {
        let mut t = SessionTable::new();
        t.bind(1, StreamId(0)).unwrap();
        t.bind(2, StreamId(0)).unwrap();
        t.unbind(1);
        assert!(t.session(StreamId(0)).is_some());
    }
}
