#![warn(missing_docs)]

//! # afs-xkernel — the protocol-processing substrate
//!
//! An x-kernel-style implementation of the receive- and send-side
//! UDP/IP/FDDI fast paths, instrumented so that every memory touch flows
//! into the `afs-cache` hierarchy simulator. This crate replaces the
//! paper's measurement platform (a parallelized x-kernel 3.2 running on
//! an 8-processor SGI Challenge XL): where the paper reads hardware
//! timers, we read the simulated cycle ledger.
//!
//! * [`msg`] — the x-kernel message tool (header push/pop over real
//!   bytes) with instrumented reads, plus the RFC 1071 checksum.
//! * [`fddi`], [`ip`], [`udp`], [`tcp`] — byte-exact framing: LLC/SNAP
//!   FDDI with CRC-32 FCS, IPv4 with real header checksums and
//!   (off-fast-path) fragmentation/reassembly, UDP with pseudo-header
//!   checksums, and a TCP receive path with header prediction and
//!   out-of-order reassembly (the paper's named extension).
//! * [`proto`] — sessions, the port demux map, stream/thread identities.
//! * [`driver`] — the in-memory FDDI driver and packet factory (the
//!   paper's own in-memory-driver technique).
//! * [`fault`] — deterministic per-frame fault injection (drop,
//!   duplicate, reorder, corrupt, truncate) applied by the driver.
//! * [`mem`] — the instrumented memory model: address-space layout,
//!   region-tagged loads/stores, code-segment instruction fetches.
//! * [`engine`] — the instrumented fast paths and the [`engine::CostModel`]
//!   whose defaults are calibrated to the paper's t_cold = 284.3 µs.
//! * [`calib`] — the Section-4 controlled-cache-state experiments,
//!   producing the bounds/weights that parameterize the analytic model.
//! * [`mt`] — Locking vs IPS on real OS threads (functional validation).

pub mod calib;
pub mod driver;
pub mod engine;
pub mod fault;
pub mod fddi;
pub mod icmp;
pub mod ip;
pub mod mem;
pub mod msg;
pub mod mt;
pub mod proto;
pub mod tcp;
pub mod udp;

pub use calib::{calibrate, lock_overhead_cycles, Calibration};
pub use engine::{
    CostModel, DropReason, PacketTiming, ProtocolEngine, RxError, RxLayer, RxOutcome,
};
pub use fault::{FaultInjector, FaultPlan, FaultStats};
pub use proto::{SessionState, SessionTable, StreamId, ThreadId};
