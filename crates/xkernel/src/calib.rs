//! Calibration: the paper's Section-4 experiments, reproduced over the
//! simulated hierarchy.
//!
//! The paper runs the parallelized receive path under *specific,
//! controlled conditions of cache state* to measure per-packet execution
//! times and isolate the individual components of affinity overhead. We
//! run the same experiment set:
//!
//! | experiment    | cache state before each packet                    |
//! |---------------|---------------------------------------------------|
//! | `warm`        | everything as the previous packet left it         |
//! | `l2_resident` | L1 flushed, L2 intact                             |
//! | `cold`        | both levels flushed                               |
//! | `thread_cold` | only the thread's footprint purged                |
//! | `stream_cold` | only the stream state purged                      |
//! | `code_cold`   | protocol code + shared globals purged             |
//!
//! Packet **data** is purged before *every* packet, including `warm`:
//! arriving frames are DMA'd to memory and are never cache-resident (the
//! paper makes the matching observation about interfaces that DMA
//! unfragmented data, avoiding the CPU cache).
//!
//! Outputs: the [`TimeBounds`] and [`ComponentWeights`] that parameterize
//! the analytic execution-time model, per-region L2 footprints, and the
//! derived per-packet Locking overhead — everything `afs-core` needs.

use afs_cache::model::exec_time::{ComponentWeights, TimeBounds};
use afs_cache::sim::hierarchy::MemoryHierarchy;
use afs_cache::sim::trace::Region;

use crate::driver::PacketFactory;
use crate::engine::{CostModel, ProtocolEngine};
use crate::mem::MemLayout;
use crate::proto::{StreamId, ThreadId};

/// Number of warm-up packets before steady-state measurement.
const WARMUP_PACKETS: usize = 30;
/// Number of measured packets per experiment.
const MEASURE_PACKETS: usize = 20;
/// Payload size used for calibration (the paper's non-data-touching
/// results are dominated by small packets; 1 byte isolates fixed costs).
const CALIB_PAYLOAD: usize = 1;

/// Everything the calibration run produces.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Warm / L2-resident / cold per-packet bounds.
    pub bounds: TimeBounds,
    /// Normalized component split of the reload span.
    pub weights: ComponentWeights,
    /// Mean per-packet time with only the thread footprint purged (µs).
    pub t_thread_us: f64,
    /// Mean per-packet time with only the stream state purged (µs).
    pub t_stream_us: f64,
    /// Mean per-packet time with code + globals purged (µs).
    pub t_code_global_us: f64,
    /// Steady-state L2 footprint per region, in bytes
    /// (indexed by [`Region::index`]).
    pub l2_footprint_bytes: [u64; 6],
    /// Dirty (written) bytes of the stream state resident in L2 — the
    /// portion a migration must transfer cache-to-cache instead of
    /// refetching from memory; grounds the remote-fetch premium.
    pub dirty_stream_bytes: u64,
    /// Instructions per packet on the fast path.
    pub instrs_per_packet: u64,
    /// Memory references per packet.
    pub refs_per_packet: u64,
    /// Derived per-packet overhead of the Locking paradigm (µs): the
    /// instruction cost of the lock/unlock pairs plus the bus transfers
    /// of the contended lock lines.
    pub lock_overhead_us: f64,
}

impl Calibration {
    /// Affinity-sensitive reload span as a fraction of the cold time —
    /// the upper bound on relative delay reduction (the paper's Figures
    /// 10/11 report 40–50 % at V = 0).
    pub fn max_reduction(&self) -> f64 {
        self.bounds.reload_span_us() / self.bounds.t_cold_us
    }
}

/// Lock/unlock instruction cost per acquired lock on the Locking path.
const LOCK_INSTRS_PER_PAIR: f64 = 150.0;
/// Lock acquisitions per packet under Locking (driver ring, IP demux,
/// IP statistics, UDP demux, socket buffer, session) — the paradigm the
/// paper contrasts with IPS. Multiprocessor protocol studies of the era
/// measured software synchronization consuming tens of percent of
/// per-packet time (Bjorkman & Gunningberg; Saxena et al.; Nahum et
/// al.); six short critical sections at ~15% of the warm path sits in
/// the middle of those measurements.
const LOCKS_PER_PACKET: f64 = 6.0;
/// Remote cache lines transferred per lock pair (the lock word plus the
/// protected structure's dirty line bounce between processors).
const LOCK_REMOTE_LINES: f64 = 2.0;

/// Per-packet cycle cost of the Locking paradigm's lock/unlock pairs
/// (instruction cost plus remote-line transfers). The native backend
/// charges exactly this to its per-worker cycle model so simulator and
/// native runs price synchronization identically;
/// [`Calibration::lock_overhead_us`] is this value at the platform clock.
pub fn lock_overhead_cycles(cost: &CostModel) -> f64 {
    let platform = cost.platform();
    LOCKS_PER_PACKET
        * (LOCK_INSTRS_PER_PAIR * cost.cpi + LOCK_REMOTE_LINES * platform.remote_penalty_cycles)
}

/// One experiment: run packets with `prep` applied to the hierarchy
/// before each measured packet; returns the mean per-packet µs.
fn run_state_experiment(
    eng: &mut ProtocolEngine,
    hier: &mut MemoryHierarchy,
    factory: &mut PacketFactory,
    prep: &mut dyn FnMut(&mut MemoryHierarchy),
) -> f64 {
    let layout = MemLayout::new();
    let mut total = 0.0;
    for i in 0..(WARMUP_PACKETS + MEASURE_PACKETS) {
        // DMA lands the frame in a rotating buffer; its lines are never
        // cache-resident on arrival.
        hier.purge_region(Region::PacketData);
        prep(hier);
        let frame = crate::driver::RxFrame {
            bytes: factory.frame_for(StreamId(0), CALIB_PAYLOAD),
            stream: StreamId(0),
            buf_addr: layout.packet((i % 8) as u32),
        };
        let t = eng
            .receive(hier, &frame, ThreadId(0))
            .expect("calibration frames are well-formed");
        if i >= WARMUP_PACKETS {
            total += t.us;
        }
    }
    total / MEASURE_PACKETS as f64
}

/// Run the full calibration suite for a cost model.
pub fn calibrate(cost: &CostModel) -> Calibration {
    let mut eng = ProtocolEngine::new(*cost);
    eng.bind_stream(StreamId(0));
    let mut factory = PacketFactory::new();
    let mut hier = cost.hierarchy();

    // Steady-state warm bound (also warms for the footprint census).
    let t_warm = run_state_experiment(&mut eng, &mut hier, &mut factory, &mut |_| {});

    // Census the warm L2 footprint per region.
    let line = hier.platform().l2.line_bytes as u64;
    let mut l2_footprint_bytes = [0u64; 6];
    for r in Region::ALL {
        l2_footprint_bytes[r.index()] = hier.l2.occupancy(r) * line;
    }
    let dirty_stream_bytes = hier.l2.dirty_occupancy(Region::Stream) * line;

    // Instructions/refs per packet from one more warm packet.
    let frame = crate::driver::RxFrame {
        bytes: factory.frame_for(StreamId(0), CALIB_PAYLOAD),
        stream: StreamId(0),
        buf_addr: MemLayout::new().packet(0),
    };
    hier.purge_region(Region::PacketData);
    let probe = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap();

    // Controlled-state experiments.
    let t_l2 = run_state_experiment(&mut eng, &mut hier, &mut factory, &mut |h| h.flush_l1());
    let t_cold = run_state_experiment(&mut eng, &mut hier, &mut factory, &mut |h| h.flush_all());
    let t_thread = run_state_experiment(&mut eng, &mut hier, &mut factory, &mut |h| {
        h.purge_region(Region::Thread)
    });
    let t_stream = run_state_experiment(&mut eng, &mut hier, &mut factory, &mut |h| {
        h.purge_region(Region::Stream)
    });
    let t_code_global = run_state_experiment(&mut eng, &mut hier, &mut factory, &mut |h| {
        h.purge_region(Region::Code);
        h.purge_region(Region::Global);
    });

    let span = (t_cold - t_warm).max(1e-9);
    let raw_thread = ((t_thread - t_warm) / span).max(0.0);
    let raw_stream = ((t_stream - t_warm) / span).max(0.0);
    let raw_code = ((t_code_global - t_warm) / span).max(0.0);
    let raw_sum = (raw_thread + raw_stream + raw_code).max(1e-9);

    let platform = cost.platform();
    let lock_overhead_us = platform.cycles_to_us(lock_overhead_cycles(cost));

    Calibration {
        bounds: TimeBounds::new(t_warm, t_l2.clamp(t_warm, t_cold), t_cold),
        weights: ComponentWeights::new(
            raw_code / raw_sum,
            raw_thread / raw_sum,
            raw_stream / raw_sum,
        ),
        t_thread_us: t_thread,
        t_stream_us: t_stream,
        t_code_global_us: t_code_global,
        l2_footprint_bytes,
        dirty_stream_bytes,
        instrs_per_packet: probe.instructions,
        refs_per_packet: probe.refs,
        lock_overhead_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn shared() -> &'static Calibration {
        static CAL: OnceLock<Calibration> = OnceLock::new();
        CAL.get_or_init(|| calibrate(&CostModel::default()))
    }

    #[test]
    fn bounds_are_ordered() {
        let c = shared();
        assert!(c.bounds.t_warm_us < c.bounds.t_l2_us);
        assert!(c.bounds.t_l2_us < c.bounds.t_cold_us);
    }

    #[test]
    fn cold_matches_papers_measurement() {
        // The paper: t_cold = 284.3 µs. The default CostModel is tuned to
        // land within a few percent.
        let c = shared();
        let err = (c.bounds.t_cold_us - 284.3).abs() / 284.3;
        assert!(
            err < 0.05,
            "t_cold = {:.1} µs, {:.1}% from the paper's 284.3",
            c.bounds.t_cold_us,
            err * 100.0
        );
    }

    #[test]
    fn reduction_bound_in_paper_band() {
        // Figures 10/11: V = 0 upper bound on delay reduction 40–50 %.
        let c = shared();
        let red = c.max_reduction();
        assert!(
            (0.38..0.55).contains(&red),
            "max reduction {:.2} outside 40–50% band",
            red
        );
    }

    #[test]
    fn component_weights_valid_and_plausible() {
        let c = shared();
        let w = c.weights;
        let sum = w.code_global + w.thread + w.stream;
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(w.code_global > 0.3, "code/global weight {}", w.code_global);
        assert!(w.stream > 0.08, "stream weight {}", w.stream);
        assert!(w.thread > 0.02, "thread weight {}", w.thread);
    }

    #[test]
    fn partial_purges_cost_less_than_cold() {
        let c = shared();
        for (name, t) in [
            ("thread", c.t_thread_us),
            ("stream", c.t_stream_us),
            ("code", c.t_code_global_us),
        ] {
            assert!(t > c.bounds.t_warm_us, "{name} purge should cost > warm");
            assert!(t < c.bounds.t_cold_us, "{name} purge should cost < cold");
        }
    }

    #[test]
    fn footprint_census_is_sane() {
        let c = shared();
        let code = c.l2_footprint_bytes[Region::Code.index()];
        let stream = c.l2_footprint_bytes[Region::Stream.index()];
        let thread = c.l2_footprint_bytes[Region::Thread.index()];
        assert!(code >= 8 * 1024, "code footprint {code} B");
        assert!(stream >= 1024, "stream footprint {stream} B");
        assert!(thread >= 512, "thread footprint {thread} B");
        // Total well under the 1 MB L2.
        let total: u64 = c.l2_footprint_bytes.iter().sum();
        assert!(total < 128 * 1024, "total footprint {total} B");
    }

    #[test]
    fn per_packet_counts_match_cost_model() {
        let c = shared();
        assert_eq!(c.instrs_per_packet, CostModel::default().total_instrs());
        assert!(c.refs_per_packet > 1_000);
        // Effective cycles-per-reference of the protocol path should be
        // in the low single digits (the non-protocol m = 5 is separate).
        let m = c.instrs_per_packet as f64 / c.refs_per_packet as f64;
        assert!((1.0..8.0).contains(&m), "instructions per ref {m}");
    }

    #[test]
    fn stream_state_is_substantially_dirty() {
        // The session is written every packet: a meaningful share of its
        // L2 lines must be dirty, which is what migration transfers.
        let c = shared();
        let total = c.l2_footprint_bytes[Region::Stream.index()];
        assert!(c.dirty_stream_bytes > 0, "no dirty stream lines");
        assert!(
            c.dirty_stream_bytes <= total,
            "dirty {} > resident {total}",
            c.dirty_stream_bytes
        );
        assert!(
            c.dirty_stream_bytes as f64 >= 0.15 * total as f64,
            "dirty share {}/{total} implausibly small",
            c.dirty_stream_bytes
        );
    }

    #[test]
    fn lock_overhead_plausible() {
        let c = shared();
        assert!(
            (5.0..40.0).contains(&c.lock_overhead_us),
            "lock overhead {:.1} µs",
            c.lock_overhead_us
        );
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = calibrate(&CostModel::default());
        let b = calibrate(&CostModel::default());
        assert_eq!(a.bounds.t_warm_us, b.bounds.t_warm_us);
        assert_eq!(a.bounds.t_cold_us, b.bounds.t_cold_us);
    }
}
