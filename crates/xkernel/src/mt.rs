//! Real-thread Locking vs IPS harness.
//!
//! The paper's two parallelization paradigms, executed on actual OS
//! threads:
//!
//! * **Locking** — every worker shares one protocol stack (one
//!   [`ProtocolEngine`]) behind a mutex; any worker may process any
//!   stream's packet, paying synchronization on the shared structures.
//! * **IPS** — each worker owns a private stack instance; streams are
//!   partitioned across workers and packets are routed to their stack's
//!   worker over channels; no locks are taken on the data path.
//!
//! On a many-core host this demonstrates the paradigms' contention
//! behaviour for real; the *performance* results of the paper come from
//! the discrete-event simulator in `afs-core` (as they do in the paper,
//! whose numbers come from a simulation parameterized by measurement).
//! This harness validates functional equivalence — both paradigms
//! deliver every packet to the right session — and exposes contention
//! counters.
//!
//! The `afs-native` crate builds on this substrate: it adds core
//! pinning, per-worker ring run-queues, affinity-aware work stealing and
//! per-packet cycle-model accounting, and cross-validates the resulting
//! policy ordering against the simulator. The stream→stack partition
//! rule ([`owner_of`]) is shared so both backends agree on ownership.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel;
use parking_lot::Mutex;

use crate::driver::PacketFactory;
use crate::engine::{CostModel, ProtocolEngine};
use crate::mem::MemLayout;
use crate::proto::{StreamId, ThreadId};

/// The worker/stack index that owns `stream` under the static modulo
/// partition over `n` stacks — the IPS assignment rule shared by this
/// harness, the `afs-core` simulator and the `afs-native` backend.
pub fn owner_of(stream: StreamId, n: usize) -> usize {
    stream.0 as usize % n.max(1)
}

/// Outcome of a multi-threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtReport {
    /// Packets successfully delivered.
    pub delivered: u64,
    /// Packets dropped (demux/parse failures — should be 0 here).
    pub dropped: u64,
    /// Times a worker found the shared-stack lock already held
    /// (Locking only; 0 under IPS).
    pub lock_contended: u64,
    /// Per-stream delivered counts, indexed by stream id.
    pub per_stream: Vec<u64>,
}

/// Run the Locking paradigm: `workers` threads share one stack.
pub fn run_locking(workers: usize, streams: u32, packets_per_stream: u32) -> MtReport {
    assert!(workers >= 1 && streams >= 1);
    let mut engine = ProtocolEngine::new(CostModel::default());
    for s in 0..streams {
        engine.bind_stream(StreamId(s));
    }
    let shared = Arc::new(Mutex::new(engine));
    let contended = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));

    // Pre-build the workload and deal it round-robin to workers — the
    // "any thread takes any packet" property of Locking.
    let mut factory = PacketFactory::new();
    let mut batches: Vec<Vec<(StreamId, Vec<u8>)>> = vec![Vec::new(); workers];
    let mut i = 0usize;
    for p in 0..packets_per_stream {
        for s in 0..streams {
            let _ = p;
            batches[i % workers].push((StreamId(s), factory.frame_for(StreamId(s), 16)));
            i += 1;
        }
    }

    std::thread::scope(|scope| {
        for (wid, batch) in batches.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let contended = Arc::clone(&contended);
            let dropped = Arc::clone(&dropped);
            scope.spawn(move || {
                let layout = MemLayout::new();
                let mut hier = CostModel::default().hierarchy();
                for (slot, (stream, bytes)) in batch.into_iter().enumerate() {
                    let frame = crate::driver::RxFrame {
                        bytes,
                        stream,
                        buf_addr: layout.packet((slot % 8) as u32),
                    };
                    // Count contention, then take the lock for real.
                    let mut guard = match shared.try_lock() {
                        Some(g) => g,
                        None => {
                            contended.fetch_add(1, Ordering::Relaxed);
                            shared.lock()
                        }
                    };
                    if guard
                        .receive(&mut hier, &frame, ThreadId(wid as u32))
                        .is_err()
                    {
                        dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let engine = Arc::try_unwrap(shared)
        .expect("all workers joined")
        .into_inner();
    let per_stream: Vec<u64> = (0..streams)
        .map(|s| engine.table.session(StreamId(s)).map_or(0, |ss| ss.packets))
        .collect();
    MtReport {
        delivered: per_stream.iter().sum(),
        dropped: dropped.load(Ordering::Relaxed),
        lock_contended: contended.load(Ordering::Relaxed),
        per_stream,
    }
}

/// Run the IPS paradigm: `workers` independent stacks, streams
/// partitioned `stream.0 % workers`.
pub fn run_ips(workers: usize, streams: u32, packets_per_stream: u32) -> MtReport {
    assert!(workers >= 1 && streams >= 1);
    let mut senders = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut results: Vec<channel::Receiver<Vec<u64>>> = Vec::new();
        for wid in 0..workers {
            let (tx, rx) = channel::unbounded::<(StreamId, Vec<u8>)>();
            let (res_tx, res_rx) = channel::bounded(1);
            senders.push(tx);
            results.push(res_rx);
            scope.spawn(move || {
                let mut engine = ProtocolEngine::new(CostModel::default());
                // This stack owns the streams assigned to it.
                for s in 0..streams {
                    if owner_of(StreamId(s), workers) == wid {
                        engine.bind_stream(StreamId(s));
                    }
                }
                let layout = MemLayout::new();
                let mut hier = CostModel::default().hierarchy();
                let mut slot = 0u32;
                while let Ok((stream, bytes)) = rx.recv() {
                    let frame = crate::driver::RxFrame {
                        bytes,
                        stream,
                        buf_addr: layout.packet(slot % 8),
                    };
                    slot = slot.wrapping_add(1);
                    let _ = engine.receive(&mut hier, &frame, ThreadId(wid as u32));
                }
                let per_stream: Vec<u64> = (0..streams)
                    .map(|s| engine.table.session(StreamId(s)).map_or(0, |ss| ss.packets))
                    .collect();
                let _ = res_tx.send(per_stream);
            });
        }

        // Route packets to the owning stack — connection-level parallelism.
        let mut factory = PacketFactory::new();
        for _ in 0..packets_per_stream {
            for s in 0..streams {
                let frame = factory.frame_for(StreamId(s), 16);
                senders[owner_of(StreamId(s), workers)]
                    .send((StreamId(s), frame))
                    .expect("worker alive");
            }
        }
        drop(senders);

        let mut per_stream = vec![0u64; streams as usize];
        for res in results {
            let partial = res.recv().expect("worker reports");
            for (i, c) in partial.into_iter().enumerate() {
                per_stream[i] += c;
            }
        }
        MtReport {
            delivered: per_stream.iter().sum(),
            dropped: 0,
            lock_contended: 0,
            per_stream,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locking_delivers_everything() {
        let r = run_locking(4, 6, 10);
        assert_eq!(r.delivered, 60);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.per_stream, vec![10; 6]);
    }

    #[test]
    fn ips_delivers_everything() {
        let r = run_ips(4, 6, 10);
        assert_eq!(r.delivered, 60);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.lock_contended, 0);
        assert_eq!(r.per_stream, vec![10; 6]);
    }

    #[test]
    fn paradigms_agree_per_stream() {
        let a = run_locking(2, 4, 5);
        let b = run_ips(3, 4, 5);
        assert_eq!(a.per_stream, b.per_stream);
    }

    #[test]
    fn single_worker_degenerate_cases() {
        let a = run_locking(1, 2, 3);
        assert_eq!(a.delivered, 6);
        let b = run_ips(1, 2, 3);
        assert_eq!(b.delivered, 6);
    }
}
