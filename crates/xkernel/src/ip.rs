//! IPv4 processing: header build/parse/validate with a real internet
//! checksum, protocol demultiplexing, and receive-side fragment
//! reassembly.
//!
//! The paper's fast path (like every real one) assumes unfragmented
//! datagrams; reassembly exists off the fast path for completeness and is
//! exercised by its own tests.

use std::collections::HashMap;

use crate::msg::{internet_checksum, Message, MsgError};

/// IPv4 header length without options.
pub const HEADER_LEN: usize = 20;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for ICMP.
pub const PROTO_ICMP: u8 = 1;
/// Default TTL used on send.
pub const DEFAULT_TTL: u8 = 64;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Dotted-quad constructor.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// A deterministic host address for test host `n` (10.x.y.z space).
    pub fn host(n: u32) -> Self {
        let b = n.to_be_bytes();
        Ipv4Addr::new(10, b[1], b[2], b[3])
    }
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// Parsed IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpHeader {
    /// Header length in bytes (IHL × 4).
    pub header_len: usize,
    /// Total datagram length (header + payload).
    pub total_len: u16,
    /// Identification (for reassembly).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in bytes.
    pub frag_offset: usize,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

/// IPv4 errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpError {
    /// Not version 4 or IHL < 5.
    BadVersion,
    /// Header shorter than IHL claims, or message shorter than header.
    Truncated,
    /// Header checksum mismatch.
    BadChecksum,
    /// Total length disagrees with the message.
    BadLength,
    /// TTL expired.
    TtlExpired,
    /// Unknown payload protocol.
    UnknownProtocol(u8),
    /// Underlying message error.
    Msg(MsgError),
}

impl From<MsgError> for IpError {
    fn from(e: MsgError) -> Self {
        IpError::Msg(e)
    }
}

impl std::fmt::Display for IpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpError::BadVersion => write!(f, "bad IP version/IHL"),
            IpError::Truncated => write!(f, "truncated IP datagram"),
            IpError::BadChecksum => write!(f, "IP header checksum mismatch"),
            IpError::BadLength => write!(f, "IP total length mismatch"),
            IpError::TtlExpired => write!(f, "TTL expired"),
            IpError::UnknownProtocol(p) => write!(f, "unknown IP protocol {p}"),
            IpError::Msg(e) => write!(f, "message error: {e}"),
        }
    }
}

impl std::error::Error for IpError {}

/// Serialize an IPv4 header (no options) into 20 bytes, checksum filled.
#[allow(clippy::too_many_arguments)]
pub fn build_header(
    total_len: u16,
    ident: u16,
    dont_fragment: bool,
    more_fragments: bool,
    frag_offset: usize,
    ttl: u8,
    protocol: u8,
    src: Ipv4Addr,
    dst: Ipv4Addr,
) -> [u8; HEADER_LEN] {
    assert!(
        frag_offset.is_multiple_of(8),
        "fragment offset must be 8-byte aligned"
    );
    let mut h = [0u8; HEADER_LEN];
    h[0] = 0x45; // version 4, IHL 5
    h[1] = 0; // TOS
    h[2..4].copy_from_slice(&total_len.to_be_bytes());
    h[4..6].copy_from_slice(&ident.to_be_bytes());
    let mut flags_frag = (frag_offset / 8) as u16;
    if dont_fragment {
        flags_frag |= 0x4000;
    }
    if more_fragments {
        flags_frag |= 0x2000;
    }
    h[6..8].copy_from_slice(&flags_frag.to_be_bytes());
    h[8] = ttl;
    h[9] = protocol;
    // h[10..12] checksum = 0 for computation
    h[12..16].copy_from_slice(&src.0.to_be_bytes());
    h[16..20].copy_from_slice(&dst.0.to_be_bytes());
    let c = internet_checksum(&h);
    h[10..12].copy_from_slice(&c.to_be_bytes());
    h
}

/// Parse and strip the IPv4 header of `msg` (uninstrumented; the
/// instrumented fast path in [`crate::engine`] mirrors these reads).
/// Verifies the checksum and length and truncates trailing padding.
pub fn parse_header(msg: &mut Message) -> Result<IpHeader, IpError> {
    let bytes = msg.bytes();
    if bytes.len() < HEADER_LEN {
        return Err(IpError::Truncated);
    }
    let vihl = bytes[0];
    if vihl >> 4 != 4 || (vihl & 0x0F) < 5 {
        return Err(IpError::BadVersion);
    }
    let header_len = ((vihl & 0x0F) as usize) * 4;
    if bytes.len() < header_len {
        return Err(IpError::Truncated);
    }
    if internet_checksum(&bytes[..header_len]) != 0 {
        return Err(IpError::BadChecksum);
    }
    let total_len = u16::from_be_bytes([bytes[2], bytes[3]]);
    if (total_len as usize) < header_len || (total_len as usize) > bytes.len() {
        return Err(IpError::BadLength);
    }
    let ident = u16::from_be_bytes([bytes[4], bytes[5]]);
    let flags_frag = u16::from_be_bytes([bytes[6], bytes[7]]);
    let ttl = bytes[8];
    if ttl == 0 {
        return Err(IpError::TtlExpired);
    }
    let protocol = bytes[9];
    let src = Ipv4Addr(u32::from_be_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15],
    ]));
    let dst = Ipv4Addr(u32::from_be_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19],
    ]));

    let hdr = IpHeader {
        header_len,
        total_len,
        ident,
        dont_fragment: flags_frag & 0x4000 != 0,
        more_fragments: flags_frag & 0x2000 != 0,
        frag_offset: ((flags_frag & 0x1FFF) as usize) * 8,
        ttl,
        protocol,
        src,
        dst,
    };
    // Drop link-layer padding beyond total_len, then strip the header.
    msg.truncate(total_len as usize);
    msg.pop(header_len)?;
    Ok(hdr)
}

/// Split a payload into fragments that fit `mtu` bytes of IP datagram
/// each (header included), returning complete datagrams (header +
/// piece). All fragments but the last carry `more_fragments`; offsets
/// are 8-byte aligned as the wire format requires.
///
/// The receive-side inverse is [`Reassembler`]; together they complete
/// the off-fast-path IP substrate (the fast path assumes unfragmented
/// datagrams, as the paper's does).
#[allow(clippy::too_many_arguments)]
pub fn fragment(
    payload: &[u8],
    mtu: usize,
    ident: u16,
    ttl: u8,
    protocol: u8,
    src: Ipv4Addr,
    dst: Ipv4Addr,
) -> Result<Vec<Vec<u8>>, IpError> {
    if mtu < HEADER_LEN + 8 {
        return Err(IpError::BadLength);
    }
    // Per-fragment payload: largest 8-byte multiple that fits.
    let per = ((mtu - HEADER_LEN) / 8) * 8;
    let mut out = Vec::new();
    if payload.is_empty() {
        let h = build_header(
            HEADER_LEN as u16,
            ident,
            false,
            false,
            0,
            ttl,
            protocol,
            src,
            dst,
        );
        out.push(h.to_vec());
        return Ok(out);
    }
    let mut off = 0usize;
    while off < payload.len() {
        let end = (off + per).min(payload.len());
        let more = end < payload.len();
        let piece = &payload[off..end];
        let total = (HEADER_LEN + piece.len()) as u16;
        let h = build_header(total, ident, false, more, off, ttl, protocol, src, dst);
        let mut d = h.to_vec();
        d.extend_from_slice(piece);
        out.push(d);
        off = end;
    }
    Ok(out)
}

/// Key identifying a fragment stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FragKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    ident: u16,
}

/// A partially reassembled datagram.
#[derive(Debug, Default)]
struct FragBuffer {
    /// (offset, bytes) pieces received so far.
    pieces: Vec<(usize, Vec<u8>)>,
    /// Total payload length, known once the last fragment arrives.
    total: Option<usize>,
    /// Offer-clock value of this buffer's most recent fragment (drives
    /// staleness eviction).
    last_offer: u64,
}

impl FragBuffer {
    fn ready(&self) -> Option<usize> {
        let total = self.total?;
        let have: usize = self.pieces.iter().map(|(_, b)| b.len()).sum();
        // Fragments never overlap in our traffic; equality suffices.
        (have == total).then_some(total)
    }
}

/// Receive-side fragment reassembly (off the fast path).
///
/// Incomplete datagrams are bounded two ways, since a lossy or hostile
/// wire will strand fragments that never complete (the classic
/// fragment-cache exhaustion leak):
///
/// * **staleness** — a buffer that has seen no new fragment within
///   [`TTL_OFFERS`](Reassembler::TTL_OFFERS) subsequent offers is
///   discarded (an offer-count clock stands in for wall-clock TTL in
///   this discrete model);
/// * **capacity** — at most
///   [`MAX_PENDING`](Reassembler::MAX_PENDING) incomplete datagrams are
///   held; admitting one beyond that evicts the least-recently-touched.
#[derive(Debug, Default)]
pub struct Reassembler {
    buffers: HashMap<FragKey, FragBuffer>,
    /// Monotonic offer counter (the staleness clock).
    clock: u64,
    /// Incomplete datagrams discarded by TTL or capacity pressure.
    pub evictions: u64,
}

impl Reassembler {
    /// Most incomplete datagrams held at once.
    pub const MAX_PENDING: usize = 64;
    /// Offers a buffer may go without a new fragment before discard.
    pub const TTL_OFFERS: u64 = 1024;

    /// Empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a fragment; returns the full payload when complete.
    pub fn offer(&mut self, hdr: &IpHeader, payload: &[u8]) -> Option<Vec<u8>> {
        self.clock += 1;
        let clock = self.clock;
        let key = FragKey {
            src: hdr.src,
            dst: hdr.dst,
            protocol: hdr.protocol,
            ident: hdr.ident,
        };
        let buf = self.buffers.entry(key).or_default();
        buf.last_offer = clock;
        buf.pieces.push((hdr.frag_offset, payload.to_vec()));
        if !hdr.more_fragments {
            buf.total = Some(hdr.frag_offset + payload.len());
        }
        let out = if buf.ready().is_some() {
            let mut buf = self.buffers.remove(&key)?;
            buf.pieces.sort_by_key(|(off, _)| *off);
            let mut out = Vec::with_capacity(buf.total.unwrap_or(0));
            for (_, piece) in buf.pieces {
                out.extend_from_slice(&piece);
            }
            Some(out)
        } else {
            None
        };
        self.expire(clock);
        out
    }

    /// Discard stale buffers, then enforce the capacity bound by
    /// evicting least-recently-touched entries. Deterministic: clock
    /// values are unique, so LRU selection never depends on hash order.
    fn expire(&mut self, clock: u64) {
        let before = self.buffers.len();
        self.buffers
            .retain(|_, b| clock - b.last_offer < Self::TTL_OFFERS);
        self.evictions += (before - self.buffers.len()) as u64;
        while self.buffers.len() > Self::MAX_PENDING {
            let oldest = self
                .buffers
                .iter()
                .min_by_key(|(_, b)| b.last_offer)
                .map(|(k, _)| *k);
            let Some(k) = oldest else { break };
            self.buffers.remove(&k);
            self.evictions += 1;
        }
    }

    /// Number of incomplete datagrams held.
    pub fn pending(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgram(payload: &[u8]) -> Vec<u8> {
        let total = (HEADER_LEN + payload.len()) as u16;
        let h = build_header(
            total,
            0x1234,
            true,
            false,
            0,
            DEFAULT_TTL,
            PROTO_UDP,
            Ipv4Addr::host(1),
            Ipv4Addr::host(2),
        );
        let mut v = h.to_vec();
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn build_parse_roundtrip() {
        let d = dgram(b"payload!");
        let mut msg = Message::from_wire(&d, 0);
        let hdr = parse_header(&mut msg).unwrap();
        assert_eq!(hdr.protocol, PROTO_UDP);
        assert_eq!(hdr.src, Ipv4Addr::host(1));
        assert_eq!(hdr.dst, Ipv4Addr::host(2));
        assert_eq!(hdr.total_len as usize, HEADER_LEN + 8);
        assert!(hdr.dont_fragment);
        assert!(!hdr.more_fragments);
        assert_eq!(msg.bytes(), b"payload!");
    }

    #[test]
    fn checksum_is_valid_and_detects_corruption() {
        let mut d = dgram(b"x");
        let mut msg = Message::from_wire(&d, 0);
        parse_header(&mut msg).unwrap();
        d[8] ^= 0xFF; // corrupt TTL
        let mut msg = Message::from_wire(&d, 0);
        assert_eq!(parse_header(&mut msg), Err(IpError::BadChecksum));
    }

    #[test]
    fn version_and_length_checks() {
        let mut d = dgram(b"abc");
        d[0] = 0x55; // version 5
        assert_eq!(
            parse_header(&mut Message::from_wire(&d, 0)),
            Err(IpError::BadVersion)
        );
        assert_eq!(
            parse_header(&mut Message::from_wire(&[0u8; 10], 0)),
            Err(IpError::Truncated)
        );
    }

    #[test]
    fn total_len_mismatch_rejected() {
        let mut d = dgram(b"abc");
        // Claim more bytes than the message carries; fix the checksum.
        d[2..4].copy_from_slice(&1000u16.to_be_bytes());
        d[10] = 0;
        d[11] = 0;
        let c = internet_checksum(&d[..HEADER_LEN]);
        d[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(
            parse_header(&mut Message::from_wire(&d, 0)),
            Err(IpError::BadLength)
        );
    }

    #[test]
    fn ttl_zero_rejected() {
        let total = (HEADER_LEN + 1) as u16;
        let h = build_header(
            total,
            1,
            false,
            false,
            0,
            0,
            PROTO_UDP,
            Ipv4Addr::host(1),
            Ipv4Addr::host(2),
        );
        let mut v = h.to_vec();
        v.push(0xEE);
        assert_eq!(
            parse_header(&mut Message::from_wire(&v, 0)),
            Err(IpError::TtlExpired)
        );
    }

    #[test]
    fn padding_is_truncated() {
        let mut d = dgram(b"ab");
        d.extend_from_slice(&[0xFF; 10]); // link-layer padding
        let mut msg = Message::from_wire(&d, 0);
        parse_header(&mut msg).unwrap();
        assert_eq!(msg.bytes(), b"ab");
    }

    #[test]
    fn reassembly_two_fragments() {
        let mut r = Reassembler::new();
        let h1 = IpHeader {
            header_len: 20,
            total_len: 28,
            ident: 7,
            dont_fragment: false,
            more_fragments: true,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_UDP,
            src: Ipv4Addr::host(1),
            dst: Ipv4Addr::host(2),
        };
        let h2 = IpHeader {
            more_fragments: false,
            frag_offset: 8,
            ..h1
        };
        assert_eq!(r.offer(&h1, b"01234567"), None);
        assert_eq!(r.pending(), 1);
        let full = r.offer(&h2, b"89AB").unwrap();
        assert_eq!(full, b"0123456789AB");
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembly_out_of_order() {
        let mut r = Reassembler::new();
        let last = IpHeader {
            header_len: 20,
            total_len: 0,
            ident: 9,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: 8,
            ttl: 64,
            protocol: PROTO_UDP,
            src: Ipv4Addr::host(3),
            dst: Ipv4Addr::host(4),
        };
        let first = IpHeader {
            more_fragments: true,
            frag_offset: 0,
            ..last
        };
        assert_eq!(r.offer(&last, b"tail"), None);
        let full = r.offer(&first, b"12345678").unwrap();
        assert_eq!(full, b"12345678tail");
    }

    #[test]
    fn distinct_idents_kept_separate() {
        let mut r = Reassembler::new();
        let mk = |ident: u16, more: bool, off: usize| IpHeader {
            header_len: 20,
            total_len: 0,
            ident,
            dont_fragment: false,
            more_fragments: more,
            frag_offset: off,
            ttl: 64,
            protocol: PROTO_UDP,
            src: Ipv4Addr::host(1),
            dst: Ipv4Addr::host(2),
        };
        r.offer(&mk(1, true, 0), b"AAAAAAAA");
        r.offer(&mk(2, true, 0), b"BBBBBBBB");
        assert_eq!(r.pending(), 2);
        assert_eq!(r.offer(&mk(1, false, 8), b"a").unwrap(), b"AAAAAAAAa");
        assert_eq!(r.pending(), 1);
    }

    fn first_frag(ident: u16) -> IpHeader {
        IpHeader {
            header_len: 20,
            total_len: 0,
            ident,
            dont_fragment: false,
            more_fragments: true,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_UDP,
            src: Ipv4Addr::host(1),
            dst: Ipv4Addr::host(2),
        }
    }

    #[test]
    fn orphan_fragments_do_not_accumulate_unboundedly() {
        // Regression: a lossy wire that strands first fragments (tails
        // never arrive) used to grow `buffers` without bound.
        let mut r = Reassembler::new();
        for ident in 0..10 * Reassembler::MAX_PENDING as u16 {
            r.offer(&first_frag(ident), b"AAAAAAAA");
            assert!(r.pending() <= Reassembler::MAX_PENDING);
        }
        assert_eq!(r.pending(), Reassembler::MAX_PENDING);
        assert_eq!(r.evictions, 9 * Reassembler::MAX_PENDING as u64);
    }

    #[test]
    fn capacity_evicts_least_recently_touched() {
        let mut r = Reassembler::new();
        for ident in 0..Reassembler::MAX_PENDING as u16 {
            r.offer(&first_frag(ident), b"AAAAAAAA");
        }
        // Touch ident 0 so it is no longer the oldest, then overflow.
        r.offer(
            &IpHeader {
                frag_offset: 8,
                ..first_frag(0)
            },
            b"AAAAAAAA",
        );
        r.offer(&first_frag(9999), b"BBBBBBBB");
        assert_eq!(r.evictions, 1);
        // Ident 1 (now stalest) was evicted; ident 0 survives and can
        // still complete.
        let tail = IpHeader {
            more_fragments: false,
            frag_offset: 16,
            ..first_frag(0)
        };
        let full = r.offer(&tail, b"end").unwrap();
        assert_eq!(full.len(), 8 + 8 + 3);
        let tail1 = IpHeader {
            more_fragments: false,
            frag_offset: 8,
            ..first_frag(1)
        };
        assert_eq!(r.offer(&tail1, b"x"), None, "evicted buffer is gone");
    }

    #[test]
    fn stale_buffers_expire_after_ttl_offers() {
        let mut r = Reassembler::new();
        r.offer(&first_frag(7), b"AAAAAAAA");
        // A healthy fragment flow churns past while ident 7's tail never
        // shows up: each pair below completes immediately.
        let mut offers = 1;
        let mut ident = 100u16;
        while offers < Reassembler::TTL_OFFERS + 2 {
            let h = first_frag(ident);
            assert_eq!(r.offer(&h, b"AAAAAAAA"), None);
            let tail = IpHeader {
                more_fragments: false,
                frag_offset: 8,
                ..h
            };
            assert!(r.offer(&tail, b"z").is_some());
            offers += 2;
            ident = ident.wrapping_add(1);
        }
        assert_eq!(r.pending(), 0, "stale buffer should have expired");
        assert_eq!(r.evictions, 1);
        // A late tail for ident 7 cannot resurrect a partial datagram.
        let late = IpHeader {
            more_fragments: false,
            frag_offset: 8,
            ..first_frag(7)
        };
        assert_eq!(r.offer(&late, b"late"), None);
    }

    #[test]
    fn fragment_reassemble_roundtrip() {
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let frags = fragment(
            &payload,
            256,
            42,
            DEFAULT_TTL,
            PROTO_UDP,
            Ipv4Addr::host(1),
            Ipv4Addr::host(2),
        )
        .unwrap();
        assert!(frags.len() > 1);
        let mut r = Reassembler::new();
        let mut recovered = None;
        for f in &frags {
            let mut msg = Message::from_wire(f, 0);
            let hdr = parse_header(&mut msg).unwrap();
            if let Some(full) = r.offer(&hdr, msg.bytes()) {
                recovered = Some(full);
            }
        }
        assert_eq!(recovered.unwrap(), payload);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn fragment_reassemble_out_of_order_roundtrip() {
        let payload: Vec<u8> = (0..777u32).map(|i| (i % 253) as u8).collect();
        let mut frags = fragment(
            &payload,
            128,
            7,
            DEFAULT_TTL,
            PROTO_UDP,
            Ipv4Addr::host(3),
            Ipv4Addr::host(4),
        )
        .unwrap();
        frags.reverse();
        let mut r = Reassembler::new();
        let mut recovered = None;
        for f in &frags {
            let mut msg = Message::from_wire(f, 0);
            let hdr = parse_header(&mut msg).unwrap();
            if let Some(full) = r.offer(&hdr, msg.bytes()) {
                recovered = Some(full);
            }
        }
        assert_eq!(recovered.unwrap(), payload);
    }

    #[test]
    fn fragment_offsets_are_aligned_and_cover() {
        let payload = vec![0u8; 500];
        let frags = fragment(
            &payload,
            120,
            1,
            64,
            PROTO_UDP,
            Ipv4Addr::host(1),
            Ipv4Addr::host(2),
        )
        .unwrap();
        let mut covered = 0usize;
        for f in &frags {
            let mut msg = Message::from_wire(f, 0);
            let hdr = parse_header(&mut msg).unwrap();
            assert_eq!(hdr.frag_offset % 8, 0);
            assert_eq!(hdr.frag_offset, covered);
            covered += msg.len();
        }
        assert_eq!(covered, 500);
        // Only the last fragment has more_fragments == false.
        let mut last_seen = 0;
        for f in &frags {
            let mut msg = Message::from_wire(f, 0);
            let hdr = parse_header(&mut msg).unwrap();
            if !hdr.more_fragments {
                last_seen += 1;
            }
        }
        assert_eq!(last_seen, 1);
    }

    #[test]
    fn fragment_tiny_mtu_rejected_and_empty_payload_ok() {
        assert_eq!(
            fragment(
                &[1, 2, 3],
                20,
                1,
                64,
                PROTO_UDP,
                Ipv4Addr::host(1),
                Ipv4Addr::host(2)
            ),
            Err(IpError::BadLength)
        );
        let frags = fragment(
            &[],
            256,
            1,
            64,
            PROTO_UDP,
            Ipv4Addr::host(1),
            Ipv4Addr::host(2),
        )
        .unwrap();
        assert_eq!(frags.len(), 1);
        let mut msg = Message::from_wire(&frags[0], 0);
        let hdr = parse_header(&mut msg).unwrap();
        assert!(!hdr.more_fragments);
        assert!(msg.is_empty());
    }

    #[test]
    fn host_addresses_format() {
        assert_eq!(Ipv4Addr::host(258).to_string(), "10.0.1.2");
    }
}
