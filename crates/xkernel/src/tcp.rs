//! TCP receive-side processing: header parse/build with pseudo-header
//! checksum, header-prediction fast path, sequence tracking and
//! out-of-order reassembly.
//!
//! The paper argues its UDP results carry over to TCP: *"the breakdowns
//! of overall processing time overheads for TCP and UDP packets are very
//! similar … at its most influential (for 1-byte packets), TCP-specific
//! processing only accounts for around 15 % of overall packet execution
//! time"*, and names TCP affinity scheduling as a compelling extension.
//! This module implements the receive-side machinery needed to test that
//! claim on our substrate (experiment E19): a real TCP header, a
//! Van-Jacobson-style header-prediction fast path (in-order, expected
//! segment → deliver immediately), and the out-of-order slow path with a
//! reassembly queue.

use std::collections::BTreeMap;

use crate::ip::Ipv4Addr;
use crate::msg::{ones_complement_sum, Message, MsgError};

/// TCP header length without options.
pub const HEADER_LEN: usize = 20;

/// TCP flags (subset used by the data path).
pub mod flags {
    /// Acknowledgment field significant.
    pub const ACK: u8 = 0x10;
    /// Push function.
    pub const PSH: u8 = 0x08;
    /// Reset the connection.
    pub const RST: u8 = 0x04;
    /// Synchronize sequence numbers.
    pub const SYN: u8 = 0x02;
    /// No more data from sender.
    pub const FIN: u8 = 0x01;
}

/// Parsed TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgment number (valid when ACK set).
    pub ack: u32,
    /// Header length in bytes (data offset × 4).
    pub header_len: usize,
    /// Flag bits.
    pub flags: u8,
    /// Advertised receive window.
    pub window: u16,
}

/// TCP errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// Segment shorter than the header claims.
    Truncated,
    /// Data offset below the minimum.
    BadHeaderLen,
    /// Checksum over pseudo-header + segment failed.
    BadChecksum,
    /// RST received: connection torn down.
    Reset,
    /// Underlying message error.
    Msg(MsgError),
}

impl From<MsgError> for TcpError {
    fn from(e: MsgError) -> Self {
        TcpError::Msg(e)
    }
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Truncated => write!(f, "truncated TCP segment"),
            TcpError::BadHeaderLen => write!(f, "bad TCP data offset"),
            TcpError::BadChecksum => write!(f, "TCP checksum mismatch"),
            TcpError::Reset => write!(f, "connection reset"),
            TcpError::Msg(e) => write!(f, "message error: {e}"),
        }
    }
}

impl std::error::Error for TcpError {}

/// One's-complement sum of the TCP pseudo-header.
fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, tcp_len: u16) -> u32 {
    let s = src.0;
    let d = dst.0;
    (s >> 16) + (s & 0xFFFF) + (d >> 16) + (d & 0xFFFF) + 6 + tcp_len as u32
}

/// Build a TCP segment (header + payload), checksum filled.
#[allow(clippy::too_many_arguments)]
pub fn build_segment(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flag_bits: u8,
    window: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut s = Vec::with_capacity(HEADER_LEN + payload.len());
    s.extend_from_slice(&src_port.to_be_bytes());
    s.extend_from_slice(&dst_port.to_be_bytes());
    s.extend_from_slice(&seq.to_be_bytes());
    s.extend_from_slice(&ack.to_be_bytes());
    s.push((HEADER_LEN as u8 / 4) << 4); // data offset, no options
    s.push(flag_bits);
    s.extend_from_slice(&window.to_be_bytes());
    s.extend_from_slice(&[0, 0]); // checksum placeholder
    s.extend_from_slice(&[0, 0]); // urgent pointer
    s.extend_from_slice(payload);
    let sum = ones_complement_sum(&s, pseudo_header_sum(src, dst, s.len() as u16));
    let c = !sum;
    s[16..18].copy_from_slice(&c.to_be_bytes());
    s
}

/// Parse and strip a TCP header, verifying the checksum.
pub fn parse_segment(
    msg: &mut Message,
    src: Ipv4Addr,
    dst: Ipv4Addr,
) -> Result<TcpHeader, TcpError> {
    let bytes = msg.bytes();
    if bytes.len() < HEADER_LEN {
        return Err(TcpError::Truncated);
    }
    let header_len = ((bytes[12] >> 4) as usize) * 4;
    if header_len < HEADER_LEN {
        return Err(TcpError::BadHeaderLen);
    }
    if bytes.len() < header_len {
        return Err(TcpError::Truncated);
    }
    let sum = ones_complement_sum(bytes, pseudo_header_sum(src, dst, bytes.len() as u16));
    if sum != 0xFFFF {
        return Err(TcpError::BadChecksum);
    }
    let hdr = TcpHeader {
        src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
        dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
        seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        ack: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
        header_len,
        flags: bytes[13],
        window: u16::from_be_bytes([bytes[14], bytes[15]]),
    };
    msg.pop(header_len)?;
    Ok(hdr)
}

/// Receive-side connection state (established connections only — the
/// fast path the paper's parallelism paradigms contend over).
#[derive(Debug, Clone)]
pub struct TcpSession {
    /// Next expected in-order sequence number.
    pub rcv_nxt: u32,
    /// Bytes delivered in order to the user.
    pub delivered_bytes: u64,
    /// Segments that hit the header-prediction fast path.
    pub fast_path_hits: u64,
    /// Segments that took the out-of-order slow path.
    pub slow_path_hits: u64,
    /// Duplicate/overlapping segments dropped.
    pub duplicates: u64,
    /// ACKs owed to the sender (delayed-ACK counter).
    pub acks_pending: u32,
    /// Out-of-order segments awaiting the gap fill, keyed by sequence.
    reorder: BTreeMap<u32, Vec<u8>>,
}

/// What the receive path did with a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpDisposition {
    /// In-order data delivered (header prediction hit); `bytes` includes
    /// any queued segments released by this one.
    Delivered {
        /// Total bytes handed to the user.
        bytes: usize,
    },
    /// Out of order: queued for reassembly.
    Queued,
    /// Entirely duplicate data: dropped.
    Duplicate,
}

impl TcpSession {
    /// A session expecting `isn` as the first data byte.
    pub fn new(isn: u32) -> Self {
        TcpSession {
            rcv_nxt: isn,
            delivered_bytes: 0,
            fast_path_hits: 0,
            slow_path_hits: 0,
            duplicates: 0,
            acks_pending: 0,
            reorder: BTreeMap::new(),
        }
    }

    /// Number of segments parked in the reorder queue.
    pub fn reorder_depth(&self) -> usize {
        self.reorder.len()
    }

    /// Process one data segment (already parsed and stripped).
    ///
    /// Implements header prediction: the expected in-order segment takes
    /// the shortest path; anything else falls into the reassembly queue.
    /// RST tears the connection down (surfaced as an error by callers).
    pub fn receive(&mut self, hdr: &TcpHeader, payload: &[u8]) -> Result<TcpDisposition, TcpError> {
        if hdr.flags & flags::RST != 0 {
            return Err(TcpError::Reset);
        }
        if payload.is_empty() {
            // Pure ACK: nothing to deliver.
            return Ok(TcpDisposition::Delivered { bytes: 0 });
        }
        // Sequence-space comparison with wraparound.
        let offset = hdr.seq.wrapping_sub(self.rcv_nxt) as i32;
        if offset == 0 {
            // Header-prediction hit: exactly the expected segment.
            self.fast_path_hits += 1;
            let mut total = payload.len();
            self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
            self.delivered_bytes += payload.len() as u64;
            // Release any queued segments made contiguous.
            while let Some((&seq, _)) = self.reorder.first_key_value() {
                if seq != self.rcv_nxt {
                    break;
                }
                let seg = self.reorder.remove(&seq).expect("key exists");
                self.rcv_nxt = self.rcv_nxt.wrapping_add(seg.len() as u32);
                self.delivered_bytes += seg.len() as u64;
                total += seg.len();
            }
            self.acks_pending += 1;
            Ok(TcpDisposition::Delivered { bytes: total })
        } else if offset < 0 {
            // Entirely old data (retransmission already delivered).
            let end_off = offset + payload.len() as i32;
            if end_off <= 0 {
                self.duplicates += 1;
                self.acks_pending += 1; // dup-ACK
                Ok(TcpDisposition::Duplicate)
            } else {
                // Partial overlap: deliver only the new suffix, in order.
                let new = &payload[(-offset) as usize..];
                self.fast_path_hits += 1;
                self.rcv_nxt = self.rcv_nxt.wrapping_add(new.len() as u32);
                self.delivered_bytes += new.len() as u64;
                self.acks_pending += 1;
                Ok(TcpDisposition::Delivered { bytes: new.len() })
            }
        } else {
            // Future data: park it (last writer wins on exact-seq dups).
            self.slow_path_hits += 1;
            self.reorder.insert(hdr.seq, payload.to_vec());
            self.acks_pending += 1; // dup-ACK asking for the gap
            Ok(TcpDisposition::Queued)
        }
    }

    /// Drain the delayed-ACK counter, returning how many ACK segments a
    /// sender-side would emit (one per two segments, plus any forced).
    pub fn take_acks(&mut self) -> u32 {
        let acks = self.acks_pending.div_ceil(2);
        self.acks_pending = 0;
        acks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr(0x0A00_0001);
    const DST: Ipv4Addr = Ipv4Addr(0x0A00_0002);

    fn seg(seq: u32, payload: &[u8]) -> (TcpHeader, Vec<u8>) {
        let wire = build_segment(SRC, DST, 1000, 2000, seq, 0, flags::ACK, 8192, payload);
        let mut msg = Message::from_wire(&wire, 0);
        let hdr = parse_segment(&mut msg, SRC, DST).expect("valid segment");
        (hdr, msg.bytes().to_vec())
    }

    #[test]
    fn build_parse_roundtrip() {
        let wire = build_segment(
            SRC,
            DST,
            5,
            7,
            1234,
            5678,
            flags::ACK | flags::PSH,
            1024,
            b"data",
        );
        let mut msg = Message::from_wire(&wire, 0);
        let h = parse_segment(&mut msg, SRC, DST).unwrap();
        assert_eq!(h.src_port, 5);
        assert_eq!(h.dst_port, 7);
        assert_eq!(h.seq, 1234);
        assert_eq!(h.ack, 5678);
        assert_eq!(h.flags, flags::ACK | flags::PSH);
        assert_eq!(h.window, 1024);
        assert_eq!(msg.bytes(), b"data");
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut wire = build_segment(SRC, DST, 1, 2, 0, 0, flags::ACK, 512, b"payload");
        *wire.last_mut().unwrap() ^= 1;
        let mut msg = Message::from_wire(&wire, 0);
        assert_eq!(
            parse_segment(&mut msg, SRC, DST),
            Err(TcpError::BadChecksum)
        );
        // Wrong pseudo-header also fails.
        let wire = build_segment(SRC, DST, 1, 2, 0, 0, flags::ACK, 512, b"payload");
        let mut msg = Message::from_wire(&wire, 0);
        assert_eq!(
            parse_segment(&mut msg, Ipv4Addr(0xDEAD), DST),
            Err(TcpError::BadChecksum)
        );
    }

    #[test]
    fn truncated_and_bad_offset() {
        let mut msg = Message::from_wire(&[0u8; 10], 0);
        assert_eq!(parse_segment(&mut msg, SRC, DST), Err(TcpError::Truncated));
        let mut wire = build_segment(SRC, DST, 1, 2, 0, 0, 0, 0, b"");
        wire[12] = 0x30; // data offset 12 bytes < 20
        let mut msg = Message::from_wire(&wire, 0);
        assert_eq!(
            parse_segment(&mut msg, SRC, DST),
            Err(TcpError::BadHeaderLen)
        );
    }

    #[test]
    fn in_order_stream_uses_fast_path() {
        let mut s = TcpSession::new(100);
        let mut seq = 100u32;
        for _ in 0..10 {
            let (h, p) = seg(seq, b"0123456789");
            let d = s.receive(&h, &p).unwrap();
            assert_eq!(d, TcpDisposition::Delivered { bytes: 10 });
            seq += 10;
        }
        assert_eq!(s.fast_path_hits, 10);
        assert_eq!(s.slow_path_hits, 0);
        assert_eq!(s.delivered_bytes, 100);
        assert_eq!(s.rcv_nxt, 200);
    }

    #[test]
    fn out_of_order_reassembles() {
        let mut s = TcpSession::new(0);
        let (h2, p2) = seg(10, b"BBBBBBBBBB");
        let (h3, p3) = seg(20, b"CCCCCCCCCC");
        let (h1, p1) = seg(0, b"AAAAAAAAAA");
        assert_eq!(s.receive(&h2, &p2).unwrap(), TcpDisposition::Queued);
        assert_eq!(s.receive(&h3, &p3).unwrap(), TcpDisposition::Queued);
        assert_eq!(s.reorder_depth(), 2);
        // The gap fill releases everything.
        assert_eq!(
            s.receive(&h1, &p1).unwrap(),
            TcpDisposition::Delivered { bytes: 30 }
        );
        assert_eq!(s.rcv_nxt, 30);
        assert_eq!(s.reorder_depth(), 0);
        assert_eq!(s.delivered_bytes, 30);
        assert_eq!(s.slow_path_hits, 2);
    }

    #[test]
    fn duplicates_are_dropped_and_overlaps_trimmed() {
        let mut s = TcpSession::new(0);
        let (h1, p1) = seg(0, b"0123456789");
        s.receive(&h1, &p1).unwrap();
        // Exact retransmission.
        assert_eq!(s.receive(&h1, &p1).unwrap(), TcpDisposition::Duplicate);
        assert_eq!(s.duplicates, 1);
        // Overlapping segment: bytes 5..15; only 10..15 are new.
        let (h2, p2) = seg(5, b"56789ABCDE");
        assert_eq!(
            s.receive(&h2, &p2).unwrap(),
            TcpDisposition::Delivered { bytes: 5 }
        );
        assert_eq!(s.rcv_nxt, 15);
        assert_eq!(s.delivered_bytes, 15);
    }

    #[test]
    fn sequence_wraparound_handled() {
        let isn = u32::MAX - 4;
        let mut s = TcpSession::new(isn);
        let (h1, p1) = seg(isn, b"0123456789"); // crosses the wrap
        assert_eq!(
            s.receive(&h1, &p1).unwrap(),
            TcpDisposition::Delivered { bytes: 10 }
        );
        assert_eq!(s.rcv_nxt, 5); // wrapped
        let (h2, p2) = seg(5, b"xyz");
        assert_eq!(
            s.receive(&h2, &p2).unwrap(),
            TcpDisposition::Delivered { bytes: 3 }
        );
    }

    #[test]
    fn rst_tears_down() {
        let mut s = TcpSession::new(0);
        let wire = build_segment(SRC, DST, 1, 2, 0, 0, flags::RST, 0, b"");
        let mut msg = Message::from_wire(&wire, 0);
        let h = parse_segment(&mut msg, SRC, DST).unwrap();
        assert_eq!(s.receive(&h, msg.bytes()), Err(TcpError::Reset));
    }

    #[test]
    fn pure_acks_deliver_nothing() {
        let mut s = TcpSession::new(0);
        let (h, p) = seg(0, b"");
        assert_eq!(
            s.receive(&h, &p).unwrap(),
            TcpDisposition::Delivered { bytes: 0 }
        );
        assert_eq!(s.fast_path_hits, 0);
        assert_eq!(s.rcv_nxt, 0);
    }

    #[test]
    fn delayed_acks_one_per_two_segments() {
        let mut s = TcpSession::new(0);
        let mut seq = 0u32;
        for _ in 0..7 {
            let (h, p) = seg(seq, b"ABCD");
            s.receive(&h, &p).unwrap();
            seq += 4;
        }
        assert_eq!(s.take_acks(), 4); // ceil(7/2)
        assert_eq!(s.take_acks(), 0);
    }
}
