//! The instrumented UDP/IP/FDDI fast path.
//!
//! [`ProtocolEngine::receive`] processes a wire frame exactly as the
//! paper's parallelized x-kernel receive path does — FDDI demux, IP
//! header validation (real internet checksum over real bytes), UDP port
//! demux, session delivery — while charging every memory touch to a
//! simulated cache hierarchy and every instruction to the cycle budget:
//!
//! ```text
//! cycles = instructions × CPI + Σ cache-miss penalties
//! ```
//!
//! The per-layer instruction counts and footprint extents live in
//! [`CostModel`]; the defaults are calibrated (see `calib`) so that the
//! fully cold path costs ≈ 284.3 µs at 100 MHz — the paper's measured
//! `t_cold` — and the warm path lands near 150 µs, consistent with the
//! 40–50 % delay-reduction upper bound of Figures 10/11.
//!
//! A symmetric [`ProtocolEngine::send`] implements the send-side path
//! (header pushes) used by extension experiment E12.

use afs_cache::model::platform::Platform;
use afs_cache::sim::hierarchy::MemoryHierarchy;
use afs_cache::sim::trace::Region;

use crate::driver::{self, RxFrame};
use crate::fddi;
use crate::ip;
use crate::mem::{CodeAllocator, CodeSeg, MemCtx, MemLayout};
use crate::msg::Message;
use crate::proto::{SessionTable, StreamId, ThreadId};
use crate::tcp;
use crate::udp;

/// Per-layer instruction counts, code sizes and data-touch extents.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cycles per instruction (R4400 ≈ 1 on this integer-dominated path).
    pub cpi: f64,
    /// Thread dispatch/switch instructions.
    pub thread_instrs: u32,
    /// Driver receive processing instructions.
    pub driver_instrs: u32,
    /// FDDI/LLC demux instructions.
    pub fddi_instrs: u32,
    /// IP processing instructions (excluding header-checksum loop).
    pub ip_instrs: u32,
    /// UDP processing instructions.
    pub udp_instrs: u32,
    /// Session/user delivery instructions.
    pub user_instrs: u32,
    /// Extra instructions TCP-specific processing adds over the UDP path
    /// (header prediction, sequence bookkeeping, ACK generation). The
    /// paper: "TCP-specific processing only accounts for around 15% of
    /// overall packet execution time" at its most influential.
    pub tcp_extra_instrs: u32,
    /// Code-segment sizes in bytes, same order as the instruction fields.
    pub code_bytes: [u64; 6],
    /// Thread stack/state bytes read per packet.
    pub thread_read_bytes: u64,
    /// Thread stack/state bytes written per packet.
    pub thread_write_bytes: u64,
    /// Shared/global structure bytes touched per packet (demux maps…).
    pub global_touch_bytes: u64,
    /// Stream (session) state bytes read per packet.
    pub stream_read_bytes: u64,
    /// Stream state bytes written per packet.
    pub stream_write_bytes: u64,
    /// Verify the FDDI FCS in software (off: MAC hardware does it, as on
    /// real adapters; frames are still logically validated).
    pub software_fcs: bool,
    /// Compute the UDP checksum in software (off = the paper's
    /// non-data-touching configuration; on = touches the whole payload).
    pub software_udp_checksum: bool,
    /// L1-miss-to-L2 penalty in cycles.
    pub l2_hit_penalty_cycles: f64,
    /// L2-miss-to-memory penalty in cycles.
    pub mem_penalty_cycles: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpi: 1.0,
            thread_instrs: 2_500,
            driver_instrs: 1_800,
            fddi_instrs: 2_200,
            ip_instrs: 3_500,
            udp_instrs: 2_500,
            user_instrs: 2_500,
            tcp_extra_instrs: 2_250, // ≈15% of the 15 000-instruction path
            code_bytes: [1536, 1536, 1792, 2560, 1792, 1792],
            thread_read_bytes: 384,
            thread_write_bytes: 256,
            global_touch_bytes: 640,
            stream_read_bytes: 2048,
            stream_write_bytes: 768,
            software_fcs: false,
            software_udp_checksum: false,
            l2_hit_penalty_cycles: 8.0,
            mem_penalty_cycles: 49.0,
        }
    }
}

impl CostModel {
    /// Total instructions on the (non-data-touching) fast path.
    pub fn total_instrs(&self) -> u64 {
        (self.thread_instrs
            + self.driver_instrs
            + self.fddi_instrs
            + self.ip_instrs
            + self.udp_instrs
            + self.user_instrs) as u64
    }

    /// The platform used for timing: the paper's R4400/Challenge caches
    /// with L1 hit time folded into the CPI and the calibrated miss
    /// penalties.
    pub fn platform(&self) -> Platform {
        let mut p = Platform::sgi_challenge_r4400();
        p.l1_hit_cycles = 0.0;
        p.l2_hit_penalty_cycles = self.l2_hit_penalty_cycles;
        p.mem_penalty_cycles = self.mem_penalty_cycles;
        p
    }

    /// A fresh (cold) cache hierarchy for this cost model.
    pub fn hierarchy(&self) -> MemoryHierarchy {
        MemoryHierarchy::new(self.platform())
    }
}

/// Errors the receive path can surface (any of them counts as a protocol
/// drop; the erroring packet still consumed processing time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxError {
    /// FDDI layer rejected the frame.
    Fddi(fddi::FddiError),
    /// IP layer rejected the datagram.
    Ip(ip::IpError),
    /// UDP layer rejected the datagram.
    Udp(udp::UdpError),
    /// TCP layer rejected the segment.
    Tcp(tcp::TcpError),
    /// No stream bound to the destination port.
    NoSession(u16),
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::Fddi(e) => write!(f, "fddi: {e}"),
            RxError::Ip(e) => write!(f, "ip: {e}"),
            RxError::Udp(e) => write!(f, "udp: {e}"),
            RxError::Tcp(e) => write!(f, "tcp: {e}"),
            RxError::NoSession(p) => write!(f, "no session on port {p}"),
        }
    }
}

impl std::error::Error for RxError {}

impl RxError {
    /// The protocol layer that rejected the packet.
    pub fn layer(&self) -> RxLayer {
        match self {
            RxError::Fddi(_) => RxLayer::Fddi,
            RxError::Ip(_) => RxLayer::Ip,
            RxError::Udp(_) => RxLayer::Udp,
            RxError::Tcp(_) => RxLayer::Tcp,
            RxError::NoSession(_) => RxLayer::Session,
        }
    }
}

/// The layer at which a packet left the fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxLayer {
    /// MAC framing / FCS.
    Fddi,
    /// IP header validation / protocol demux.
    Ip,
    /// UDP header validation.
    Udp,
    /// TCP header validation / sequence processing.
    Tcp,
    /// Port demux / session delivery.
    Session,
}

/// Why a *well-formed* packet was dropped (as opposed to rejected as
/// malformed, which is [`RxOutcome::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No stream bound to the destination port (elicits ICMP
    /// port-unreachable on the UDP path).
    NoSession(u16),
    /// The stream's user receive queue was full; the payload was shed at
    /// the session boundary.
    UserQueueFull(StreamId),
}

/// The typed result of one receive-path traversal. Every variant carries
/// a [`PacketTiming`]: rejected and dropped packets still consumed
/// cycles and polluted the cache — that partial work is exactly what the
/// overload experiments need to see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RxOutcome {
    /// The payload reached the user queue.
    Delivered(PacketTiming),
    /// A well-formed packet was shed (no session, or queue full).
    Dropped {
        /// Why it was shed.
        reason: DropReason,
        /// Work charged before shedding.
        timing: PacketTiming,
    },
    /// A layer rejected the packet as malformed.
    Error {
        /// The rejecting layer.
        layer: RxLayer,
        /// The typed rejection.
        error: RxError,
        /// Work charged before rejection.
        timing: PacketTiming,
    },
}

impl RxOutcome {
    /// The timing record, whatever the verdict.
    pub fn timing(&self) -> &PacketTiming {
        match self {
            RxOutcome::Delivered(t) => t,
            RxOutcome::Dropped { timing, .. } => timing,
            RxOutcome::Error { timing, .. } => timing,
        }
    }

    /// True when the payload reached the user.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RxOutcome::Delivered(_))
    }

    /// Tally this outcome into the unified observability counters
    /// (`delivered` / `dropped_no_session` / `dropped_queue_full` /
    /// `errored`).
    pub fn observe_into(&self, c: &mut afs_obs::Counters) {
        match self {
            RxOutcome::Delivered(_) => c.delivered += 1,
            RxOutcome::Dropped {
                reason: DropReason::NoSession(_),
                ..
            } => c.dropped_no_session += 1,
            RxOutcome::Dropped {
                reason: DropReason::UserQueueFull(_),
                ..
            } => c.dropped_queue_full += 1,
            RxOutcome::Error { .. } => c.errored += 1,
        }
    }
}

/// Timing breakdown of one packet's processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketTiming {
    /// Instructions executed.
    pub instructions: u64,
    /// Memory references issued (instruction-line fetches + data).
    pub refs: u64,
    /// Total cycles (instructions × CPI + miss penalties).
    pub cycles: f64,
    /// Wall-clock microseconds at the platform clock.
    pub us: f64,
    /// Payload bytes delivered to the user.
    pub payload_bytes: usize,
    /// The stream the packet demuxed to.
    pub stream: StreamId,
}

/// Code segments of the receive path, one per layer.
#[derive(Debug, Clone, Copy)]
struct Segs {
    thread: CodeSeg,
    driver: CodeSeg,
    fddi: CodeSeg,
    ip: CodeSeg,
    udp: CodeSeg,
    user: CodeSeg,
    /// TCP-specific code (header prediction, sequence bookkeeping),
    /// executed in addition to the common path on TCP receives.
    tcp: CodeSeg,
}

/// The instrumented protocol engine (one protocol *stack instance* —
/// under IPS each independent stack owns one engine; under Locking a
/// single engine is shared).
#[derive(Debug)]
pub struct ProtocolEngine {
    /// Address-space layout.
    pub layout: MemLayout,
    /// Cost parameters.
    pub cost: CostModel,
    segs: Segs,
    /// Port → stream demux table and per-stream sessions.
    pub table: SessionTable,
    /// TCP connection state per stream (present for TCP-bound streams).
    pub tcp_sessions: std::collections::HashMap<StreamId, tcp::TcpSession>,
    /// ICMP error datagrams awaiting transmission (port-unreachable
    /// replies queued by failed demultiplexes).
    pub icmp_egress: Vec<Vec<u8>>,
    /// Reusable receive message: [`ProtocolEngine::receive_outcome`]
    /// takes it, refills it in place from the frame, and puts it back —
    /// so the steady-state receive path never touches the allocator
    /// once the buffer has grown to the frame length.
    scratch: Message,
}

impl ProtocolEngine {
    /// Build an engine, allocating its code segments.
    pub fn new(cost: CostModel) -> Self {
        let layout = MemLayout::new();
        let mut alloc = CodeAllocator::new(layout);
        let segs = Segs {
            thread: alloc.alloc(cost.code_bytes[0]),
            driver: alloc.alloc(cost.code_bytes[1]),
            fddi: alloc.alloc(cost.code_bytes[2]),
            ip: alloc.alloc(cost.code_bytes[3]),
            udp: alloc.alloc(cost.code_bytes[4]),
            user: alloc.alloc(cost.code_bytes[5]),
            tcp: alloc.alloc(1024),
        };
        // The address-space coloring (MemLayout) reserves 12 032 bytes of
        // L1 sets for code; overflowing it silently reintroduces the
        // cross-region conflict thrash the coloring exists to prevent.
        assert!(
            alloc.allocated() <= 12_032,
            "code footprint {} B exceeds the coloring budget",
            alloc.allocated()
        );
        ProtocolEngine {
            layout,
            cost,
            segs,
            table: SessionTable::new(),
            tcp_sessions: std::collections::HashMap::new(),
            icmp_egress: Vec::new(),
            scratch: Message::default(),
        }
    }

    /// Bind a stream's UDP port (open its session).
    pub fn bind_stream(&mut self, stream: StreamId) {
        self.table
            .bind(driver::port_of(stream), stream)
            .expect("stream ports are unique by construction");
    }

    /// Bind a stream as a TCP connection expecting `isn` as its first
    /// data byte (established state; E19's configuration).
    pub fn bind_tcp_stream(&mut self, stream: StreamId, isn: u32) {
        self.bind_stream(stream);
        self.tcp_sessions.insert(stream, tcp::TcpSession::new(isn));
    }

    /// Total code bytes of the path.
    pub fn code_footprint_bytes(&self) -> u64 {
        self.cost.code_bytes.iter().sum()
    }

    /// Process one received frame on `hier` in the context of thread
    /// `tid`, returning the typed verdict. Every exit — delivery, shed,
    /// or malformed-packet rejection — charges the instruction cycles
    /// and cache misses of the work done up to that point: a corrupted
    /// packet pollutes the cache without producing goodput, and the
    /// overload experiments need that cost on the ledger.
    pub fn receive_outcome(
        &mut self,
        hier: &mut MemoryHierarchy,
        frame: &RxFrame,
        tid: ThreadId,
    ) -> RxOutcome {
        enum Verdict {
            Delivered { stream: StreamId, payload: usize },
            QueueFull { stream: StreamId, payload: usize },
            NoSession { port: u16 },
            Reject { error: RxError },
        }

        let cost = self.cost;
        let segs = self.segs;
        let layout = self.layout;
        let start_cycles = hier.stats.cycles;
        let mut ctx = MemCtx::new(hier);
        // Borrow the engine's scratch message and refill it in place —
        // no allocation once its capacity covers the frame.
        let mut msg = std::mem::take(&mut self.scratch);
        msg.reset_from_wire(&frame.bytes, frame.buf_addr);

        let verdict = 'rx: {
            // --- Thread dispatch: wake the protocol thread, touch its
            // stack.
            ctx.exec(segs.thread, cost.thread_instrs);
            ctx.load_range(layout.thread(tid.0), cost.thread_read_bytes, Region::Thread);
            ctx.store_range(
                layout.thread(tid.0) + cost.thread_read_bytes,
                cost.thread_write_bytes,
                Region::Thread,
            );

            // --- Driver: buffer bookkeeping and handoff.
            ctx.exec(segs.driver, cost.driver_instrs);
            // Ring descriptor lives in global memory.
            ctx.load_range(layout.global(0), 64, Region::Global);

            // --- FDDI: header reads + LLC/SNAP demux.
            ctx.exec(segs.fddi, cost.fddi_instrs);
            for off in [0usize, 4, 8, 12, 16, 20] {
                let _ = msg.read_u32(&mut ctx, off.min(msg.len().saturating_sub(4)));
            }
            if cost.software_fcs && msg.len() >= fddi::FCS_LEN {
                let _ = msg.checksum16(&mut ctx, 0, msg.len());
            }
            if let Err(e) = fddi::parse_frame(&mut msg) {
                break 'rx Verdict::Reject {
                    error: RxError::Fddi(e),
                };
            }

            // --- IP: header checksum over real bytes + protocol demux.
            ctx.exec(segs.ip, cost.ip_instrs);
            let _ = msg.checksum16(&mut ctx, 0, ip::HEADER_LEN.min(msg.len()));
            ctx.load_range(layout.global(64), 192, Region::Global);
            let ih = match ip::parse_header(&mut msg) {
                Ok(h) => h,
                Err(e) => {
                    break 'rx Verdict::Reject {
                        error: RxError::Ip(e),
                    }
                }
            };
            if ih.protocol != ip::PROTO_UDP {
                break 'rx Verdict::Reject {
                    error: RxError::Ip(ip::IpError::UnknownProtocol(ih.protocol)),
                };
            }

            // --- UDP: header reads, optional software checksum, port
            // demux.
            ctx.exec(segs.udp, cost.udp_instrs);
            let _ = msg.read_u32(&mut ctx, 0);
            let _ = msg.read_u32(&mut ctx, 4);
            if cost.software_udp_checksum {
                let _ = msg.checksum16(&mut ctx, 0, msg.len());
            }
            let remaining_global = cost.global_touch_bytes.saturating_sub(64 + 192);
            ctx.load_range(layout.global(256), remaining_global, Region::Global);
            let uh = match udp::parse_datagram(&mut msg, ih.src, ih.dst) {
                Ok(h) => h,
                Err(e) => {
                    break 'rx Verdict::Reject {
                        error: RxError::Udp(e),
                    }
                }
            };
            let stream = match self.table.demux(uh.dst_port) {
                Some(s) => s,
                None => {
                    // RFC 1122: a datagram for an unbound port elicits an
                    // ICMP port-unreachable quoting the offender. Rebuild
                    // the original IP datagram view for the quote, and
                    // charge the generation work (header build +
                    // checksum).
                    ctx.exec(segs.ip, cost.ip_instrs / 4);
                    let ip_start = fddi::HEADER_LEN;
                    let ip_end = frame.bytes.len().saturating_sub(fddi::FCS_LEN);
                    if let Some(reply) =
                        crate::icmp::port_unreachable(&frame.bytes[ip_start..ip_end], ih.dst)
                    {
                        self.icmp_egress.push(reply);
                    }
                    break 'rx Verdict::NoSession { port: uh.dst_port };
                }
            };

            // --- Session/user delivery: touch per-stream state.
            ctx.exec(segs.user, cost.user_instrs);
            ctx.load_range(
                layout.stream(stream.0),
                cost.stream_read_bytes,
                Region::Stream,
            );
            ctx.store_range(
                layout.stream(stream.0) + cost.stream_read_bytes,
                cost.stream_write_bytes,
                Region::Stream,
            );
            let payload = msg.len();
            let accepted = self
                .table
                .session_mut(stream)
                .expect("demuxed stream has a session")
                .deliver(ih.src, uh.src_port, payload);
            if accepted {
                Verdict::Delivered { stream, payload }
            } else {
                Verdict::QueueFull { stream, payload }
            }
        };

        // --- Timing: single exit, charged whatever the verdict.
        let instructions = ctx.instructions;
        let refs = ctx.data_refs + ctx.ifetch_refs;
        hier.charge_cycles(instructions as f64 * cost.cpi);
        let cycles = hier.stats.cycles - start_cycles;
        let us = hier.platform().cycles_to_us(cycles);
        let timing = |payload_bytes: usize, stream: StreamId| PacketTiming {
            instructions,
            refs,
            cycles,
            us,
            payload_bytes,
            stream,
        };
        // Return the scratch message (and its capacity) for the next
        // receive.
        self.scratch = msg;
        match verdict {
            Verdict::Delivered { stream, payload } => RxOutcome::Delivered(timing(payload, stream)),
            Verdict::QueueFull { stream, payload } => RxOutcome::Dropped {
                reason: DropReason::UserQueueFull(stream),
                timing: timing(payload, stream),
            },
            Verdict::NoSession { port } => RxOutcome::Dropped {
                reason: DropReason::NoSession(port),
                timing: timing(0, StreamId::UNKNOWN),
            },
            Verdict::Reject { error } => RxOutcome::Error {
                layer: error.layer(),
                error,
                timing: timing(0, StreamId::UNKNOWN),
            },
        }
    }

    /// Process one received frame on `hier` in the context of thread
    /// `tid`. Consumes cycles even when the packet is dropped.
    ///
    /// Compatibility shim over [`ProtocolEngine::receive_outcome`]: a
    /// queue-full shed still reports `Ok` (the historical behaviour —
    /// the work *was* done); malformed packets and failed demuxes
    /// surface as the typed [`RxError`].
    pub fn receive(
        &mut self,
        hier: &mut MemoryHierarchy,
        frame: &RxFrame,
        tid: ThreadId,
    ) -> Result<PacketTiming, RxError> {
        match self.receive_outcome(hier, frame, tid) {
            RxOutcome::Delivered(t) => Ok(t),
            RxOutcome::Dropped {
                reason: DropReason::UserQueueFull(_),
                timing,
            } => Ok(timing),
            RxOutcome::Dropped {
                reason: DropReason::NoSession(port),
                ..
            } => Err(RxError::NoSession(port)),
            RxOutcome::Error { error, .. } => Err(error),
        }
    }

    /// Process one received TCP frame on `hier`, returning the typed
    /// verdict plus the TCP-level disposition (when the segment got far
    /// enough to have one). Like [`ProtocolEngine::receive_outcome`],
    /// every exit charges the partial work.
    pub fn receive_tcp_outcome(
        &mut self,
        hier: &mut MemoryHierarchy,
        frame: &RxFrame,
        tid: ThreadId,
    ) -> (RxOutcome, Option<tcp::TcpDisposition>) {
        enum Verdict {
            Done {
                stream: StreamId,
                payload: usize,
                disposition: tcp::TcpDisposition,
            },
            NoSession {
                port: u16,
            },
            Reject {
                error: RxError,
            },
        }

        let cost = self.cost;
        let segs = self.segs;
        let layout = self.layout;
        let start_cycles = hier.stats.cycles;
        let mut ctx = MemCtx::new(hier);
        let mut msg = Message::from_wire(&frame.bytes, frame.buf_addr);

        let verdict = 'rx: {
            // Thread dispatch + driver + FDDI + IP: identical to the UDP
            // path.
            ctx.exec(segs.thread, cost.thread_instrs);
            ctx.load_range(layout.thread(tid.0), cost.thread_read_bytes, Region::Thread);
            ctx.store_range(
                layout.thread(tid.0) + cost.thread_read_bytes,
                cost.thread_write_bytes,
                Region::Thread,
            );
            ctx.exec(segs.driver, cost.driver_instrs);
            ctx.load_range(layout.global(0), 64, Region::Global);
            ctx.exec(segs.fddi, cost.fddi_instrs);
            for off in [0usize, 4, 8, 12, 16, 20] {
                let _ = msg.read_u32(&mut ctx, off.min(msg.len().saturating_sub(4)));
            }
            if let Err(e) = fddi::parse_frame(&mut msg) {
                break 'rx Verdict::Reject {
                    error: RxError::Fddi(e),
                };
            }
            ctx.exec(segs.ip, cost.ip_instrs);
            let _ = msg.checksum16(&mut ctx, 0, ip::HEADER_LEN.min(msg.len()));
            ctx.load_range(layout.global(64), 192, Region::Global);
            let ih = match ip::parse_header(&mut msg) {
                Ok(h) => h,
                Err(e) => {
                    break 'rx Verdict::Reject {
                        error: RxError::Ip(e),
                    }
                }
            };
            if ih.protocol != ip::PROTO_TCP {
                break 'rx Verdict::Reject {
                    error: RxError::Ip(ip::IpError::UnknownProtocol(ih.protocol)),
                };
            }

            // TCP: the software checksum over the whole segment is
            // mandatory (TCP has no checksum-off mode), plus the
            // TCP-specific instruction budget and header reads.
            ctx.exec(segs.udp, cost.udp_instrs); // shared transport demux code
            ctx.exec(segs.tcp, cost.tcp_extra_instrs);
            for off in [0usize, 4, 8, 12, 16] {
                let _ = msg.read_u32(&mut ctx, off.min(msg.len().saturating_sub(4)));
            }
            let _ = msg.checksum16(&mut ctx, 0, msg.len());
            let remaining_global = cost.global_touch_bytes.saturating_sub(64 + 192);
            ctx.load_range(layout.global(256), remaining_global, Region::Global);
            let th = match tcp::parse_segment(&mut msg, ih.src, ih.dst) {
                Ok(h) => h,
                Err(e) => {
                    break 'rx Verdict::Reject {
                        error: RxError::Tcp(e),
                    }
                }
            };
            let Some(stream) = self.table.demux(th.dst_port) else {
                break 'rx Verdict::NoSession { port: th.dst_port };
            };

            // Session/user: connection state + delivery bookkeeping.
            ctx.exec(segs.user, cost.user_instrs);
            ctx.load_range(
                layout.stream(stream.0),
                cost.stream_read_bytes,
                Region::Stream,
            );
            ctx.store_range(
                layout.stream(stream.0) + cost.stream_read_bytes,
                cost.stream_write_bytes,
                Region::Stream,
            );
            let payload = msg.len();
            let Some(session) = self.tcp_sessions.get_mut(&stream) else {
                break 'rx Verdict::NoSession { port: th.dst_port };
            };
            let disposition = match session.receive(&th, msg.bytes()) {
                Ok(d) => d,
                Err(e) => {
                    break 'rx Verdict::Reject {
                        error: RxError::Tcp(e),
                    }
                }
            };
            if let tcp::TcpDisposition::Delivered { bytes } = disposition {
                if bytes > 0 {
                    self.table
                        .session_mut(stream)
                        .expect("bound stream has a session")
                        .deliver(ih.src, th.src_port, bytes);
                }
            }
            Verdict::Done {
                stream,
                payload,
                disposition,
            }
        };

        // Timing: single exit, charged whatever the verdict.
        let instructions = ctx.instructions;
        let refs = ctx.data_refs + ctx.ifetch_refs;
        hier.charge_cycles(instructions as f64 * cost.cpi);
        let cycles = hier.stats.cycles - start_cycles;
        let us = hier.platform().cycles_to_us(cycles);
        let timing = |payload_bytes: usize, stream: StreamId| PacketTiming {
            instructions,
            refs,
            cycles,
            us,
            payload_bytes,
            stream,
        };
        match verdict {
            Verdict::Done {
                stream,
                payload,
                disposition,
            } => (
                RxOutcome::Delivered(timing(payload, stream)),
                Some(disposition),
            ),
            Verdict::NoSession { port } => (
                RxOutcome::Dropped {
                    reason: DropReason::NoSession(port),
                    timing: timing(0, StreamId::UNKNOWN),
                },
                None,
            ),
            Verdict::Reject { error } => (
                RxOutcome::Error {
                    layer: error.layer(),
                    error,
                    timing: timing(0, StreamId::UNKNOWN),
                },
                None,
            ),
        }
    }

    /// Process one received TCP frame on `hier` — the common path plus
    /// the TCP-specific work (real header parse + checksum verification,
    /// header prediction, sequence bookkeeping). The stream must have
    /// been bound with [`ProtocolEngine::bind_tcp_stream`].
    ///
    /// Compatibility shim over
    /// [`ProtocolEngine::receive_tcp_outcome`].
    pub fn receive_tcp(
        &mut self,
        hier: &mut MemoryHierarchy,
        frame: &RxFrame,
        tid: ThreadId,
    ) -> Result<(PacketTiming, tcp::TcpDisposition), RxError> {
        match self.receive_tcp_outcome(hier, frame, tid) {
            (RxOutcome::Delivered(t), Some(d)) => Ok((t, d)),
            (
                RxOutcome::Dropped {
                    reason: DropReason::NoSession(port),
                    ..
                },
                _,
            ) => Err(RxError::NoSession(port)),
            (RxOutcome::Error { error, .. }, _) => Err(error),
            // Delivered without a disposition and queue-full drops cannot
            // come out of the TCP path.
            (outcome, _) => unreachable!("tcp path produced {outcome:?}"),
        }
    }

    /// Send-side fast path (extension E12): user hands down a payload for
    /// `stream`; UDP, IP and FDDI headers are pushed over real bytes and
    /// the finished frame is "transmitted" — returned as wire bytes so a
    /// peer engine can receive it (loopback testing). Costs mirror the
    /// receive side (send processing is marginally cheaper: no
    /// validation loops).
    pub fn send(
        &mut self,
        hier: &mut MemoryHierarchy,
        stream: StreamId,
        payload: &[u8],
        tid: ThreadId,
        buf_addr: u64,
    ) -> (PacketTiming, Vec<u8>) {
        let cost = self.cost;
        let segs = self.segs;
        let layout = self.layout;
        let start_cycles = hier.stats.cycles;
        let mut ctx = MemCtx::new(hier);
        let mut msg = Message::for_send(payload, buf_addr);

        // Thread dispatch.
        ctx.exec(segs.thread, cost.thread_instrs);
        ctx.load_range(layout.thread(tid.0), cost.thread_read_bytes, Region::Thread);
        ctx.store_range(
            layout.thread(tid.0) + cost.thread_read_bytes,
            cost.thread_write_bytes,
            Region::Thread,
        );

        // User/session: read stream state to form headers.
        ctx.exec(segs.user, cost.user_instrs * 3 / 4);
        ctx.load_range(
            layout.stream(stream.0),
            cost.stream_read_bytes,
            Region::Stream,
        );
        ctx.store_range(
            layout.stream(stream.0) + cost.stream_read_bytes,
            cost.stream_write_bytes / 2,
            Region::Stream,
        );

        // UDP push.
        ctx.exec(segs.udp, cost.udp_instrs * 3 / 4);
        let src = driver::HOST_ADDR;
        let dst = driver::peer_of(stream);
        let udp_len = (udp::HEADER_LEN + payload.len()) as u16;
        {
            let h = msg.push(udp::HEADER_LEN).expect("headroom");
            h[0..2].copy_from_slice(&driver::port_of(stream).to_be_bytes());
            h[2..4].copy_from_slice(&(1024 + stream.0 as u16).to_be_bytes());
            h[4..6].copy_from_slice(&udp_len.to_be_bytes());
            h[6..8].copy_from_slice(&[0, 0]);
        }
        ctx.store_range(msg.head_addr(), udp::HEADER_LEN as u64, Region::PacketData);
        if cost.software_udp_checksum {
            let _ = msg.checksum16(&mut ctx, 0, msg.len());
        }

        // IP push.
        ctx.exec(segs.ip, cost.ip_instrs * 3 / 4);
        let total = (ip::HEADER_LEN + msg.len()) as u16;
        let iph = ip::build_header(
            total,
            0,
            true,
            false,
            0,
            ip::DEFAULT_TTL,
            ip::PROTO_UDP,
            src,
            dst,
        );
        {
            let h = msg.push(ip::HEADER_LEN).expect("headroom");
            h.copy_from_slice(&iph);
        }
        ctx.store_range(msg.head_addr(), ip::HEADER_LEN as u64, Region::PacketData);
        let _ = msg.checksum16(&mut ctx, 0, ip::HEADER_LEN);
        ctx.load_range(layout.global(64), 192, Region::Global);

        // FDDI push + driver transmit.
        ctx.exec(segs.fddi, cost.fddi_instrs * 3 / 4);
        {
            let h = msg.push(fddi::HEADER_LEN).expect("headroom");
            h[0] = fddi::FC_LLC;
            // Outbound: the peer is the destination, this host the source.
            h[1..7].copy_from_slice(&fddi::MacAddr::station(100 + stream.0).0);
            h[7..13].copy_from_slice(&driver::HOST_MAC.0);
            h[13] = fddi::LLC_SNAP_SAP;
            h[14] = fddi::LLC_SNAP_SAP;
            h[15] = fddi::LLC_UI;
            h[16..19].copy_from_slice(&[0, 0, 0]);
            h[19..21].copy_from_slice(&fddi::ETHERTYPE_IP.to_be_bytes());
        }
        ctx.store_range(msg.head_addr(), fddi::HEADER_LEN as u64, Region::PacketData);
        ctx.exec(segs.driver, cost.driver_instrs * 3 / 4);
        ctx.load_range(layout.global(0), 64, Region::Global);

        // The MAC computes the FCS in hardware on transmit; emit the
        // complete wire frame so a peer can receive it.
        let wire = {
            let body = msg.bytes();
            let mut f = body.to_vec();
            let fcs = fddi::crc32(body);
            f.extend_from_slice(&fcs.to_be_bytes());
            f
        };

        let instructions = ctx.instructions;
        let refs = ctx.data_refs + ctx.ifetch_refs;
        let instr_cycles = instructions as f64 * cost.cpi;
        hier.charge_cycles(instr_cycles);
        let cycles = hier.stats.cycles - start_cycles;
        (
            PacketTiming {
                instructions,
                refs,
                cycles,
                us: hier.platform().cycles_to_us(cycles),
                payload_bytes: payload.len(),
                stream,
            },
            wire,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::PacketFactory;

    fn setup(streams: u32) -> (ProtocolEngine, MemoryHierarchy, PacketFactory) {
        let mut eng = ProtocolEngine::new(CostModel::default());
        for s in 0..streams {
            eng.bind_stream(StreamId(s));
        }
        let hier = eng.cost.hierarchy();
        (eng, hier, PacketFactory::new())
    }

    fn rx(f: &mut PacketFactory, stream: u32, len: usize) -> RxFrame {
        RxFrame {
            bytes: f.frame_for(StreamId(stream), len),
            stream: StreamId(stream),
            buf_addr: MemLayout::new().packet(0),
        }
    }

    #[test]
    fn receive_delivers_and_accounts() {
        let (mut eng, mut hier, mut f) = setup(1);
        let frame = rx(&mut f, 0, 32);
        let t = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap();
        assert_eq!(t.stream, StreamId(0));
        assert_eq!(t.payload_bytes, 32);
        assert_eq!(t.instructions, eng.cost.total_instrs());
        assert!(t.refs > 1000, "refs = {}", t.refs);
        let s = eng.table.session(StreamId(0)).unwrap();
        assert_eq!(s.packets, 1);
        assert_eq!(s.bytes, 32);
    }

    #[test]
    fn cold_time_in_paper_band() {
        let (mut eng, mut hier, mut f) = setup(1);
        let frame = rx(&mut f, 0, 1);
        let t = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap();
        // First packet on a stone-cold machine: the paper's t_cold is
        // 284.3 µs. The CostModel defaults are calibrated to land close.
        assert!(
            (250.0..320.0).contains(&t.us),
            "t_cold = {:.1} µs out of band",
            t.us
        );
    }

    #[test]
    fn warm_time_well_below_cold() {
        let (mut eng, mut hier, mut f) = setup(1);
        let mut last = 0.0;
        for _ in 0..20 {
            let frame = rx(&mut f, 0, 1);
            last = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap().us;
        }
        // Steady-state warm time ≈ instructions × CPI.
        let warm_floor = eng.cost.total_instrs() as f64 / 100.0; // µs at 100 MHz
        assert!(
            last >= warm_floor,
            "{last} < instruction floor {warm_floor}"
        );
        assert!(last < warm_floor * 1.15, "warm {last} µs not near floor");
    }

    #[test]
    fn unknown_port_is_dropped_with_cost() {
        let (mut eng, mut hier, mut f) = setup(1);
        let mut frame = rx(&mut f, 0, 8);
        // Rewrite the UDP destination port (offset: 21 FDDI + 20 IP + 2).
        frame.bytes[43] = 0xFF;
        frame.bytes[44] = 0xFF;
        // Fix nothing else: UDP has no checksum here, FCS must be redone.
        let body = frame.bytes.len() - fddi::FCS_LEN;
        let fcs = fddi::crc32(&frame.bytes[..body]);
        frame.bytes[body..].copy_from_slice(&fcs.to_be_bytes());
        let before = hier.stats.cycles;
        let err = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap_err();
        assert!(matches!(err, RxError::NoSession(_)));
        assert!(hier.stats.cycles > before, "drop still consumed cycles");
    }

    #[test]
    fn corrupt_ip_header_rejected() {
        let (mut eng, mut hier, mut f) = setup(1);
        let mut frame = rx(&mut f, 0, 8);
        frame.bytes[21 + 8] ^= 0xFF; // TTL inside IP header
        let body = frame.bytes.len() - fddi::FCS_LEN;
        let fcs = fddi::crc32(&frame.bytes[..body]);
        frame.bytes[body..].copy_from_slice(&fcs.to_be_bytes());
        let err = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap_err();
        assert_eq!(err, RxError::Ip(ip::IpError::BadChecksum));
    }

    #[test]
    fn software_udp_checksum_touches_payload() {
        let (mut eng, mut hier, mut f) = setup(1);
        f.udp_checksums = true;
        eng.cost.software_udp_checksum = true;
        let small = eng
            .receive(&mut hier, &rx(&mut f, 0, 16), ThreadId(0))
            .unwrap();
        let big = eng
            .receive(&mut hier, &rx(&mut f, 0, 4096), ThreadId(0))
            .unwrap();
        assert!(
            big.refs > small.refs + 900,
            "checksumming 4 KiB should add ≈1k loads: {} vs {}",
            big.refs,
            small.refs
        );
    }

    #[test]
    fn two_streams_demux_to_their_sessions() {
        let (mut eng, mut hier, mut f) = setup(2);
        eng.receive(&mut hier, &rx(&mut f, 0, 10), ThreadId(0))
            .unwrap();
        eng.receive(&mut hier, &rx(&mut f, 1, 20), ThreadId(0))
            .unwrap();
        eng.receive(&mut hier, &rx(&mut f, 1, 20), ThreadId(0))
            .unwrap();
        assert_eq!(eng.table.session(StreamId(0)).unwrap().packets, 1);
        assert_eq!(eng.table.session(StreamId(1)).unwrap().packets, 2);
    }

    #[test]
    fn send_path_produces_cycles_and_state_touch() {
        let (mut eng, mut hier, _) = setup(1);
        let (t, wire) = eng.send(
            &mut hier,
            StreamId(0),
            &[0xAB; 64],
            ThreadId(0),
            MemLayout::new().packet(1),
        );
        assert!(t.us > 50.0, "send time {:.1} µs", t.us);
        assert!(t.instructions > 5_000);
        assert!(wire.len() > 64 + fddi::HEADER_LEN + fddi::FCS_LEN);
    }

    #[test]
    fn send_output_is_a_valid_receivable_frame() {
        // Loopback: what engine A transmits for stream 0, engine B (the
        // peer) must parse cleanly down its own receive path. Note the
        // sender addresses the frame *to* the stream's peer, so the
        // receiving side demuxes by the sender's source port.
        let (mut a, mut hier_a, _) = setup(1);
        let (_, wire) = a.send(
            &mut hier_a,
            StreamId(0),
            b"loopback payload",
            ThreadId(0),
            MemLayout::new().packet(1),
        );
        // Validate the frame layer by layer (the peer's demux tables
        // differ, so drive the parsers directly).
        let mut msg = crate::msg::Message::from_wire(&wire, 0);
        let fh = fddi::parse_frame(&mut msg).expect("valid FDDI frame");
        assert_eq!(fh.src, crate::driver::HOST_MAC);
        let ih = ip::parse_header(&mut msg).expect("valid IP header");
        assert_eq!(ih.src, crate::driver::HOST_ADDR);
        assert_eq!(ih.dst, crate::driver::peer_of(StreamId(0)));
        let uh = udp::parse_datagram(&mut msg, ih.src, ih.dst).expect("valid UDP");
        assert_eq!(uh.src_port, crate::driver::port_of(StreamId(0)));
        assert_eq!(msg.bytes(), b"loopback payload");
    }
}

#[cfg(test)]
mod tcp_tests {
    use super::*;
    use crate::driver::PacketFactory;
    use crate::tcp::TcpDisposition;

    fn setup_tcp() -> (ProtocolEngine, MemoryHierarchy, PacketFactory) {
        let mut eng = ProtocolEngine::new(CostModel::default());
        eng.bind_tcp_stream(StreamId(0), 1000);
        let hier = eng.cost.hierarchy();
        (eng, hier, PacketFactory::new())
    }

    fn tcp_rx(f: &mut PacketFactory, stream: u32, seq: u32, payload: &[u8]) -> RxFrame {
        RxFrame {
            bytes: f.tcp_frame_for(StreamId(stream), seq, payload),
            stream: StreamId(stream),
            buf_addr: MemLayout::new().packet(0),
        }
    }

    #[test]
    fn tcp_in_order_delivers_through_full_stack() {
        let (mut eng, mut hier, mut f) = setup_tcp();
        let mut seq = 1000u32;
        for _ in 0..5 {
            let frame = tcp_rx(&mut f, 0, seq, b"0123456789ABCDEF");
            let (t, d) = eng.receive_tcp(&mut hier, &frame, ThreadId(0)).unwrap();
            assert_eq!(d, TcpDisposition::Delivered { bytes: 16 });
            assert_eq!(t.stream, StreamId(0));
            seq += 16;
        }
        let s = eng.tcp_sessions.get(&StreamId(0)).unwrap();
        assert_eq!(s.fast_path_hits, 5);
        assert_eq!(s.delivered_bytes, 80);
        assert_eq!(eng.table.session(StreamId(0)).unwrap().bytes, 80);
    }

    #[test]
    fn tcp_out_of_order_reassembles_through_full_stack() {
        let (mut eng, mut hier, mut f) = setup_tcp();
        let f2 = tcp_rx(&mut f, 0, 1010, b"BBBBBBBBBB");
        let f1 = tcp_rx(&mut f, 0, 1000, b"AAAAAAAAAA");
        let (_, d) = eng.receive_tcp(&mut hier, &f2, ThreadId(0)).unwrap();
        assert_eq!(d, TcpDisposition::Queued);
        let (_, d) = eng.receive_tcp(&mut hier, &f1, ThreadId(0)).unwrap();
        assert_eq!(d, TcpDisposition::Delivered { bytes: 20 });
        let s = eng.tcp_sessions.get(&StreamId(0)).unwrap();
        assert_eq!(s.rcv_nxt, 1020);
    }

    #[test]
    fn tcp_costs_more_than_udp_by_roughly_the_papers_share() {
        // The paper: TCP-specific processing ≈ 15% of packet time at its
        // most influential (tiny packets). Compare warm steady states.
        let (mut eng, mut hier, mut f) = setup_tcp();
        eng.bind_stream(StreamId(1)); // UDP stream alongside
        let mut tcp_time = 0.0;
        let mut udp_time = 0.0;
        for i in 0..40u32 {
            hier.purge_region(Region::PacketData);
            let frame = tcp_rx(&mut f, 0, 1000 + i, b"x");
            let (t, _) = eng.receive_tcp(&mut hier, &frame, ThreadId(0)).unwrap();
            if i >= 20 {
                tcp_time += t.us;
            }
        }
        for i in 0..40 {
            hier.purge_region(Region::PacketData);
            let frame = RxFrame {
                bytes: f.frame_for(StreamId(1), 1),
                stream: StreamId(1),
                buf_addr: MemLayout::new().packet(0),
            };
            let t = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap();
            if i >= 20 {
                udp_time += t.us;
            }
        }
        let ratio = tcp_time / udp_time;
        assert!(
            (1.08..1.30).contains(&ratio),
            "TCP/UDP warm ratio {ratio:.3} outside the paper's ~15% band"
        );
    }

    #[test]
    fn tcp_checksum_corruption_rejected_through_stack() {
        let (mut eng, mut hier, mut f) = setup_tcp();
        let mut frame = tcp_rx(&mut f, 0, 1000, b"payload");
        // Flip a payload byte and fix the FCS so only TCP can catch it.
        let n = frame.bytes.len();
        frame.bytes[n - 8] ^= 0x01;
        let body = n - fddi::FCS_LEN;
        let fcs = fddi::crc32(&frame.bytes[..body]);
        frame.bytes[body..].copy_from_slice(&fcs.to_be_bytes());
        let err = eng.receive_tcp(&mut hier, &frame, ThreadId(0)).unwrap_err();
        assert_eq!(err, RxError::Tcp(tcp::TcpError::BadChecksum));
    }

    #[test]
    fn udp_frame_on_tcp_path_rejected() {
        let (mut eng, mut hier, mut f) = setup_tcp();
        let frame = RxFrame {
            bytes: f.frame_for(StreamId(0), 4),
            stream: StreamId(0),
            buf_addr: MemLayout::new().packet(0),
        };
        let err = eng.receive_tcp(&mut hier, &frame, ThreadId(0)).unwrap_err();
        assert!(matches!(err, RxError::Ip(ip::IpError::UnknownProtocol(17))));
    }
}

#[cfg(test)]
mod icmp_tests {
    use super::*;
    use crate::driver::PacketFactory;
    use crate::icmp;
    use crate::msg::Message;

    #[test]
    fn unknown_port_queues_port_unreachable() {
        let mut eng = ProtocolEngine::new(CostModel::default());
        eng.bind_stream(StreamId(0));
        let mut hier = CostModel::default().hierarchy();
        let mut f = PacketFactory::new();
        // Stream 7 is not bound: its well-formed datagram must bounce.
        let frame = RxFrame {
            bytes: f.frame_for(StreamId(7), 16),
            stream: StreamId(7),
            buf_addr: MemLayout::new().packet(0),
        };
        let err = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap_err();
        assert!(matches!(err, RxError::NoSession(_)));
        assert_eq!(eng.icmp_egress.len(), 1);

        // The queued reply is a valid ICMP port-unreachable addressed to
        // the offending sender.
        let reply = &eng.icmp_egress[0];
        let mut msg = Message::from_wire(reply, 0);
        let ih = ip::parse_header(&mut msg).unwrap();
        assert_eq!(ih.protocol, ip::PROTO_ICMP);
        assert_eq!(ih.dst, crate::driver::peer_of(StreamId(7)));
        let m = icmp::parse(&mut msg).unwrap();
        assert_eq!(m.icmp_type, icmp::TYPE_DEST_UNREACHABLE);
        assert_eq!(m.code, icmp::CODE_PORT_UNREACHABLE);
    }

    #[test]
    fn bound_ports_do_not_elicit_icmp() {
        let mut eng = ProtocolEngine::new(CostModel::default());
        eng.bind_stream(StreamId(0));
        let mut hier = CostModel::default().hierarchy();
        let mut f = PacketFactory::new();
        let frame = RxFrame {
            bytes: f.frame_for(StreamId(0), 16),
            stream: StreamId(0),
            buf_addr: MemLayout::new().packet(0),
        };
        eng.receive(&mut hier, &frame, ThreadId(0)).unwrap();
        assert!(eng.icmp_egress.is_empty());
    }

    #[test]
    fn corrupt_frames_do_not_elicit_icmp() {
        // Errors below UDP (bad FCS, bad IP checksum) must not generate
        // ICMP — only successful demux failures do.
        let mut eng = ProtocolEngine::new(CostModel::default());
        eng.bind_stream(StreamId(0));
        let mut hier = CostModel::default().hierarchy();
        let mut f = PacketFactory::new();
        let mut bytes = f.frame_for(StreamId(7), 16);
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // break the FCS
        let frame = RxFrame {
            bytes,
            stream: StreamId(7),
            buf_addr: MemLayout::new().packet(0),
        };
        let _ = eng.receive(&mut hier, &frame, ThreadId(0)).unwrap_err();
        assert!(eng.icmp_egress.is_empty());
    }
}
