//! The x-kernel message tool: a byte buffer with cheap header push/pop
//! and instrumented reads.
//!
//! An x-kernel message travels *down* a protocol graph on send (each layer
//! pushes its header in front) and *up* on receive (each layer pops its
//! header off). We model this with a `BytesMut` and a head offset: pops
//! are O(1), pushes into reserved headroom are O(1).
//!
//! Each message is bound to a simulated packet-buffer address, so header
//! reads issue `PacketData` references at the right simulated location:
//! byte `i` of the wire frame lives at `base_addr + i`.

use afs_cache::sim::trace::{Region, TraceSink};
use bytes::{BufMut, BytesMut};

use crate::mem::MemCtx;

/// Headroom reserved in front of a payload for pushed headers.
pub const DEFAULT_HEADROOM: usize = 64;

/// A protocol message: wire bytes plus a moving head pointer.
#[derive(Debug, Clone)]
pub struct Message {
    buf: BytesMut,
    head: usize,
    /// Simulated base address of byte 0 of the *frame* (head = frame
    /// start when the driver hands the message up).
    base_addr: u64,
}

/// Errors from message operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgError {
    /// A pop or read ran past the end of the message.
    Truncated,
    /// A push ran out of headroom.
    NoHeadroom,
}

impl std::fmt::Display for MsgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgError::Truncated => write!(f, "message truncated"),
            MsgError::NoHeadroom => write!(f, "insufficient headroom"),
        }
    }
}

impl std::error::Error for MsgError {}

impl Default for Message {
    /// An empty message (no bytes, head at 0) — the placeholder
    /// [`std::mem::take`] leaves behind when the engine borrows its
    /// scratch message for one receive.
    fn default() -> Self {
        Message {
            buf: BytesMut::new(),
            head: 0,
            base_addr: 0,
        }
    }
}

impl Message {
    /// Wrap received wire bytes (head at 0), bound to a simulated buffer
    /// address.
    pub fn from_wire(frame: &[u8], base_addr: u64) -> Self {
        let mut buf = BytesMut::with_capacity(frame.len());
        buf.put_slice(frame);
        Message {
            buf,
            head: 0,
            base_addr,
        }
    }

    /// Reinitialize this message in place from received wire bytes,
    /// reusing the existing buffer capacity. Equivalent to replacing
    /// `self` with [`Message::from_wire`]`(frame, base_addr)`, but
    /// allocation-free once the buffer has grown to the frame length —
    /// the receive path's steady-state contract.
    pub fn reset_from_wire(&mut self, frame: &[u8], base_addr: u64) {
        self.buf.clear();
        self.buf.put_slice(frame);
        self.head = 0;
        self.base_addr = base_addr;
    }

    /// Create an outgoing message holding `payload`, with headroom for
    /// headers to be pushed in front.
    pub fn for_send(payload: &[u8], base_addr: u64) -> Self {
        let mut buf = BytesMut::with_capacity(DEFAULT_HEADROOM + payload.len());
        buf.put_bytes(0, DEFAULT_HEADROOM);
        buf.put_slice(payload);
        Message {
            buf,
            head: DEFAULT_HEADROOM,
            base_addr,
        }
    }

    /// Bytes currently visible (head onward).
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visible bytes as a slice.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    /// The simulated address of the current head byte.
    pub fn head_addr(&self) -> u64 {
        self.base_addr + self.head as u64
    }

    /// Pop `n` header bytes: advances the head. Returns the popped range
    /// as (start offset in frame, length) for address math.
    pub fn pop(&mut self, n: usize) -> Result<(), MsgError> {
        if n > self.len() {
            return Err(MsgError::Truncated);
        }
        self.head += n;
        Ok(())
    }

    /// Un-pop: move the head back `n` bytes (used by reassembly).
    pub fn unpop(&mut self, n: usize) {
        assert!(n <= self.head, "unpop past start of buffer");
        self.head -= n;
    }

    /// Push an `n`-byte header in front of the head and return a mutable
    /// slice to fill it.
    pub fn push(&mut self, n: usize) -> Result<&mut [u8], MsgError> {
        if n > self.head {
            return Err(MsgError::NoHeadroom);
        }
        self.head -= n;
        let head = self.head;
        Ok(&mut self.buf[head..head + n])
    }

    /// Truncate the message to `n` visible bytes (drop trailing padding).
    pub fn truncate(&mut self, n: usize) {
        if n < self.len() {
            self.buf.truncate(self.head + n);
        }
    }

    // ---- Instrumented reads (issue PacketData references) -------------

    /// Read byte `off` past the head, charging one packet-data load.
    pub fn read_u8<S: TraceSink>(
        &self,
        ctx: &mut MemCtx<'_, S>,
        off: usize,
    ) -> Result<u8, MsgError> {
        let b = self.bytes().get(off).copied().ok_or(MsgError::Truncated)?;
        ctx.load(self.head_addr() + off as u64, Region::PacketData);
        Ok(b)
    }

    /// Big-endian u16 at `off` past the head (one load — same word).
    pub fn read_u16<S: TraceSink>(
        &self,
        ctx: &mut MemCtx<'_, S>,
        off: usize,
    ) -> Result<u16, MsgError> {
        let s = self.bytes();
        if off + 2 > s.len() {
            return Err(MsgError::Truncated);
        }
        ctx.load(self.head_addr() + off as u64, Region::PacketData);
        Ok(u16::from_be_bytes([s[off], s[off + 1]]))
    }

    /// Big-endian u32 at `off` past the head.
    pub fn read_u32<S: TraceSink>(
        &self,
        ctx: &mut MemCtx<'_, S>,
        off: usize,
    ) -> Result<u32, MsgError> {
        let s = self.bytes();
        if off + 4 > s.len() {
            return Err(MsgError::Truncated);
        }
        ctx.load(self.head_addr() + off as u64, Region::PacketData);
        Ok(u32::from_be_bytes([
            s[off],
            s[off + 1],
            s[off + 2],
            s[off + 3],
        ]))
    }

    /// Internet checksum (RFC 1071 one's-complement sum) over `len`
    /// visible bytes starting at `off`, charging one load per 4 bytes —
    /// the data-touching operation the paper's `V` parameter prices.
    pub fn checksum16<S: TraceSink>(
        &self,
        ctx: &mut MemCtx<'_, S>,
        off: usize,
        len: usize,
    ) -> Result<u16, MsgError> {
        let s = self.bytes();
        if off + len > s.len() {
            return Err(MsgError::Truncated);
        }
        ctx.load_range(
            self.head_addr() + off as u64,
            len as u64,
            Region::PacketData,
        );
        Ok(internet_checksum(&s[off..off + len]))
    }
}

/// RFC 1071 internet checksum of a byte slice (odd lengths padded with a
/// zero byte), returned as the already-complemented 16-bit value.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data, 0)
}

/// One's-complement 16-bit sum (not complemented), with an initial value —
/// lets callers fold in a pseudo-header.
pub fn ones_complement_sum(data: &[u8], initial: u32) -> u16 {
    let mut sum: u32 = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_cache::sim::trace::TraceBuffer;

    #[test]
    fn wire_pop_and_read() {
        let frame = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut m = Message::from_wire(&frame, 0x5000_0000);
        assert_eq!(m.len(), 8);
        assert_eq!(m.bytes()[0], 1);
        m.pop(3).unwrap();
        assert_eq!(m.len(), 5);
        assert_eq!(m.bytes()[0], 4);
        assert_eq!(m.head_addr(), 0x5000_0003);
        assert_eq!(m.pop(99), Err(MsgError::Truncated));
    }

    #[test]
    fn reset_from_wire_matches_from_wire_and_reuses_capacity() {
        let mut m = Message::from_wire(&[1, 2, 3, 4, 5, 6, 7, 8], 0x100);
        m.pop(5).unwrap();
        m.reset_from_wire(&[9, 8, 7], 0x2000);
        let fresh = Message::from_wire(&[9, 8, 7], 0x2000);
        assert_eq!(m.bytes(), fresh.bytes());
        assert_eq!(m.len(), 3);
        assert_eq!(m.head_addr(), fresh.head_addr());
        // Shrinking refills keep the old capacity (no realloc churn).
        let ptr = m.bytes().as_ptr();
        m.reset_from_wire(&[1, 2], 0);
        assert_eq!(m.bytes().as_ptr(), ptr);
    }

    #[test]
    fn unpop_restores_header() {
        let mut m = Message::from_wire(&[9, 8, 7, 6], 0);
        m.pop(2).unwrap();
        m.unpop(2);
        assert_eq!(m.bytes(), &[9, 8, 7, 6]);
    }

    #[test]
    fn push_headers_in_front() {
        let mut m = Message::for_send(b"payload", 0);
        {
            let h = m.push(4).unwrap();
            h.copy_from_slice(b"UDP!");
        }
        {
            let h = m.push(2).unwrap();
            h.copy_from_slice(b"IP");
        }
        assert_eq!(m.bytes(), b"IPUDP!payload");
        assert_eq!(m.len(), 13);
    }

    #[test]
    fn push_exhausts_headroom() {
        let mut m = Message::for_send(b"x", 0);
        assert!(m.push(DEFAULT_HEADROOM).is_ok());
        assert_eq!(m.push(1), Err(MsgError::NoHeadroom));
    }

    #[test]
    fn truncate_drops_tail() {
        let mut m = Message::from_wire(&[1, 2, 3, 4, 5], 0);
        m.pop(1).unwrap();
        m.truncate(2);
        assert_eq!(m.bytes(), &[2, 3]);
        m.truncate(10); // no-op
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn instrumented_reads_issue_packet_refs() {
        let frame = [0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02];
        let m = Message::from_wire(&frame, 0x5000_0000);
        let mut buf = TraceBuffer::new();
        {
            let mut ctx = MemCtx::new(&mut buf);
            assert_eq!(m.read_u8(&mut ctx, 0).unwrap(), 0xDE);
            assert_eq!(m.read_u16(&mut ctx, 0).unwrap(), 0xDEAD);
            assert_eq!(m.read_u32(&mut ctx, 0).unwrap(), 0xDEADBEEF);
            assert_eq!(m.read_u16(&mut ctx, 4).unwrap(), 0x0102);
            assert_eq!(m.read_u32(&mut ctx, 3), Err(MsgError::Truncated));
        }
        assert_eq!(buf.len(), 4);
        assert!(buf
            .refs
            .iter()
            .all(|r| r.region == Region::PacketData && r.addr >= 0x5000_0000));
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2
        // (complement 0x220d).
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data, 0), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_odd_length_pads() {
        assert_eq!(ones_complement_sum(&[0xFF], 0), 0xFF00);
    }

    #[test]
    fn checksum_of_message_charges_loads() {
        let data = vec![0xAAu8; 64];
        let m = Message::from_wire(&data, 0x5000_0000);
        let mut buf = TraceBuffer::new();
        let mut ctx = MemCtx::new(&mut buf);
        let c = m.checksum16(&mut ctx, 0, 64).unwrap();
        assert_eq!(buf.len(), 16); // one load per 4 bytes
        assert_eq!(c, internet_checksum(&data));
    }

    #[test]
    fn checksum_validates_zero_on_correct_packet() {
        // A header whose checksum field is filled correctly sums to
        // 0xFFFF (i.e. complement 0).
        let mut hdr = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let c = internet_checksum(&hdr);
        hdr[10] = (c >> 8) as u8;
        hdr[11] = (c & 0xFF) as u8;
        assert_eq!(internet_checksum(&hdr), 0);
    }
}
