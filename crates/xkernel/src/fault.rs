//! Deterministic fault injection for the driver layer.
//!
//! Real parallel receive paths see loss, duplication, reordering and
//! corruption long before the protocol graph does — and parallel NIC
//! dispatch itself reorders frames (Wu et al., *"Why Does Flow Director
//! Cause Packet Reordering?"*). The paper's model assumes none of this;
//! this module adds it as a strictly opt-in layer between the wire and
//! the receive ring so experiments can measure how affinity scheduling
//! *degrades*, not just how fast it is when everything is perfect.
//!
//! A [`FaultInjector`] applies a [`FaultPlan`] to each frame the driver
//! would DMA in. Every decision is drawn from a named RNG substream of
//! the existing `afs-desim` [`RngFactory`], so:
//!
//! * runs are a pure function of (config, master seed) — replayable;
//! * a plan with all probabilities at zero draws **nothing** from the
//!   RNG, so enabling the subsystem with a no-op plan leaves every other
//!   stream's sample path bit-for-bit unchanged.
//!
//! Fault classes (independent per-frame draws, applied in this order):
//!
//! 1. **Drop** — the frame vanishes on the wire.
//! 2. **Duplicate** — the frame is delivered twice (DMA re-arm bug,
//!    retransmit race).
//! 3. **Reorder** — the frame is parked in a bounded delay line and
//!    released 1..=`max_delay_slots` admissions later (Flow-Director
//!    style dispatch skew).
//! 4. **Corrupt** — 1..=`max_bit_flips` random bit flips anywhere in the
//!    frame (line noise past the MAC's FCS window, bad DMA).
//! 5. **Truncate** — the tail of the frame is cut (aborted DMA).
//!
//! Corruption and truncation deliberately do *not* fix up checksums:
//! the point is to exercise the protocol graph's validation layers and
//! charge the partial work a rejected packet still costs.

use std::collections::VecDeque;

use afs_desim::rng::RngFactory;
use rand::rngs::StdRng;
use rand::Rng;

use crate::driver::RxFrame;

/// The RNG substream name fault decisions draw from.
pub const FAULT_STREAM: &str = "faults";

/// Per-fault-class probabilities and bounds.
///
/// All probabilities are per-frame and independent. The default plan is
/// a no-op: every probability zero, so the injector never touches the
/// RNG and frames pass through untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a frame is dropped outright.
    pub drop_p: f64,
    /// Probability a frame is delivered twice.
    pub duplicate_p: f64,
    /// Probability a frame is delayed (reordered past later frames).
    pub reorder_p: f64,
    /// Maximum admissions a reordered frame may be delayed by (>= 1
    /// whenever `reorder_p > 0`).
    pub max_delay_slots: u32,
    /// Probability a frame suffers bit-flip corruption.
    pub corrupt_p: f64,
    /// Maximum random bit flips per corrupted frame (>= 1 whenever
    /// `corrupt_p > 0`).
    pub max_bit_flips: u32,
    /// Probability a frame is truncated.
    pub truncate_p: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The no-op plan: nothing is injected, nothing is drawn.
    pub const fn none() -> Self {
        FaultPlan {
            drop_p: 0.0,
            duplicate_p: 0.0,
            reorder_p: 0.0,
            max_delay_slots: 4,
            corrupt_p: 0.0,
            max_bit_flips: 1,
            truncate_p: 0.0,
        }
    }

    /// A plan injecting every fault class at the same rate `p` —
    /// the "uniformly hostile wire" used by the E21 sweeps.
    pub fn uniform(p: f64) -> Self {
        FaultPlan {
            drop_p: p,
            duplicate_p: p,
            reorder_p: p,
            max_delay_slots: 4,
            corrupt_p: p,
            max_bit_flips: 3,
            truncate_p: p,
        }
    }

    /// True when no fault class can fire (the injector is pass-through
    /// and consumes no randomness).
    pub fn is_noop(&self) -> bool {
        self.drop_p <= 0.0
            && self.duplicate_p <= 0.0
            && self.reorder_p <= 0.0
            && self.corrupt_p <= 0.0
            && self.truncate_p <= 0.0
    }

    /// Check probabilities are in [0, 1] and bounds are usable.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("drop_p", self.drop_p),
            ("duplicate_p", self.duplicate_p),
            ("reorder_p", self.reorder_p),
            ("corrupt_p", self.corrupt_p),
            ("truncate_p", self.truncate_p),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} = {p} outside [0, 1]"));
            }
        }
        if self.reorder_p > 0.0 && self.max_delay_slots == 0 {
            return Err("reorder_p > 0 requires max_delay_slots >= 1".into());
        }
        if self.corrupt_p > 0.0 && self.max_bit_flips == 0 {
            return Err("corrupt_p > 0 requires max_bit_flips >= 1".into());
        }
        Ok(())
    }
}

/// Counts of injected faults, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames offered to the injector.
    pub examined: u64,
    /// Frames dropped on the wire.
    pub drops: u64,
    /// Extra copies delivered.
    pub duplicates: u64,
    /// Frames delayed past later arrivals.
    pub reorders: u64,
    /// Frames with flipped bits.
    pub corruptions: u64,
    /// Frames with truncated tails.
    pub truncations: u64,
}

impl FaultStats {
    /// Total fault events injected (a frame can count in several
    /// classes).
    pub fn total_injected(&self) -> u64 {
        self.drops + self.duplicates + self.reorders + self.corruptions + self.truncations
    }

    /// Surface the injected-fault mix through the unified observability
    /// counters, so harnesses can report "what the wire did" alongside
    /// "what the receive path concluded" in one place.
    pub fn observe_into(&self, c: &mut afs_obs::Counters) {
        c.fault_examined += self.examined;
        c.wire_drops += self.drops;
        c.duplicates += self.duplicates;
        c.reorders += self.reorders;
        c.corruptions += self.corruptions;
        c.truncations += self.truncations;
    }
}

/// A frame parked in the reorder delay line.
#[derive(Debug)]
struct Delayed {
    /// Admissions remaining before release.
    slots_left: u32,
    frame: RxFrame,
}

/// Applies a [`FaultPlan`] to the frame stream, deterministically.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    delay_line: VecDeque<Delayed>,
    /// Injection counters.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Build from a plan and a ready-made RNG (useful in tests).
    pub fn new(plan: FaultPlan, rng: StdRng) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid FaultPlan: {e}");
        }
        FaultInjector {
            plan,
            rng,
            delay_line: VecDeque::new(),
            stats: FaultStats::default(),
        }
    }

    /// Build from a plan, drawing from the factory's `"faults"`
    /// substream — the standard construction, guaranteeing independence
    /// from every other named stream.
    pub fn from_factory(plan: FaultPlan, factory: &RngFactory) -> Self {
        Self::new(plan, factory.stream(FAULT_STREAM))
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Frames currently parked in the reorder delay line.
    pub fn delayed(&self) -> usize {
        self.delay_line.len()
    }

    /// Offer one frame. Returns the frames to deliver *now*, in order:
    /// zero (dropped or delayed), one, two (duplicated), plus any parked
    /// frames whose delay expired on this admission.
    pub fn admit(&mut self, frame: RxFrame) -> Vec<RxFrame> {
        self.stats.examined += 1;
        let mut out = Vec::new();
        if self.plan.is_noop() {
            // Fast path: no RNG draws at all.
            out.push(frame);
            return out;
        }

        // Age the delay line on every admission, releasing expired
        // frames *before* the current one (they were earlier arrivals).
        for d in &mut self.delay_line {
            d.slots_left = d.slots_left.saturating_sub(1);
        }
        // Release every expired frame, not just a prefix: a short delay
        // drawn behind a long one must overtake it — that *is* the
        // reordering.
        let mut i = 0;
        while i < self.delay_line.len() {
            if self.delay_line[i].slots_left == 0 {
                let released = self.delay_line.remove(i).expect("index in bounds");
                out.push(released.frame);
            } else {
                i += 1;
            }
        }

        // 1. Drop.
        if self.bernoulli(self.plan.drop_p) {
            self.stats.drops += 1;
            return out;
        }

        let mut frame = frame;

        // 4./5. Payload damage happens before the copy decision so a
        // duplicated frame carries the same damage twice (as a DMA
        // re-arm bug would).
        if self.bernoulli(self.plan.corrupt_p) && !frame.bytes.is_empty() {
            self.stats.corruptions += 1;
            let flips = self.rng.gen_range(1..=self.plan.max_bit_flips);
            for _ in 0..flips {
                let byte = self.rng.gen_range(0..frame.bytes.len());
                let bit = self.rng.gen_range(0u32..8);
                frame.bytes[byte] ^= 1 << bit;
            }
        }
        if self.bernoulli(self.plan.truncate_p) && frame.bytes.len() > 1 {
            self.stats.truncations += 1;
            let keep = self.rng.gen_range(1..frame.bytes.len());
            frame.bytes.truncate(keep);
        }

        // 2. Duplicate.
        let copy = if self.bernoulli(self.plan.duplicate_p) {
            self.stats.duplicates += 1;
            Some(frame.clone())
        } else {
            None
        };

        // 3. Reorder: park the frame; its copy (if any) still goes out
        // now, which is itself a reordering of the pair.
        if self.bernoulli(self.plan.reorder_p) {
            self.stats.reorders += 1;
            let slots = self.rng.gen_range(1..=self.plan.max_delay_slots);
            self.delay_line.push_back(Delayed {
                slots_left: slots,
                frame,
            });
        } else {
            out.push(frame);
        }
        if let Some(c) = copy {
            out.push(c);
        }
        out
    }

    /// Drain the delay line (end of run): parked frames are released in
    /// arrival order.
    pub fn flush(&mut self) -> Vec<RxFrame> {
        self.delay_line.drain(..).map(|d| d.frame).collect()
    }

    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::StreamId;

    fn frame(tag: u8) -> RxFrame {
        RxFrame {
            bytes: vec![tag; 32],
            stream: StreamId(tag as u32),
            buf_addr: 0,
        }
    }

    fn injector(plan: FaultPlan) -> FaultInjector {
        FaultInjector::from_factory(plan, &RngFactory::new(42))
    }

    #[test]
    fn noop_plan_passes_everything_through_untouched() {
        let mut inj = injector(FaultPlan::none());
        for i in 0..100u8 {
            let out = inj.admit(frame(i));
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].bytes, vec![i; 32]);
        }
        assert_eq!(inj.stats.total_injected(), 0);
        assert_eq!(inj.stats.examined, 100);
        assert!(inj.flush().is_empty());
    }

    #[test]
    fn drop_only_plan_drops_at_roughly_the_configured_rate() {
        let plan = FaultPlan {
            drop_p: 0.3,
            ..FaultPlan::none()
        };
        let mut inj = injector(plan);
        let mut delivered = 0usize;
        for i in 0..2000 {
            delivered += inj.admit(frame((i % 251) as u8)).len();
        }
        let dropped = 2000 - delivered;
        assert_eq!(inj.stats.drops as usize, dropped);
        assert!(
            (450..750).contains(&dropped),
            "30% of 2000 ≈ 600, got {dropped}"
        );
    }

    #[test]
    fn duplicates_add_identical_copies() {
        let plan = FaultPlan {
            duplicate_p: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = injector(plan);
        let out = inj.admit(frame(7));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].bytes, out[1].bytes);
        assert_eq!(inj.stats.duplicates, 1);
    }

    #[test]
    fn corruption_flips_bits_but_preserves_length() {
        let plan = FaultPlan {
            corrupt_p: 1.0,
            max_bit_flips: 3,
            ..FaultPlan::none()
        };
        let mut inj = injector(plan);
        let out = inj.admit(frame(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bytes.len(), 32);
        assert_ne!(out[0].bytes, vec![0u8; 32], "some bit flipped");
        assert_eq!(inj.stats.corruptions, 1);
    }

    #[test]
    fn truncation_shortens_but_never_empties() {
        let plan = FaultPlan {
            truncate_p: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = injector(plan);
        for i in 0..50u8 {
            let out = inj.admit(frame(i));
            assert_eq!(out.len(), 1);
            assert!(!out[0].bytes.is_empty());
            assert!(out[0].bytes.len() < 32);
        }
        assert_eq!(inj.stats.truncations, 50);
    }

    #[test]
    fn reorder_delays_frames_within_the_bound() {
        let plan = FaultPlan {
            reorder_p: 1.0,
            max_delay_slots: 3,
            ..FaultPlan::none()
        };
        let mut inj = injector(plan);
        let mut seen = Vec::new();
        for i in 0..40u8 {
            for f in inj.admit(frame(i)) {
                seen.push(f.stream.0);
            }
        }
        for f in inj.flush() {
            seen.push(f.stream.0);
        }
        // Everything arrives exactly once…
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<_>>());
        // …but not in order, and never displaced past the bound.
        assert_ne!(seen, (0..40).collect::<Vec<_>>(), "must reorder");
        for (pos, &id) in seen.iter().enumerate() {
            let displacement = (pos as i64 - id as i64).unsigned_abs();
            assert!(
                displacement <= 3 + 1,
                "frame {id} displaced by {displacement} > bound"
            );
        }
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan::uniform(0.2);
        let run = || {
            let mut inj = injector(plan);
            let mut sig = Vec::new();
            for i in 0..200u8 {
                for f in inj.admit(frame(i)) {
                    sig.push((f.stream.0, f.bytes.clone()));
                }
            }
            for f in inj.flush() {
                sig.push((f.stream.0, f.bytes.clone()));
            }
            (sig, inj.stats)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.total_injected() > 0, "20% plan must inject something");
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(FaultPlan {
            drop_p: 1.5,
            ..FaultPlan::none()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            reorder_p: 0.1,
            max_delay_slots: 0,
            ..FaultPlan::none()
        }
        .validate()
        .is_err());
        assert!(FaultPlan::uniform(0.5).validate().is_ok());
        assert!(FaultPlan::none().validate().is_ok());
    }
}
