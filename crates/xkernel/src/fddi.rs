//! FDDI MAC framing (receive and send), byte-exact.
//!
//! The frame layout we implement is the LLC/SNAP encapsulation used for
//! IP over FDDI (RFC 1188):
//!
//! ```text
//! +----+---------+---------+-----+-----+------+-------+---------+-----+
//! | FC | DA (6)  | SA (6)  |DSAP |SSAP | ctrl | SNAP OUI+type(5) | ... |
//! +----+---------+---------+-----+-----+------+-------+---------+-----+
//! |                      payload (≤ 4432 bytes)                 | FCS |
//! +--------------------------------------------------------------+----+
//! ```
//!
//! 21 bytes of header, a 4-byte CRC-32 FCS. The 4432-byte maximum payload
//! is the figure the paper uses for the largest FDDI packet. The paper's
//! in-memory device driver does not receive from a real ring, and neither
//! does ours — frames are produced by [`crate::driver`] — but parsing and
//! CRC verification are performed for real.

use crate::msg::{Message, MsgError};

/// FDDI frame-control byte for an async LLC frame.
pub const FC_LLC: u8 = 0x50;
/// LLC SAP value for SNAP.
pub const LLC_SNAP_SAP: u8 = 0xAA;
/// LLC control: unnumbered information.
pub const LLC_UI: u8 = 0x03;
/// SNAP EtherType for IPv4.
pub const ETHERTYPE_IP: u16 = 0x0800;
/// MAC + LLC/SNAP header length.
pub const HEADER_LEN: usize = 21;
/// FCS trailer length.
pub const FCS_LEN: usize = 4;
/// Maximum payload carried in one frame (the paper's figure).
pub const MAX_PAYLOAD: usize = 4432;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// A deterministic address for test/station `n`.
    pub fn station(n: u32) -> Self {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

/// Parsed FDDI header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FddiHeader {
    /// Frame control.
    pub fc: u8,
    /// Destination station.
    pub dst: MacAddr,
    /// Source station.
    pub src: MacAddr,
    /// SNAP EtherType of the payload.
    pub ethertype: u16,
}

/// Errors surfaced by FDDI processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FddiError {
    /// Frame shorter than header + FCS.
    Runt,
    /// Frame-control byte is not an LLC data frame.
    BadFrameControl,
    /// LLC/SNAP fields malformed.
    BadLlc,
    /// FCS mismatch.
    BadFcs,
    /// Payload exceeds the FDDI MTU.
    Oversize,
    /// Underlying message error.
    Msg(MsgError),
}

impl From<MsgError> for FddiError {
    fn from(e: MsgError) -> Self {
        FddiError::Msg(e)
    }
}

impl std::fmt::Display for FddiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FddiError::Runt => write!(f, "runt frame"),
            FddiError::BadFrameControl => write!(f, "bad frame control"),
            FddiError::BadLlc => write!(f, "bad LLC/SNAP header"),
            FddiError::BadFcs => write!(f, "FCS mismatch"),
            FddiError::Oversize => write!(f, "payload exceeds FDDI MTU"),
            FddiError::Msg(e) => write!(f, "message error: {e}"),
        }
    }
}

impl std::error::Error for FddiError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), as used for the FCS.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Build a complete wire frame around `payload`.
pub fn build_frame(
    dst: MacAddr,
    src: MacAddr,
    ethertype: u16,
    payload: &[u8],
) -> Result<Vec<u8>, FddiError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(FddiError::Oversize);
    }
    let mut f = Vec::with_capacity(HEADER_LEN + payload.len() + FCS_LEN);
    f.push(FC_LLC);
    f.extend_from_slice(&dst.0);
    f.extend_from_slice(&src.0);
    f.push(LLC_SNAP_SAP);
    f.push(LLC_SNAP_SAP);
    f.push(LLC_UI);
    f.extend_from_slice(&[0, 0, 0]); // SNAP OUI
    f.extend_from_slice(&ethertype.to_be_bytes());
    f.extend_from_slice(payload);
    let fcs = crc32(&f);
    f.extend_from_slice(&fcs.to_be_bytes());
    Ok(f)
}

/// Parse and strip the FDDI header and FCS of `msg` **without**
/// instrumentation — used by builders and tests. The instrumented
/// receive path lives in [`crate::engine`]; it performs the same field
/// reads through [`Message::read_u8`]-style accessors.
pub fn parse_frame(msg: &mut Message) -> Result<FddiHeader, FddiError> {
    if msg.len() < HEADER_LEN + FCS_LEN {
        return Err(FddiError::Runt);
    }
    let bytes = msg.bytes();
    let fc = bytes[0];
    if fc != FC_LLC {
        return Err(FddiError::BadFrameControl);
    }
    let mut dst = [0u8; 6];
    dst.copy_from_slice(&bytes[1..7]);
    let mut src = [0u8; 6];
    src.copy_from_slice(&bytes[7..13]);
    if bytes[13] != LLC_SNAP_SAP || bytes[14] != LLC_SNAP_SAP || bytes[15] != LLC_UI {
        return Err(FddiError::BadLlc);
    }
    if bytes[16] != 0 || bytes[17] != 0 || bytes[18] != 0 {
        return Err(FddiError::BadLlc);
    }
    let ethertype = u16::from_be_bytes([bytes[19], bytes[20]]);

    // Verify FCS over everything before the trailer.
    let body_len = msg.len() - FCS_LEN;
    let expect = u32::from_be_bytes([
        bytes[body_len],
        bytes[body_len + 1],
        bytes[body_len + 2],
        bytes[body_len + 3],
    ]);
    if crc32(&bytes[..body_len]) != expect {
        return Err(FddiError::BadFcs);
    }

    msg.truncate(body_len); // drop FCS
    msg.pop(HEADER_LEN)?; // strip MAC/LLC header
    Ok(FddiHeader {
        fc,
        dst: MacAddr(dst),
        src: MacAddr(src),
        ethertype,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip() {
        let payload = b"hello fddi";
        let frame = build_frame(
            MacAddr::station(1),
            MacAddr::station(2),
            ETHERTYPE_IP,
            payload,
        )
        .unwrap();
        assert_eq!(frame.len(), HEADER_LEN + payload.len() + FCS_LEN);
        let mut msg = Message::from_wire(&frame, 0);
        let hdr = parse_frame(&mut msg).unwrap();
        assert_eq!(hdr.dst, MacAddr::station(1));
        assert_eq!(hdr.src, MacAddr::station(2));
        assert_eq!(hdr.ethertype, ETHERTYPE_IP);
        assert_eq!(msg.bytes(), payload);
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corrupted_payload_fails_fcs() {
        let mut frame = build_frame(
            MacAddr::station(1),
            MacAddr::station(2),
            ETHERTYPE_IP,
            b"data",
        )
        .unwrap();
        let idx = HEADER_LEN + 1;
        frame[idx] ^= 0x01;
        let mut msg = Message::from_wire(&frame, 0);
        assert_eq!(parse_frame(&mut msg), Err(FddiError::BadFcs));
    }

    #[test]
    fn runt_frame_rejected() {
        let mut msg = Message::from_wire(&[0u8; 10], 0);
        assert_eq!(parse_frame(&mut msg), Err(FddiError::Runt));
    }

    #[test]
    fn bad_fc_rejected() {
        let mut frame =
            build_frame(MacAddr::station(1), MacAddr::station(2), ETHERTYPE_IP, b"x").unwrap();
        frame[0] = 0x00;
        let mut msg = Message::from_wire(&frame, 0);
        assert_eq!(parse_frame(&mut msg), Err(FddiError::BadFrameControl));
    }

    #[test]
    fn bad_llc_rejected() {
        let mut frame =
            build_frame(MacAddr::station(1), MacAddr::station(2), ETHERTYPE_IP, b"x").unwrap();
        frame[13] = 0x42;
        // Recompute FCS so only the LLC check can fail.
        let body = frame.len() - FCS_LEN;
        let fcs = crc32(&frame[..body]);
        frame[body..].copy_from_slice(&fcs.to_be_bytes());
        let mut msg = Message::from_wire(&frame, 0);
        assert_eq!(parse_frame(&mut msg), Err(FddiError::BadLlc));
    }

    #[test]
    fn oversize_payload_rejected() {
        let payload = vec![0u8; MAX_PAYLOAD + 1];
        assert_eq!(
            build_frame(
                MacAddr::station(1),
                MacAddr::station(2),
                ETHERTYPE_IP,
                &payload
            ),
            Err(FddiError::Oversize)
        );
    }

    #[test]
    fn max_payload_accepted() {
        let payload = vec![0xABu8; MAX_PAYLOAD];
        let frame = build_frame(
            MacAddr::station(1),
            MacAddr::station(2),
            ETHERTYPE_IP,
            &payload,
        )
        .unwrap();
        let mut msg = Message::from_wire(&frame, 0);
        parse_frame(&mut msg).unwrap();
        assert_eq!(msg.len(), MAX_PAYLOAD);
    }

    #[test]
    fn station_addresses_distinct() {
        assert_ne!(MacAddr::station(1), MacAddr::station(2));
        assert_eq!(MacAddr::station(7), MacAddr::station(7));
    }
}
