//! Batched dispatch is result-transparent: for every front-end × policy
//! cell of the stream matrix, running the identical workload with
//! dequeue batches of 8 and 64 (train pops + flow-run fusion) yields a
//! `NativeReport` bit-identical to the historical per-packet path
//! (batch 1) — the ledger, the delay/service/wait moments, the
//! steering counters, and the per-stream delivery counts all match
//! exactly.
//!
//! Two per-worker gauges are normalized out before comparison:
//! `max_queue_depth` (a documented-racy host-side sample whose value
//! depends on dispatcher/worker interleaving, not on results) and
//! `lock_contended` (`try_lock` contention is host scheduling, not
//! modeled time). Everything else must be equal to the bit.

use afs_core::crossval::{stream_smoke_matrix, STREAM_POLICIES};
use afs_native::crossval::{native_stream_config, native_stream_workload};
use afs_native::{run_native, FrontEndKind, NativeReport, Pinning};

fn normalized(mut r: NativeReport) -> NativeReport {
    for w in &mut r.per_worker {
        w.max_queue_depth = 0;
        w.lock_contended = 0;
    }
    r
}

#[test]
fn batched_dispatch_is_bit_identical_across_the_stream_matrix() {
    for s in stream_smoke_matrix() {
        for kind in FrontEndKind::ALL {
            for &policy in &STREAM_POLICIES {
                let mut cfg = native_stream_config(&s, kind, policy);
                cfg.pinning = Pinning::Off;
                let base = normalized(run_native(&cfg, native_stream_workload(&s)));
                assert_eq!(base.offered, s.total_packets);
                for batch in [8usize, 64] {
                    let mut cfg_b = cfg.clone();
                    cfg_b.batch = batch;
                    let got = normalized(run_native(&cfg_b, native_stream_workload(&s)));
                    assert_eq!(
                        got,
                        base,
                        "batch={batch} diverged for {}/{} on {}",
                        kind.label(),
                        policy.label(),
                        s.label(),
                    );
                }
            }
        }
    }
}

/// The router-dispatched (no front-end) layouts must also be
/// unaffected — including the stealing and shared-pool rungs, whose
/// arbitration is dispatcher-side claim resolution (DESIGN.md §17) and
/// therefore independent of how many packets a worker pops per train.
#[test]
fn batched_dispatch_is_bit_identical_on_legacy_layouts() {
    use afs_native::{zipf_workload, NativeConfig, PolicySpec};
    for policy in PolicySpec::ALL {
        let mut cfg = NativeConfig::new(2, policy);
        cfg.pinning = Pinning::Off;
        cfg.seed = 0xBA7C;
        let workload = || zipf_workload(64, 4_000, 30_000.0, 1.1, 4.0, None, 64, 0xBA7C);
        let base = normalized(run_native(&cfg, workload()));
        for batch in [8usize, 64] {
            let mut cfg_b = cfg.clone();
            cfg_b.batch = batch;
            let got = normalized(run_native(&cfg_b, workload()));
            assert_eq!(got, base, "batch={batch} diverged for {}", policy.label());
        }
    }
}
