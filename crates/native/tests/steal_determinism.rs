//! The determinism the claim protocol buys (DESIGN.md §17): with the
//! stealing (IPS) or locking-pool rungs active, the native backend's
//! steal schedule is a pure function of the arrival stream. At every
//! worker count in {1, 2, 4, 8} and every dequeue batch in {1, 8, 64},
//! repeat runs produce bit-identical normalized reports — including
//! `stream_migrations` and the steal counters the racy engine could
//! only reproduce at a single worker — with and without a seeded
//! processor-fault plan.
//!
//! Normalization zeroes the two documented host-racy gauges
//! (`max_queue_depth`, `lock_contended`); everything else must match
//! to the bit.

use afs_core::procfault::{FaultLoad, ProcFaultPlan};
use afs_native::{
    run_native, zipf_workload, NativeConfig, NativePacket, NativeReport, Pinning, PolicySpec,
};

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const BATCHES: [usize; 3] = [1, 8, 64];

/// The rungs whose arbitration goes through the claim table: the
/// locking pool (pooled claims) and IPS (steal claims).
const ENGAGED: [PolicySpec; 2] = [PolicySpec::Locking, PolicySpec::Ips];

fn workload() -> Vec<NativePacket> {
    zipf_workload(64, 2_000, 30_000.0, 1.1, 4.0, None, 64, 0x0057_EA1D)
}

fn normalized(mut r: NativeReport) -> NativeReport {
    for w in &mut r.per_worker {
        w.max_queue_depth = 0;
        w.lock_contended = 0;
    }
    r
}

fn config(workers: usize, policy: PolicySpec, faults: Option<&ProcFaultPlan>) -> NativeConfig {
    let mut cfg = NativeConfig::new(workers, policy);
    cfg.pinning = Pinning::Off;
    cfg.seed = 0x0057_EA1D;
    if let Some(plan) = faults {
        cfg.faults = plan.clone();
    }
    cfg
}

fn assert_schedule_pinned(policy: PolicySpec, faults: Option<&ProcFaultPlan>) {
    for workers in WORKERS {
        // A fault plan is drawn per worker count (victims are worker
        // indices), but within a worker count every batch and every
        // repeat sees the same plan.
        let plan = faults.map(|_| {
            let horizon = workload().last().unwrap().arrival_us;
            ProcFaultPlan::seeded(
                0xFA11,
                workers,
                (0.2 * horizon, horizon),
                &FaultLoad::light(),
            )
        });
        let base = normalized(run_native(
            &config(workers, policy, plan.as_ref()),
            workload(),
        ));
        assert_eq!(base.outcomes.total(), base.offered, "lossy ledger");
        for batch in BATCHES {
            for repeat in 0..2 {
                let mut cfg = config(workers, policy, plan.as_ref());
                cfg.batch = batch;
                let got = normalized(run_native(&cfg, workload()));
                // The full report must be bit-identical, and the
                // counters the racy engine could not pin are called
                // out by name so a regression reads directly.
                assert_eq!(
                    got.stream_migrations, base.stream_migrations,
                    "{policy:?} w={workers} batch={batch} rep={repeat}: migrations diverged"
                );
                assert_eq!(
                    got.steals, base.steals,
                    "{policy:?} w={workers} batch={batch} rep={repeat}: steal count diverged"
                );
                assert_eq!(
                    got, base,
                    "{policy:?} w={workers} batch={batch} rep={repeat} diverged"
                );
            }
        }
    }
}

#[test]
fn steal_schedules_are_bit_identical_without_faults() {
    for policy in ENGAGED {
        assert_schedule_pinned(policy, None);
    }
}

#[test]
fn steal_schedules_are_bit_identical_under_seeded_fault_plans() {
    let marker = ProcFaultPlan::default();
    for policy in ENGAGED {
        assert_schedule_pinned(policy, Some(&marker));
    }
}

/// The determinism claim is not vacuous: at multiple workers the IPS
/// rung actually steals under this workload, and the locking pool
/// actually migrates streams.
#[test]
fn the_pinned_schedules_exercise_arbitration() {
    let ips = run_native(&config(4, PolicySpec::Ips, None), workload());
    assert!(ips.steals > 0, "IPS never stole — the pin proves nothing");
    let lck = run_native(&config(4, PolicySpec::Locking, None), workload());
    assert!(
        lck.stream_migrations > ips.stream_migrations,
        "the pool must bounce streams more than IPS (lck {} vs ips {})",
        lck.stream_migrations,
        ips.stream_migrations
    );
}
