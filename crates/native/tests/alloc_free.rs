//! The serving path's allocation-free steady-state contract, pinned by
//! a counting global allocator.
//!
//! Strategy: run the same serving configuration twice, identical except
//! for how many packets arrive *after* warm-up, with the allocator's
//! counter armed at the warm-up boundary (`ServeConfig::on_steady`
//! fires on the dispatcher thread the instant the warm-up packet count
//! is reached). Everything either run allocates while armed — teardown,
//! report assembly, the RSS gauge — is common to both; the only thing
//! that differs is thousands of extra steady-state packets. If the
//! armed counts are *equal*, those packets allocated nothing: the frame
//! buffers recycled through the pool, the generator refilled them in
//! place, and every table (router MRU, front-end steering, resident
//! LRUs, the feedback heap) stayed within its pre-sized footprint.
//!
//! The single-worker case is fully deterministic (no lock contention,
//! so no lazily created parking structures) and must match exactly.
//! The multi-worker case exercises the shared-stack lock path as well;
//! its parking allocations are forced during warm-up by the sustained
//! contention on the one shared engine.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use afs_native::{run_serve, FrontEndKind, Pinning, PolicySpec, ServeConfig};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn arm() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Armed allocation count for one serving run of `total` packets.
fn armed_allocs(workers: usize, total: u64) -> u64 {
    let mut cfg = ServeConfig::new(
        workers,
        64,
        FrontEndKind::FlowDirector,
        PolicySpec::MinReload,
    );
    cfg.native.pinning = Pinning::Off;
    cfg.native.queue_capacity = 64;
    // Past two workers' sustained rate: drops and pool backpressure are
    // part of the steady state being measured.
    cfg.offered_pps = 20_000.0;
    cfg.total_packets = total;
    cfg.warmup_packets = 6_000;
    cfg.snapshot_every = None;
    cfg.on_steady = Some(arm);
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.store(0, Ordering::SeqCst);
    let report = run_serve(&cfg, None);
    let count = ALLOCS.load(Ordering::SeqCst);
    ARMED.store(false, Ordering::SeqCst);
    assert!(report.ledger_balanced(), "serving ledger must balance");
    assert_eq!(report.offered, total);
    count
}

#[test]
fn steady_state_serving_allocates_nothing_single_worker() {
    let short = armed_allocs(1, 14_000);
    let long = armed_allocs(1, 22_000);
    assert_eq!(
        short, long,
        "8000 extra steady-state packets must not allocate (armed counts: \
         {short} vs {long})"
    );
}

#[test]
fn steady_state_serving_allocates_nothing_multi_worker() {
    let short = armed_allocs(2, 14_000);
    let long = armed_allocs(2, 22_000);
    assert_eq!(
        short, long,
        "8000 extra steady-state packets must not allocate (armed counts: \
         {short} vs {long})"
    );
}
